// Merge (Algorithm 1) vs. a brute-force oracle. The harness decodes a
// tiny dataset from the input bytes, runs MergeSubspaces, and re-derives
// every guarantee the downstream subset machinery depends on:
//
//   * pivots + remaining + pruned partition the input;
//   * every pivot (and every surviving point) is a skyline point /
//     not weakly dominated by any pivot;
//   * each surviving point's mask equals the brute-force *maximum
//     dominating subspace* with respect to the pivot set
//     (Definition 4.1) and is non-empty.
#ifndef SKYLINE_FUZZ_HARNESS_MERGE_H_
#define SKYLINE_FUZZ_HARNESS_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/core/dataset.h"
#include "src/core/dominance.h"
#include "src/core/subspace.h"
#include "src/subset/merge.h"

namespace skyline::fuzz {

inline void RunMergeFuzzInput(const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  const Dim d = 1 + in.U8() % 6;
  const int sigma = 1 + in.U8() % (static_cast<int>(d) + 2);

  // Quantize values to 1/8 steps so duplicates and per-dimension ties —
  // the hard cases for weak dominance — are common.
  std::vector<Value> values;
  const std::size_t n =
      std::min<std::size_t>(in.remaining() / d, 48);
  if (n == 0) return;
  values.reserve(n * d);
  for (std::size_t i = 0; i < n * d; ++i) {
    values.push_back(static_cast<Value>(in.U8() % 16) / 8.0);
  }
  const Dataset dataset(d, std::move(values));

  const MergeResult result = MergeSubspaces(dataset, sigma);

  FUZZ_CHECK(result.pivots.size() + result.remaining.size() + result.pruned ==
                 n,
             "Merge: pivots + remaining + pruned != n");
  FUZZ_CHECK(result.subspaces.size() == result.remaining.size(),
             "Merge: subspaces not parallel to remaining");
  FUZZ_CHECK(result.iterations >= 0 &&
                 static_cast<std::size_t>(result.iterations) <= n,
             "Merge: iteration count out of range");

  // Oracle 1: every pivot is a skyline point of the dataset.
  for (PointId p : result.pivots) {
    for (PointId q = 0; q < n; ++q) {
      FUZZ_CHECK(!Dominates(dataset.row(q), dataset.row(p), d),
                 "Merge: a pivot is not a skyline point");
    }
  }

  // Oracle 2: surviving masks are the brute-force maximum dominating
  // subspace w.r.t. the pivots, and no pivot weakly dominates a survivor.
  for (std::size_t i = 0; i < result.remaining.size(); ++i) {
    const PointId q = result.remaining[i];
    const Value* q_row = dataset.row(q);
    Subspace expect;
    for (PointId p : result.pivots) {
      FUZZ_CHECK(!DominatesOrEqual(dataset.row(p), q_row, d),
                 "Merge: a pivot weakly dominates a surviving point");
      expect |= DominatingSubspace(q_row, dataset.row(p), d);
    }
    FUZZ_CHECK(!result.subspaces[i].empty(),
               "Merge: surviving point carries an empty mask");
    FUZZ_CHECK(expect == result.subspaces[i],
               "Merge: mask != brute-force maximum dominating subspace");
  }
}

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_HARNESS_MERGE_H_
