#include <cstddef>
#include <cstdint>

#include "fuzz/harness_subspace.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  skyline::fuzz::RunSubspaceFuzzInput(data, size);
  return 0;
}
