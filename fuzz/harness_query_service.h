// QueryService vs. a brute-force subspace-skyline oracle.
//
// Input grammar (byte stream, total on truncation):
//   [0]  dimensionality d = 2 + b % 3          (2..4)
//   [1]  cache capacity  = 1 + b % 6           (max_entries)
//   [2]  flags: bit0 = pin_full_space
//              bit1 = bound total ids (max_total_ids = 8 * capacity)
//              bit2 = seeded_boost_threshold = 0 (every seeded miss
//                     takes the subset-boosted kernel, not the BNL)
//   [3]  number of points n = 1 + b % 48
//   then n * d value bytes, quantized to b % 8 so duplicate
//   projections (the tie-repair path) are everywhere,
//   then every remaining byte is one query: mask = 1 + b % (2^d - 1).
//
// Checks per query: result equals the O(d N^2) oracle (computed fresh,
// memoized per distinct mask); afterwards the stats identities
// (queries = hits + misses, latency count, eviction/capacity bound).
#ifndef SKYLINE_FUZZ_HARNESS_QUERY_SERVICE_H_
#define SKYLINE_FUZZ_HARNESS_QUERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/core/dataset.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace skyline::fuzz {

namespace query_service_oracle {

/// O(d N^2) subspace skyline, ids ascending — independent of both the
/// skycube BNL and the service's engines.
inline std::vector<PointId> Reference(const Dataset& data, Subspace v) {
  std::vector<PointId> out;
  for (PointId p = 0; p < data.num_points(); ++p) {
    bool dominated = false;
    for (PointId q = 0; q < data.num_points() && !dominated; ++q) {
      if (q != p && DominatesInSubspace(data.row(q), data.row(p), v)) {
        dominated = true;
      }
    }
    if (!dominated) out.push_back(p);
  }
  return out;
}

}  // namespace query_service_oracle

inline void RunQueryServiceFuzzInput(const std::uint8_t* data,
                                     std::size_t size) {
  ByteReader in(data, size);
  if (in.remaining() < 6) return;

  const Dim d = 2 + in.U8() % 3;
  QueryServiceOptions options;
  options.max_entries = 1 + in.U8() % 6;
  const std::uint8_t flags = in.U8();
  options.pin_full_space = (flags & 1) != 0;
  if ((flags & 2) != 0) options.max_total_ids = 8 * options.max_entries;
  if ((flags & 4) != 0) options.seeded_boost_threshold = 0;

  const std::size_t n = 1 + in.U8() % 48;
  Dataset table(d);
  std::vector<Value> row(d);
  for (std::size_t p = 0; p < n; ++p) {
    for (Dim i = 0; i < d; ++i) row[i] = static_cast<Value>(in.U8() % 8);
    table.Append(row);
  }

  QueryService service(table, options);
  const std::uint64_t num_masks = std::uint64_t{1} << d;
  std::map<std::uint64_t, std::vector<PointId>> oracle;
  std::uint64_t num_queries = 0;

  while (!in.exhausted()) {
    const std::uint64_t bits = 1 + in.U8() % (num_masks - 1);
    const Subspace v(bits);
    auto it = oracle.find(bits);
    if (it == oracle.end()) {
      it = oracle.emplace(bits, query_service_oracle::Reference(table, v))
               .first;
    }
    const std::vector<PointId> got = service.Query(v);
    FUZZ_CHECK(got == it->second,
               "QueryService answer differs from the brute-force oracle");
    ++num_queries;
  }

  const QueryStatsSnapshot stats = service.Stats();
  FUZZ_CHECK(stats.queries == num_queries, "query count drifted");
  FUZZ_CHECK(stats.hits + stats.misses() == stats.queries,
             "hits + misses != queries");
  FUZZ_CHECK(stats.latency.total == stats.queries,
             "latency histogram lost samples");
  const std::size_t pinned = options.pin_full_space ? 1 : 0;
  FUZZ_CHECK(stats.cache_entries <= options.max_entries + pinned,
             "cache exceeded its entry bound");
  FUZZ_CHECK(stats.seeded_tests + stats.cold_tests ==
                 stats.dominance_tests(),
             "dominance-test split inconsistent");
}

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_HARNESS_QUERY_SERVICE_H_
