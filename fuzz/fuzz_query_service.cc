#include <cstddef>
#include <cstdint>

#include "fuzz/harness_query_service.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  skyline::fuzz::RunQueryServiceFuzzInput(data, size);
  return 0;
}
