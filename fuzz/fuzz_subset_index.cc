#include <cstddef>
#include <cstdint>

#include "fuzz/harness_subset_index.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  skyline::fuzz::RunSubsetIndexFuzzInput(data, size);
  return 0;
}
