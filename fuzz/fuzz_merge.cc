#include <cstddef>
#include <cstdint>

#include "fuzz/harness_merge.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  skyline::fuzz::RunMergeFuzzInput(data, size);
  return 0;
}
