#include <cstddef>
#include <cstdint>

#include "fuzz/harness_csv.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  skyline::fuzz::RunCsvFuzzInput(data, size);
  return 0;
}
