// Shared helpers for the fuzz harnesses: a byte-stream reader and an
// always-on check macro (the harnesses are their own oracle, so their
// checks must fire even in builds without SKYLINE_CHECKS).
#ifndef SKYLINE_FUZZ_FUZZ_UTIL_H_
#define SKYLINE_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

/// Abort with a report when a harness oracle disagrees with the library.
/// libFuzzer and the standalone driver both treat the abort as a finding.
#define FUZZ_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "[fuzz] oracle mismatch: %s\n  at %s:%d\n  %s\n", \
                   #cond, __FILE__, __LINE__, (msg));                     \
      std::fflush(stderr);                                                \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

namespace skyline::fuzz {

/// Consumes the input bytes front to back; returns zeros once exhausted
/// (keeps harness behavior total on truncated inputs).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool exhausted() const { return pos_ >= size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint16_t U16() {
    return static_cast<std::uint16_t>(U8()) |
           static_cast<std::uint16_t>(U8()) << 8;
  }

  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(U8()) << (8 * i);
    return v;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_FUZZ_UTIL_H_
