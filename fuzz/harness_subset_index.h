// SubsetIndex vs. a flat linear-scan oracle. The harness replays a
// random op sequence (Add / AddAlwaysCandidate / Remove / Query /
// QueryContained / MergeFrom / Compact) against both the prefix tree
// and a plain vector of (id, subspace) pairs, comparing every query
// result as a multiset and, after every op, the num_points accounting
// plus the num_nodes count against the distinct live reversed-path
// prefixes (the node-reclamation invariant: Remove must not leak dead
// tree structure).
#ifndef SKYLINE_FUZZ_HARNESS_SUBSET_INDEX_H_
#define SKYLINE_FUZZ_HARNESS_SUBSET_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/core/subspace.h"
#include "src/core/types.h"
#include "src/subset/subset_index.h"

namespace skyline::fuzz {

namespace index_oracle {

using Entry = std::pair<PointId, std::uint64_t>;

/// Multiset comparison of a query result against the oracle's filter.
inline void CheckQuery(std::vector<PointId> got, std::vector<PointId> want,
                       const char* what) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  FUZZ_CHECK(got == want, what);
}

/// Live-node oracle: the tree must hold exactly one node per distinct
/// non-empty prefix of the stored entries' reversed paths (path keys
/// strictly increase, so a prefix is uniquely identified by its dim set).
inline std::size_t ExpectedNodes(const std::vector<Entry>& ref, Dim nd) {
  std::set<std::uint64_t> prefixes;
  for (const Entry& e : ref) {
    std::uint64_t prefix = 0;
    Subspace(e.second).Complement(nd).ForEachDim([&](Dim dim) {
      prefix |= std::uint64_t{1} << dim;
      prefixes.insert(prefix);
    });
  }
  return prefixes.size();
}

}  // namespace index_oracle

inline void RunSubsetIndexFuzzInput(const std::uint8_t* data,
                                    std::size_t size) {
  using index_oracle::Entry;
  ByteReader in(data, size);

  const Dim nd = 1 + in.U8() % 16;
  const std::uint64_t full = Subspace::Full(nd).bits();

  SubsetIndex index(nd);
  SubsetIndex staging(nd);
  std::vector<Entry> ref;
  std::vector<Entry> staging_ref;

  int ops = 0;
  while (!in.exhausted() && ops < 256) {
    ++ops;
    const std::uint8_t op = in.U8() % 9;
    switch (op) {
      case 0:
      case 1: {  // Add to the main index (2x weight: adds dominate real use)
        const PointId id = in.U8();
        const Subspace mask(in.U16() & full);
        index.Add(id, mask);
        ref.emplace_back(id, mask.bits());
        break;
      }
      case 2: {  // Add to the staging index (exercises MergeFrom paths)
        const PointId id = in.U8();
        const Subspace mask(in.U16() & full);
        staging.Add(id, mask);
        staging_ref.emplace_back(id, mask.bits());
        break;
      }
      case 3: {  // AddAlwaysCandidate == root storage == full-space key
        const PointId id = in.U8();
        index.AddAlwaysCandidate(id);
        ref.emplace_back(id, full);
        break;
      }
      case 4: {  // Remove an existing entry (or a likely-absent one)
        if (!ref.empty() && (in.U8() & 1) != 0) {
          const std::size_t pick = in.U8() % ref.size();
          const Entry victim = ref[pick];
          FUZZ_CHECK(index.Remove(victim.first, Subspace(victim.second)),
                     "Remove: stored entry reported missing");
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          const PointId id = in.U8();
          const Subspace mask(in.U16() & full);
          const bool present =
              std::find(ref.begin(), ref.end(),
                        Entry{id, mask.bits()}) != ref.end();
          FUZZ_CHECK(index.Remove(id, mask) == present,
                     "Remove: presence disagrees with the oracle");
          if (present) {
            ref.erase(std::find(ref.begin(), ref.end(),
                                Entry{id, mask.bits()}));
          }
        }
        break;
      }
      case 5: {  // Query: ids stored under a superset of the probe
        const Subspace probe(in.U16() & full);
        std::vector<PointId> got;
        std::uint64_t nodes = 0;
        index.Query(probe, &got, &nodes);
        FUZZ_CHECK(nodes >= 1, "Query must visit at least the root");
        std::vector<PointId> want;
        for (const Entry& e : ref) {
          if (probe.IsSubsetOf(Subspace(e.second))) want.push_back(e.first);
        }
        index_oracle::CheckQuery(std::move(got), std::move(want),
                                 "Query != linear superset scan");
        break;
      }
      case 6: {  // QueryContained: ids stored under a subset of the probe
        const Subspace probe(in.U16() & full);
        std::vector<PointId> got;
        index.QueryContained(probe, &got);
        std::vector<PointId> want;
        for (const Entry& e : ref) {
          if (Subspace(e.second).IsSubsetOf(probe)) want.push_back(e.first);
        }
        index_oracle::CheckQuery(std::move(got), std::move(want),
                                 "QueryContained != linear subset scan");
        break;
      }
      case 7: {  // Splice the staging index in; it must come back empty
        index.MergeFrom(std::move(staging));
        ref.insert(ref.end(), staging_ref.begin(), staging_ref.end());
        staging_ref.clear();
        FUZZ_CHECK(staging.num_points() == 0,
                   "MergeFrom: source index not emptied");
        staging = SubsetIndex(nd);
        break;
      }
      case 8: {  // Compact: eager Remove reclamation leaves nothing to prune
        FUZZ_CHECK(index.Compact() == 0,
                   "Compact found dead nodes Remove should have reclaimed");
        break;
      }
      default:
        break;
    }
    FUZZ_CHECK(index.num_points() == ref.size(),
               "num_points accounting disagrees with the oracle");
    FUZZ_CHECK(staging.num_points() == staging_ref.size(),
               "staging num_points accounting disagrees with the oracle");
    FUZZ_CHECK(index.num_nodes() == index_oracle::ExpectedNodes(ref, nd),
               "num_nodes disagrees with the live reversed-path prefixes");
    FUZZ_CHECK(
        staging.num_nodes() == index_oracle::ExpectedNodes(staging_ref, nd),
        "staging num_nodes disagrees with the live reversed-path prefixes");
  }

  // Final exhaustive sweep: every single-dimension probe and the two
  // extremes agree with the oracle.
  for (Dim probe_dim = 0; probe_dim < nd; ++probe_dim) {
    const Subspace probe = Subspace::Single(probe_dim);
    std::vector<PointId> got;
    index.Query(probe, &got);
    std::vector<PointId> want;
    for (const Entry& e : ref) {
      if (probe.IsSubsetOf(Subspace(e.second))) want.push_back(e.first);
    }
    index_oracle::CheckQuery(std::move(got), std::move(want),
                             "final single-dim Query sweep disagrees");
  }
  std::vector<PointId> all;
  index.Query(Subspace{}, &all);
  FUZZ_CHECK(all.size() == ref.size(),
             "empty-subspace Query must return every stored id");
}

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_HARNESS_SUBSET_INDEX_H_
