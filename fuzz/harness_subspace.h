// Subspace algebra vs. a naive bit-loop oracle. Every set operation,
// predicate and accessor of skyline::Subspace is re-derived dimension by
// dimension from plain bool arrays and compared.
#ifndef SKYLINE_FUZZ_HARNESS_SUBSPACE_H_
#define SKYLINE_FUZZ_HARNESS_SUBSPACE_H_

#include <array>
#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/core/subspace.h"

namespace skyline::fuzz {

namespace subspace_oracle {

using Bits = std::array<bool, Subspace::kMaxDims>;

inline Bits ToBits(std::uint64_t mask, Dim nd) {
  Bits b{};
  for (Dim i = 0; i < nd; ++i) b[i] = ((mask >> i) & 1) != 0;
  return b;
}

inline void CheckPair(std::uint64_t a_bits, std::uint64_t b_bits, Dim nd) {
  const std::uint64_t full =
      nd == Subspace::kMaxDims ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << nd) - 1;
  a_bits &= full;
  b_bits &= full;
  const Subspace a(a_bits);
  const Subspace b(b_bits);
  const Bits ra = ToBits(a_bits, nd);
  const Bits rb = ToBits(b_bits, nd);

  // Membership, size, emptiness.
  Dim size = 0;
  bool any = false;
  Dim lowest = 0;
  bool lowest_set = false;
  for (Dim i = 0; i < nd; ++i) {
    FUZZ_CHECK(a.Contains(i) == ra[i], "Contains disagrees with the oracle");
    if (ra[i]) {
      ++size;
      any = true;
      if (!lowest_set) {
        lowest = i;
        lowest_set = true;
      }
    }
  }
  FUZZ_CHECK(a.size() == size, "size() disagrees with the popcount oracle");
  FUZZ_CHECK(a.empty() == !any, "empty() disagrees with the oracle");
  if (any) FUZZ_CHECK(a.Lowest() == lowest, "Lowest() disagrees");

  // Binary set algebra, dimension by dimension.
  const Subspace uni = a.Union(b);
  const Subspace inter = a.Intersection(b);
  const Subspace diff = a.Difference(b);
  const Subspace comp = a.Complement(nd);
  bool subset = true;
  bool superset = true;
  for (Dim i = 0; i < nd; ++i) {
    FUZZ_CHECK(uni.Contains(i) == (ra[i] || rb[i]), "Union disagrees");
    FUZZ_CHECK(inter.Contains(i) == (ra[i] && rb[i]),
               "Intersection disagrees");
    FUZZ_CHECK(diff.Contains(i) == (ra[i] && !rb[i]), "Difference disagrees");
    FUZZ_CHECK(comp.Contains(i) == !ra[i], "Complement disagrees");
    if (ra[i] && !rb[i]) subset = false;
    if (rb[i] && !ra[i]) superset = false;
  }
  FUZZ_CHECK(a.IsSubsetOf(b) == subset, "IsSubsetOf disagrees");
  FUZZ_CHECK(a.IsSupersetOf(b) == superset, "IsSupersetOf disagrees");
  FUZZ_CHECK(a.IsProperSubsetOf(b) == (subset && a_bits != b_bits),
             "IsProperSubsetOf disagrees");
  FUZZ_CHECK((a == b) == (a_bits == b_bits), "operator== disagrees");
  FUZZ_CHECK((a != b) == (a_bits != b_bits), "operator!= disagrees");
  FUZZ_CHECK((a < b) == (a_bits < b_bits), "operator< disagrees");

  // Compound assignment mirrors the free operators.
  Subspace acc = a;
  acc |= b;
  FUZZ_CHECK(acc == uni, "operator|= disagrees with Union");
  acc = a;
  acc &= b;
  FUZZ_CHECK(acc == inter, "operator&= disagrees with Intersection");

  // Complement round-trip and De Morgan.
  FUZZ_CHECK(comp.Complement(nd) == a, "Complement round-trip broken");
  FUZZ_CHECK(a.Complement(nd).Intersection(b.Complement(nd)) ==
                 uni.Complement(nd),
             "De Morgan (union) broken");

  // Add/Remove round-trip through the oracle.
  Subspace edit = a;
  for (Dim i = 0; i < nd; ++i) {
    if (rb[i]) {
      edit.Add(i);
    } else {
      edit.Remove(i);
    }
  }
  FUZZ_CHECK(edit == b, "Add/Remove editing did not converge to the target");

  // ForEachDim enumerates exactly the members, strictly increasing.
  Bits seen{};
  Dim last = 0;
  bool first = true;
  std::uint64_t visits = 0;
  a.ForEachDim([&](Dim d) {
    FUZZ_CHECK(d < nd, "ForEachDim produced a dimension outside the space");
    FUZZ_CHECK(first || d > last, "ForEachDim not strictly increasing");
    first = false;
    last = d;
    seen[d] = true;
    ++visits;
  });
  FUZZ_CHECK(visits == a.size(), "ForEachDim visit count != size()");
  for (Dim i = 0; i < nd; ++i) {
    FUZZ_CHECK(seen[i] == ra[i], "ForEachDim missed or invented a member");
  }

  // ToString stays total and non-empty.
  const std::string rendered = a.ToString();
  FUZZ_CHECK(rendered.size() >= 2 && rendered.front() == '{' &&
                 rendered.back() == '}',
             "ToString lost its braces");
}

}  // namespace subspace_oracle

inline void RunSubspaceFuzzInput(const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  // Each record: 1 byte dimensionality + two 8-byte masks.
  while (in.remaining() >= 17) {
    const Dim nd = 1 + in.U8() % Subspace::kMaxDims;
    subspace_oracle::CheckPair(in.U64(), in.U64(), nd);
  }
}

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_HARNESS_SUBSPACE_H_
