// CSV reader/writer harness. Two modes driven by the first input byte:
//
//   * parse mode: the remaining bytes are fed to ReadCsv verbatim. On
//     success every invariant of a Dataset must hold (rectangular,
//     finite values only — nan/inf must have been rejected) and a
//     write->read cycle must reproduce the parse bit-for-bit. On
//     failure the error string must be populated.
//   * round-trip mode: the remaining bytes are reinterpreted as raw
//     doubles (non-finite ones skipped); WriteCsv -> ReadCsv must give
//     back exactly the same values, exercising the shortest-round-trip
//     formatter across the whole double range.
#ifndef SKYLINE_FUZZ_HARNESS_CSV_H_
#define SKYLINE_FUZZ_HARNESS_CSV_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/core/dataset.h"
#include "src/data/csv.h"

namespace skyline::fuzz {

namespace csv_oracle {

/// Write->read must be the identity on any dataset the reader accepts.
inline void CheckRoundTrip(const Dataset& data) {
  std::ostringstream out;
  WriteCsv(data, out);
  std::istringstream in(out.str());
  std::string error;
  const auto back = ReadCsv(in, &error);
  FUZZ_CHECK(back.has_value(), "write->read round trip failed to parse");
  FUZZ_CHECK(back->num_dims() == data.num_dims(),
             "round trip changed the dimensionality");
  FUZZ_CHECK(back->num_points() == data.num_points(),
             "round trip changed the cardinality");
  FUZZ_CHECK(back->values() == data.values(),
             "round trip is not bit-exact");
}

}  // namespace csv_oracle

inline void RunCsvFuzzInput(const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  const bool parse_mode = (in.U8() & 1) != 0;

  if (parse_mode) {
    std::string text;
    while (!in.exhausted()) text.push_back(static_cast<char>(in.U8()));
    std::istringstream stream(text);
    std::string error;
    const auto parsed = ReadCsv(stream, &error);
    if (!parsed.has_value()) {
      FUZZ_CHECK(!error.empty(), "parse failure with an empty error string");
      return;
    }
    FUZZ_CHECK(parsed->num_dims() >= 1, "accepted a zero-dim dataset");
    FUZZ_CHECK(parsed->num_points() >= 1, "accepted an empty dataset");
    FUZZ_CHECK(parsed->values().size() ==
                   parsed->num_points() * parsed->num_dims(),
               "accepted a non-rectangular dataset");
    for (const Value v : parsed->values()) {
      FUZZ_CHECK(std::isfinite(v), "reader let a non-finite value through");
    }
    csv_oracle::CheckRoundTrip(*parsed);
    return;
  }

  const Dim nd = 1 + in.U8() % 8;
  std::vector<Value> values;
  while (in.remaining() >= 8) {
    const Value v = std::bit_cast<Value>(in.U64());
    if (std::isfinite(v)) values.push_back(v);
  }
  values.resize(values.size() - values.size() % nd);
  if (values.empty()) return;
  csv_oracle::CheckRoundTrip(Dataset(nd, std::move(values)));
}

}  // namespace skyline::fuzz

#endif  // SKYLINE_FUZZ_HARNESS_CSV_H_
