// Minimal libFuzzer-compatible driver for toolchains without
// -fsanitize=fuzzer (e.g. plain gcc). Replays every corpus file passed
// as a file or directory argument, then feeds `-runs=N` random inputs
// (default 10000) from a fixed-seed generator, so a standalone run is
// fully reproducible. Any FUZZ_CHECK / contract violation aborts the
// process, which is the failure signal in both drivers.
//
// Usage: fuzz_target [-runs=N] [-max_len=L] [corpus_file_or_dir]...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::size_t RunFile(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "[driver] cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 1;
}

std::size_t RunPath(const std::filesystem::path& path) {
  if (std::filesystem::is_directory(path)) {
    std::size_t count = 0;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());  // deterministic replay order
    for (const auto& f : files) count += RunFile(f);
    return count;
  }
  return RunFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 10000;
  std::size_t max_len = 512;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtol(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(
          std::strtol(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore other libFuzzer-style flags so CI invocations stay
      // interchangeable between the two drivers.
    } else {
      paths.push_back(arg);
    }
  }

  std::size_t corpus_runs = 0;
  for (const std::string& p : paths) corpus_runs += RunPath(p);
  std::printf("[driver] replayed %zu corpus inputs\n", corpus_runs);

  std::mt19937_64 rng(0x5eedf00dULL);
  std::vector<std::uint8_t> input;
  for (long i = 0; i < runs; ++i) {
    const std::size_t len = rng() % (max_len + 1);
    input.resize(len);
    for (std::size_t k = 0; k < len; ++k) {
      input[k] = static_cast<std::uint8_t>(rng());
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    if ((i + 1) % 5000 == 0) {
      std::printf("[driver] %ld/%ld random inputs\n", i + 1, runs);
    }
  }
  std::printf("[driver] done: %zu corpus + %ld random inputs, no findings\n",
              corpus_runs, runs);
  return 0;
}
