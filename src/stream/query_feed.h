// QueryFeed — the bridge from the streaming layer's arrival model to
// the query stack's epoch model.
//
// StreamingSkyline consumes arrivals one at a time; QueryService
// consumes batched ApplyUpdate(inserts, removes) calls, each of which
// bumps the dataset epoch and sweeps the cuboid cache. Feeding the
// service one-point batches would pay one cache sweep per arrival;
// QueryFeed buffers arrivals (and removals) and flushes them as one
// update per `batch_size` events, amortizing the sweep the same way the
// server's batcher amortizes dispatch.
//
// Id contract: the feed assigns ids in arrival order starting from the
// service's construction-time point count — exactly the ids
// ApplyUpdate will assign on flush, so Push() can return the point's
// final PointId immediately, before it is flushed. When a mirrored
// StreamingSkyline is attached (mirror constructor), every Push is also
// forwarded to it; since the stream numbers arrivals the same way, a
// point's stream external id equals its service id minus the service's
// initial point count. The mirror is insert-only — StreamingSkyline
// does not support deletions — so Remove() affects the service alone.
//
// Not thread-safe: one producer (or an external lock) drives the feed;
// the QueryService underneath stays safe for concurrent readers
// throughout, including during Flush().
#ifndef SKYLINE_STREAM_QUERY_FEED_H_
#define SKYLINE_STREAM_QUERY_FEED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/dataset.h"
#include "src/query/query_service.h"
#include "src/stream/streaming_skyline.h"

namespace skyline {

/// Tuning knobs for QueryFeed.
struct QueryFeedOptions {
  /// Buffered events (inserts + removes) that trigger an automatic
  /// flush. 1 flushes every event (one epoch per arrival); larger
  /// values trade staleness of the served dataset for fewer cache
  /// sweeps. Must be at least 1.
  std::size_t batch_size = 64;
};

/// Buffers dataset mutations and flushes them into a QueryService as
/// batched epoch updates.
class QueryFeed {
 public:
  /// Feeds `service` alone.
  explicit QueryFeed(QueryService& service, QueryFeedOptions options = {});

  /// Feeds `service` and mirrors every insert into `stream` (which must
  /// have the same dimensionality and start empty so arrival numbering
  /// lines up).
  QueryFeed(QueryService& service, StreamingSkyline& stream,
            QueryFeedOptions options = {});

  QueryFeed(const QueryFeed&) = delete;
  QueryFeed& operator=(const QueryFeed&) = delete;

  /// Buffers one arriving point (`point` must have num_dims values) and
  /// returns the PointId it will carry in the service — valid before
  /// the flush that installs it. Auto-flushes when the buffer reaches
  /// batch_size.
  PointId Push(std::span<const Value> point);

  /// Buffers the removal of `id`, which must name a point the service
  /// already knows or one still buffered (the feed flushes first in
  /// that case — ApplyUpdate cannot remove an id from its own batch).
  /// Auto-flushes when the buffer reaches batch_size.
  void Remove(PointId id);

  /// Applies every buffered event as one ApplyUpdate and returns the
  /// resulting epoch (the current one if nothing was buffered).
  std::uint64_t Flush();

  /// Buffered, not-yet-applied events.
  std::size_t pending() const {
    return pending_inserts_.size() / num_dims_ + pending_removes_.size();
  }

  /// Id the next Push() will return.
  PointId next_id() const { return next_id_; }

  /// Total events ever flushed into the service.
  std::uint64_t flushed_inserts() const { return flushed_inserts_; }
  std::uint64_t flushed_removes() const { return flushed_removes_; }

 private:
  QueryService& service_;
  StreamingSkyline* stream_;  // optional mirror, insert-only
  const QueryFeedOptions options_;
  const Dim num_dims_;

  std::vector<Value> pending_inserts_;    // row-major block
  std::vector<PointId> pending_removes_;  // already-flushed ids only
  PointId next_id_;
  PointId flushed_through_;  // ids below this are in the service
  std::uint64_t flushed_inserts_ = 0;
  std::uint64_t flushed_removes_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_STREAM_QUERY_FEED_H_
