#include "src/stream/query_feed.h"

#include <algorithm>
#include <utility>

#include "src/core/contracts.h"

namespace skyline {

QueryFeed::QueryFeed(QueryService& service, QueryFeedOptions options)
    : service_(service),
      stream_(nullptr),
      options_(options),
      num_dims_(service.data().num_dims()),
      next_id_(static_cast<PointId>(service.current_version()->data.num_points())),
      flushed_through_(next_id_) {
  SKYLINE_ASSERT(options_.batch_size >= 1,
                 "QueryFeed: batch_size must be at least 1");
}

QueryFeed::QueryFeed(QueryService& service, StreamingSkyline& stream,
                     QueryFeedOptions options)
    : QueryFeed(service, options) {
  SKYLINE_ASSERT(stream.num_dims() == num_dims_,
                 "QueryFeed: stream dimensionality must match the service");
  SKYLINE_ASSERT(stream.num_points() == 0,
                 "QueryFeed: mirrored stream must start empty so arrival "
                 "numbering lines up");
  stream_ = &stream;
}

PointId QueryFeed::Push(std::span<const Value> point) {
  SKYLINE_ASSERT(point.size() == num_dims_,
                 "QueryFeed::Push: point has wrong dimensionality");
  const PointId id = next_id_++;
  pending_inserts_.insert(pending_inserts_.end(), point.begin(), point.end());
  if (stream_ != nullptr) stream_->Insert(point);
  if (pending() >= options_.batch_size) Flush();
  return id;
}

void QueryFeed::Remove(PointId id) {
  SKYLINE_ASSERT(id < next_id_, "QueryFeed::Remove: unknown id");
  // ApplyUpdate applies inserts before removes but asserts every removed
  // id predates the batch's own inserts; a remove of a still-buffered
  // point must therefore ship in a later update than its insert.
  if (id >= flushed_through_) Flush();
  pending_removes_.push_back(id);
  if (pending() >= options_.batch_size) Flush();
}

std::uint64_t QueryFeed::Flush() {
  if (pending_inserts_.empty() && pending_removes_.empty()) {
    return service_.epoch();
  }
  flushed_inserts_ += pending_inserts_.size() / num_dims_;
  flushed_removes_ += pending_removes_.size();
  const std::uint64_t epoch =
      service_.ApplyUpdate(pending_inserts_, pending_removes_);
  flushed_through_ = next_id_;
  pending_inserts_.clear();
  pending_removes_.clear();
  return epoch;
}

}  // namespace skyline
