#include "src/stream/streaming_skyline.h"

#include <algorithm>
#include <numeric>

#include "src/core/contracts.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/core/scores.h"

namespace skyline {

StreamingSkyline::StreamingSkyline(Dim num_dims, StreamingOptions options)
    : data_(num_dims), options_(options), index_(num_dims) {
  options_.bootstrap_size = std::max<std::size_t>(1, options_.bootstrap_size);
  options_.max_reference_points =
      std::max<std::size_t>(1, options_.max_reference_points);
  effective_adapt_interval_ = options_.adapt_interval;
}

bool StreamingSkyline::Insert(std::span<const Value> point) {
  SKYLINE_ASSERT(point.size() == data_.num_dims(),
                 "Insert: point length != num_dims");
  const PointId id = next_id_++;
  ++stats_.inserts;

  bool entered;
  if (!frozen_) {
    entered = BootstrapInsert(point);
    if (entered) AppendRow(id, point, Subspace{});
    if (stats_.inserts >= options_.bootstrap_size) Freeze();
  } else {
    entered = IndexedInsert(id, point);
    MaybeRereference();
  }
  MaybeCompact();
  if constexpr (kSkylineDeepChecks) CheckConsistency(false);
  return entered;
}

bool StreamingSkyline::BootstrapInsert(std::span<const Value> point) {
  const Dim d = data_.num_dims();
  // BNL over the live rows. If a dominator exists, no eviction can have
  // preceded it: p evicting w1 (p < w1) and being dominated by w2
  // (w2 < p) would give w2 < w1, contradicting that the live rows form
  // an antichain — so breaking out on the first dominator is safe.
  for (std::size_t row = 0; row < data_.num_points(); ++row) {
    if (!live_[row]) continue;
    ++stats_.dominance_tests;
    switch (Compare(data_.row(static_cast<PointId>(row)), point.data(), d)) {
      case DominanceRelation::kFirstDominates:
        ++stats_.rejected_dominated;
        return false;
      case DominanceRelation::kSecondDominates:
        KillRow(row);
        ++stats_.evictions;
        break;
      case DominanceRelation::kEqual:
      case DominanceRelation::kIncomparable:
        break;
    }
  }
  ++skyline_size_;
  return true;
}

void StreamingSkyline::Freeze() {
  frozen_ = true;
  BuildReferenceSet();
  RebuildIndex();
  if constexpr (kSkylineDeepChecks) CheckConsistency(true);
}

void StreamingSkyline::BuildReferenceSet() {
  const Dim d = data_.num_dims();
  // Reference points: drawn from the current skyline, lowest Euclidean
  // scores first — near-origin points split the space into informative
  // dominating subspaces for later arrivals.
  std::vector<std::size_t> rows;
  for (std::size_t row = 0; row < data_.num_points(); ++row) {
    if (live_[row]) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
    const Value sa = ScorePoint(data_.row(static_cast<PointId>(a)), d,
                                ScoreFunction::kEuclidean);
    const Value sb = ScorePoint(data_.row(static_cast<PointId>(b)), d,
                                ScoreFunction::kEuclidean);
    if (sa != sb) return sa < sb;
    return ext_ids_[a] < ext_ids_[b];
  });
  if (rows.size() > options_.max_reference_points) {
    rows.resize(options_.max_reference_points);
  }
  reference_.clear();
  std::vector<PointId> src_rows;
  src_rows.reserve(rows.size());
  for (std::size_t row : rows) {
    reference_.push_back(ext_ids_[row]);
    src_rows.push_back(static_cast<PointId>(row));
  }
  // Snapshot the reference rows as an aligned block so every arrival
  // filters through the batched mask-fold kernel (exact-only, so the
  // lazy quantized plane is never built for this block).
  ref_block_.Assign(data_, src_rows);
  ref_rows_.resize(src_rows.size());
  std::iota(ref_rows_.begin(), ref_rows_.end(), PointId{0});
}

void StreamingSkyline::RebuildIndex() {
  index_ = SubsetIndex(data_.num_dims());
  for (std::size_t row = 0; row < data_.num_points(); ++row) {
    if (!live_[row]) continue;
    masks_[row] = ReferenceMask(data_.row(static_cast<PointId>(row)));
    index_.Add(ext_ids_[row], masks_[row]);
  }
}

Subspace StreamingSkyline::ReferenceMask(const Value* row_values,
                                         bool* dominated_by_reference) {
  const Dim d = data_.num_dims();
  if (dominated_by_reference != nullptr) {
    // Reference filter: a reference is a previously inserted point, so
    // if it dominates the arrival the arrival is off the skyline — no
    // index query needed. (The reference itself may have been evicted
    // since, but eviction only ever happens to dominated points, so by
    // transitivity a live dominator exists.) This is what keeps a
    // dominated-heavy adversarial stream at O(refs) per arrival instead
    // of one degenerate whole-skyline retrieval each. The batch fold's
    // elimination condition (empty D_{q<ref}, q worse somewhere) is
    // exactly "ref dominates q", and the eliminator's own mask
    // contribution is empty, so mask, exit point and charges match the
    // historical per-reference loop — including the extra charge the
    // loop's confirming Dominates call added on a hit.
    const kernels::BatchSubspaceResult fold =
        kernels::DominatingSubspaceBatch(ref_block_, ref_rows_, row_values, d);
    stats_.dominance_tests += fold.scanned;
    if (fold.dominated_by != kernels::kNoDominator) {
      ++stats_.dominance_tests;
      *dominated_by_reference = true;
    }
    return fold.mask;
  }
  // Index-rebuild fold: every reference contributes its mask, no early
  // exit, one charge per reference — the historical loop shape, kept
  // scalar so the charge stays exact even if a caller ever folds a row
  // a reference dominates.
  Subspace mask;
  for (std::size_t r = 0; r < ref_block_.num_rows(); ++r) {
    mask |= kernels::DominatingSubspace(row_values, ref_block_.row_unchecked(r),
                                        d);
    ++stats_.dominance_tests;
  }
  return mask;
}

std::size_t StreamingSkyline::RowOf(PointId id) const {
  // ext_ids_ is ascending (rows are appended in insertion order and
  // compaction is stable), so the id->row remap is a binary search.
  const auto it = std::lower_bound(ext_ids_.begin(), ext_ids_.end(), id);
  if (it == ext_ids_.end() || *it != id) return data_.num_points();
  return static_cast<std::size_t>(it - ext_ids_.begin());
}

bool StreamingSkyline::IndexedInsert(PointId id, std::span<const Value> point) {
  const Dim d = data_.num_dims();
  bool dominated_by_reference = false;
  const Subspace mask = ReferenceMask(point.data(), &dominated_by_reference);
  if (dominated_by_reference) {
    ++stats_.rejected_dominated;
    return false;
  }

  // Dominator check: by Lemma 4.3 (which holds for any fixed reference
  // set), a dominator's mask is a superset of the new point's mask. A
  // rejected point is never stored — this is what keeps an adversarial
  // dominated-heavy stream from growing the structure at all.
  scratch_.clear();
  index_.Query(mask, &scratch_);
  ++stats_.index_queries;
  stats_.index_candidates += scratch_.size();
  adapt_candidates_ += scratch_.size();
  for (PointId s : scratch_) {
    const std::size_t row = RowOf(s);
    SKYLINE_ASSERT(row < data_.num_points() && live_[row],
                   "IndexedInsert: index returned a non-resident id");
    ++stats_.dominance_tests;
    if (Dominates(data_.row(static_cast<PointId>(row)), point.data(), d)) {
      ++stats_.rejected_dominated;
      return false;
    }
  }

  // Eviction check: anything the new point dominates has a mask that is
  // a subset of the new point's mask.
  scratch_.clear();
  index_.QueryContained(mask, &scratch_);
  ++stats_.index_queries;
  stats_.index_candidates += scratch_.size();
  adapt_candidates_ += scratch_.size();
  for (PointId s : scratch_) {
    const std::size_t row = RowOf(s);
    SKYLINE_ASSERT(row < data_.num_points() && live_[row],
                   "IndexedInsert: index returned a non-resident id");
    ++stats_.dominance_tests;
    if (Dominates(point.data(), data_.row(static_cast<PointId>(row)), d)) {
      index_.Remove(s, masks_[row]);
      KillRow(row);
      ++stats_.evictions;
    }
  }

  AppendRow(id, point, mask);
  index_.Add(id, mask);
  ++skyline_size_;
  return true;
}

void StreamingSkyline::AppendRow(PointId id, std::span<const Value> point,
                                 Subspace mask) {
  data_.Append(point);
  ext_ids_.push_back(id);
  masks_.push_back(mask);
  live_.push_back(true);
  stats_.peak_resident_rows =
      std::max<std::uint64_t>(stats_.peak_resident_rows, data_.num_points());
}

void StreamingSkyline::KillRow(std::size_t row) {
  live_[row] = false;
  ++dead_rows_;
  --skyline_size_;
}

void StreamingSkyline::MaybeCompact() {
  if (options_.compact_high_water == 0) return;
  const std::size_t resident = data_.num_points();
  if (resident >= options_.compact_high_water && dead_rows_ * 2 >= resident) {
    CompactNow();
  }
}

void StreamingSkyline::CompactNow() {
  if (dead_rows_ == 0) return;
  const Dim d = data_.num_dims();
  std::vector<Value> values;
  values.reserve((data_.num_points() - dead_rows_) * d);
  std::vector<PointId> ext_ids;
  std::vector<Subspace> masks;
  ext_ids.reserve(data_.num_points() - dead_rows_);
  masks.reserve(data_.num_points() - dead_rows_);
  for (std::size_t row = 0; row < data_.num_points(); ++row) {
    if (!live_[row]) continue;
    const Value* row_values = data_.row(static_cast<PointId>(row));
    values.insert(values.end(), row_values, row_values + d);
    ext_ids.push_back(ext_ids_[row]);
    masks.push_back(masks_[row]);
  }
  data_ = Dataset(d, std::move(values));
  ext_ids_ = std::move(ext_ids);
  masks_ = std::move(masks);
  live_.assign(ext_ids_.size(), true);
  dead_rows_ = 0;
  ++stats_.compactions;
  if constexpr (kSkylineDeepChecks) CheckConsistency(true);
}

void StreamingSkyline::MaybeRereference() {
  if (options_.adapt_interval == 0) return;
  ++adapt_inserts_;
  if (adapt_inserts_ < effective_adapt_interval_) return;
  const double mean_candidates = static_cast<double>(adapt_candidates_) /
                                 static_cast<double>(adapt_inserts_);
  adapt_inserts_ = 0;
  adapt_candidates_ = 0;
  // With a skyline no larger than the reference budget the index cannot
  // degenerate (re-freezing would make the reference set the skyline
  // itself), so only treat larger skylines as drift.
  const double ratio =
      skyline_size_ == 0
          ? 0.0
          : mean_candidates / static_cast<double>(skyline_size_);
  const bool degraded = skyline_size_ > options_.max_reference_points &&
                        ratio > options_.adapt_candidate_fraction;
  if (!degraded) {
    // Healthy window: leave backoff and rearm at the base cadence.
    in_backoff_ = false;
    just_refroze_ = false;
    effective_adapt_interval_ = options_.adapt_interval;
    return;
  }
  // Some streams are inherently index-hostile (e.g. arrivals the whole
  // reference set is incomparable with): re-freezing cannot help them,
  // and doing it every window just burns O(skyline) rebuilds. If the
  // previous refreeze did not visibly improve the ratio, back off
  // exponentially instead of thrashing; a healthy window rearms.
  if (just_refroze_ && ratio > 0.75 * last_trigger_ratio_) {
    in_backoff_ = true;
    just_refroze_ = false;
  }
  if (in_backoff_) {
    effective_adapt_interval_ = std::min(effective_adapt_interval_ * 2,
                                         options_.adapt_interval * 64);
    return;
  }
  last_trigger_ratio_ = ratio;
  just_refroze_ = true;
  ++stats_.refreezes;
  BuildReferenceSet();
  RebuildIndex();
  if constexpr (kSkylineDeepChecks) CheckConsistency(true);
}

bool StreamingSkyline::IsSkyline(PointId id) const {
  const std::size_t row = RowOf(id);
  return row < data_.num_points() && live_[row];
}

std::span<const Value> StreamingSkyline::point(PointId id) const {
  const std::size_t row = RowOf(id);
  SKYLINE_ASSERT(row < data_.num_points(),
                 "StreamingSkyline::point: id is not resident");
  return data_.point(static_cast<PointId>(row));
}

std::vector<PointId> StreamingSkyline::Skyline() const {
  std::vector<PointId> out;
  out.reserve(skyline_size_);
  for (std::size_t row = 0; row < data_.num_points(); ++row) {
    if (live_[row]) out.push_back(ext_ids_[row]);
  }
  return out;
}

void StreamingSkyline::CheckConsistency(bool verify_antichain) const {
  // The per-insert tier stays O(1); the O(n)/O(n^2) sweeps run only at
  // freeze/re-freeze/compaction (verify_antichain).
  const std::size_t resident = data_.num_points();
  SKYLINE_DCHECK(ext_ids_.size() == resident && masks_.size() == resident &&
                     live_.size() == resident,
                 "streaming: row-parallel arrays out of sync");
  SKYLINE_DCHECK(resident == 0 || ext_ids_.back() < next_id_,
                 "streaming: resident id from the future");
  if (options_.compact_high_water != 0) {
    SKYLINE_DCHECK(
        resident <= std::max(options_.compact_high_water,
                             2 * (skyline_size_ == 0 ? 1 : skyline_size_)),
        "streaming: resident rows exceed the memory-bound invariant");
  }
  if (verify_antichain) {
    std::size_t live_count = 0;
    std::size_t live_dead = 0;
    for (std::size_t row = 0; row < resident; ++row) {
      live_[row] ? ++live_count : ++live_dead;
    }
    SKYLINE_DCHECK(live_count == skyline_size_,
                   "streaming: skyline_size_ accounting out of sync");
    SKYLINE_DCHECK(live_dead == dead_rows_,
                   "streaming: dead_rows_ accounting out of sync");
    if (frozen_) {
      SKYLINE_DCHECK(index_.num_points() == skyline_size_,
                     "streaming: index entries != live skyline points");
    }
    // The live rows must form an antichain (no live point dominates
    // another) — the core streaming postcondition.
    const Dim d = data_.num_dims();
    for (std::size_t a = 0; a < resident; ++a) {
      if (!live_[a]) continue;
      for (std::size_t b = a + 1; b < resident; ++b) {
        if (!live_[b]) continue;
        SKYLINE_DCHECK(
            !Dominates(data_.row(static_cast<PointId>(a)),
                       data_.row(static_cast<PointId>(b)), d) &&
                !Dominates(data_.row(static_cast<PointId>(b)),
                           data_.row(static_cast<PointId>(a)), d),
            "streaming: live rows are not an antichain");
      }
    }
  }
}

}  // namespace skyline
