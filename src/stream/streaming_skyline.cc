#include "src/stream/streaming_skyline.h"

#include <algorithm>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

StreamingSkyline::StreamingSkyline(Dim num_dims, StreamingOptions options)
    : data_(num_dims), options_(options), index_(num_dims) {
  options_.bootstrap_size = std::max<std::size_t>(1, options_.bootstrap_size);
  options_.max_reference_points =
      std::max<std::size_t>(1, options_.max_reference_points);
}

bool StreamingSkyline::Insert(std::span<const Value> point) {
  data_.Append(point);
  const PointId id = static_cast<PointId>(data_.num_points() - 1);
  in_skyline_.push_back(false);
  masks_.emplace_back();
  ++stats_.inserts;

  bool entered;
  if (!frozen_) {
    entered = BootstrapInsert(id);
    if (data_.num_points() >= options_.bootstrap_size) Freeze();
  } else {
    entered = IndexedInsert(id);
  }
  return entered;
}

bool StreamingSkyline::BootstrapInsert(PointId id) {
  const Dim d = data_.num_dims();
  const Value* row = data_.row(id);
  std::size_t keep = 0;
  bool dominated = false;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const PointId w = window_[i];
    ++stats_.dominance_tests;
    switch (Compare(data_.row(w), row, d)) {
      case DominanceRelation::kFirstDominates:
        dominated = true;
        break;
      case DominanceRelation::kSecondDominates:
        in_skyline_[w] = false;
        --skyline_size_;
        ++stats_.evictions;
        continue;  // evict w from the window
      case DominanceRelation::kEqual:
      case DominanceRelation::kIncomparable:
        break;
    }
    if (dominated) {
      // No eviction can have preceded a dominator (transitivity), so the
      // kept prefix is intact; the suffix is untouched.
      for (std::size_t j = i; j < window_.size(); ++j) {
        window_[keep++] = window_[j];
      }
      break;
    }
    window_[keep++] = w;
  }
  window_.resize(keep);
  if (dominated) {
    ++stats_.rejected_dominated;
    return false;
  }
  window_.push_back(id);
  in_skyline_[id] = true;
  ++skyline_size_;
  return true;
}

void StreamingSkyline::Freeze() {
  frozen_ = true;
  // Reference points: drawn from the bootstrap skyline, lowest Euclidean
  // scores first — near-origin points split the space into informative
  // dominating subspaces for later arrivals.
  std::vector<PointId> candidates = window_;
  std::sort(candidates.begin(), candidates.end(), [&](PointId a, PointId b) {
    const Value sa =
        ScorePoint(data_.row(a), data_.num_dims(), ScoreFunction::kEuclidean);
    const Value sb =
        ScorePoint(data_.row(b), data_.num_dims(), ScoreFunction::kEuclidean);
    if (sa != sb) return sa < sb;
    return a < b;
  });
  if (candidates.size() > options_.max_reference_points) {
    candidates.resize(options_.max_reference_points);
  }
  reference_ = std::move(candidates);

  // Index every current skyline point under its mask w.r.t. the frozen
  // reference set.
  for (PointId id : window_) {
    masks_[id] = ReferenceMask(data_.row(id));
    index_.Add(id, masks_[id]);
  }
  window_.clear();
}

Subspace StreamingSkyline::ReferenceMask(const Value* row) {
  const Dim d = data_.num_dims();
  Subspace mask;
  for (PointId ref : reference_) {
    mask |= DominatingSubspace(row, data_.row(ref), d);
    ++stats_.dominance_tests;
  }
  return mask;
}

bool StreamingSkyline::IndexedInsert(PointId id) {
  const Dim d = data_.num_dims();
  const Value* row = data_.row(id);
  const Subspace mask = ReferenceMask(row);
  masks_[id] = mask;

  // Dominator check: by Lemma 4.3 (which holds for any fixed reference
  // set), a dominator's mask is a superset of the new point's mask.
  scratch_.clear();
  index_.Query(mask, &scratch_);
  ++stats_.index_queries;
  stats_.index_candidates += scratch_.size();
  for (PointId s : scratch_) {
    ++stats_.dominance_tests;
    if (Dominates(data_.row(s), row, d)) {
      ++stats_.rejected_dominated;
      return false;
    }
  }

  // Eviction check: anything the new point dominates has a mask that is
  // a subset of the new point's mask.
  scratch_.clear();
  index_.QueryContained(mask, &scratch_);
  ++stats_.index_queries;
  stats_.index_candidates += scratch_.size();
  for (PointId s : scratch_) {
    ++stats_.dominance_tests;
    if (Dominates(row, data_.row(s), d)) {
      index_.Remove(s, masks_[s]);
      in_skyline_[s] = false;
      --skyline_size_;
      ++stats_.evictions;
    }
  }

  index_.Add(id, mask);
  in_skyline_[id] = true;
  ++skyline_size_;
  return true;
}

std::vector<PointId> StreamingSkyline::Skyline() const {
  std::vector<PointId> out;
  out.reserve(skyline_size_);
  for (PointId id = 0; id < in_skyline_.size(); ++id) {
    if (in_skyline_[id]) out.push_back(id);
  }
  return out;
}

}  // namespace skyline
