// Streaming skyline maintenance — the paper's future-work item (3):
// "adapting the proposed method to updating data such as data streams".
//
// The key observation making the subset approach streamable is that
// Lemma 4.3 never uses the skyline-ness of the reference set: for ANY
// fixed set R of reference points, q1 < q2 implies
// D_{q1<R} ⊇ D_{q2<R}. So a StreamingSkyline freezes a reference set
// from the first arrivals and then maintains the skyline under inserts
// with two subset queries per point:
//
//   * dominator candidates  = stored masks ⊇ mask(q)   (Query)
//   * eviction candidates   = stored masks ⊆ mask(q)   (QueryContained)
//
// Everything outside those candidate sets is provably incomparable with
// the incoming point and is never touched.
//
// Memory model (the part that makes the structure safe to run forever):
//
//   * Rejected (dominated-on-arrival) points are never retained — they
//     cost one mask computation and one candidate probe, nothing more.
//   * Evicted skyline points leave a dead row behind; when resident
//     rows reach `compact_high_water` and at least half of them are
//     dead, the row store is compacted down to the live skyline. Caller
//     -visible ids are insertion-order external ids, stable across
//     compactions (a sorted id->row remap translates them internally).
//     Invariant: resident_rows() <= max(compact_high_water,
//     2 * skyline_size()) after every insert.
//   * The SubsetIndex reclaims emptied tree paths on Remove, so evicted
//     points do not leak index nodes either.
//   * When the observed pruning power of the frozen reference set
//     degrades (mean index candidates per insert creeping toward the
//     skyline size — the drift that makes every query degenerate to a
//     root-level scan), the structure re-freezes against the current
//     skyline and rebuilds all masks (`adapt_interval`,
//     `adapt_candidate_fraction`).
#ifndef SKYLINE_STREAM_STREAMING_SKYLINE_H_
#define SKYLINE_STREAM_STREAMING_SKYLINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/aligned_dataset.h"
#include "src/core/dataset.h"
#include "src/core/stats.h"
#include "src/core/subspace.h"
#include "src/subset/subset_index.h"

namespace skyline {

/// Tuning knobs for StreamingSkyline.
struct StreamingOptions {
  /// Number of points to buffer before freezing the reference set. The
  /// reference points are drawn from the bootstrap skyline; larger
  /// values give finer masks (stronger pruning) at a cost of one O(d)
  /// scan per reference per insert.
  std::size_t bootstrap_size = 64;

  /// Maximum number of frozen reference points.
  std::size_t max_reference_points = 16;

  /// High-water mark for resident rows: once the row store holds this
  /// many rows and at least half are dead (evicted), it is compacted
  /// down to the live skyline. 0 disables compaction (the pre-bounded
  /// behavior: every surviving insert is retained forever).
  std::size_t compact_high_water = 4096;

  /// Post-freeze adaptation period, in inserts. Every `adapt_interval`
  /// inserts the mean candidate count of the window is compared against
  /// the skyline size; on degradation the reference set is re-frozen
  /// from the current skyline. Refreezes that fail to improve the ratio
  /// trigger exponential backoff (up to 64x this interval) instead of
  /// thrashing. 0 disables adaptive re-referencing.
  std::size_t adapt_interval = 1024;

  /// Degradation threshold: re-freeze when the window's mean index
  /// candidates per insert exceeds this fraction of the current skyline
  /// size (candidates ~ skyline size means the index prunes nothing).
  /// On stationary streams the ratio settles well below this (~0.6 for
  /// 6-d uniform); full reference drift pushes it to ~1.0 and beyond.
  double adapt_candidate_fraction = 0.85;
};

/// Maintains the skyline of an append-only stream of points, in bounded
/// memory.
///
/// Points are addressed by insertion order (PointId, the "external id");
/// external ids remain valid across internal storage compactions. The
/// structure answers "is p on the current skyline" and enumerates the
/// current skyline at any time; deletions from the stream are not
/// supported (a point can only leave the skyline by being dominated by
/// a later insert).
class StreamingSkyline {
 public:
  explicit StreamingSkyline(Dim num_dims, StreamingOptions options = {});

  /// Inserts a point (copied unless rejected). Returns true iff the
  /// point is on the skyline *at insertion time* (it may be evicted
  /// later).
  bool Insert(std::span<const Value> point);

  /// Current skyline ids, in insertion order.
  std::vector<PointId> Skyline() const;

  /// True iff `id` is on the current skyline.
  bool IsSkyline(PointId id) const;

  /// Values of the resident point with external id `id`. Valid for any
  /// id on the current skyline (rejected points are never stored and
  /// evicted rows are eventually compacted away — asserts on
  /// non-resident ids). The span is invalidated by the next Insert or
  /// CompactNow.
  std::span<const Value> point(PointId id) const;

  /// Compacts the row store down to the live skyline immediately,
  /// regardless of the high-water mark. External ids stay valid.
  void CompactNow();

  std::size_t skyline_size() const { return skyline_size_; }

  /// Total points ever inserted (including rejected ones); also the
  /// next external id to be assigned.
  std::size_t num_points() const { return static_cast<std::size_t>(next_id_); }

  /// Rows currently resident in memory (live skyline points plus dead
  /// rows awaiting compaction). Bounded by
  /// max(compact_high_water, 2 * skyline_size()) when compaction is on.
  std::size_t resident_rows() const { return data_.num_points(); }

  Dim num_dims() const { return data_.num_dims(); }

  /// The retained rows (live skyline points plus not-yet-compacted dead
  /// rows), in insertion order. NOT every point ever inserted: rejected
  /// points are never stored and evicted rows are reclaimed.
  const Dataset& data() const { return data_; }

  /// External ids of the frozen reference points (empty while
  /// bootstrapping). The referenced *values* are retained internally
  /// even after the points themselves are evicted or compacted away.
  const std::vector<PointId>& reference_points() const { return reference_; }

  const StreamingStats& stats() const { return stats_; }

 private:
  /// Mask of the point at `row_values` w.r.t. the frozen reference set.
  /// When `dominated_by_reference` is non-null the scan also checks the
  /// reference filter (a reference dominating the point proves it off
  /// the skyline) and may return early with the flag set.
  Subspace ReferenceMask(const Value* row_values,
                         bool* dominated_by_reference = nullptr);

  /// Row index of external id `id`, or resident_rows() if not resident.
  std::size_t RowOf(PointId id) const;

  /// Appends a retained row for external id `id`.
  void AppendRow(PointId id, std::span<const Value> point, Subspace mask);

  /// Marks row dead (bootstrap or indexed eviction bookkeeping).
  void KillRow(std::size_t row);

  /// Picks reference points from the current live skyline and snapshots
  /// their values.
  void BuildReferenceSet();

  /// Recomputes every live mask w.r.t. the current reference set and
  /// rebuilds the index from scratch (dropping any dead structure).
  void RebuildIndex();

  /// Switches from the bootstrap window to the indexed regime.
  void Freeze();

  /// Compacts when the high-water trigger fires.
  void MaybeCompact();

  /// Closes an adaptation window; re-freezes on degradation.
  void MaybeRereference();

  /// Insert into the bootstrap BNL window (the live rows).
  bool BootstrapInsert(std::span<const Value> point);

  /// Insert via the subset index (post-freeze).
  bool IndexedInsert(PointId id, std::span<const Value> point);

  /// Deep-check (SKYLINE_CHECKS): accounting, id-remap ordering, index
  /// consistency and — when `verify_antichain` — pairwise
  /// incomparability of the live rows.
  void CheckConsistency(bool verify_antichain) const;

  Dataset data_;  // retained rows only, insertion order
  StreamingOptions options_;
  StreamingStats stats_;

  // Parallel to the rows of data_:
  std::vector<PointId> ext_ids_;  // external id per row, ascending
  std::vector<Subspace> masks_;   // stored mask (meaningful post-freeze)
  std::vector<bool> live_;        // on the current skyline?

  std::size_t dead_rows_ = 0;
  std::size_t skyline_size_ = 0;
  PointId next_id_ = 0;

  bool frozen_ = false;
  std::vector<PointId> reference_;  // external ids, for reporting
  // Snapshot of the reference rows as an aligned block, so the arrival
  // filter runs through the dispatched batched kernels. ref_rows_ is
  // the identity id list 0..n-1 the batch calls scan (built once per
  // freeze, reused by every insert).
  AlignedDataset ref_block_;
  std::vector<PointId> ref_rows_;
  SubsetIndex index_;  // keyed by external id
  std::vector<PointId> scratch_;    // candidate buffer

  // Current adaptation window. The effective interval starts at
  // options_.adapt_interval and doubles (capped at 64x) while refreezes
  // fail to improve the candidate ratio — some streams are inherently
  // index-hostile and re-freezing every window would thrash.
  std::uint64_t adapt_inserts_ = 0;
  std::uint64_t adapt_candidates_ = 0;
  std::size_t effective_adapt_interval_ = 0;
  double last_trigger_ratio_ = 0.0;
  bool just_refroze_ = false;
  bool in_backoff_ = false;
};

}  // namespace skyline

#endif  // SKYLINE_STREAM_STREAMING_SKYLINE_H_
