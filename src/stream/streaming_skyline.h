// Streaming skyline maintenance — the paper's future-work item (3):
// "adapting the proposed method to updating data such as data streams".
//
// The key observation making the subset approach streamable is that
// Lemma 4.3 never uses the skyline-ness of the reference set: for ANY
// fixed set R of reference points, q1 < q2 implies
// D_{q1<R} ⊇ D_{q2<R}. So a StreamingSkyline freezes a reference set
// from the first arrivals and then maintains the skyline under inserts
// with two subset queries per point:
//
//   * dominator candidates  = stored masks ⊇ mask(q)   (Query)
//   * eviction candidates   = stored masks ⊆ mask(q)   (QueryContained)
//
// Everything outside those candidate sets is provably incomparable with
// the incoming point and is never touched.
#ifndef SKYLINE_STREAM_STREAMING_SKYLINE_H_
#define SKYLINE_STREAM_STREAMING_SKYLINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/subset/subset_index.h"

namespace skyline {

/// Tuning knobs for StreamingSkyline.
struct StreamingOptions {
  /// Number of points to buffer before freezing the reference set. The
  /// reference points are drawn from the bootstrap skyline; larger
  /// values give finer masks (stronger pruning) at a cost of one O(d)
  /// scan per reference per insert.
  std::size_t bootstrap_size = 64;

  /// Maximum number of frozen reference points.
  std::size_t max_reference_points = 16;
};

/// Counters reported by StreamingSkyline.
struct StreamingStats {
  std::uint64_t inserts = 0;
  std::uint64_t rejected_dominated = 0;  // arrived already dominated
  std::uint64_t evictions = 0;           // skyline points displaced
  std::uint64_t dominance_tests = 0;     // O(d) pairwise scans
  std::uint64_t index_queries = 0;
  std::uint64_t index_candidates = 0;
};

/// Maintains the skyline of an append-only stream of points.
///
/// All inserted points are retained in an internal Dataset and addressed
/// by insertion order (PointId). The structure answers "is p on the
/// current skyline" and enumerates the current skyline at any time;
/// deletions from the stream are not supported (a point can only leave
/// the skyline by being dominated by a later insert).
class StreamingSkyline {
 public:
  explicit StreamingSkyline(Dim num_dims, StreamingOptions options = {});

  /// Inserts a point (copied). Returns true iff the point is on the
  /// skyline *at insertion time* (it may be evicted later).
  bool Insert(std::span<const Value> point);

  /// Current skyline ids, in insertion order.
  std::vector<PointId> Skyline() const;

  /// True iff `id` is on the current skyline.
  bool IsSkyline(PointId id) const {
    return id < in_skyline_.size() && in_skyline_[id];
  }

  std::size_t skyline_size() const { return skyline_size_; }
  std::size_t num_points() const { return data_.num_points(); }
  Dim num_dims() const { return data_.num_dims(); }

  /// All points inserted so far (skyline and dominated alike).
  const Dataset& data() const { return data_; }

  /// The frozen reference points (empty while bootstrapping).
  const std::vector<PointId>& reference_points() const { return reference_; }

  const StreamingStats& stats() const { return stats_; }

 private:
  /// Mask of `row` with respect to the frozen reference set.
  Subspace ReferenceMask(const Value* row);

  /// Switches from the bootstrap window to the indexed regime.
  void Freeze();

  /// Insert into the bootstrap BNL window.
  bool BootstrapInsert(PointId id);

  /// Insert via the subset index (post-freeze).
  bool IndexedInsert(PointId id);

  Dataset data_;
  StreamingOptions options_;
  StreamingStats stats_;

  bool frozen_ = false;
  std::vector<PointId> window_;  // bootstrap skyline (pre-freeze)

  std::vector<PointId> reference_;
  SubsetIndex index_;
  std::vector<Subspace> masks_;     // by PointId; meaningful post-freeze
  std::vector<bool> in_skyline_;    // by PointId
  std::size_t skyline_size_ = 0;
  std::vector<PointId> scratch_;    // candidate buffer
};

}  // namespace skyline

#endif  // SKYLINE_STREAM_STREAMING_SKYLINE_H_
