#include "src/parallel/parallel_skyline.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

namespace {

/// SFS scan over one partition, counting tests locally.
std::vector<PointId> LocalSkyline(const Dataset& data,
                                  std::vector<PointId> ids,
                                  const std::vector<Value>& scores,
                                  std::uint64_t* tests) {
  const Dim d = data.num_dims();
  std::sort(ids.begin(), ids.end(), [&](PointId a, PointId b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  std::vector<PointId> result;
  std::uint64_t local_tests = 0;
  for (PointId p : ids) {
    bool dominated = false;
    for (PointId s : result) {
      ++local_tests;
      if (Dominates(data.row(s), data.row(p), d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  *tests += local_tests;
  return result;
}

}  // namespace

std::vector<PointId> ParallelSfs::Compute(const Dataset& data,
                                          SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  unsigned threads = threads_ > 0 ? threads_
                                  : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, (n + 63) / 64));  // keep chunks sane

  const std::vector<Value> scores = ComputeScores(data, options_.sort);

  // Phase 1: local skylines of contiguous partitions, in parallel.
  std::vector<std::vector<PointId>> local(threads);
  std::vector<std::uint64_t> tests(threads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t lo = n * t / threads;
        const std::size_t hi = n * (t + 1) / threads;
        std::vector<PointId> ids(hi - lo);
        std::iota(ids.begin(), ids.end(), static_cast<PointId>(lo));
        local[t] = LocalSkyline(data, std::move(ids), scores, &tests[t]);
      });
    }
    for (auto& w : workers) w.join();
  }

  // Phase 2: cross-filter. A survivor of partition t is a global skyline
  // point iff no local skyline point of another partition dominates it
  // (a dominator elsewhere is itself weakly dominated by a local skyline
  // point of its partition, which then also dominates the survivor).
  std::vector<std::vector<PointId>> surviving(threads);
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::uint64_t local_tests = 0;
        for (PointId p : local[t]) {
          bool dominated = false;
          for (unsigned o = 0; o < threads && !dominated; ++o) {
            if (o == t) continue;
            for (PointId q : local[o]) {
              ++local_tests;
              if (Dominates(data.row(q), data.row(p), d)) {
                dominated = true;
                break;
              }
            }
          }
          if (!dominated) surviving[t].push_back(p);
        }
        tests[t] += local_tests;
      });
    }
    for (auto& w : workers) w.join();
  }

  std::vector<PointId> result;
  std::uint64_t total_tests = 0;
  for (unsigned t = 0; t < threads; ++t) {
    result.insert(result.end(), surviving[t].begin(), surviving[t].end());
    total_tests += tests[t];
  }
  if (stats != nullptr) {
    stats->dominance_tests = total_tests;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
