#include "src/parallel/parallel_skyline.h"

#include <algorithm>
#include <numeric>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/parallel/work_partitioner.h"

namespace skyline {

namespace {

/// SFS scan over one partition, counting tests locally.
std::vector<PointId> LocalSkyline(const Dataset& data,
                                  std::vector<PointId> ids,
                                  const std::vector<Value>& scores,
                                  std::uint64_t* tests) {
  const Dim d = data.num_dims();
  std::sort(ids.begin(), ids.end(), [&](PointId a, PointId b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  std::vector<PointId> result;
  std::uint64_t local_tests = 0;
  for (PointId p : ids) {
    bool dominated = false;
    for (PointId s : result) {
      ++local_tests;
      if (Dominates(data.row(s), data.row(p), d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  *tests += local_tests;
  return result;
}

}  // namespace

std::vector<PointId> ParallelSfs::Compute(const Dataset& data,
                                          SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  const std::size_t num_parts =
      partitions_ > 0 ? partitions_ : DeterministicPartitionCount(n);
  const unsigned workers = EffectiveWorkers(threads_, num_parts);

  const std::vector<Value> scores = ComputeScores(data, options_.sort);

  // Phase 1: local skylines of contiguous partitions, in parallel.
  std::vector<std::vector<PointId>> local(num_parts);
  StatsAccumulator local_stats(num_parts);
  ParallelForEachUnit(num_parts, workers, [&](std::size_t t) {
    const std::size_t lo = n * t / num_parts;
    const std::size_t hi = n * (t + 1) / num_parts;
    std::vector<PointId> ids(hi - lo);
    std::iota(ids.begin(), ids.end(), static_cast<PointId>(lo));
    local[t] = LocalSkyline(data, std::move(ids), scores,
                            &local_stats.slot(t).dominance_tests);
  });

  // Phase 2: cross-filter. A survivor of partition t is a global skyline
  // point iff no local skyline point of another partition dominates it
  // (a dominator elsewhere is itself weakly dominated by a local skyline
  // point of its partition, which then also dominates the survivor).
  std::vector<std::vector<PointId>> surviving(num_parts);
  StatsAccumulator cross_stats(num_parts);
  ParallelForEachUnit(num_parts, workers, [&](std::size_t t) {
    std::uint64_t local_tests = 0;
    for (PointId p : local[t]) {
      bool dominated = false;
      for (std::size_t o = 0; o < num_parts && !dominated; ++o) {
        if (o == t) continue;
        for (PointId q : local[o]) {
          ++local_tests;
          if (Dominates(data.row(q), data.row(p), d)) {
            dominated = true;
            break;
          }
        }
      }
      if (!dominated) surviving[t].push_back(p);
    }
    cross_stats.slot(t).dominance_tests = local_tests;
  });

  std::vector<PointId> result;
  for (std::size_t t = 0; t < num_parts; ++t) {
    result.insert(result.end(), surviving[t].begin(), surviving[t].end());
  }
  if (stats != nullptr) {
    SkylineStats total = local_stats.Combine();
    total.Accumulate(cross_stats.Combine());
    total.skyline_size = result.size();
    *stats = total;
  }
  return result;
}

}  // namespace skyline
