// Parallel subset-boosted skyline engine.
//
// Parallelizes the paper's subset approach with a partition +
// cross-filter scheme in which *both* sides keep the reduced-dominance-
// test guarantee of Lemma 5.1:
//
//  1. The score-sorted input is dealt round-robin into P deterministic
//     partitions; each partition runs the Merge subspace-union pass
//     (Algorithm 1) and a boosted SFS scan against a thread-local
//     SubsetIndex, producing its local skyline (pivots + accepted
//     points with masks relative to the partition's pivots).
//  2. The local masks are re-based onto the union of all partitions'
//     pivots: for a local skyline point p, D_{p<S_glob} is the union of
//     its local mask and D_{p<v} over every foreign pivot v. A foreign
//     pivot that weakly dominates p eliminates it on the spot. Lemma
//     5.1 needs a reference set shared by the stored and the querying
//     point — re-basing to the global pivot union is what makes one
//     shared index sound.
//  3. The re-based per-partition indexes are spliced into one global
//     SubsetIndex (SubsetIndex::MergeFrom), and every surviving local
//     skyline point is cross-filtered against it in parallel: a query
//     with the point's global mask returns exactly the stored points
//     whose mask is a superset — by Lemma 5.1 the only possible
//     dominators — instead of all other partitions' local skylines.
//
// Completeness of the cross-filter is the standard transitivity
// argument, with one twist for the eliminated points: if z dominates p,
// the local skyline of z's partition holds a weak dominator s of z (so
// s dominates p). If s itself was eliminated in step 2, its eliminating
// pivot dominates p too, and elimination chains strictly decrease the
// monotone Merge score, so they terminate at a stored point — which the
// index query then returns. See docs/algorithms.md.
//
// Results and every SkylineStats counter are deterministic for any
// thread count: the partition count depends only on the input size, all
// partition-local work is scheduling-independent, and counters are
// folded in partition order (StatsAccumulator).
#ifndef SKYLINE_PARALLEL_PARALLEL_SUBSET_H_
#define SKYLINE_PARALLEL_PARALLEL_SUBSET_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// Multi-threaded subset-boosted skyline (parallel Merge pass + shared
/// subset-index cross-filter).
class ParallelSubsetSfs final : public SkylineAlgorithm {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency();
  /// `partitions` = 0 picks DeterministicPartitionCount(n). Overriding
  /// `partitions` changes the work decomposition (and thus the
  /// counters); overriding `threads` never does.
  explicit ParallelSubsetSfs(unsigned threads = 0,
                             const AlgorithmOptions& options = {},
                             std::size_t partitions = 0)
      : threads_(threads), partitions_(partitions), options_(options) {}

  std::string_view name() const override { return "parallel-subset-sfs"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  unsigned threads_;
  std::size_t partitions_;
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_PARALLEL_PARALLEL_SUBSET_H_
