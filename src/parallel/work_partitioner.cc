#include "src/parallel/work_partitioner.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace skyline {

std::size_t DeterministicPartitionCount(std::size_t n) {
  const std::size_t by_size = (n + 255) / 256;
  return std::clamp<std::size_t>(by_size, 1, 32);
}

unsigned EffectiveWorkers(unsigned requested, std::size_t num_units) {
  unsigned workers =
      requested > 0 ? requested
                    : std::max(1u, std::thread::hardware_concurrency());
  if (num_units < workers) workers = static_cast<unsigned>(num_units);
  return std::max(1u, workers);
}

void ParallelForEachUnit(std::size_t num_units, unsigned workers,
                         const std::function<void(std::size_t)>& fn) {
  if (num_units == 0) return;
  workers = EffectiveWorkers(workers, num_units);
  if (workers == 1) {
    for (std::size_t unit = 0; unit < num_units; ++unit) fn(unit);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (std::size_t unit = cursor.fetch_add(1, std::memory_order_relaxed);
           unit < num_units;
           unit = cursor.fetch_add(1, std::memory_order_relaxed)) {
        fn(unit);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

std::vector<std::vector<PointId>> DealRoundRobin(std::span<const PointId> ids,
                                                 std::size_t num_partitions) {
  std::vector<std::vector<PointId>> buckets(num_partitions);
  if (num_partitions == 0) return buckets;
  for (std::vector<PointId>& bucket : buckets) {
    bucket.reserve(ids.size() / num_partitions + 1);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    buckets[i % num_partitions].push_back(ids[i]);
  }
  return buckets;
}

}  // namespace skyline
