#include "src/parallel/work_partitioner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>

#include "src/core/contracts.h"
#include "src/core/sync.h"

namespace skyline {

std::size_t DeterministicPartitionCount(std::size_t n) {
  const std::size_t by_size = (n + 255) / 256;
  const std::size_t count = std::clamp<std::size_t>(by_size, 1, 32);
  SKYLINE_ASSERT(count >= 1 && count <= 32,
                 "partition count must stay in [1, 32]");
  return count;
}

unsigned EffectiveWorkers(unsigned requested, std::size_t num_units) {
  unsigned workers =
      requested > 0 ? requested
                    : std::max(1u, std::thread::hardware_concurrency());
  if (num_units < workers) workers = static_cast<unsigned>(num_units);
  workers = std::max(1u, workers);
  SKYLINE_ASSERT(num_units == 0 || workers <= num_units,
                 "never spawn more workers than units");
  return workers;
}

void ParallelForEachUnit(std::size_t num_units, unsigned workers,
                         const std::function<void(std::size_t)>& fn) {
  if (num_units == 0) return;
  workers = EffectiveWorkers(workers, num_units);

  // Determinism contract: every unit in [0, num_units) runs exactly once,
  // regardless of worker count or scheduling. The shared-cursor claim
  // makes this true by construction; the deep check re-verifies it so a
  // future scheduling change cannot silently drop or repeat a unit.
#ifdef SKYLINE_CHECKS
  std::vector<std::atomic<std::uint32_t>> runs(num_units);
  const auto run_unit = [&](std::size_t unit) {
    runs[unit].fetch_add(1, std::memory_order_relaxed);
    fn(unit);
  };
#else
  const auto& run_unit = fn;
#endif

  if (workers == 1) {
    for (std::size_t unit = 0; unit < num_units; ++unit) run_unit(unit);
  } else {
    std::atomic<std::size_t> cursor{0};
    // A unit that throws would std::terminate inside std::thread; to
    // give the parallel engines the same exception semantics as the
    // inline path, workers park the first exception here (Mutex — the
    // slow path runs at most once per worker) and stop claiming units.
    Mutex error_mu;
    std::exception_ptr first_error;  // guarded by error_mu until join
    std::atomic<bool> aborted{false};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      threads.emplace_back([&] {
        for (std::size_t unit = cursor.fetch_add(1, std::memory_order_relaxed);
             unit < num_units && !aborted.load(std::memory_order_relaxed);
             unit = cursor.fetch_add(1, std::memory_order_relaxed)) {
          try {
            run_unit(unit);
          } catch (...) {
            MutexLock lock(error_mu);
            if (first_error == nullptr) {
              first_error = std::current_exception();
            }
            aborted.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    // The join above happens-after every worker's store, so the read
    // needs no lock — but holding it keeps the discipline checkable.
    MutexLock lock(error_mu);
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }

#ifdef SKYLINE_CHECKS
  for (std::size_t unit = 0; unit < num_units; ++unit) {
    SKYLINE_DCHECK(runs[unit].load(std::memory_order_relaxed) == 1,
                   "ParallelForEachUnit: unit not executed exactly once");
  }
#endif
}

std::vector<std::vector<PointId>> DealRoundRobin(std::span<const PointId> ids,
                                                 std::size_t num_partitions) {
  std::vector<std::vector<PointId>> buckets(num_partitions);
  if (num_partitions == 0) return buckets;
  for (std::vector<PointId>& bucket : buckets) {
    bucket.reserve(ids.size() / num_partitions + 1);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    buckets[i % num_partitions].push_back(ids[i]);
  }

  // Deal coverage: bucket t holds exactly ids[t], ids[t+P], ... — sizes
  // balanced within one, nothing dropped or duplicated.
  if constexpr (kSkylineDeepChecks) {
    std::size_t total = 0;
    for (std::size_t t = 0; t < num_partitions; ++t) {
      const std::size_t expect =
          ids.size() / num_partitions + (t < ids.size() % num_partitions);
      SKYLINE_DCHECK(buckets[t].size() == expect,
                     "DealRoundRobin: bucket size not balanced within one");
      for (std::size_t k = 0; k < buckets[t].size(); ++k) {
        SKYLINE_DCHECK(buckets[t][k] == ids[t + k * num_partitions],
                       "DealRoundRobin: bucket breaks the round-robin order");
      }
      total += buckets[t].size();
    }
    SKYLINE_DCHECK(total == ids.size(),
                   "DealRoundRobin: buckets do not partition the input");
  }
  return buckets;
}

}  // namespace skyline
