// Deterministic work decomposition for the parallel skyline engines.
//
// The engines separate *what* the work units are from *who* executes
// them: the number of partitions is a pure function of the input size,
// and threads claim partitions dynamically from a shared cursor. Every
// partition-local computation (and its SkylineStats slot) is therefore
// identical for any thread count — scheduling decides only the wall
// clock, never the result or the counters.
#ifndef SKYLINE_PARALLEL_WORK_PARTITIONER_H_
#define SKYLINE_PARALLEL_WORK_PARTITIONER_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace skyline {

/// Number of work partitions for an n-point input: one per 256 points,
/// capped at 32, at least 1. Depends on n only — never on the thread
/// count — so partition-local results are reproducible on any machine.
std::size_t DeterministicPartitionCount(std::size_t n);

/// Worker threads to actually spawn: `requested` (0 = hardware
/// concurrency), clamped to [1, num_units] — more workers than units
/// would only idle.
unsigned EffectiveWorkers(unsigned requested, std::size_t num_units);

/// Runs fn(unit) once for every unit in [0, num_units), distributing
/// units over `workers` threads (clamped via EffectiveWorkers; 1 worker
/// runs inline). Units are claimed from a shared atomic cursor, so
/// uneven units load-balance. Calls for distinct units may run
/// concurrently — fn must only touch per-unit state — and every call
/// happens-before the return (the threads are joined).
///
/// If fn throws, the first exception (in claim order across workers) is
/// captured under a Mutex, the remaining workers stop claiming units,
/// and the exception is rethrown on the calling thread after the join —
/// the same propagation the 1-worker inline path has always had, so a
/// throwing unit can no longer std::terminate the process.
void ParallelForEachUnit(std::size_t num_units, unsigned workers,
                         const std::function<void(std::size_t)>& fn);

/// Deals `ids` round-robin into `num_partitions` buckets: bucket t gets
/// ids[t], ids[t + P], ids[t + 2P], ... Each bucket preserves the input
/// order, so dealing a score-sorted id list yields score-sorted buckets
/// with statistically identical score distributions — the load-balanced
/// partitioning the parallel subset engine feeds to the per-partition
/// Merge passes.
std::vector<std::vector<PointId>> DealRoundRobin(std::span<const PointId> ids,
                                                 std::size_t num_partitions);

}  // namespace skyline

#endif  // SKYLINE_PARALLEL_WORK_PARTITIONER_H_
