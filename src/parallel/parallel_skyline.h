// Shared-memory parallel skyline (in the spirit of Chester et al.,
// ICDE 2015 — the source of the paper's real datasets): partition the
// input across worker threads, compute local skylines independently,
// then cross-filter the local skylines in parallel. Dominance is
// transitive, so filtering against the other partitions' *local
// skylines* (rather than their full partitions) is complete.
//
// The work decomposition (partition count) is a pure function of the
// input size, and threads claim partitions from a shared cursor
// (src/parallel/work_partitioner.h) — so both the result and every
// SkylineStats counter are identical for any thread count.
#ifndef SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_
#define SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// Multi-threaded partition + cross-filter skyline. Local skylines use
/// the SFS scan. Deterministic: the result and the dominance-test count
/// do not depend on thread scheduling or thread count.
class ParallelSfs final : public SkylineAlgorithm {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency();
  /// `partitions` = 0 picks DeterministicPartitionCount(n). Overriding
  /// `partitions` changes the work decomposition (and thus the
  /// counters); overriding `threads` never does.
  explicit ParallelSfs(unsigned threads = 0,
                       const AlgorithmOptions& options = {},
                       std::size_t partitions = 0)
      : threads_(threads), partitions_(partitions), options_(options) {}

  std::string_view name() const override { return "parallel-sfs"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  unsigned threads_;
  std::size_t partitions_;
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_
