// Shared-memory parallel skyline (in the spirit of Chester et al.,
// ICDE 2015 — the source of the paper's real datasets): partition the
// input across worker threads, compute local skylines independently,
// then cross-filter the local skylines in parallel. Dominance is
// transitive, so filtering against the other partitions' *local
// skylines* (rather than their full partitions) is complete.
#ifndef SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_
#define SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// Multi-threaded partition + cross-filter skyline. Local skylines use
/// the SFS scan. Deterministic: the result and the dominance-test count
/// do not depend on thread scheduling.
class ParallelSfs final : public SkylineAlgorithm {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency().
  explicit ParallelSfs(unsigned threads = 0,
                       const AlgorithmOptions& options = {})
      : threads_(threads), options_(options) {}

  std::string_view name() const override { return "parallel-sfs"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  unsigned threads_;
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_PARALLEL_PARALLEL_SKYLINE_H_
