#include "src/parallel/parallel_subset.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/core/aligned_dataset.h"
#include "src/core/contracts.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/core/scores.h"
#include "src/parallel/work_partitioner.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

namespace skyline {

namespace {

/// Local skyline of one partition, as produced by the Merge pass plus a
/// boosted SFS scan restricted to the partition.
struct LocalResult {
  /// The partition's pivots (skyline points of the partition by
  /// construction) — together across partitions they form the global
  /// reference set S_glob.
  std::vector<PointId> pivots;

  /// Non-pivot local skyline points, in acceptance (monotone score)
  /// order, with their masks relative to this partition's pivots.
  std::vector<PointId> accepted;
  std::vector<Subspace> accepted_masks;
};

/// A partition's local skyline after re-basing onto the global pivot
/// union: members not eliminated by a foreign pivot, with full
/// D_{p<S_glob} masks.
struct RebasedResult {
  std::vector<PointId> members;
  std::vector<Subspace> masks;
};

}  // namespace

// Concurrency discipline (checked statically, see docs/static_analysis.md):
// this engine is deliberately lock-free — no field of it is mutable
// shared state, so there is nothing for src/core/sync.h to guard. Every
// phase writes only into the slot of the unit it executes (`locals[t]`,
// `rebased[t]`, `slices[t]`, `surviving[t]`, and the matching
// StatsAccumulator slot), reads of cross-partition data touch only
// structures frozen before the phase started (`aligned`, `partitions`,
// `locals` in phase 2, `global_index` in phase 3), and the join inside
// ParallelForEachUnit sequences the phases. Exceptions thrown by a unit
// propagate to this thread (ParallelForEachUnit rethrows after joining),
// so a throwing partition cannot leak threads or half-built results.
std::vector<PointId> ParallelSubsetSfs::Compute(const Dataset& data,
                                                SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  // One shared, padded, cache-line-aligned copy of the rows: every
  // cross-partition probe below runs the vectorized kernels over it.
  // Read-only after construction, so all workers share it freely —
  // which is why the (otherwise lazy) quantized prefilter plane must
  // be built up front, before the workers start probing.
  AlignedDataset aligned(data);
  aligned.EnsureQuantized();

  const std::size_t num_parts =
      partitions_ > 0 ? partitions_ : DeterministicPartitionCount(n);
  const unsigned workers = EffectiveWorkers(threads_, num_parts);
  const int sigma = EffectiveSigma(options_.sigma, d);

  // Global monotone order (score, sum, id) — the same order SfsSubset
  // scans in. Dealing it round-robin keeps every partition sorted and
  // statistically identical, so the per-partition Merge passes see
  // comparable inputs and the local scans need no re-sort.
  const std::vector<Value> scores = ComputeScores(data, options_.sort);
  const std::vector<Value> sums =
      options_.sort == ScoreFunction::kSum
          ? std::vector<Value>{}
          : ComputeScores(data, ScoreFunction::kSum);
  std::vector<PointId> sorted_ids(n);
  std::iota(sorted_ids.begin(), sorted_ids.end(), PointId{0});
  std::sort(sorted_ids.begin(), sorted_ids.end(), [&](PointId a, PointId b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    if (!sums.empty() && sums[a] != sums[b]) return sums[a] < sums[b];
    return a < b;
  });
  const std::vector<std::vector<PointId>> partitions =
      DealRoundRobin(sorted_ids, num_parts);

  // ---- Phase 1: parallel Merge pass + local boosted SFS. ----
  // Pivots are deliberately *not* registered in the local index: the
  // Merge pass already compared every survivor against every pivot, so
  // re-testing them (as the sequential SfsSubset faithfully does) adds
  // nothing here.
  std::vector<LocalResult> locals(num_parts);
  StatsAccumulator local_stats(num_parts);
  ParallelForEachUnit(num_parts, workers, [&](std::size_t t) {
    SkylineStats s;
    MergeResult merge = MergeSubspacesOver(data, partitions[t], sigma);
    s.dominance_tests += merge.dominance_tests;
    s.pivot_count = merge.pivots.size();
    s.merge_pruned = merge.pruned;

    SubsetIndex index(d);
    LocalResult& local = locals[t];
    std::vector<PointId> candidates;
    // merge.remaining preserves the partition's (score, sum, id) order,
    // so the scan is a valid SFS without re-sorting.
    for (std::size_t i = 0; i < merge.remaining.size(); ++i) {
      const PointId q = merge.remaining[i];
      const Subspace mask = merge.subspaces[i];
      candidates.clear();
      index.Query(mask, &candidates, &s.index_nodes_visited);
      ++s.index_queries;
      s.index_candidates += candidates.size();
      const kernels::BatchProbeResult probe =
          kernels::DominatesAny(aligned, candidates, aligned.row(q), d);
      s.dominance_tests += probe.scanned;
      const bool dominated = probe.first != kernels::kNoDominator;
      if (!dominated) {
        local.accepted.push_back(q);
        local.accepted_masks.push_back(mask);
        index.Add(q, mask);
      }
    }
    local.pivots = std::move(merge.pivots);
    local_stats.slot(t) = s;
  });

  // Single partition: the local skyline IS the skyline — no foreign
  // pivots to re-base against, nothing to cross-filter.
  if (num_parts == 1) {
    std::vector<PointId> result = std::move(locals[0].pivots);
    result.insert(result.end(), locals[0].accepted.begin(),
                  locals[0].accepted.end());
    if (stats != nullptr) {
      SkylineStats total = local_stats.Combine();
      total.skyline_size = result.size();
      *stats = total;
    }
    return result;
  }

  // ---- Phase 2: re-base masks onto the global pivot union S_glob and
  // build the per-partition slices of the shared index. ----
  // Stored masks must be the *full* D_{p<S_glob} for Lemma 5.1 to hold
  // against any querying point, so pivots also collect contributions
  // from their own partition's sibling pivots (which, being mutually
  // non-dominating, can only add dimensions, never eliminate).
  std::vector<RebasedResult> rebased(num_parts);
  std::vector<SubsetIndex> slices;
  slices.reserve(num_parts);
  for (std::size_t t = 0; t < num_parts; ++t) slices.emplace_back(d);
  StatsAccumulator rebase_stats(num_parts);
  ParallelForEachUnit(num_parts, workers, [&](std::size_t t) {
    SkylineStats s;
    RebasedResult& out = rebased[t];
    const LocalResult& local = locals[t];
    out.members.reserve(local.pivots.size() + local.accepted.size());
    out.masks.reserve(out.members.capacity());

    auto rebase = [&](PointId p, Subspace base, bool include_own_pivots) {
      const Value* row = aligned.row(p);
      Subspace gmask = base;
      for (std::size_t o = 0; o < num_parts; ++o) {
        if (o == t && !include_own_pivots) continue;
        // One batched fold per foreign pivot block; `skip` reproduces
        // the v == p guard without charging a test for it.
        const kernels::BatchSubspaceResult fold =
            kernels::DominatingSubspaceBatch(aligned, locals[o].pivots, row,
                                             d, /*skip=*/p);
        s.dominance_tests += fold.scanned;
        if (fold.dominated_by != kernels::kNoDominator) {
          return;  // a pivot dominates p
        }
        gmask |= fold.mask;
      }
      out.members.push_back(p);
      out.masks.push_back(gmask);
      slices[t].Add(p, gmask);
    };

    for (PointId p : local.pivots) {
      rebase(p, Subspace{}, /*include_own_pivots=*/true);
    }
    for (std::size_t i = 0; i < local.accepted.size(); ++i) {
      // The local mask already holds this partition's pivot
      // contributions — only foreign pivots are left to fold in.
      rebase(local.accepted[i], local.accepted_masks[i],
             /*include_own_pivots=*/false);
    }
    rebase_stats.slot(t) = s;
  });

  // Splice the slices into one shared index (cheap: tree merge over the
  // surviving skyline candidates only). Partition order keeps the tree
  // — and thus every later query's candidate order — deterministic.
  SubsetIndex global_index(d);
  for (std::size_t t = 0; t < num_parts; ++t) {
    global_index.MergeFrom(std::move(slices[t]));
  }

  // ---- Phase 3: parallel cross-filter against the shared index. ----
  // Query is const and touches no mutable state, so all workers read
  // the shared index concurrently without synchronization.
  std::vector<std::vector<PointId>> surviving(num_parts);
  StatsAccumulator cross_stats(num_parts);
  ParallelForEachUnit(num_parts, workers, [&](std::size_t t) {
    SkylineStats s;
    std::vector<PointId> candidates;
    const RebasedResult& mine = rebased[t];
    for (std::size_t i = 0; i < mine.members.size(); ++i) {
      const PointId p = mine.members[i];
      candidates.clear();
      global_index.Query(mine.masks[i], &candidates, &s.index_nodes_visited);
      ++s.index_queries;
      s.index_candidates += candidates.size();
      const kernels::BatchProbeResult probe = kernels::DominatesAny(
          aligned, candidates, aligned.row(p), d, /*skip=*/p);
      s.dominance_tests += probe.scanned;
      if (probe.first == kernels::kNoDominator) surviving[t].push_back(p);
    }
    cross_stats.slot(t) = s;
  });

  std::vector<PointId> result;
  for (std::size_t t = 0; t < num_parts; ++t) {
    result.insert(result.end(), surviving[t].begin(), surviving[t].end());
  }

  // Deep postcondition: skyline members are pairwise non-dominating.
  // Quadratic, so bounded — large inputs are covered by the differential
  // tests; this catches cross-filter regressions on the small cases the
  // fuzzers and unit tests feed through.
  if constexpr (kSkylineDeepChecks) {
    if (result.size() <= 512) {
      for (std::size_t i = 0; i < result.size(); ++i) {
        for (std::size_t j = 0; j < result.size(); ++j) {
          SKYLINE_DCHECK(
              i == j ||
                  !Dominates(data.row(result[i]), data.row(result[j]), d),
              "parallel-subset: result contains a dominated point");
        }
      }
    }
  }

  if (stats != nullptr) {
    SkylineStats total = local_stats.Combine();
    total.Accumulate(rebase_stats.Combine());
    total.Accumulate(cross_stats.Combine());
    total.skyline_size = result.size();
    *stats = total;
  }
  return result;
}

}  // namespace skyline
