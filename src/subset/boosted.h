// The boosted algorithms of the paper's evaluation: SFS-Subset,
// SaLSa-Subset and SDI-Subset. Each runs the Merge pass (Algorithm 1) to
// obtain the initial skyline (pivots) and a maximum dominating subspace
// per surviving point, then executes its base algorithm with skyline
// storage and retrieval delegated to the SubsetIndex: a testing point is
// compared only with the skyline points whose subspace is a superset of
// its own (Lemma 5.1), instead of the whole current skyline.
#ifndef SKYLINE_SUBSET_BOOSTED_H_
#define SKYLINE_SUBSET_BOOSTED_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// SFS boosted by the subset approach.
class SfsSubset final : public SkylineAlgorithm {
 public:
  explicit SfsSubset(const AlgorithmOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "sfs-subset"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

/// SaLSa boosted by the subset approach (minC sort + stop point are
/// preserved; only skyline storage/retrieval changes).
class SalsaSubset final : public SkylineAlgorithm {
 public:
  explicit SalsaSubset(const AlgorithmOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "salsa-subset"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

/// SDI boosted by the subset approach (per-dimension traversal, tie-block
/// local tests and the stop-point rule are preserved; candidate skyline
/// points come from the SubsetIndex).
class SdiSubset final : public SkylineAlgorithm {
 public:
  explicit SdiSubset(const AlgorithmOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "sdi-subset"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_SUBSET_BOOSTED_H_
