#include <algorithm>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/subset/boosted.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

namespace skyline {

std::vector<PointId> SfsSubset::Compute(const Dataset& data,
                                        SkylineStats* stats) const {
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (data.num_points() == 0) return {};

  // Phase 1: subspace union. The pivots are the initial skyline.
  const int sigma = EffectiveSigma(options_.sigma, d);
  MergeResult merge = MergeSubspaces(data, sigma);

  SubsetIndex index(d);
  for (PointId pv : merge.pivots) index.AddAlwaysCandidate(pv);
  std::vector<PointId> result = merge.pivots;

  // Phase 2: SFS over the surviving points, in monotone score order.
  const std::vector<Value> scores = ComputeScores(data, options_.sort);
  const std::vector<Value> sums =
      options_.sort == ScoreFunction::kSum
          ? std::vector<Value>{}
          : ComputeScores(data, ScoreFunction::kSum);
  std::vector<std::size_t> order(merge.remaining.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PointId pa = merge.remaining[a], pb = merge.remaining[b];
    if (scores[pa] != scores[pb]) return scores[pa] < scores[pb];
    if (!sums.empty() && sums[pa] != sums[pb]) return sums[pa] < sums[pb];
    return pa < pb;
  });

  DominanceTester tester(data);
  SkylineStats local;
  std::vector<PointId> candidates;
  for (std::size_t i : order) {
    const PointId q = merge.remaining[i];
    const Subspace mask = merge.subspaces[i];
    // Lemma 5.1: only skyline points whose subspace is a superset of
    // D_{q<S} can dominate q — fetch exactly those.
    candidates.clear();
    index.Query(mask, &candidates, &local.index_nodes_visited);
    ++local.index_queries;
    local.index_candidates += candidates.size();
    // One batched kernel pass over the candidate block (charges one test
    // per candidate scanned, early exit at the first dominator).
    const bool dominated = tester.DominatesAny(candidates, q);
    if (!dominated) {
      result.push_back(q);
      index.Add(q, mask);
    }
  }

  if (stats != nullptr) {
    *stats = local;
    stats->dominance_tests = merge.dominance_tests + tester.tests();
    stats->pivot_count = merge.pivots.size();
    stats->merge_pruned = merge.pruned;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
