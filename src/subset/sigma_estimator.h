// Sample-based stability-threshold selection — the paper's future-work
// item (2): "developing a cost model to improve the stability threshold
// in order to find the best number of pivot points". Section 4 already
// hints at the mechanism: "for large datasets, the stability threshold
// can be tested from a random sample of the dataset"; this module
// implements exactly that cost model.
#ifndef SKYLINE_SUBSET_SIGMA_ESTIMATOR_H_
#define SKYLINE_SUBSET_SIGMA_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"

namespace skyline {

/// Result of the sample-based sigma search.
struct SigmaEstimate {
  /// Recommended stability threshold (argmin of the estimated cost;
  /// ties resolved toward the smaller sigma, which has the cheaper
  /// Merge pass).
  int sigma = 2;

  /// Estimated cost — the mean dominance tests of a boosted run on the
  /// sample — per candidate sigma. cost_per_sigma[k] corresponds to
  /// sigma = k + 2.
  std::vector<double> cost_per_sigma;

  /// Number of sample points actually used.
  std::size_t sample_size = 0;
};

/// Estimates the best sigma for `data` by running the boosted SFS on a
/// uniform random sample of at most `sample_size` points for every
/// sigma in [2, d] and picking the cheapest. Deterministic given `seed`.
///
/// The estimate costs O(|sample|^2) in the worst case and is meant for
/// large datasets where a bad sigma costs far more than the sampling
/// (the paper's Section 6.1 protocol). For d = 1 the return value is 1.
SigmaEstimate EstimateSigma(const Dataset& data, std::size_t sample_size,
                            std::uint64_t seed);

}  // namespace skyline

#endif  // SKYLINE_SUBSET_SIGMA_ESTIMATOR_H_
