#include "src/subset/subset_index.h"

#include <algorithm>
#include <array>

#include "src/core/contracts.h"

namespace skyline {

void SubsetIndex::Add(PointId id, Subspace subspace) {
  SKYLINE_ASSERT(subspace.IsSubsetOf(Subspace::Full(num_dims_)),
                 "Add: subspace outside the index's full space");
  Node* node = &root_;
  // Walk the dimensions of the reversed subspace in increasing order,
  // creating nodes on demand (the get(i) of Algorithm 2).
  subspace.Complement(num_dims_).ForEachDim([&](Dim dim) {
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == node->children.end() || it->first != dim) {
      it = node->children.emplace(it, dim, std::make_unique<Node>());
      ++num_nodes_;
    }
    node = it->second.get();
  });
  node->points.push_back(id);
  ++num_points_;
#ifdef SKYLINE_CHECKS
  shadow_.emplace(id, subspace.bits());
  ValidateAccounting();
#endif
}

void SubsetIndex::AddAlwaysCandidate(PointId id) {
  root_.points.push_back(id);
  ++num_points_;
#ifdef SKYLINE_CHECKS
  // Root storage is equivalent to Add(id, Full): the entry qualifies for
  // every query subspace.
  shadow_.emplace(id, Subspace::Full(num_dims_).bits());
  ValidateAccounting();
#endif
}

void SubsetIndex::QueryNode(const Node& node, Subspace reversed,
                            std::vector<PointId>* out,
                            std::uint64_t* nodes_visited) {
  // Algorithm 4: collect this node's points, then descend into every
  // child whose dimension belongs to the reversed query subspace. Path
  // keys strictly increase, so each qualifying stored path is reached
  // exactly once.
  if (nodes_visited != nullptr) ++*nodes_visited;
  out->insert(out->end(), node.points.begin(), node.points.end());
  for (const auto& [dim, child] : node.children) {
    if (reversed.Contains(dim)) {
      QueryNode(*child, reversed, out, nodes_visited);
    }
  }
}

void SubsetIndex::Query(Subspace subspace, std::vector<PointId>* out,
                        std::uint64_t* nodes_visited) const {
  const std::size_t before = out->size();
  QueryNode(root_, subspace.Complement(num_dims_), out, nodes_visited);
#ifdef SKYLINE_CHECKS
  // Lemma 5.1 postcondition: the query returns exactly the entries whose
  // stored subspace is a superset of `subspace` — soundness per returned
  // id, completeness by count against the flat shadow oracle.
  std::size_t expected = 0;
  for (const auto& [sid, bits] : shadow_) {
    (void)sid;
    if (subspace.IsSubsetOf(Subspace(bits))) ++expected;
  }
  SKYLINE_DCHECK(out->size() - before == expected,
                 "Query: result count differs from the linear superset scan");
  for (std::size_t i = before; i < out->size(); ++i) {
    const auto range = shadow_.equal_range((*out)[i]);
    bool qualifies = false;
    for (auto it = range.first; it != range.second; ++it) {
      if (subspace.IsSubsetOf(Subspace(it->second))) qualifies = true;
    }
    SKYLINE_DCHECK(qualifies,
                   "Query: returned an id with no superset-keyed entry");
  }
#else
  (void)before;
#endif
}

void SubsetIndex::CollectSubtree(const Node& node, std::vector<PointId>* out,
                                 std::uint64_t* nodes_visited) {
  if (nodes_visited != nullptr) ++*nodes_visited;
  out->insert(out->end(), node.points.begin(), node.points.end());
  for (const auto& [dim, child] : node.children) {
    (void)dim;
    CollectSubtree(*child, out, nodes_visited);
  }
}

void SubsetIndex::QuerySupersetPaths(const Node& node, Subspace required,
                                     std::vector<PointId>* out,
                                     std::uint64_t* nodes_visited) {
  // Stored subspace ⊆ query  <=>  stored (reversed) path ⊇ reversed
  // query. Paths carry strictly increasing keys, so once the smallest
  // still-required dimension is behind a child's key range, that branch
  // can never satisfy the requirement.
  if (required.empty()) {
    CollectSubtree(node, out, nodes_visited);
    return;
  }
  if (nodes_visited != nullptr) ++*nodes_visited;
  const Dim next_required = required.Lowest();
  for (const auto& [dim, child] : node.children) {
    if (dim > next_required) break;  // children sorted; deeper keys only grow
    if (dim < next_required) {
      QuerySupersetPaths(*child, required, out, nodes_visited);
    } else {
      Subspace rest = required;
      rest.Remove(dim);
      QuerySupersetPaths(*child, rest, out, nodes_visited);
    }
  }
}

void SubsetIndex::QueryContained(Subspace subspace, std::vector<PointId>* out,
                                 std::uint64_t* nodes_visited) const {
  const std::size_t before = out->size();
  QuerySupersetPaths(root_, subspace.Complement(num_dims_), out,
                     nodes_visited);
#ifdef SKYLINE_CHECKS
  // Lemma 4.3 postcondition, mirrored: exactly the subset-keyed entries.
  std::size_t expected = 0;
  for (const auto& [sid, bits] : shadow_) {
    (void)sid;
    if (Subspace(bits).IsSubsetOf(subspace)) ++expected;
  }
  SKYLINE_DCHECK(
      out->size() - before == expected,
      "QueryContained: result count differs from the linear subset scan");
  for (std::size_t i = before; i < out->size(); ++i) {
    const auto range = shadow_.equal_range((*out)[i]);
    bool qualifies = false;
    for (auto it = range.first; it != range.second; ++it) {
      if (Subspace(it->second).IsSubsetOf(subspace)) qualifies = true;
    }
    SKYLINE_DCHECK(qualifies,
                   "QueryContained: returned an id with no subset-keyed entry");
  }
#else
  (void)before;
#endif
}

std::size_t SubsetIndex::CountSubtreeNodes(const Node& node) {
  std::size_t count = 1;
  for (const auto& [dim, child] : node.children) {
    (void)dim;
    count += CountSubtreeNodes(*child);
  }
  return count;
}

void SubsetIndex::MergeNodes(Node* dst, Node&& src, std::size_t* new_nodes) {
  dst->points.insert(dst->points.end(), src.points.begin(), src.points.end());
  for (auto& [dim, child] : src.children) {
    auto it = std::lower_bound(
        dst->children.begin(), dst->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == dst->children.end() || it->first != dim) {
      // No matching path on this side: adopt the whole subtree.
      *new_nodes += CountSubtreeNodes(*child);
      dst->children.emplace(it, dim, std::move(child));
    } else {
      MergeNodes(it->second.get(), std::move(*child), new_nodes);
    }
  }
}

void SubsetIndex::MergeFrom(SubsetIndex&& other) {
  SKYLINE_ASSERT(other.num_dims_ == num_dims_,
                 "MergeFrom: dimensionality mismatch");
  std::size_t new_nodes = 0;
  const std::size_t moved_points = other.num_points_;
  MergeNodes(&root_, std::move(other.root_), &new_nodes);
  num_nodes_ += new_nodes;
  num_points_ += moved_points;
  other.root_ = Node{};
  other.num_nodes_ = 0;
  other.num_points_ = 0;
#ifdef SKYLINE_CHECKS
  shadow_.insert(other.shadow_.begin(), other.shadow_.end());
  other.shadow_.clear();
  ValidateAccounting();
#endif
}

bool SubsetIndex::Remove(PointId id, Subspace subspace) {
  // Walk down the reversed path, recording every step so the emptied
  // tail can be reclaimed on the way back up.
  struct Step {
    Node* parent;
    std::size_t child;
  };
  std::array<Step, Subspace::kMaxDims> path;
  std::size_t depth = 0;
  Node* node = &root_;
  bool found_path = true;
  subspace.Complement(num_dims_).ForEachDim([&](Dim dim) {
    if (!found_path) return;
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == node->children.end() || it->first != dim) {
      found_path = false;
      return;
    }
    path[depth++] = {node,
                     static_cast<std::size_t>(it - node->children.begin())};
    node = it->second.get();
  });
  if (!found_path) return false;
  auto it = std::find(node->points.begin(), node->points.end(), id);
  if (it == node->points.end()) return false;
  *it = node->points.back();
  node->points.pop_back();
  --num_points_;
  // Reclaim the now-dead tail: a node with no points and no children can
  // never satisfy a query, so num_nodes() keeps meaning live nodes.
  while (depth > 0 && node->points.empty() && node->children.empty()) {
    const Step& step = path[--depth];
    step.parent->children.erase(step.parent->children.begin() +
                                static_cast<std::ptrdiff_t>(step.child));
    --num_nodes_;
    node = step.parent;
  }
#ifdef SKYLINE_CHECKS
  const auto range = shadow_.equal_range(id);
  for (auto sit = range.first; sit != range.second; ++sit) {
    if (sit->second == subspace.bits()) {
      shadow_.erase(sit);
      break;
    }
  }
  ValidateAccounting();
#endif
  return true;
}

void SubsetIndex::CompactNode(Node* node, std::size_t* pruned) {
  for (auto& [dim, child] : node->children) {
    (void)dim;
    CompactNode(child.get(), pruned);
  }
  std::erase_if(node->children, [pruned](const auto& entry) {
    if (entry.second->points.empty() && entry.second->children.empty()) {
      ++*pruned;
      return true;
    }
    return false;
  });
}

std::size_t SubsetIndex::Compact() {
  std::size_t pruned = 0;
  CompactNode(&root_, &pruned);
  num_nodes_ -= pruned;
#ifdef SKYLINE_CHECKS
  ValidateAccounting();
#endif
  return pruned;
}

#ifdef SKYLINE_CHECKS
void SubsetIndex::ValidateAccounting() const {
  struct Walker {
    Dim num_dims;
    std::size_t nodes = 0;
    std::size_t points = 0;
    void Walk(const Node& node, int min_key) {
      points += node.points.size();
      int last = min_key;
      for (const auto& [dim, child] : node.children) {
        SKYLINE_DCHECK(child != nullptr, "index: null child node");
        SKYLINE_DCHECK(dim < num_dims, "index: child key outside full space");
        SKYLINE_DCHECK(static_cast<int>(dim) > last,
                       "index: child keys not strictly increasing");
        // Reclamation invariant: an empty childless node can never
        // satisfy a query, so Add/Remove/MergeFrom/Compact must never
        // leave one behind (num_nodes() counts live nodes only).
        SKYLINE_DCHECK(!child->children.empty() || !child->points.empty(),
                       "index: dead (empty leaf) node not reclaimed");
        last = static_cast<int>(dim);
        ++nodes;
        Walk(*child, static_cast<int>(dim));
      }
    }
  };
  Walker w{num_dims_};
  w.Walk(root_, -1);
  SKYLINE_DCHECK(w.nodes == num_nodes_,
                 "index: num_nodes_ accounting out of sync with the tree");
  SKYLINE_DCHECK(w.points == num_points_,
                 "index: num_points_ accounting out of sync with the tree");
  SKYLINE_DCHECK(shadow_.size() == num_points_,
                 "index: shadow oracle out of sync with num_points_");
}
#endif

}  // namespace skyline
