#include "src/subset/subset_index.h"

#include <algorithm>
#include <cassert>

namespace skyline {

void SubsetIndex::Add(PointId id, Subspace subspace) {
  assert(subspace.IsSubsetOf(Subspace::Full(num_dims_)));
  Node* node = &root_;
  // Walk the dimensions of the reversed subspace in increasing order,
  // creating nodes on demand (the get(i) of Algorithm 2).
  subspace.Complement(num_dims_).ForEachDim([&](Dim dim) {
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == node->children.end() || it->first != dim) {
      it = node->children.emplace(it, dim, std::make_unique<Node>());
      ++num_nodes_;
    }
    node = it->second.get();
  });
  node->points.push_back(id);
  ++num_points_;
}

void SubsetIndex::QueryNode(const Node& node, Subspace reversed,
                            std::vector<PointId>* out,
                            std::uint64_t* nodes_visited) {
  // Algorithm 4: collect this node's points, then descend into every
  // child whose dimension belongs to the reversed query subspace. Path
  // keys strictly increase, so each qualifying stored path is reached
  // exactly once.
  if (nodes_visited != nullptr) ++*nodes_visited;
  out->insert(out->end(), node.points.begin(), node.points.end());
  for (const auto& [dim, child] : node.children) {
    if (reversed.Contains(dim)) {
      QueryNode(*child, reversed, out, nodes_visited);
    }
  }
}

void SubsetIndex::Query(Subspace subspace, std::vector<PointId>* out,
                        std::uint64_t* nodes_visited) const {
  QueryNode(root_, subspace.Complement(num_dims_), out, nodes_visited);
}

void SubsetIndex::CollectSubtree(const Node& node, std::vector<PointId>* out,
                                 std::uint64_t* nodes_visited) {
  if (nodes_visited != nullptr) ++*nodes_visited;
  out->insert(out->end(), node.points.begin(), node.points.end());
  for (const auto& [dim, child] : node.children) {
    (void)dim;
    CollectSubtree(*child, out, nodes_visited);
  }
}

void SubsetIndex::QuerySupersetPaths(const Node& node, Subspace required,
                                     std::vector<PointId>* out,
                                     std::uint64_t* nodes_visited) {
  // Stored subspace ⊆ query  <=>  stored (reversed) path ⊇ reversed
  // query. Paths carry strictly increasing keys, so once the smallest
  // still-required dimension is behind a child's key range, that branch
  // can never satisfy the requirement.
  if (required.empty()) {
    CollectSubtree(node, out, nodes_visited);
    return;
  }
  if (nodes_visited != nullptr) ++*nodes_visited;
  const Dim next_required = required.Lowest();
  for (const auto& [dim, child] : node.children) {
    if (dim > next_required) break;  // children sorted; deeper keys only grow
    if (dim < next_required) {
      QuerySupersetPaths(*child, required, out, nodes_visited);
    } else {
      Subspace rest = required;
      rest.Remove(dim);
      QuerySupersetPaths(*child, rest, out, nodes_visited);
    }
  }
}

void SubsetIndex::QueryContained(Subspace subspace, std::vector<PointId>* out,
                                 std::uint64_t* nodes_visited) const {
  QuerySupersetPaths(root_, subspace.Complement(num_dims_), out,
                     nodes_visited);
}

std::size_t SubsetIndex::CountSubtreeNodes(const Node& node) {
  std::size_t count = 1;
  for (const auto& [dim, child] : node.children) {
    (void)dim;
    count += CountSubtreeNodes(*child);
  }
  return count;
}

void SubsetIndex::MergeNodes(Node* dst, Node&& src, std::size_t* new_nodes) {
  dst->points.insert(dst->points.end(), src.points.begin(), src.points.end());
  for (auto& [dim, child] : src.children) {
    auto it = std::lower_bound(
        dst->children.begin(), dst->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == dst->children.end() || it->first != dim) {
      // No matching path on this side: adopt the whole subtree.
      *new_nodes += CountSubtreeNodes(*child);
      dst->children.emplace(it, dim, std::move(child));
    } else {
      MergeNodes(it->second.get(), std::move(*child), new_nodes);
    }
  }
}

void SubsetIndex::MergeFrom(SubsetIndex&& other) {
  assert(other.num_dims_ == num_dims_);
  std::size_t new_nodes = 0;
  const std::size_t moved_points = other.num_points_;
  MergeNodes(&root_, std::move(other.root_), &new_nodes);
  num_nodes_ += new_nodes;
  num_points_ += moved_points;
  other.root_ = Node{};
  other.num_nodes_ = 0;
  other.num_points_ = 0;
}

bool SubsetIndex::Remove(PointId id, Subspace subspace) {
  Node* node = &root_;
  bool found_path = true;
  subspace.Complement(num_dims_).ForEachDim([&](Dim dim) {
    if (!found_path) return;
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), dim,
        [](const auto& entry, Dim key) { return entry.first < key; });
    if (it == node->children.end() || it->first != dim) {
      found_path = false;
      return;
    }
    node = it->second.get();
  });
  if (!found_path) return false;
  auto it = std::find(node->points.begin(), node->points.end(), id);
  if (it == node->points.end()) return false;
  *it = node->points.back();
  node->points.pop_back();
  --num_points_;
  return true;
}

}  // namespace skyline
