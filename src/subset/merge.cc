#include "src/subset/merge.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/core/aligned_dataset.h"
#include "src/core/contracts.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/core/scores.h"

namespace skyline {

MergeResult MergeSubspacesOver(const Dataset& data,
                               std::span<const PointId> ids, int sigma) {
  SKYLINE_ASSERT(sigma >= 1, "MergeSubspacesOver: sigma must be >= 1");
  const std::size_t n = ids.size();
  const Dim d = data.num_dims();
  MergeResult out;
  if (n == 0) return out;

  // Precondition (Algorithm 1): ids name distinct rows of `data`.
  if constexpr (kSkylineDeepChecks) {
    std::vector<bool> seen(data.num_points(), false);
    for (PointId id : ids) {
      SKYLINE_DCHECK(id < data.num_points(),
                     "MergeSubspacesOver: id out of range");
      SKYLINE_DCHECK(!seen[id], "MergeSubspacesOver: duplicate id");
      seen[id] = true;
    }
  }

  // Gather the (possibly scattered) partition into a dense, padded,
  // cache-line-aligned block: every inner-loop scan below runs the
  // vectorized kernels over this block instead of chasing rows of the
  // source Dataset. The copies are bit-identical, so results and counts
  // match the scalar path exactly. No quantized plane: the per-pivot
  // pass uses the exact-only mask-fold kernel, so the prefilter plane
  // would never be read here.
  const AlignedDataset block(data, ids);

  // Line 1: score each point by (squared) Euclidean distance to the
  // corner of per-dimension minima. Squaring preserves the order and
  // avoids the sqrt; anchoring at the minima corner instead of the
  // origin makes the score strictly monotone under dominance for
  // arbitrary (including negative) values, so the extracted minimum is
  // always a skyline point. For the paper's [0,1] data this coincides
  // with the distance to the zero point up to the anchor shift. The
  // anchor is the minima corner of the `ids` subset — monotonicity is
  // only ever needed among the points the pass actually sees.
  std::vector<Value> lo(d, std::numeric_limits<Value>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const Value* row = block.row_unchecked(i);
    for (Dim k = 0; k < d; ++k) {
      if (row[k] < lo[k]) lo[k] = row[k];
    }
  }

  struct Active {
    PointId id;
    std::uint32_t row;  // row index in `block`
    Value score;
    Subspace mask;  // maximum dominating subspace so far
  };
  std::vector<Active> active(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Value* row = block.row_unchecked(i);
    Value s = 0;
    for (Dim k = 0; k < d; ++k) {
      const Value v = row[k] - lo[k];
      s += v * v;
    }
    active[i] = {ids[i], static_cast<std::uint32_t>(i), s, Subspace{}};
  }

  // Histogram of subspace sizes (bins 1..d) after the previous iteration.
  std::vector<std::size_t> prev_hist(d + 1, 0);

  // Scratch for the batched per-pivot scan (reused across iterations).
  std::vector<std::uint32_t> scan_rows;
  std::vector<Subspace> scan_masks;
  std::vector<std::uint8_t> scan_worse;

  int stability = 0;
  while (stability < sigma) {
    if (active.empty()) break;

    // Line 8: the active point with minimal score is a skyline point.
    // Ties break toward the earliest entry, i.e. the caller's id order,
    // keeping the pass deterministic for any partitioning.
    std::size_t best = 0;
    for (std::size_t i = 1; i < active.size(); ++i) {
      if (active[i].score < active[best].score) best = i;
    }
    const PointId pivot = active[best].id;
    const Value* pivot_row = block.row_unchecked(active[best].row);
    out.pivots.push_back(pivot);
    // The pivot leaves the active set: discount it from the previous
    // histogram so that its departure alone does not read as instability
    // (otherwise the maximal stability sigma = d could never be reached).
    const Dim pivot_bin = active[best].mask.size();
    if (out.iterations >= 1 && prev_hist[pivot_bin] > 0) {
      --prev_hist[pivot_bin];
    }
    active.erase(active.begin() + best);
    ++out.iterations;

    // Lines 11-18: compare the pivot with every active point. The mask
    // computation is one batched kernel pass over the whole active set
    // (charged one test per point, same as the scalar per-point loop);
    // the prune/compact decisions then consume the scratch results.
    scan_rows.resize(active.size());
    scan_masks.resize(active.size());
    scan_worse.resize(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      scan_rows[i] = active[i].row;
    }
    kernels::DominatingSubspaceExBatch(block, scan_rows, pivot_row, d,
                                       scan_masks.data(), scan_worse.data());
    out.dominance_tests += active.size();

    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      Active& q = active[i];
      const bool q_worse = scan_worse[i] != 0;
      const Subspace mask = scan_masks[i];
      if (mask.empty()) {
        // The pivot weakly dominates q: prune it, unless it is an exact
        // duplicate of the pivot, which is itself a skyline point.
        if (!q_worse) {
          out.pivots.push_back(q.id);
        } else {
          ++out.pruned;
        }
        continue;
      }
      q.mask |= mask;
      active[keep++] = q;
    }
    active.resize(keep);

    // Line 19: stability = number of subspace-size bins whose population
    // did not change in this iteration. The first iteration always
    // reports zero: before any pivot there is no distribution to be
    // stable against (this is also why sigma = 1 is meaningless — the
    // method's whole point is to *change* the distribution at least once).
    std::vector<std::size_t> hist(d + 1, 0);
    for (const Active& q : active) ++hist[q.mask.size()];
    stability = 0;
    if (out.iterations > 1) {
      for (Dim s = 1; s <= d; ++s) {
        if (hist[s] == prev_hist[s]) ++stability;
      }
    }
    prev_hist = std::move(hist);
  }

  // Conservation: every input id is a pivot, a survivor, or pruned.
  SKYLINE_ASSERT(out.pivots.size() + active.size() + out.pruned == n,
                 "Merge: pivots + remaining + pruned must partition the input");

  // Postcondition (Definition 4.1): each survivor's mask is its *maximum*
  // dominating subspace w.r.t. the pivot set — the union of D_{q<p} over
  // every pivot p, each of which must be non-empty (an empty D_{q<p}
  // means p weakly dominates q, so q could not have survived).
  if constexpr (kSkylineDeepChecks) {
    for (const Active& q : active) {
      const Value* q_row = data.row(q.id);
      Subspace expect;
      for (PointId p : out.pivots) {
        bool q_worse = false;
        const Subspace m =
            DominatingSubspaceEx(q_row, data.row(p), d, &q_worse);
        SKYLINE_DCHECK(!m.empty(),
                       "Merge: a pivot weakly dominates a surviving point");
        expect |= m;
      }
      SKYLINE_DCHECK(
          expect == q.mask,
          "Merge: mask is not the maximum dominating subspace w.r.t. pivots");
    }
  }

  out.remaining.reserve(active.size());
  out.subspaces.reserve(active.size());
  for (const Active& q : active) {
    SKYLINE_ASSERT(!q.mask.empty(),
                   "Merge: surviving point carries an empty subspace");
    out.remaining.push_back(q.id);
    out.subspaces.push_back(q.mask);
  }
  return out;
}

MergeResult MergeSubspaces(const Dataset& data, int sigma) {
  std::vector<PointId> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), PointId{0});
  return MergeSubspacesOver(data, ids, sigma);
}

}  // namespace skyline
