#include <algorithm>
#include <limits>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/subset/boosted.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

namespace skyline {

namespace {

enum class Status : unsigned char { kUnknown, kSkyline, kDominated };

}  // namespace

std::vector<PointId> SdiSubset::Compute(const Dataset& data,
                                        SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  const int sigma = EffectiveSigma(options_.sigma, d);
  MergeResult merge = MergeSubspaces(data, sigma);

  SubsetIndex index(d);
  for (PointId pv : merge.pivots) index.AddAlwaysCandidate(pv);
  std::vector<PointId> result = merge.pivots;
  if (merge.remaining.empty()) {
    if (stats != nullptr) {
      stats->dominance_tests = merge.dominance_tests;
      stats->pivot_count = merge.pivots.size();
      stats->merge_pruned = merge.pruned;
      stats->skyline_size = result.size();
    }
    return result;
  }

  // Subspace of each surviving point, addressed by point id.
  std::vector<Subspace> masks(n);
  for (std::size_t i = 0; i < merge.remaining.size(); ++i) {
    masks[merge.remaining[i]] = merge.subspaces[i];
  }

  // ---- Sort phase over the surviving points. ----
  const std::size_t m = merge.remaining.size();
  std::vector<std::vector<PointId>> dim_index(d);
  for (Dim k = 0; k < d; ++k) {
    dim_index[k] = merge.remaining;
    std::sort(dim_index[k].begin(), dim_index[k].end(),
              [&](PointId a, PointId b) {
                Value va = data.at(a, k), vb = data.at(b, k);
                if (va != vb) return va < vb;
                return a < b;
              });
  }

  // Stop point: the first Merge pivot is exactly the point with minimal
  // Euclidean distance of the whole dataset — SDI's canonical stop point.
  const Value* stop_row = data.row(merge.pivots.front());

  std::vector<Status> status(n, Status::kUnknown);
  std::vector<std::size_t> cursor(d, 0);
  std::vector<std::size_t> dim_skyline_count(d, 0);
  std::vector<bool> done(d, false);
  Dim dims_done = 0;
  std::size_t resolved = 0;

  DominanceTester tester(data);
  SkylineStats local;
  std::vector<PointId> candidates;

  auto fast_forward = [&](Dim k) {
    auto& ids = dim_index[k];
    std::size_t& c = cursor[k];
    while (c < m && status[ids[c]] != Status::kUnknown) {
      if (status[ids[c]] == Status::kSkyline) ++dim_skyline_count[k];
      ++c;
    }
    if (!done[k] && (c == m || data.at(ids[c], k) > stop_row[k])) {
      done[k] = true;
      ++dims_done;
    }
  };

  auto resolve_at_cursor = [&](Dim k) {
    auto& ids = dim_index[k];
    const std::size_t c = cursor[k];
    const PointId p = ids[c];
    // Candidate dominators via the subset index (Lemma 5.1). Every
    // already-accepted skyline point lives in the index, so this covers
    // all resolved dominators regardless of which dimension resolved them.
    candidates.clear();
    index.Query(masks[p], &candidates, &local.index_nodes_visited);
    ++local.index_queries;
    local.index_candidates += candidates.size();
    // One batched kernel pass over the candidate block (charges one test
    // per candidate scanned, early exit at the first dominator).
    bool dominated = tester.DominatesAny(candidates, p);
    if (!dominated) {
      // Duplicate dimension values: unresolved dominators can share p's
      // dim-k value — SFS-like local tests inside the tie block.
      const Value v = data.at(p, k);
      for (std::size_t j = c + 1; j < m && data.at(ids[j], k) == v; ++j) {
        if (tester.Dominates(ids[j], p)) {
          dominated = true;
          break;
        }
      }
    }
    status[p] = dominated ? Status::kDominated : Status::kSkyline;
    ++resolved;
    if (!dominated) {
      result.push_back(p);
      index.Add(p, masks[p]);
    }
    return !dominated;
  };

  // ---- Scan phase: breadth-first traversal among dimensions. ----
  Dim k = 0;
  for (Dim j = 0; j < d; ++j) fast_forward(j);
  while (dims_done < d && resolved < m) {
    // Points under this cursor may have been resolved from another
    // dimension since this dimension was last visited.
    fast_forward(k);
    if (done[k]) {
      k = (k + 1) % d;
      continue;
    }
    const bool new_skyline = resolve_at_cursor(k);
    fast_forward(k);
    if (new_skyline) {
      Dim best = k;
      std::size_t best_size = std::numeric_limits<std::size_t>::max();
      for (Dim j = 0; j < d; ++j) {
        if (!done[j] && dim_skyline_count[j] < best_size) {
          best = j;
          best_size = dim_skyline_count[j];
        }
      }
      k = best;
    }
  }

  if (stats != nullptr) {
    *stats = local;
    stats->dominance_tests = merge.dominance_tests + tester.tests();
    stats->pivot_count = merge.pivots.size();
    stats->merge_pruned = merge.pruned;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
