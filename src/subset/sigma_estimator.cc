#include "src/subset/sigma_estimator.h"

#include <algorithm>
#include <numeric>
#include <random>

#include "src/core/contracts.h"
#include "src/subset/boosted.h"

namespace skyline {

SigmaEstimate EstimateSigma(const Dataset& data, std::size_t sample_size,
                            std::uint64_t seed) {
  SigmaEstimate out;
  const Dim d = data.num_dims();
  const std::size_t n = data.num_points();
  if (d <= 1 || n == 0) {
    out.sigma = 1;
    return out;
  }

  // Uniform sample without replacement (partial Fisher-Yates).
  sample_size = std::min(sample_size, n);
  std::vector<PointId> ids(n);
  std::iota(ids.begin(), ids.end(), PointId{0});
  std::mt19937_64 rng(seed);
  Dataset sample(d);
  for (std::size_t i = 0; i < sample_size; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng() % (n - i));
    std::swap(ids[i], ids[j]);
    sample.Append(data.point(ids[i]));
  }
  out.sample_size = sample_size;

  double best_cost = 0;
  for (Dim sigma = 2; sigma <= d; ++sigma) {
    AlgorithmOptions options;
    options.sigma = static_cast<int>(sigma);
    SkylineStats stats;
    SfsSubset(options).Compute(sample, &stats);
    const double cost = stats.MeanDominanceTests(sample.num_points());
    out.cost_per_sigma.push_back(cost);
    if (sigma == 2 || cost < best_cost) {
      best_cost = cost;
      out.sigma = static_cast<int>(sigma);
    }
  }
  SKYLINE_ASSERT(out.sigma >= 2 && out.sigma <= static_cast<int>(d),
                 "EstimateSigma: recommendation outside [2, d]");
  SKYLINE_ASSERT(out.cost_per_sigma.size() == d - 1,
                 "EstimateSigma: one cost entry per candidate sigma");
  return out;
}

}  // namespace skyline
