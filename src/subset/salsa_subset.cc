#include <algorithm>
#include <limits>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/subset/boosted.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

namespace skyline {

std::vector<PointId> SalsaSubset::Compute(const Dataset& data,
                                          SkylineStats* stats) const {
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (data.num_points() == 0) return {};

  const int sigma = EffectiveSigma(options_.sigma, d);
  MergeResult merge = MergeSubspaces(data, sigma);

  SubsetIndex index(d);
  for (PointId pv : merge.pivots) index.AddAlwaysCandidate(pv);
  std::vector<PointId> result = merge.pivots;

  // The stop value must account for the pivot skyline points too: they
  // are part of the current skyline from the start.
  Value stop_value = std::numeric_limits<Value>::infinity();
  auto max_coord_of = [&](PointId p) {
    const Value* row = data.row(p);
    Value m = row[0];
    for (Dim i = 1; i < d; ++i) m = std::max(m, row[i]);
    return m;
  };
  for (PointId pv : merge.pivots) {
    stop_value = std::min(stop_value, max_coord_of(pv));
  }

  // minC order with sum tie-break over the surviving points.
  const std::vector<Value> mins =
      ComputeScores(data, ScoreFunction::kMinCoordinate);
  const std::vector<Value> sums = ComputeScores(data, ScoreFunction::kSum);
  std::vector<std::size_t> order(merge.remaining.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PointId pa = merge.remaining[a], pb = merge.remaining[b];
    if (mins[pa] != mins[pb]) return mins[pa] < mins[pb];
    if (sums[pa] != sums[pb]) return sums[pa] < sums[pb];
    return pa < pb;
  });

  DominanceTester tester(data);
  SkylineStats local;
  std::vector<PointId> candidates;
  for (std::size_t i : order) {
    const PointId q = merge.remaining[i];
    if (mins[q] > stop_value) break;  // every later point is dominated
    const Subspace mask = merge.subspaces[i];
    candidates.clear();
    index.Query(mask, &candidates, &local.index_nodes_visited);
    ++local.index_queries;
    local.index_candidates += candidates.size();
    // One batched kernel pass over the candidate block (charges one test
    // per candidate scanned, early exit at the first dominator).
    const bool dominated = tester.DominatesAny(candidates, q);
    if (!dominated) {
      result.push_back(q);
      index.Add(q, mask);
      stop_value = std::min(stop_value, max_coord_of(q));
    }
  }

  if (stats != nullptr) {
    *stats = local;
    stats->dominance_tests = merge.dominance_tests + tester.tests();
    stats->pivot_count = merge.pivots.size();
    stats->merge_pruned = merge.pruned;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
