// Subspace union — Algorithm 1 ("Merge") of the paper.
//
// Iteratively extracts pivot points (the remaining point with minimal
// Euclidean distance to the origin, always a skyline point on
// non-negative data), prunes everything a pivot dominates, and merges
// each surviving point's dominating subspace D_{q<p} (Definition 3.4)
// across pivots into its *maximum dominating subspace* D_{q<S}
// (Definition 4.1). Iteration stops when the distribution of points over
// subspace sizes is stable: the stability measure sigma' counts the
// subspace-size bins whose population did not change in the last
// iteration, and the pass ends once sigma' >= sigma.
#ifndef SKYLINE_SUBSET_MERGE_H_
#define SKYLINE_SUBSET_MERGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {

/// Output of the Merge pass.
struct MergeResult {
  /// The initial skyline S: the pivot points, in selection order (plus
  /// any exact duplicates of pivots discovered while pruning). Every
  /// entry is a skyline point of the dataset.
  std::vector<PointId> pivots;

  /// Points neither selected as pivots nor pruned; none is dominated by
  /// any pivot.
  std::vector<PointId> remaining;

  /// Parallel to `remaining`: the maximum dominating subspace D_{q<S} of
  /// each remaining point. Always non-empty.
  std::vector<Subspace> subspaces;

  /// Pairwise comparisons spent (each D_{q<p} computation is one O(d)
  /// row scan, counted as a dominance test).
  std::uint64_t dominance_tests = 0;

  /// Points pruned because a pivot dominated them.
  std::uint64_t pruned = 0;

  /// Number of pivot iterations executed.
  int iterations = 0;
};

/// Runs Algorithm 1 on `data` with stability threshold `sigma` (>= 1).
///
/// Precondition: values must be non-negative, so that the Euclidean score
/// is strictly monotone under dominance and the extracted minimum is a
/// skyline point (the paper's datasets are all non-negative).
MergeResult MergeSubspaces(const Dataset& data, int sigma);

/// Algorithm 1 restricted to the points in `ids` (each id < num_points,
/// no duplicates): pivots, survivors and subspaces refer only to those
/// points, and the score anchor is the minima corner of the subset. This
/// is the per-partition building block of the parallel subset engine;
/// `MergeSubspaces` is the full-span special case.
MergeResult MergeSubspacesOver(const Dataset& data,
                               std::span<const PointId> ids, int sigma);

}  // namespace skyline

#endif  // SKYLINE_SUBSET_MERGE_H_
