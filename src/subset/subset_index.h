// SubsetIndex — the map-based prefix tree of Section 5 (Figure 3,
// Algorithms 2-4).
//
// Skyline points are stored under their *reversed* maximum dominating
// subspace D^¬ (the complement with respect to the full space), encoded
// as the strictly increasing sequence of its dimensions; each tree node
// is keyed by one dimension index and carries the points whose reversed
// subspace ends there. A query for a testing point with subspace D_q
// enumerates all stored paths that are subsets of D_q^¬ — equivalently,
// all skyline points whose subspace is a superset of D_q, which by
// Lemma 5.1 are the only skyline points that can possibly dominate the
// testing point.
//
// Add runs in O(|D^¬|) = O(d/2) on average (Lemma 5.2); Query visits
// O((d/2)^2) nodes on average (Lemma 5.3). Children are kept in a small
// sorted vector: with at most d entries per node this behaves like the
// paper's hash map (O(1)-ish access) while staying cache-friendly; see
// the bench_ablation_index comparison against a brute-force superset
// filter.
//
// Thread safety: the const members (Query, QueryContained, num_*) touch
// no mutable state, so any number of threads may query one index
// concurrently as long as no thread mutates it — the parallel engines
// rely on this for the shared cross-filter index. Mutations (Add,
// Remove, MergeFrom) require exclusive access.
#ifndef SKYLINE_SUBSET_SUBSET_INDEX_H_
#define SKYLINE_SUBSET_SUBSET_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#ifdef SKYLINE_CHECKS
#include <unordered_map>
#endif

#include "src/core/contracts.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {

/// Container that stores point ids partitioned by subspace and retrieves,
/// for a query subspace Q, all ids stored with a subspace ⊇ Q.
class SubsetIndex {
 public:
  /// An index over subspaces of a `num_dims`-dimensional space.
  explicit SubsetIndex(Dim num_dims) : num_dims_(num_dims) {}

  SubsetIndex(SubsetIndex&&) = default;
  SubsetIndex& operator=(SubsetIndex&&) = default;

  /// Algorithm 2: stores `id` under `subspace`. Storing the full space
  /// places the id at the root, so it is returned by every query — this
  /// is how the Merge pivots are registered, since a pivot must be
  /// compared with every testing point.
  void Add(PointId id, Subspace subspace);

  /// Registers an id that every query must return (path = empty reversed
  /// subspace, i.e. the root node).
  void AddAlwaysCandidate(PointId id);

  /// Algorithms 3 and 4: appends to `out` every id stored with a
  /// subspace ⊇ `subspace`. If `nodes_visited` is non-null it is
  /// incremented by the number of tree nodes touched.
  void Query(Subspace subspace, std::vector<PointId>* out,
             std::uint64_t* nodes_visited = nullptr) const;

  /// The mirror query: appends every id stored with a subspace ⊆
  /// `subspace`. By Lemma 4.3 these are the only stored points a point
  /// carrying `subspace` could possibly dominate — which is what the
  /// streaming extension uses to find eviction candidates.
  void QueryContained(Subspace subspace, std::vector<PointId>* out,
                      std::uint64_t* nodes_visited = nullptr) const;

  /// Removes one occurrence of `id` stored under `subspace` (the exact
  /// subspace passed to Add). Returns false if it was not present.
  /// Emptied trailing nodes of the path are reclaimed eagerly: a node
  /// with no points and no children can never satisfy a query, so
  /// `num_nodes()` keeps meaning *live* nodes even under long
  /// add/remove streams (the streaming extension depends on this to
  /// stay memory-bounded).
  bool Remove(PointId id, Subspace subspace);

  /// Prunes every empty leaf chain in the tree and returns the number
  /// of nodes reclaimed. With the eager reclamation done by Remove this
  /// is a no-op (returns 0); it exists as a safety net for callers that
  /// want to assert the no-dead-nodes invariant explicitly.
  std::size_t Compact();

  /// Splices every entry of `other` (same dimensionality) into this
  /// index, leaving `other` empty. Equivalent to replaying every Add of
  /// `other` on this index, in tree order; shared paths are reused, so
  /// merging T thread-local indexes costs O(total nodes), not O(total
  /// adds). Used by the parallel engines to combine per-partition
  /// indexes before the shared cross-filter phase.
  void MergeFrom(SubsetIndex&& other);

  Dim num_dims() const { return num_dims_; }

  /// Number of *live* tree nodes, excluding the root. Remove reclaims
  /// emptied paths eagerly, so this never counts dead structure.
  std::size_t num_nodes() const { return num_nodes_; }

  /// Number of stored point ids.
  std::size_t num_points() const { return num_points_; }

 private:
  struct Node {
    /// Children sorted by dimension key; keys along any root-to-node path
    /// strictly increase, so each stored subspace has a unique path.
    std::vector<std::pair<Dim, std::unique_ptr<Node>>> children;
    std::vector<PointId> points;
  };

  static void QueryNode(const Node& node, Subspace reversed,
                        std::vector<PointId>* out,
                        std::uint64_t* nodes_visited);

  static void QuerySupersetPaths(const Node& node, Subspace required,
                                 std::vector<PointId>* out,
                                 std::uint64_t* nodes_visited);

  static void CollectSubtree(const Node& node, std::vector<PointId>* out,
                             std::uint64_t* nodes_visited);

  /// Splices `src` into `dst`; increments `*new_nodes` for every node of
  /// `src` whose path did not yet exist under `dst`.
  static void MergeNodes(Node* dst, Node&& src, std::size_t* new_nodes);

  /// Nodes in the subtree rooted at `node`, including `node` itself.
  static std::size_t CountSubtreeNodes(const Node& node);

  /// Recursively drops children whose subtree holds no points;
  /// increments `*pruned` per reclaimed node.
  static void CompactNode(Node* node, std::size_t* pruned);

  Dim num_dims_;
  Node root_;
  std::size_t num_nodes_ = 0;
  std::size_t num_points_ = 0;

#ifdef SKYLINE_CHECKS
  /// Deep-check shadow: every stored (id, subspace) pair, kept in sync by
  /// Add/AddAlwaysCandidate/Remove/MergeFrom. Query postconditions verify
  /// soundness (returned ids are superset-keyed) and completeness
  /// (qualifying entry counts match) against this flat oracle.
  std::unordered_multimap<PointId, std::uint64_t> shadow_;

  /// Recounts nodes and points, and re-verifies the structural invariant
  /// (children sorted, path keys strictly increasing, keys < num_dims_)
  /// against the num_nodes_/num_points_ accounting.
  void ValidateAccounting() const;
#endif
};

}  // namespace skyline

#endif  // SKYLINE_SUBSET_SUBSET_INDEX_H_
