// k-skyband: the set of points dominated by fewer than k other points
// (Papadias et al., SIGMOD 2003). The 1-skyband is exactly the skyline;
// larger k gives the natural "top layers" relaxation that many skyline
// applications (paginated results, robustness to outliers) ask for.
#ifndef SKYLINE_EXTRAS_SKYBAND_H_
#define SKYLINE_EXTRAS_SKYBAND_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"

namespace skyline {

/// Result of a k-skyband computation.
struct SkybandResult {
  /// Points dominated by fewer than k others, in monotone (sum) order.
  std::vector<PointId> points;

  /// Parallel to `points`: the exact number of dominators of each
  /// member (always < k).
  std::vector<std::uint32_t> dominator_counts;

  /// O(d) pairwise scans spent.
  std::uint64_t dominance_tests = 0;
};

/// Computes the k-skyband of `data` (k >= 1) with a sorted scan: in
/// monotone order every dominator precedes its dominatee, and a point
/// discarded with >= k dominators passes all of them on transitively, so
/// counting dominators among retained skyband members is exact.
SkybandResult ComputeSkyband(const Dataset& data, std::uint32_t k);

}  // namespace skyline

#endif  // SKYLINE_EXTRAS_SKYBAND_H_
