#include "src/core/contracts.h"
#include "src/extras/skyband.h"


#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

SkybandResult ComputeSkyband(const Dataset& data, std::uint32_t k) {
  SKYLINE_ASSERT(k >= 1, "ComputeSkyband: k must be >= 1");
  const Dim d = data.num_dims();
  SkybandResult out;
  for (PointId p : SortedByScore(data, ScoreFunction::kSum)) {
    const Value* row = data.row(p);
    std::uint32_t dominators = 0;
    for (std::size_t i = 0; i < out.points.size() && dominators < k; ++i) {
      ++out.dominance_tests;
      if (Dominates(data.row(out.points[i]), row, d)) ++dominators;
    }
    if (dominators < k) {
      out.points.push_back(p);
      out.dominator_counts.push_back(dominators);
    }
  }
  return out;
}

}  // namespace skyline
