// Client-side helper for SkylineServer: retry transient kOverloaded
// responses with capped exponential backoff and decorrelated jitter.
//
// Only kOverloaded is retried — it is the one transient status: the
// queue was full at admission, and a later attempt may find room.
// kDeadlineExceeded / kCancelled / kShutdown are final for the request,
// and kOk / kStale carry an answer.
#ifndef SKYLINE_SERVER_CLIENT_H_
#define SKYLINE_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>

#include "src/core/subspace.h"
#include "src/server/server.h"

namespace skyline {

/// Backoff schedule for QueryWithRetry.
///
/// Without jitter, the sleep before retry k (1-based) is
///   min(max_backoff, max(prev * backoff_multiplier, prev + min_step))
/// seeded with prev = min(initial_backoff, max_backoff). The additive
/// `min_step` floor guarantees the schedule grows even from
/// `initial_backoff == 0` — a pure multiplicative schedule is stuck at
/// zero forever (`0 * m == 0`) and hot-loops against an overloaded
/// server.
///
/// With jitter (the default), the sleep is drawn uniformly from
/// [min_step, min(max_backoff, max(min_step, prev * 3))] — AWS-style
/// "decorrelated jitter". Synchronized clients that all got rejected by
/// the same full queue then spread their retries instead of hammering
/// the server in lockstep at exact power-of-two beats.
struct RetryOptions {
  int max_attempts = 4;  ///< Total attempts, the first one included.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
  /// Additive growth floor per retry; also the jitter draw's lower
  /// bound. Must be positive.
  std::chrono::nanoseconds min_step = std::chrono::microseconds(1);
  /// Decorrelate retry times across clients. Disable for deterministic
  /// tests of the exponential envelope.
  bool jitter = true;
};

/// One step of the backoff schedule: the sleep to take after a failed
/// attempt that slept `prev` before it (pass the seed
/// min(initial_backoff, max_backoff) for the first step). `rnd` feeds
/// the jitter draw (any uniformly random 64-bit value; ignored when
/// retry.jitter is false). Pure — exposed so tests can pin the
/// schedule's monotone growth and bounds without sleeping.
std::chrono::nanoseconds NextBackoff(std::chrono::nanoseconds prev,
                                     const RetryOptions& retry,
                                     std::uint64_t rnd);

/// Submits `v` to `server` and retries while the response is
/// kOverloaded, sleeping the backoff schedule between attempts. Returns
/// the first non-overloaded response, or the final kOverloaded one
/// after max_attempts. `timeout` applies per attempt, not across the
/// whole retry sequence. When `attempts_out` is non-null it receives
/// the number of Submit calls made.
ServerResponse QueryWithRetry(SkylineServer& server, Subspace v,
                              std::chrono::nanoseconds timeout = kNoTimeout,
                              const RetryOptions& retry = {},
                              int* attempts_out = nullptr);

}  // namespace skyline

#endif  // SKYLINE_SERVER_CLIENT_H_
