// Client-side helper for SkylineServer: retry transient kOverloaded
// responses with capped exponential backoff.
//
// Only kOverloaded is retried — it is the one transient status: the
// queue was full at admission, and a later attempt may find room.
// kDeadlineExceeded / kCancelled / kShutdown are final for the request,
// and kOk / kStale carry an answer.
#ifndef SKYLINE_SERVER_CLIENT_H_
#define SKYLINE_SERVER_CLIENT_H_

#include <chrono>

#include "src/core/subspace.h"
#include "src/server/server.h"

namespace skyline {

/// Backoff schedule for QueryWithRetry. Attempt k (0-based) sleeps
/// min(initial_backoff * backoff_multiplier^k, max_backoff) before
/// retrying.
struct RetryOptions {
  int max_attempts = 4;  ///< Total attempts, the first one included.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
};

/// Submits `v` to `server` and retries while the response is
/// kOverloaded, sleeping the backoff schedule between attempts. Returns
/// the first non-overloaded response, or the final kOverloaded one
/// after max_attempts. `timeout` applies per attempt, not across the
/// whole retry sequence. When `attempts_out` is non-null it receives
/// the number of Submit calls made.
ServerResponse QueryWithRetry(SkylineServer& server, Subspace v,
                              std::chrono::nanoseconds timeout = kNoTimeout,
                              const RetryOptions& retry = {},
                              int* attempts_out = nullptr);

}  // namespace skyline

#endif  // SKYLINE_SERVER_CLIENT_H_
