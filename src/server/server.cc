#include "src/server/server.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/core/contracts.h"
#include "src/skycube/skycube.h"

namespace skyline {

namespace {

std::uint64_t ElapsedNanos(std::chrono::steady_clock::time_point from,
                           std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kStale:
      return "kStale";
    case StatusCode::kOverloaded:
      return "kOverloaded";
    case StatusCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case StatusCode::kCancelled:
      return "kCancelled";
    case StatusCode::kShutdown:
      return "kShutdown";
  }
  return "unknown";
}

ServerResponse ResponseHandle::Wait() const {
  SKYLINE_ASSERT(state_ != nullptr, "Wait on an invalid ResponseHandle");
  ServerResponse out;
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  out.status = state_->status;
  out.ids = state_->ids;
  out.resolved_at = state_->resolved_at;
  return out;
}

bool ResponseHandle::TryGet(ServerResponse* out) const {
  SKYLINE_ASSERT(state_ != nullptr, "TryGet on an invalid ResponseHandle");
  MutexLock lock(state_->mu);
  if (!state_->done) return false;
  if (out != nullptr) {
    out->status = state_->status;
    out->ids = state_->ids;
    out->resolved_at = state_->resolved_at;
  }
  return true;
}

void SkylineServer::Resolve(internal::ServerResultState& state,
                            StatusCode status, std::vector<PointId> ids) {
  {
    MutexLock lock(state.mu);
    if (state.done) return;
    state.done = true;
    state.status = status;
    state.ids = std::move(ids);
    state.resolved_at = std::chrono::steady_clock::now();
  }
  state.cv.NotifyAll();
}

SkylineServer::SkylineServer(const Dataset& data, ServerOptions options)
    : options_(std::move(options)), service_(data, options_.query) {
  if (options_.auto_start) Start();
}

SkylineServer::~SkylineServer() {
  std::vector<Pending> orphans;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    orphans.reserve(queue_.size());
    std::move(queue_.begin(), queue_.end(), std::back_inserter(orphans));
    queue_.clear();
  }
  queue_cv_.NotifyAll();
  for (Pending& p : orphans) Resolve(*p.state, StatusCode::kShutdown, {});
  for (std::thread& worker : workers_) worker.join();
}

void SkylineServer::Start() {
  const unsigned count =
      options_.workers != 0
          ? options_.workers
          : std::max(1u, std::thread::hardware_concurrency());
  MutexLock lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ResponseHandle SkylineServer::Submit(Subspace v,
                                     std::chrono::nanoseconds timeout,
                                     CancellationToken token) {
  SKYLINE_ASSERT(!v.empty(), "Submit: empty subspace");
  SKYLINE_ASSERT(v.IsSubsetOf(Subspace::Full(service_.data().num_dims())),
                 "Submit: subspace outside the dataset's space");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<internal::ServerResultState>();
  ResponseHandle handle(state);

  if (options_.inline_fast_hits) {
    std::vector<PointId> ids;
    if (service_.PeekExact(v, &ids)) {
      fast_hits_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*state, StatusCode::kOk, std::move(ids));
      return handle;
    }
  }

  const auto now = std::chrono::steady_clock::now();
  const auto deadline = timeout == kNoTimeout
                            ? std::chrono::steady_clock::time_point::max()
                            : now + timeout;

  bool shutdown = false;
  bool reject = false;
  bool serve_stale = false;
  std::vector<Pending> shed;  // resolved after the lock is dropped
  {
    MutexLock lock(mu_);
    if (stopping_) {
      shutdown = true;
    } else {
      if (queue_.size() >= options_.queue_capacity &&
          options_.policy != OverloadPolicy::kReject) {
        // Make room by shedding queued entries that are already past
        // their deadline (or cancelled) — they would be shed at
        // dispatch anyway.
        std::deque<Pending> rest;
        for (Pending& p : queue_) {
          if (p.deadline <= now || p.token.cancelled()) {
            shed.push_back(std::move(p));
          } else {
            rest.push_back(std::move(p));
          }
        }
        queue_.swap(rest);
      }
      if (queue_.size() >= options_.queue_capacity) {
        if (options_.policy == OverloadPolicy::kServeStale) {
          serve_stale = true;
        } else {
          reject = true;
        }
      } else {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(Pending{v, deadline, now, std::move(token), state});
        queue_cv_.NotifyOne();
      }
    }
  }
  for (Pending& p : shed) {
    if (p.token.cancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*p.state, StatusCode::kCancelled, {});
    } else {
      shed_expired_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*p.state, StatusCode::kDeadlineExceeded, {});
    }
  }
  if (shutdown) {
    Resolve(*state, StatusCode::kShutdown, {});
  } else if (reject) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Resolve(*state, StatusCode::kOverloaded, {});
  } else if (serve_stale) {
    std::vector<PointId> ids;
    StatusCode status = StatusCode::kOverloaded;
    if (TryStaleAnswer(v, &ids, &status)) {
      if (status == StatusCode::kStale) {
        stale_served_.fetch_add(1, std::memory_order_relaxed);
      } else {
        fast_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      Resolve(*state, status, std::move(ids));
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*state, StatusCode::kOverloaded, {});
    }
  }
  return handle;
}

ServerResponse SkylineServer::Query(Subspace v,
                                    std::chrono::nanoseconds timeout) {
  return Submit(v, timeout).Wait();
}

void SkylineServer::WorkerLoop() {
  for (;;) {
    std::vector<CuboidGroup> groups;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) queue_cv_.Wait(lock);
      if (queue_.empty()) return;  // stopping, nothing left to drain
      groups = GatherBatch();
    }
    ProcessBatch(std::move(groups));
  }
}

std::vector<SkylineServer::CuboidGroup> SkylineServer::GatherBatch() {
  const std::size_t cap = std::max<std::size_t>(1, options_.max_batch_cuboids);
  std::vector<CuboidGroup> groups;
  std::deque<Pending> rest;
  for (Pending& p : queue_) {
    CuboidGroup* group = nullptr;
    for (CuboidGroup& g : groups) {
      if (g.v.bits() == p.v.bits()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr && groups.size() < cap) {
      groups.push_back(CuboidGroup{p.v, {}});
      group = &groups.back();
    }
    if (group != nullptr) {
      group->waiters.push_back(std::move(p));
    } else {
      rest.push_back(std::move(p));
    }
  }
  queue_.swap(rest);
  return groups;
}

void SkylineServer::ProcessBatch(std::vector<CuboidGroup> groups) {
  const auto dispatch_time = std::chrono::steady_clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_cuboids_.fetch_add(groups.size(), std::memory_order_relaxed);
  std::uint64_t num_requests = 0;
  for (const CuboidGroup& g : groups) {
    for (const Pending& p : g.waiters) {
      ++num_requests;
      queue_wait_.Record(ElapsedNanos(p.enqueued_at, dispatch_time));
    }
  }
  batched_requests_.fetch_add(num_requests, std::memory_order_relaxed);

  // Deterministic compute order: larger cuboids first, so results of
  // this cycle can seed its smaller members through the cuboid cache.
  std::sort(groups.begin(), groups.end(),
            [](const CuboidGroup& a, const CuboidGroup& b) {
              if (a.v.size() != b.v.size()) return a.v.size() > b.v.size();
              return a.v.bits() < b.v.bits();
            });

  // Dispatch-time triage: cancelled requests resolve now; expired ones
  // are shed or stale-served per policy (under kReject deadlines are
  // advisory and expired requests stay on the exact path).
  for (CuboidGroup& g : groups) {
    std::vector<Pending> live;
    std::vector<Pending> expired;
    live.reserve(g.waiters.size());
    for (Pending& p : g.waiters) {
      if (p.token.cancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        Resolve(*p.state, StatusCode::kCancelled, {});
      } else if (p.deadline <= dispatch_time &&
                 options_.policy != OverloadPolicy::kReject) {
        expired.push_back(std::move(p));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (!expired.empty()) {
      std::vector<PointId> ids;
      StatusCode status = StatusCode::kDeadlineExceeded;
      if (options_.policy == OverloadPolicy::kServeStale &&
          TryStaleAnswer(g.v, &ids, &status)) {
        if (status == StatusCode::kStale) {
          stale_served_.fetch_add(expired.size(), std::memory_order_relaxed);
        } else {
          fast_hits_.fetch_add(expired.size(), std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < expired.size(); ++i) {
          Resolve(*expired[i].state, status,
                  i + 1 == expired.size() ? std::move(ids) : ids);
        }
      } else {
        shed_expired_.fetch_add(expired.size(), std::memory_order_relaxed);
        for (Pending& p : expired) {
          Resolve(*p.state, StatusCode::kDeadlineExceeded, {});
        }
      }
    }
    g.waiters = std::move(live);
  }

  // Union seeding: when several distinct cuboids of this cycle have no
  // cached ancestor, one compute of their union gives the whole cycle a
  // shared seed — one full-dataset scan instead of one per member.
  if (options_.union_seed_threshold > 0) {
    std::uint64_t union_bits = 0;
    std::size_t unseeded = 0;
    for (const CuboidGroup& g : groups) {
      if (g.waiters.empty()) continue;
      if (!service_.PeekNearestAncestor(g.v, nullptr, nullptr)) {
        union_bits |= g.v.bits();
        ++unseeded;
      }
    }
    if (unseeded >= options_.union_seed_threshold) {
      bool union_is_member = false;
      for (const CuboidGroup& g : groups) {
        if (!g.waiters.empty() && g.v.bits() == union_bits) {
          union_is_member = true;
          break;
        }
      }
      if (!union_is_member) {
        service_.Query(Subspace(union_bits));
        union_seeds_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  for (CuboidGroup& g : groups) {
    if (g.waiters.empty()) continue;
    std::vector<PointId> ids = service_.Query(g.v);
    const auto resolve_time = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < g.waiters.size(); ++i) {
      Pending& p = g.waiters[i];
      if (p.deadline <= resolve_time) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      Resolve(*p.state, StatusCode::kOk,
              i + 1 == g.waiters.size() ? std::move(ids) : ids);
    }
  }
}

bool SkylineServer::TryStaleAnswer(Subspace v, std::vector<PointId>* ids,
                                   StatusCode* status) {
  Subspace ancestor;
  std::vector<PointId> seed;
  if (!service_.PeekNearestAncestor(v, &ancestor, &seed)) return false;
  if (ancestor.bits() == v.bits()) {
    *ids = std::move(seed);  // exact and current — a plain cache hit
    *status = StatusCode::kOk;
    return true;
  }
  std::uint64_t tests = 0;
  std::vector<PointId> core =
      SubspaceSkylineOverCandidates(service_.data(), v, seed, &tests);
  stale_tests_.fetch_add(tests, std::memory_order_relaxed);
  std::sort(core.begin(), core.end());
  *ids = std::move(core);
  *status = StatusCode::kStale;
  return true;
}

ServerStatsSnapshot SkylineServer::Stats() const {
  ServerStatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.admitted = admitted_.load(std::memory_order_relaxed);
  snap.fast_hits = fast_hits_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.shed_expired = shed_expired_.load(std::memory_order_relaxed);
  snap.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.stale_served = stale_served_.load(std::memory_order_relaxed);
  snap.stale_tests = stale_tests_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.batched_cuboids = batched_cuboids_.load(std::memory_order_relaxed);
  snap.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  snap.union_seeds = union_seeds_.load(std::memory_order_relaxed);
  snap.queue_wait = queue_wait_.Snap();
  snap.query = service_.Stats();
  return snap;
}

}  // namespace skyline
