#include "src/server/server.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/core/contracts.h"
#include "src/skycube/skycube.h"

namespace skyline {

namespace {

std::uint64_t ElapsedNanos(std::chrono::steady_clock::time_point from,
                           std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kStale:
      return "kStale";
    case StatusCode::kOverloaded:
      return "kOverloaded";
    case StatusCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case StatusCode::kCancelled:
      return "kCancelled";
    case StatusCode::kShutdown:
      return "kShutdown";
  }
  return "unknown";
}

ServerResponse ResponseHandle::Wait() const {
  SKYLINE_ASSERT(state_ != nullptr, "Wait on an invalid ResponseHandle");
  ServerResponse out;
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  out.status = state_->status;
  out.ids = state_->ids;
  out.epoch = state_->epoch;
  out.epoch_delta = state_->epoch_delta;
  out.resolved_at = state_->resolved_at;
  return out;
}

bool ResponseHandle::TryGet(ServerResponse* out) const {
  SKYLINE_ASSERT(state_ != nullptr, "TryGet on an invalid ResponseHandle");
  MutexLock lock(state_->mu);
  if (!state_->done) return false;
  if (out != nullptr) {
    out->status = state_->status;
    out->ids = state_->ids;
    out->epoch = state_->epoch;
    out->epoch_delta = state_->epoch_delta;
    out->resolved_at = state_->resolved_at;
  }
  return true;
}

void SkylineServer::Resolve(internal::ServerResultState& state,
                            StatusCode status, std::vector<PointId> ids,
                            std::uint64_t epoch, std::uint64_t epoch_delta) {
  {
    MutexLock lock(state.mu);
    if (state.done) return;
    // Terminal accounting, exactly once per handle — counted on the
    // transition itself, BEFORE done becomes observable. A waiter can
    // only see done=true after taking state.mu, so by the time Wait()
    // returns the resolved_* counters already include this handle and
    // the Stats() identities hold with no settle window.
    switch (status) {
      case StatusCode::kOk:
        resolved_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kStale:
        resolved_stale_.fetch_add(1, std::memory_order_relaxed);
        if (epoch_delta > 0) {
          stale_epoch_served_.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t prev =
              stale_epoch_delta_max_.load(std::memory_order_relaxed);
          while (epoch_delta > prev &&
                 !stale_epoch_delta_max_.compare_exchange_weak(
                     prev, epoch_delta, std::memory_order_relaxed)) {
          }
        }
        break;
      case StatusCode::kOverloaded:
        resolved_overloaded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        resolved_deadline_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        resolved_cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kShutdown:
        resolved_shutdown_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    state.done = true;
    state.status = status;
    state.ids = std::move(ids);
    state.epoch = epoch;
    state.epoch_delta = epoch_delta;
    state.resolved_at = std::chrono::steady_clock::now();
  }
  state.cv.NotifyAll();
}

SkylineServer::SkylineServer(const Dataset& data, ServerOptions options)
    : options_(std::move(options)), service_(data, options_.query) {
  if (options_.auto_start) Start();
}

SkylineServer::~SkylineServer() {
  std::vector<Pending> orphans;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    orphans.reserve(queue_.size());
    std::move(queue_.begin(), queue_.end(), std::back_inserter(orphans));
    queue_.clear();
  }
  queue_cv_.NotifyAll();
  for (Pending& p : orphans) Resolve(*p.state, StatusCode::kShutdown, {});
  for (std::thread& worker : workers_) worker.join();
}

void SkylineServer::Start() {
  const unsigned count =
      options_.workers != 0
          ? options_.workers
          : std::max(1u, std::thread::hardware_concurrency());
  MutexLock lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ResponseHandle SkylineServer::Submit(Subspace v,
                                     std::chrono::nanoseconds timeout,
                                     CancellationToken token) {
  SKYLINE_ASSERT(!v.empty(), "Submit: empty subspace");
  SKYLINE_ASSERT(v.IsSubsetOf(Subspace::Full(service_.data().num_dims())),
                 "Submit: subspace outside the dataset's space");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<internal::ServerResultState>();
  ResponseHandle handle(state);

  if (options_.inline_fast_hits) {
    std::vector<PointId> ids;
    std::uint64_t epoch = 0;
    // epoch-ok: no epoch_delta passed, so PeekExact only surfaces
    // current-epoch entries — an inline fast hit is never pre-update.
    if (service_.PeekExact(v, &ids, &epoch)) {
      fast_hits_.fetch_add(1, std::memory_order_relaxed);
      admission_resolved_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*state, StatusCode::kOk, std::move(ids), epoch, 0);
      return handle;
    }
  }

  const auto now = std::chrono::steady_clock::now();
  const auto deadline = timeout == kNoTimeout
                            ? std::chrono::steady_clock::time_point::max()
                            : now + timeout;

  bool shutdown = false;
  bool reject = false;
  bool serve_stale = false;
  std::vector<Pending> shed;  // resolved after the lock is dropped
  {
    MutexLock lock(mu_);
    if (stopping_) {
      shutdown = true;
    } else {
      if (queue_.size() >= options_.queue_capacity &&
          options_.policy != OverloadPolicy::kReject) {
        // Make room by shedding queued entries that are already past
        // their deadline (or cancelled) — they would be shed at
        // dispatch anyway.
        std::deque<Pending> rest;
        for (Pending& p : queue_) {
          if (!p.is_update && (p.deadline <= now || p.token.cancelled())) {
            shed.push_back(std::move(p));
          } else {
            rest.push_back(std::move(p));
          }
        }
        queue_.swap(rest);
      }
      if (queue_.size() >= options_.queue_capacity) {
        if (options_.policy == OverloadPolicy::kServeStale) {
          serve_stale = true;
        } else {
          reject = true;
        }
      } else {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(Pending{v, deadline, now, std::move(token), state});
        queue_cv_.NotifyOne();
      }
    }
  }
  for (Pending& p : shed) {
    triaged_.fetch_add(1, std::memory_order_relaxed);
    if (p.token.cancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*p.state, StatusCode::kCancelled, {});
    } else {
      shed_expired_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*p.state, StatusCode::kDeadlineExceeded, {});
    }
  }
  if (shutdown) {
    admission_resolved_.fetch_add(1, std::memory_order_relaxed);
    Resolve(*state, StatusCode::kShutdown, {});
  } else if (reject) {
    admission_resolved_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Resolve(*state, StatusCode::kOverloaded, {});
  } else if (serve_stale) {
    std::vector<PointId> ids;
    StatusCode status = StatusCode::kOverloaded;
    std::uint64_t epoch = 0;
    std::uint64_t epoch_delta = 0;
    admission_resolved_.fetch_add(1, std::memory_order_relaxed);
    if (TryStaleAnswer(v, &ids, &status, &epoch, &epoch_delta)) {
      if (status == StatusCode::kStale) {
        stale_served_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Exact current-epoch cuboid was cached: a genuine fast hit —
        // the request never entered the queue.
        fast_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      Resolve(*state, status, std::move(ids), epoch, epoch_delta);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*state, StatusCode::kOverloaded, {});
    }
  }
  return handle;
}

ResponseHandle SkylineServer::SubmitUpdate(std::vector<Value> inserts,
                                           std::vector<PointId> removes) {
  SKYLINE_ASSERT(inserts.size() % service_.data().num_dims() == 0,
                 "SubmitUpdate: inserts must be k * num_dims values");
  updates_submitted_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<internal::ServerResultState>();
  ResponseHandle handle(state);
  const auto now = std::chrono::steady_clock::now();
  bool shutdown = false;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      shutdown = true;
    } else {
      // Privileged admission: updates bypass queue_capacity and every
      // shedding path — dropping one would silently fork the dataset
      // the clients believe they are mutating.
      Pending p;
      p.deadline = std::chrono::steady_clock::time_point::max();
      p.enqueued_at = now;
      p.state = state;
      p.is_update = true;
      p.inserts = std::move(inserts);
      p.removes = std::move(removes);
      queue_.push_back(std::move(p));
      // Wake everyone: workers blocked mid-queue behind the barrier
      // logic must re-evaluate, not just one.
      queue_cv_.NotifyAll();
    }
  }
  if (shutdown) Resolve(*state, StatusCode::kShutdown, {});
  return handle;
}

ServerResponse SkylineServer::Query(Subspace v,
                                    std::chrono::nanoseconds timeout) {
  return Submit(v, timeout).Wait();
}

void SkylineServer::WorkerLoop() {
  for (;;) {
    std::vector<CuboidGroup> groups;
    Pending update;
    bool have_update = false;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          queue_cv_.Wait(lock);
          continue;
        }
        if (update_active_) {
          // An update is being applied: no query batch may start and
          // no second update may overtake it.
          queue_cv_.Wait(lock);
          continue;
        }
        if (queue_.front().is_update) {
          if (inflight_batches_ > 0) {
            // Serialize: every batch gathered before the update must
            // fully resolve before the epoch moves.
            queue_cv_.Wait(lock);
            continue;
          }
          update = std::move(queue_.front());
          queue_.pop_front();
          have_update = true;
          update_active_ = true;
          break;
        }
        groups = GatherBatch();
        ++inflight_batches_;
        break;
      }
    }
    if (have_update) {
      const auto dispatch_time = std::chrono::steady_clock::now();
      queue_wait_.Record(ElapsedNanos(update.enqueued_at, dispatch_time));
      const std::uint64_t epoch =
          service_.ApplyUpdate(update.inserts, update.removes);
      updates_applied_.fetch_add(1, std::memory_order_relaxed);
      Resolve(*update.state, StatusCode::kOk, {}, epoch, 0);
      {
        MutexLock lock(mu_);
        update_active_ = false;
      }
      queue_cv_.NotifyAll();
    } else {
      ProcessBatch(std::move(groups));
      {
        MutexLock lock(mu_);
        --inflight_batches_;
      }
      // A worker may be parked waiting for in-flight batches to drain
      // before an update; wake everyone to re-evaluate.
      queue_cv_.NotifyAll();
    }
  }
}

std::vector<SkylineServer::CuboidGroup> SkylineServer::GatherBatch() {
  const std::size_t cap = std::max<std::size_t>(1, options_.max_batch_cuboids);
  std::vector<CuboidGroup> groups;
  std::deque<Pending> rest;
  bool hit_update = false;
  for (Pending& p : queue_) {
    // Everything at or after the first queued update stays put: those
    // requests must be answered at the post-update epoch.
    if (hit_update || p.is_update) {
      hit_update = true;
      rest.push_back(std::move(p));
      continue;
    }
    CuboidGroup* group = nullptr;
    for (CuboidGroup& g : groups) {
      if (g.v.bits() == p.v.bits()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr && groups.size() < cap) {
      groups.push_back(CuboidGroup{p.v, {}});
      group = &groups.back();
    }
    if (group != nullptr) {
      group->waiters.push_back(std::move(p));
    } else {
      rest.push_back(std::move(p));
    }
  }
  queue_.swap(rest);
  return groups;
}

void SkylineServer::ProcessBatch(std::vector<CuboidGroup> groups) {
  const auto dispatch_time = std::chrono::steady_clock::now();
  for (const CuboidGroup& g : groups) {
    for (const Pending& p : g.waiters) {
      queue_wait_.Record(ElapsedNanos(p.enqueued_at, dispatch_time));
    }
  }

  // Deterministic compute order: larger cuboids first, so results of
  // this cycle can seed its smaller members through the cuboid cache.
  std::sort(groups.begin(), groups.end(),
            [](const CuboidGroup& a, const CuboidGroup& b) {
              if (a.v.size() != b.v.size()) return a.v.size() > b.v.size();
              return a.v.bits() < b.v.bits();
            });

  // Dispatch-time triage: cancelled requests resolve now; expired ones
  // are shed or stale-served per policy (under kReject deadlines are
  // advisory and expired requests stay on the exact path).
  for (CuboidGroup& g : groups) {
    std::vector<Pending> live;
    std::vector<Pending> expired;
    live.reserve(g.waiters.size());
    for (Pending& p : g.waiters) {
      if (p.token.cancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        triaged_.fetch_add(1, std::memory_order_relaxed);
        Resolve(*p.state, StatusCode::kCancelled, {});
      } else if (p.deadline <= dispatch_time &&
                 options_.policy != OverloadPolicy::kReject) {
        expired.push_back(std::move(p));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (!expired.empty()) {
      triaged_.fetch_add(expired.size(), std::memory_order_relaxed);
      std::vector<PointId> ids;
      StatusCode status = StatusCode::kDeadlineExceeded;
      std::uint64_t epoch = 0;
      std::uint64_t epoch_delta = 0;
      if (options_.policy == OverloadPolicy::kServeStale &&
          TryStaleAnswer(g.v, &ids, &status, &epoch, &epoch_delta)) {
        if (status == StatusCode::kStale) {
          stale_served_.fetch_add(expired.size(), std::memory_order_relaxed);
        } else {
          // Exact cache serve past the deadline: these requests were
          // admitted and dispatched, so they are deadline misses — NOT
          // fast hits (which would double-count them against the
          // admission-path bucket).
          deadline_misses_.fetch_add(expired.size(),
                                     std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < expired.size(); ++i) {
          Resolve(*expired[i].state, status,
                  i + 1 == expired.size() ? std::move(ids) : ids, epoch,
                  epoch_delta);
        }
      } else {
        shed_expired_.fetch_add(expired.size(), std::memory_order_relaxed);
        for (Pending& p : expired) {
          Resolve(*p.state, StatusCode::kDeadlineExceeded, {});
        }
      }
    }
    g.waiters = std::move(live);
  }

  // Batch accounting AFTER triage: a cycle whose every request was
  // cancelled or shed computed nothing and is not a batch; only cuboids
  // with live waiters count, and batched_requests is exactly the
  // requests the batch computes answers for.
  std::uint64_t live_cuboids = 0;
  std::uint64_t live_requests = 0;
  for (const CuboidGroup& g : groups) {
    if (g.waiters.empty()) continue;
    ++live_cuboids;
    live_requests += g.waiters.size();
  }
  if (live_cuboids > 0) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_cuboids_.fetch_add(live_cuboids, std::memory_order_relaxed);
    batched_requests_.fetch_add(live_requests, std::memory_order_relaxed);
  }

  // Union seeding: when several distinct cuboids of this cycle have no
  // cached ancestor, one compute of their union gives the whole cycle a
  // shared seed — one full-dataset scan instead of one per member.
  if (options_.union_seed_threshold > 0) {
    std::uint64_t union_bits = 0;
    std::size_t unseeded = 0;
    for (const CuboidGroup& g : groups) {
      if (g.waiters.empty()) continue;
      // epoch-ok: no epoch_delta passed — only a current-epoch ancestor
      // counts as a seed; stale entries cannot seed.
      if (!service_.PeekNearestAncestor(g.v, nullptr, nullptr)) {
        union_bits |= g.v.bits();
        ++unseeded;
      }
    }
    if (unseeded >= options_.union_seed_threshold) {
      bool union_is_member = false;
      for (const CuboidGroup& g : groups) {
        if (!g.waiters.empty() && g.v.bits() == union_bits) {
          union_is_member = true;
          break;
        }
      }
      if (!union_is_member) {
        service_.Query(Subspace(union_bits));
        union_seeds_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  for (CuboidGroup& g : groups) {
    if (g.waiters.empty()) continue;
    std::uint64_t epoch = 0;
    std::vector<PointId> ids = service_.Query(g.v, &epoch);
    const auto resolve_time = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < g.waiters.size(); ++i) {
      Pending& p = g.waiters[i];
      if (p.deadline <= resolve_time) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      Resolve(*p.state, StatusCode::kOk,
              i + 1 == g.waiters.size() ? std::move(ids) : ids, epoch, 0);
    }
  }
}

bool SkylineServer::TryStaleAnswer(Subspace v, std::vector<PointId>* ids,
                                   StatusCode* status, std::uint64_t* epoch,
                                   std::uint64_t* epoch_delta) {
  Subspace ancestor;
  std::vector<PointId> seed;
  std::uint64_t seed_epoch = 0;
  std::uint64_t seed_delta = 0;
  // epoch-ok: epoch_delta is passed, deliberately opting into stale
  // entries — every answer derived here is tagged with the delta, so a
  // pre-update answer is never returned silently.
  if (!service_.PeekNearestAncestor(v, &ancestor, &seed, &seed_epoch,
                                    &seed_delta)) {
    return false;
  }
  if (ancestor.bits() == v.bits() && seed_delta == 0) {
    *ids = std::move(seed);  // exact and current — a plain cache hit
    *status = StatusCode::kOk;
    *epoch = seed_epoch;
    *epoch_delta = 0;
    return true;
  }
  // Row values per id never change across epochs (removal only
  // tombstones), so the newest version's rows are the right table even
  // for a stale seed — the result is a sorted subset of the exact
  // answer at the seed's epoch.
  const DatasetVersionPtr version = service_.current_version();
  std::uint64_t tests = 0;
  std::vector<PointId> core =
      SubspaceSkylineOverCandidates(version->data, v, seed, &tests);
  stale_tests_.fetch_add(tests, std::memory_order_relaxed);
  std::sort(core.begin(), core.end());
  *ids = std::move(core);
  *status = StatusCode::kStale;
  *epoch = seed_epoch;
  *epoch_delta = seed_delta;
  return true;
}

ServerStatsSnapshot SkylineServer::Stats() const {
  ServerStatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.admitted = admitted_.load(std::memory_order_relaxed);
  snap.fast_hits = fast_hits_.load(std::memory_order_relaxed);
  snap.admission_resolved =
      admission_resolved_.load(std::memory_order_relaxed);
  snap.triaged = triaged_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.shed_expired = shed_expired_.load(std::memory_order_relaxed);
  snap.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.stale_served = stale_served_.load(std::memory_order_relaxed);
  snap.stale_tests = stale_tests_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.batched_cuboids = batched_cuboids_.load(std::memory_order_relaxed);
  snap.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  snap.union_seeds = union_seeds_.load(std::memory_order_relaxed);
  snap.updates_submitted = updates_submitted_.load(std::memory_order_relaxed);
  snap.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  snap.stale_epoch_served =
      stale_epoch_served_.load(std::memory_order_relaxed);
  snap.stale_epoch_delta_max =
      stale_epoch_delta_max_.load(std::memory_order_relaxed);
  snap.resolved_ok = resolved_ok_.load(std::memory_order_relaxed);
  snap.resolved_stale = resolved_stale_.load(std::memory_order_relaxed);
  snap.resolved_overloaded =
      resolved_overloaded_.load(std::memory_order_relaxed);
  snap.resolved_deadline = resolved_deadline_.load(std::memory_order_relaxed);
  snap.resolved_cancelled =
      resolved_cancelled_.load(std::memory_order_relaxed);
  snap.resolved_shutdown = resolved_shutdown_.load(std::memory_order_relaxed);
  snap.queue_wait = queue_wait_.Snap();
  snap.query = service_.Stats();
  return snap;
}

}  // namespace skyline
