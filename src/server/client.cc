#include "src/server/client.h"

#include <algorithm>
#include <thread>

#include "src/core/contracts.h"

namespace skyline {

ServerResponse QueryWithRetry(SkylineServer& server, Subspace v,
                              std::chrono::nanoseconds timeout,
                              const RetryOptions& retry, int* attempts_out) {
  SKYLINE_ASSERT(retry.max_attempts >= 1,
                 "QueryWithRetry: max_attempts must be at least 1");
  SKYLINE_ASSERT(retry.backoff_multiplier >= 1.0,
                 "QueryWithRetry: backoff_multiplier must be at least 1");
  ServerResponse response;
  std::chrono::nanoseconds backoff =
      std::min(retry.initial_backoff, retry.max_backoff);
  int attempts = 0;
  for (;;) {
    ++attempts;
    response = server.Query(v, timeout);
    if (response.status != StatusCode::kOverloaded ||
        attempts >= retry.max_attempts) {
      break;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    const auto next = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * retry.backoff_multiplier));
    backoff = std::min(next, retry.max_backoff);
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return response;
}

}  // namespace skyline
