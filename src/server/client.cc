#include "src/server/client.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <random>
#include <thread>

#include "src/core/contracts.h"

namespace skyline {

namespace {

std::uint64_t ThreadLocalRandom() {
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
    return std::mt19937_64(
        (static_cast<std::uint64_t>(rd()) << 32 | rd()) ^ tid);
  }();
  return rng();
}

}  // namespace

std::chrono::nanoseconds NextBackoff(std::chrono::nanoseconds prev,
                                     const RetryOptions& retry,
                                     std::uint64_t rnd) {
  SKYLINE_ASSERT(retry.min_step.count() > 0,
                 "NextBackoff: min_step must be positive");
  const std::int64_t cap = retry.max_backoff.count();
  const std::int64_t step = retry.min_step.count();
  if (retry.jitter) {
    // Decorrelated jitter: uniform in [step, min(cap, max(step, 3 * prev))].
    // The tripled upper bound keeps the exponential envelope (mean grows
    // ~2x per retry) while spreading synchronized clients apart.
    const std::int64_t hi =
        std::min(cap, std::max(step, 3 * std::max<std::int64_t>(
                                             prev.count(), 0)));
    const std::uint64_t range = static_cast<std::uint64_t>(hi - step) + 1;
    return std::chrono::nanoseconds(
        step + static_cast<std::int64_t>(rnd % range));
  }
  // Deterministic envelope: multiplicative growth with an additive
  // floor, so the schedule is strictly increasing by at least min_step
  // until it saturates at max_backoff — even from a zero seed, where
  // `0 * multiplier == 0` would otherwise never grow.
  const double scaled =
      static_cast<double>(prev.count()) * retry.backoff_multiplier;
  const std::int64_t grown = std::max(
      static_cast<std::int64_t>(scaled),
      prev.count() > std::numeric_limits<std::int64_t>::max() - step
          ? std::numeric_limits<std::int64_t>::max()
          : prev.count() + step);
  return std::chrono::nanoseconds(std::min(cap, grown));
}

ServerResponse QueryWithRetry(SkylineServer& server, Subspace v,
                              std::chrono::nanoseconds timeout,
                              const RetryOptions& retry, int* attempts_out) {
  SKYLINE_ASSERT(retry.max_attempts >= 1,
                 "QueryWithRetry: max_attempts must be at least 1");
  SKYLINE_ASSERT(retry.backoff_multiplier >= 1.0,
                 "QueryWithRetry: backoff_multiplier must be at least 1");
  SKYLINE_ASSERT(retry.min_step.count() > 0,
                 "QueryWithRetry: min_step must be positive");
  ServerResponse response;
  std::chrono::nanoseconds prev =
      std::min(retry.initial_backoff, retry.max_backoff);
  int attempts = 0;
  for (;;) {
    ++attempts;
    response = server.Query(v, timeout);
    if (response.status != StatusCode::kOverloaded ||
        attempts >= retry.max_attempts) {
      break;
    }
    const std::chrono::nanoseconds backoff =
        NextBackoff(prev, retry, ThreadLocalRandom());
    std::this_thread::sleep_for(backoff);
    prev = backoff;
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return response;
}

}  // namespace skyline
