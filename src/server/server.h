// Deadline-aware batched admission front-end for QueryService — the
// asynchronous serving layer of the skyline system.
//
// QueryService (src/query) answers one subspace-skyline query per
// caller thread, synchronously: under a burst of misses every caller
// blocks on a cuboid computation with no deadline, no backpressure and
// no way to shed load. SkylineServer puts an admission + batching layer
// in front of it:
//
//   * Admission: Submit() never computes. It places the request on a
//     bounded queue and returns a ResponseHandle immediately; the
//     caller blocks only if and when it chooses to Wait(). A full queue
//     triggers the configured OverloadPolicy instead of unbounded
//     queueing.
//   * Batching: a worker pool drains the queue in dispatch cycles. One
//     cycle gathers up to `max_batch_cuboids` distinct cuboids plus
//     EVERY queued duplicate of them (same-cuboid coalescing), so a
//     Zipf-hot cuboid is computed once per cycle no matter how many
//     requests queued behind it. When a cycle holds several distinct
//     cuboids that are not yet seeded by a cached ancestor, the worker
//     first computes their UNION cuboid once and lets the cuboid cache
//     seed every member from it — one full-dataset scan amortized over
//     the whole batch instead of one scan per member (the top-down
//     skycube sharing scheme applied to the request stream itself).
//   * Deadlines: every request carries a relative timeout (kNoTimeout =
//     none). Deadlines are enforced at dispatch time: a request that
//     expired while queued is shed (kDeadlineExceeded), served a
//     bounded-staleness answer from the nearest cached ancestor
//     (kStale), or served exactly anyway and counted as a soft miss —
//     depending on the policy. Expiry during a compute never aborts the
//     compute; the result is served and counted as a deadline miss.
//   * Cancellation: a CancellationToken resolves the request with
//     kCancelled at its next dispatch; best-effort (a request already
//     being computed still completes as kOk).
//
//   * Mutation: SubmitUpdate() enqueues a dataset update (inserts +
//     removes) as a PRIVILEGED request class — never rejected or shed,
//     immune to queue_capacity. The batcher serializes it against query
//     batches: no query batch gathered before the update dispatches
//     after it, workers drain in-flight batches before applying it, and
//     no batch starts while it applies. Every response carries the
//     epoch its answer reflects; with kServeStale, a pre-update cached
//     answer is surfaced as kStale *tagged with its epoch delta*
//     (current epoch − answer epoch) — never silently.
//
// Status contract (tests/server/ asserts it): kOk answers are EXACT at
// the response's `epoch` and ascending; kStale answers are a sorted
// SUBSET of the exact answer at the response's `epoch` (every returned
// id is truly in that skyline — only duplicate-projection ties may be
// missing), with `epoch_delta` telling how many updates that epoch
// lags; every other status carries no ids.
//
// See docs/server.md for the admission/batching/degradation state
// machine and its invariants; src/server/client.h adds the
// retry-with-backoff client helper for transient kOverloaded results.
#ifndef SKYLINE_SERVER_SERVER_H_
#define SKYLINE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/subspace.h"
#include "src/core/sync.h"
#include "src/harness/histogram.h"
#include "src/query/query_service.h"

namespace skyline {

/// Terminal status of a submitted request.
enum class StatusCode {
  kOk,                ///< Exact answer, ids ascending.
  kStale,             ///< Degraded answer: sorted subset of the exact one.
  kOverloaded,        ///< Rejected at admission (queue full). Retryable.
  kDeadlineExceeded,  ///< Shed: the deadline passed before dispatch.
  kCancelled,         ///< The request's CancellationToken fired.
  kShutdown,          ///< Server destroyed before the request dispatched.
};

/// Human-readable status name ("kOk", ...), for logs and tests.
const char* StatusCodeName(StatusCode code);

/// No-deadline sentinel for Submit()'s relative timeout.
inline constexpr std::chrono::nanoseconds kNoTimeout =
    std::chrono::nanoseconds::max();

/// How admission and dispatch degrade under pressure.
enum class OverloadPolicy {
  /// Full queue: reject with kOverloaded. Deadlines are advisory —
  /// expired requests are still served exactly and only counted as
  /// deadline misses.
  kReject,
  /// Full queue: first shed queued requests whose deadline already
  /// passed (kDeadlineExceeded), then admit if room, else reject.
  /// Expired requests are shed at dispatch instead of computed.
  kShedExpired,
  /// Like kShedExpired, but an expired or inadmissible request is
  /// served a bounded-staleness answer from the nearest cached ancestor
  /// cuboid (kStale) instead of being dropped, when one exists.
  kServeStale,
};

/// Tuning knobs of the serving layer.
struct ServerOptions {
  /// Bound on queued (admitted, undispatched) requests. A Submit that
  /// finds the queue full triggers `policy`. 0 is legal and makes every
  /// Submit an overload (useful for testing the degradation paths).
  std::size_t queue_capacity = 1024;

  /// Worker threads draining the queue; 0 = hardware pick.
  unsigned workers = 0;

  /// Degradation policy under overload and for expired requests.
  OverloadPolicy policy = OverloadPolicy::kShedExpired;

  /// Distinct cuboids gathered per dispatch cycle. 1 disables
  /// cross-cuboid batching (same-cuboid coalescing always applies).
  std::size_t max_batch_cuboids = 16;

  /// Compute the union cuboid as a shared seed when a dispatch cycle
  /// holds at least this many distinct unseeded cuboids; 0 disables
  /// union seeding.
  std::size_t union_seed_threshold = 2;

  /// Resolve a Submit whose exact cuboid is already cached and ready
  /// inline, without queueing — cache hits then never pay queue latency
  /// or a dispatch cycle.
  bool inline_fast_hits = true;

  /// Spawn the worker pool in the constructor. With false, the server
  /// only queues until Start() is called — deterministic batch
  /// composition for tests and benchmarks.
  bool auto_start = true;

  /// Options of the inner QueryService (cache bounds, pinning, seeded
  /// kernels, ...).
  QueryServiceOptions query;
};

/// Cooperative cancellation handle; copyable, thread-safe. All copies
/// share one flag.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Terminal answer of one request.
struct ServerResponse {
  StatusCode status = StatusCode::kShutdown;
  /// kOk: the exact skyline ids, ascending. kStale: a sorted subset of
  /// them. Empty for every other status.
  std::vector<PointId> ids;
  /// Dataset epoch the answer reflects (kOk/kStale; for a SubmitUpdate
  /// handle, the epoch the update installed). 0 otherwise.
  std::uint64_t epoch = 0;
  /// How many updates `epoch` lags the epoch that was current when the
  /// answer was produced. 0 for every kOk answer; > 0 only on kStale
  /// answers served from a pre-update cache entry.
  std::uint64_t epoch_delta = 0;
  /// When the server resolved the request (steady clock) — lets callers
  /// compute true request latency without measuring their own Wait()
  /// wakeup delay.
  std::chrono::steady_clock::time_point resolved_at{};

  bool ok() const {
    return status == StatusCode::kOk || status == StatusCode::kStale;
  }
};

namespace internal {

/// Shared one-shot slot a request is resolved into. Resolved exactly
/// once (done flips under mu); waiters block on cv.
struct ServerResultState {
  Mutex mu;
  CondVar cv;
  bool done SKYLINE_GUARDED_BY(mu) = false;
  StatusCode status SKYLINE_GUARDED_BY(mu) = StatusCode::kShutdown;
  std::vector<PointId> ids SKYLINE_GUARDED_BY(mu);
  std::uint64_t epoch SKYLINE_GUARDED_BY(mu) = 0;
  std::uint64_t epoch_delta SKYLINE_GUARDED_BY(mu) = 0;
  std::chrono::steady_clock::time_point resolved_at SKYLINE_GUARDED_BY(mu);
};

}  // namespace internal

/// Caller-side view of a submitted request. Cheap to copy; outlives the
/// server (a handle resolved kShutdown stays readable after the server
/// is gone).
class ResponseHandle {
 public:
  ResponseHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the request resolves; repeatable (returns a copy).
  ServerResponse Wait() const;

  /// Non-blocking poll: copies the response into `*out` and returns
  /// true once resolved.
  bool TryGet(ServerResponse* out) const;

 private:
  friend class SkylineServer;
  explicit ResponseHandle(std::shared_ptr<internal::ServerResultState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::ServerResultState> state_;
};

/// Counters of the serving layer, cumulative since construction, plus
/// the inner QueryService snapshot.
struct ServerStatsSnapshot {
  std::uint64_t submitted = 0;  ///< Submit() calls (queries only).
  std::uint64_t admitted = 0;   ///< Entered the queue.
  /// Resolved kOk straight from the cache WITHOUT a dispatch cycle —
  /// the inline path in Submit() or the cache-exact branch of the
  /// kServeStale admission fallback. A request that was admitted and
  /// later served from the cache at dispatch is NOT a fast hit (it is
  /// batched, and a deadline miss if expired).
  std::uint64_t fast_hits = 0;
  /// Requests resolved at Submit() time without entering the queue:
  /// inline fast hits, admission rejections, the kServeStale admission
  /// fallback, and submits against a stopping server. Admission
  /// identity: submitted == admitted + admission_resolved.
  std::uint64_t admission_resolved = 0;
  /// Admitted requests resolved WITHOUT a batch compute: shed from the
  /// queue by the make-room pass, or triaged at dispatch (cancelled,
  /// shed expired, expired served from the cache). Queue identity once
  /// the queue is drained: admitted == batched_requests + triaged
  /// (+ requests orphaned by shutdown).
  std::uint64_t triaged = 0;
  std::uint64_t rejected = 0;      ///< kOverloaded at admission.
  std::uint64_t shed_expired = 0;  ///< kDeadlineExceeded (queue or dispatch).
  std::uint64_t deadline_misses = 0;  ///< kOk served past the deadline.
  std::uint64_t cancelled = 0;        ///< kCancelled at dispatch.
  std::uint64_t stale_served = 0;     ///< kStale responses.
  std::uint64_t stale_tests = 0;   ///< Dominance tests on the stale path.
  /// Dispatch cycles that computed at least one cuboid for a live
  /// waiter. Cycles fully consumed by triage (all requests cancelled or
  /// shed) are not batches.
  std::uint64_t batches = 0;
  std::uint64_t batched_cuboids = 0;   ///< Distinct cuboids computed.
  std::uint64_t batched_requests = 0;  ///< Requests resolved by a batch
                                       ///< compute (kOk at dispatch).
  std::uint64_t union_seeds = 0;  ///< Union cuboids computed as batch seeds.

  // ---- Mutation counters ----
  std::uint64_t updates_submitted = 0;  ///< SubmitUpdate() calls.
  std::uint64_t updates_applied = 0;    ///< Updates the batcher applied.
  std::uint64_t stale_epoch_served = 0;  ///< kStale with epoch_delta > 0 —
                                         ///< pre-update answers, tagged.
  std::uint64_t stale_epoch_delta_max = 0;  ///< Largest delta ever served.

  // ---- Terminal accounting (exactly one per resolved handle) ----
  // Incremented at the resolve transition itself, so after every handle
  // of a run has resolved:
  //   submitted + updates_submitted == resolved_ok + resolved_stale +
  //     resolved_overloaded + resolved_deadline + resolved_cancelled +
  //     resolved_shutdown
  // (an update handle resolves kOk, or kShutdown when never applied).
  std::uint64_t resolved_ok = 0;
  std::uint64_t resolved_stale = 0;
  std::uint64_t resolved_overloaded = 0;
  std::uint64_t resolved_deadline = 0;
  std::uint64_t resolved_cancelled = 0;
  std::uint64_t resolved_shutdown = 0;

  LatencyHistogram::Snapshot queue_wait;  ///< Submit-to-dispatch wait.
  QueryStatsSnapshot query;               ///< Inner QueryService counters.

  /// Requests per dispatch cycle — the coalescing factor.
  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }

  std::uint64_t resolved_total() const {
    return resolved_ok + resolved_stale + resolved_overloaded +
           resolved_deadline + resolved_cancelled + resolved_shutdown;
  }
};

/// Asynchronous, deadline-aware, batching skyline server over one
/// Dataset (which must outlive the server and stay unmodified — it is
/// snapshotted as epoch 0, and all later mutation goes through
/// SubmitUpdate). All public methods are safe to call concurrently.
class SkylineServer {
 public:
  explicit SkylineServer(const Dataset& data, ServerOptions options = {});

  /// Resolves every still-queued request with kShutdown, then joins the
  /// workers. In-flight computations finish and resolve normally.
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Spawns the worker pool; idempotent. Only needed with
  /// ServerOptions::auto_start == false.
  void Start() SKYLINE_EXCLUDES(mu_);

  /// Non-blocking admission of a skyline query for the non-empty
  /// subspace `v` with a relative deadline of `timeout` (kNoTimeout =
  /// none; <= 0 = already expired, subject to the overload policy at
  /// dispatch). The returned handle always resolves — with one of the
  /// StatusCode outcomes — even across server shutdown.
  ResponseHandle Submit(Subspace v,
                        std::chrono::nanoseconds timeout = kNoTimeout,
                        CancellationToken token = {}) SKYLINE_EXCLUDES(mu_);

  /// Non-blocking admission of a dataset update: `inserts` is a
  /// row-major block of k * num_dims values appended as k new points,
  /// `removes` tombstones live pre-existing points (see
  /// QueryService::ApplyUpdate for the id rules). Updates are a
  /// privileged request class: never rejected, shed or cancelled, and
  /// exempt from queue_capacity — only shutdown resolves one without
  /// applying it. The batcher serializes the update against query
  /// batches in queue order; the handle resolves kOk with `epoch` set
  /// to the epoch the update installed (ids empty).
  ResponseHandle SubmitUpdate(std::vector<Value> inserts,
                              std::vector<PointId> removes)
      SKYLINE_EXCLUDES(mu_);

  /// Convenience: Submit + Wait.
  ServerResponse Query(Subspace v,
                       std::chrono::nanoseconds timeout = kNoTimeout)
      SKYLINE_EXCLUDES(mu_);

  /// Copies the current counters; safe to call concurrently.
  ServerStatsSnapshot Stats() const SKYLINE_EXCLUDES(mu_);

  const ServerOptions& options() const { return options_; }
  const QueryService& service() const { return service_; }

 private:
  /// One admitted, undispatched request — a query, or a privileged
  /// dataset update (is_update) that the batcher serializes against
  /// query batches.
  struct Pending {
    Subspace v;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueued_at;
    CancellationToken token;
    std::shared_ptr<internal::ServerResultState> state;
    bool is_update = false;
    std::vector<Value> inserts;    ///< is_update only: row-major block.
    std::vector<PointId> removes;  ///< is_update only.
  };

  /// All requests of one distinct cuboid within a dispatch cycle.
  struct CuboidGroup {
    Subspace v;
    std::vector<Pending> waiters;
  };

  /// Resolves `state` exactly once (later calls are no-ops) and — only
  /// on the actual transition — increments the matching resolved_*
  /// terminal counter and the stale-epoch tallies, so the accounting
  /// identity in ServerStatsSnapshot holds by construction.
  void Resolve(internal::ServerResultState& state, StatusCode status,
               std::vector<PointId> ids, std::uint64_t epoch = 0,
               std::uint64_t epoch_delta = 0);

  void WorkerLoop() SKYLINE_EXCLUDES(mu_);

  /// Pops the next dispatch cycle off the queue: up to
  /// `max_batch_cuboids` distinct cuboids from the front plus every
  /// queued duplicate of them. Stops at the first queued update — a
  /// query submitted after an update must never coalesce into a batch
  /// dispatched before it.
  std::vector<CuboidGroup> GatherBatch() SKYLINE_REQUIRES(mu_);

  /// Computes / sheds / stale-serves one gathered cycle.
  void ProcessBatch(std::vector<CuboidGroup> groups) SKYLINE_EXCLUDES(mu_);

  /// Bounded-staleness answer for `v` from the nearest cached ancestor:
  /// `*status` is kOk when the exact current-epoch cuboid is cached,
  /// kStale (sorted subset of the exact answer at `*epoch`) when
  /// computed from an ancestor's candidates — possibly a stale entry,
  /// reported through `*epoch` / `*epoch_delta`. Returns false — caller
  /// picks the fallback status — when nothing is cached. Never touches
  /// the full dataset.
  bool TryStaleAnswer(Subspace v, std::vector<PointId>* ids,
                      StatusCode* status, std::uint64_t* epoch,
                      std::uint64_t* epoch_delta);

  const ServerOptions options_;
  QueryService service_;  // unguarded: internally synchronized

  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ SKYLINE_GUARDED_BY(mu_);
  bool stopping_ SKYLINE_GUARDED_BY(mu_) = false;
  bool started_ SKYLINE_GUARDED_BY(mu_) = false;
  /// The update barrier: while an update is being applied no query
  /// batch may start, and an update may only start once every in-flight
  /// batch has drained.
  bool update_active_ SKYLINE_GUARDED_BY(mu_) = false;
  std::size_t inflight_batches_ SKYLINE_GUARDED_BY(mu_) = 0;
  // Written only while holding mu_ in Start(); joined in the destructor
  // after every worker exited, so never accessed concurrently.
  std::vector<std::thread> workers_;  // unguarded: joined before access

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> fast_hits_{0};
  std::atomic<std::uint64_t> admission_resolved_{0};
  std::atomic<std::uint64_t> triaged_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_expired_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> stale_served_{0};
  std::atomic<std::uint64_t> stale_tests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_cuboids_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> union_seeds_{0};
  std::atomic<std::uint64_t> updates_submitted_{0};
  std::atomic<std::uint64_t> updates_applied_{0};
  std::atomic<std::uint64_t> stale_epoch_served_{0};
  std::atomic<std::uint64_t> stale_epoch_delta_max_{0};
  std::atomic<std::uint64_t> resolved_ok_{0};
  std::atomic<std::uint64_t> resolved_stale_{0};
  std::atomic<std::uint64_t> resolved_overloaded_{0};
  std::atomic<std::uint64_t> resolved_deadline_{0};
  std::atomic<std::uint64_t> resolved_cancelled_{0};
  std::atomic<std::uint64_t> resolved_shutdown_{0};
  LatencyHistogram queue_wait_;  // unguarded: internally lock-free atomics
};

}  // namespace skyline

#endif  // SKYLINE_SERVER_SERVER_H_
