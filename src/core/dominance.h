// Dominance-test kernels (Definition 3.1) and dominating-subspace
// computation (Definition 3.4). These inner loops are the unit of cost the
// whole paper is about reducing, so they are kept branch-light and free of
// virtual dispatch.
#ifndef SKYLINE_CORE_DOMINANCE_H_
#define SKYLINE_CORE_DOMINANCE_H_

#include <cstdint>

#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {

/// Full classification of an ordered pair of points.
enum class DominanceRelation {
  kFirstDominates,   // a < b
  kSecondDominates,  // b < a
  kEqual,            // a[i] == b[i] for all i
  kIncomparable,     // a ~ b (neither dominates)
};

/// Human-readable name of a relation, e.g. "incomparable".
const char* ToString(DominanceRelation r);

/// Returns true iff a dominates b: a[i] <= b[i] in every dimension and
/// a[k] < b[k] in at least one.
inline bool Dominates(const Value* a, const Value* b, Dim d) {
  bool strict = false;
  for (Dim i = 0; i < d; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

/// Returns true iff a dominates b or a equals b (a "weakly dominates" b).
inline bool DominatesOrEqual(const Value* a, const Value* b, Dim d) {
  for (Dim i = 0; i < d; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Classifies the pair (a, b) in one pass over the d dimensions.
inline DominanceRelation Compare(const Value* a, const Value* b, Dim d) {
  bool a_better = false;
  bool b_better = false;
  for (Dim i = 0; i < d; ++i) {
    if (a[i] < b[i]) {
      a_better = true;
      if (b_better) return DominanceRelation::kIncomparable;
    } else if (b[i] < a[i]) {
      b_better = true;
      if (a_better) return DominanceRelation::kIncomparable;
    }
  }
  if (a_better) return DominanceRelation::kFirstDominates;
  if (b_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

/// Dominating subspace D_{q<p} of q with respect to p (Definition 3.4):
/// the set of dimensions where q is strictly better than p. By the
/// definition's complement clause, an empty result means p weakly
/// dominates q (p <= q), i.e. q is dominated unless q == p.
inline Subspace DominatingSubspace(const Value* q, const Value* p, Dim d) {
  Subspace s;
  for (Dim i = 0; i < d; ++i) {
    if (q[i] < p[i]) s.Add(i);
  }
  return s;
}

/// Dominating subspace plus equality detection in a single O(d) scan:
/// like DominatingSubspace, but also reports through `q_somewhere_worse`
/// whether q is strictly worse than p in any dimension. An empty result
/// with `*q_somewhere_worse == false` means q == p. Used by the Merge
/// pass so that pruning and duplicate detection cost one scan.
inline Subspace DominatingSubspaceEx(const Value* q, const Value* p, Dim d,
                                     bool* q_somewhere_worse) {
  Subspace s;
  bool worse = false;
  for (Dim i = 0; i < d; ++i) {
    if (q[i] < p[i]) {
      s.Add(i);
    } else if (q[i] > p[i]) {
      worse = true;
    }
  }
  *q_somewhere_worse = worse;
  return s;
}

/// Convenience wrapper binding a Dataset and a dominance-test counter.
///
/// Algorithms route all pairwise comparisons through one of these so the
/// mean-dominance-test metric of the paper's evaluation is counted
/// uniformly: each call costs one O(d) row scan and increments the counter
/// by one.
class DominanceTester {
 public:
  explicit DominanceTester(const Dataset& data)
      : data_(data), d_(data.num_dims()) {}

  /// a < b ?
  bool Dominates(PointId a, PointId b) {
    ++tests_;
    return skyline::Dominates(data_.row(a), data_.row(b), d_);
  }

  /// a <= b (dominates or equal)?
  bool DominatesOrEqual(PointId a, PointId b) {
    ++tests_;
    return skyline::DominatesOrEqual(data_.row(a), data_.row(b), d_);
  }

  DominanceRelation Compare(PointId a, PointId b) {
    ++tests_;
    return skyline::Compare(data_.row(a), data_.row(b), d_);
  }

  /// D_{q<p}: dimensions where q is strictly better than p.
  Subspace DominatingSubspace(PointId q, PointId p) {
    ++tests_;
    return skyline::DominatingSubspace(data_.row(q), data_.row(p), d_);
  }

  std::uint64_t tests() const { return tests_; }
  const Dataset& data() const { return data_; }

 private:
  const Dataset& data_;
  Dim d_;
  std::uint64_t tests_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_DOMINANCE_H_
