// Dominance-test kernels (Definition 3.1) and dominating-subspace
// computation (Definition 3.4). These inner loops are the unit of cost the
// whole paper is about reducing, so they are kept branch-light and free of
// virtual dispatch.
//
// Two tiers live here:
//   * the scalar reference functions below — simple early-exit loops over
//     unpadded rows, the semantic ground truth;
//   * DominanceTester, which routes every test through the vectorized
//     kernels of src/core/kernels.h over a padded, 64-byte-aligned copy
//     of the dataset (AlignedDataset). Results are bit-identical to the
//     scalar tier; tests/core/kernel_differential_test.cc enforces it.
#ifndef SKYLINE_CORE_DOMINANCE_H_
#define SKYLINE_CORE_DOMINANCE_H_

#include <cstdint>
#include <span>

#include "src/core/cpu.h"
#include "src/core/dataset.h"
#include "src/core/kernels.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {

/// Human-readable name of a relation, e.g. "incomparable".
const char* ToString(DominanceRelation r);

/// Returns true iff a dominates b: a[i] <= b[i] in every dimension and
/// a[k] < b[k] in at least one. Scalar reference implementation.
inline bool Dominates(const Value* a, const Value* b, Dim d) {
  bool strict = false;
  for (Dim i = 0; i < d; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

/// Returns true iff a dominates b or a equals b (a "weakly dominates" b).
inline bool DominatesOrEqual(const Value* a, const Value* b, Dim d) {
  for (Dim i = 0; i < d; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Classifies the pair (a, b) in one pass over the d dimensions.
inline DominanceRelation Compare(const Value* a, const Value* b, Dim d) {
  bool a_better = false;
  bool b_better = false;
  for (Dim i = 0; i < d; ++i) {
    if (a[i] < b[i]) {
      a_better = true;
      if (b_better) return DominanceRelation::kIncomparable;
    } else if (b[i] < a[i]) {
      b_better = true;
      if (a_better) return DominanceRelation::kIncomparable;
    }
  }
  if (a_better) return DominanceRelation::kFirstDominates;
  if (b_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

/// Dominating subspace D_{q<p} of q with respect to p (Definition 3.4):
/// the set of dimensions where q is strictly better than p. By the
/// definition's complement clause, an empty result means p weakly
/// dominates q (p <= q), i.e. q is dominated unless q == p.
inline Subspace DominatingSubspace(const Value* q, const Value* p, Dim d) {
  Subspace s;
  for (Dim i = 0; i < d; ++i) {
    if (q[i] < p[i]) s.Add(i);
  }
  return s;
}

/// Dominating subspace plus equality detection in a single O(d) scan:
/// like DominatingSubspace, but also reports through `q_somewhere_worse`
/// whether q is strictly worse than p in any dimension. An empty result
/// with `*q_somewhere_worse == false` means q == p. Used by the Merge
/// pass so that pruning and duplicate detection cost one scan.
inline Subspace DominatingSubspaceEx(const Value* q, const Value* p, Dim d,
                                     bool* q_somewhere_worse) {
  Subspace s;
  bool worse = false;
  for (Dim i = 0; i < d; ++i) {
    if (q[i] < p[i]) {
      s.Add(i);
    } else if (q[i] > p[i]) {
      worse = true;
    }
  }
  *q_somewhere_worse = worse;
  return s;
}

/// Convenience wrapper binding a Dataset and a dominance-test counter.
///
/// Algorithms route all pairwise comparisons through one of these so the
/// mean-dominance-test metric of the paper's evaluation is counted
/// uniformly. Counter contract: **one test per pivot actually scanned**.
/// Every single-pair call costs one O(d) row scan and charges exactly
/// one; the batched calls (DominatesAny) charge one per pivot the
/// equivalent scalar early-exit loop would have consumed — the number of
/// pivots up to and including the first dominator, or the whole block
/// when none dominates — never one per *call*. DT tables therefore stay
/// comparable to the paper regardless of which path executed; the
/// differential tests assert the batched and scalar charges agree.
///
/// Internally the tester owns a padded, 64-byte-aligned copy of the
/// dataset rows (AlignedDataset) and runs the vectorized kernels over
/// it. The copies are bit-identical, so results match the scalar
/// reference functions exactly. The quantized prefilter plane of that
/// copy is built lazily on the first prefilter-sized DominatesAny
/// window, so constructing a tester costs only the exact-row gather.
class DominanceTester {
 public:
  explicit DominanceTester(const Dataset& data)
      : data_(data), aligned_(data), d_(data.num_dims()) {}

  /// a < b ? (charges 1)
  bool Dominates(PointId a, PointId b) {
    ++tests_;
    return kernels::Dominates(aligned_.row(a), aligned_.row(b), d_);
  }

  /// a <= b (dominates or equal)? (charges 1)
  bool DominatesOrEqual(PointId a, PointId b) {
    ++tests_;
    return kernels::DominatesOrEqual(aligned_.row(a), aligned_.row(b), d_);
  }

  /// Classifies the pair (a, b). (charges 1)
  DominanceRelation Compare(PointId a, PointId b) {
    ++tests_;
    return kernels::Compare(aligned_.row(a), aligned_.row(b), d_);
  }

  /// D_{q<p}: dimensions where q is strictly better than p. (charges 1)
  Subspace DominatingSubspace(PointId q, PointId p) {
    ++tests_;
    return kernels::DominatingSubspace(aligned_.row(q), aligned_.row(p), d_);
  }

  /// True iff any point of `candidates` dominates q, scanning the block
  /// in order in one batched pass. Charges one test per pivot scanned
  /// (first dominator inclusive), exactly like the scalar loop
  /// `for (s : candidates) if (Dominates(s, q)) break;` it replaces.
  bool DominatesAny(std::span<const PointId> candidates, PointId q) {
    // The quantized prefilter plane is built lazily, the first time a
    // probe window is large enough for the kernels to use it at all.
    // Runs whose windows stay below the threshold (correlated data,
    // tiny skylines) never pay the O(n*d) plane build; after the first
    // build this is a single flag test.
    if (candidates.size() >= cpu::kPrefilterMinBlock) {
      aligned_.EnsureQuantized();
    }
    const kernels::BatchProbeResult r =
        kernels::DominatesAny(aligned_, candidates, aligned_.row(q), d_);
    tests_ += r.scanned;
    return r.first != kernels::kNoDominator;
  }

  std::uint64_t tests() const { return tests_; }
  const Dataset& data() const { return data_; }

  /// The aligned row copy the kernels run over.
  const AlignedDataset& aligned() const { return aligned_; }

 private:
  const Dataset& data_;
  AlignedDataset aligned_;
  Dim d_;
  std::uint64_t tests_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_DOMINANCE_H_
