#include "src/core/verify.h"

#include <algorithm>

#include "src/core/dominance.h"

namespace skyline {

std::vector<PointId> ReferenceSkyline(const Dataset& data) {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  std::vector<PointId> result;
  for (PointId i = 0; i < n; ++i) {
    bool dominated = false;
    for (PointId j = 0; j < n && !dominated; ++j) {
      if (i != j && Dominates(data.row(j), data.row(i), d)) dominated = true;
    }
    if (!dominated) result.push_back(i);
  }
  return result;
}

bool IsSkylineOf(const Dataset& data, std::vector<PointId> candidate) {
  return SameIdSet(ReferenceSkyline(data), std::move(candidate));
}

bool SameIdSet(std::vector<PointId> a, std::vector<PointId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace skyline
