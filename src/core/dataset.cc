#include "src/core/contracts.h"
#include "src/core/dataset.h"

#include <sstream>

namespace skyline {

Dataset Dataset::FromRows(
    std::initializer_list<std::initializer_list<Value>> rows) {
  SKYLINE_ASSERT(rows.size() > 0, "FromRows: need at least one row");
  Dataset data(static_cast<Dim>(rows.begin()->size()));
  for (const auto& r : rows) {
    SKYLINE_ASSERT(r.size() == data.num_dims(),
                   "FromRows: ragged rows are not allowed");
    data.values_.insert(data.values_.end(), r.begin(), r.end());
  }
  return data;
}

Dataset Dataset::FromRows(const std::vector<std::vector<Value>>& rows) {
  SKYLINE_ASSERT(!rows.empty(), "FromRows: need at least one row");
  Dataset data(static_cast<Dim>(rows.front().size()));
  for (const auto& r : rows) {
    SKYLINE_ASSERT(r.size() == data.num_dims(),
                   "FromRows: ragged rows are not allowed");
    data.values_.insert(data.values_.end(), r.begin(), r.end());
  }
  return data;
}

std::string Dataset::PointToString(PointId id) const {
  std::ostringstream out;
  out << "(";
  for (Dim i = 0; i < num_dims_; ++i) {
    if (i > 0) out << ", ";
    out << at(id, i);
  }
  out << ")";
  return out.str();
}

}  // namespace skyline
