// Monotone scoring functions used by sorting-based skyline algorithms.
//
// A sorting function f is admissible for skyline presorting when
// f(p) < f(q) implies q does not dominate p (Section 2 of the paper).
// All functions here are monotone in that sense on non-negative data; kSum
// is monotone on arbitrary data and is the library default.
#ifndef SKYLINE_CORE_SCORES_H_
#define SKYLINE_CORE_SCORES_H_

#include <string_view>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/types.h"

namespace skyline {

/// Available monotone sorting functions.
enum class ScoreFunction {
  /// f(p) = sum_i p[i]. Monotone for arbitrary values; if p < q then
  /// f(p) < f(q) strictly.
  kSum,
  /// f(p) = sum_i ln(1 + p[i]), the "entropy" scoring of SFS/LESS.
  /// Requires values > -1; strictly monotone under dominance.
  kEntropy,
  /// f(p) = min_i p[i], the minC function of SaLSa. Only *weakly*
  /// monotone (a dominator can tie); users must tie-break with a strictly
  /// monotone function — SortedByScore does this with kSum.
  kMinCoordinate,
  /// f(p) = sum_i p[i]^2, squared Euclidean distance to the origin, the
  /// scoring of Algorithm 1 (Merge) and of the SDI stop point. Strictly
  /// monotone under dominance for non-negative values.
  kEuclidean,
};

/// Human-readable name, e.g. "sum".
std::string_view ToString(ScoreFunction f);

/// Score of a single point.
Value ScorePoint(const Value* p, Dim d, ScoreFunction f);

/// Scores of all points, indexed by PointId.
std::vector<Value> ComputeScores(const Dataset& data, ScoreFunction f);

/// All point ids sorted ascending by (f, sum, id).
///
/// The (f, sum) lexicographic order guarantees that a dominator always
/// precedes the points it dominates, even for the weakly monotone
/// kMinCoordinate: if p < q then sum(p) < sum(q) breaks any f-tie.
std::vector<PointId> SortedByScore(const Dataset& data, ScoreFunction f);

/// Id of the point minimizing (f, sum, id); kInvalidPoint on empty data.
/// For strictly monotone f, this point is always a skyline point.
PointId ArgMinScore(const Dataset& data, ScoreFunction f);

}  // namespace skyline

#endif  // SKYLINE_CORE_SCORES_H_
