// AlignedDataset: the padded, cache-line-aligned storage variant of
// Dataset used by the vectorized dominance kernels (src/core/kernels.h).
//
// Dataset keeps rows packed (stride == num_dims) because it is the
// user-facing, append-friendly container. The kernels instead want:
//
//   * every row starting on a 64-byte boundary (aligned vector loads),
//   * a power-of-two-friendly stride (no cross-row dependence when the
//     compiler unrolls across the tail), and
//   * an accessor without bounds checks on the hot path.
//
// AlignedDataset is built by copying rows out of a Dataset — either all
// of them or a gathered subset — into storage whose stride is num_dims
// rounded up to a full cache line. The padding tail of each row is
// zero-filled but, by contract, NEVER read by any kernel: all kernels
// loop over exactly num_dims() values, which the differential tests
// verify by poisoning the tail (FillPaddingForTesting) and re-checking
// results. Values are bit-identical copies, so any computation routed
// through an AlignedDataset produces exactly the results of the same
// computation on the source Dataset rows.
//
// Accessor contract: `row(i)` is checked under SKYLINE_ASSERT (active in
// Debug and SKYLINE_CHECKS builds, free in plain Release);
// `row_unchecked(i)` is never checked and exists for kernel interiors
// that have already validated their index block once up front.
#ifndef SKYLINE_CORE_ALIGNED_DATASET_H_
#define SKYLINE_CORE_ALIGNED_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/core/aligned.h"
#include "src/core/contracts.h"
#include "src/core/dataset.h"
#include "src/core/types.h"

namespace skyline {

class AlignedDataset {
 public:
  /// Copies every row of `data` (row i here == point i of `data`).
  explicit AlignedDataset(const Dataset& data);

  /// Gathers the rows named by `ids` (row i here == data.row(ids[i])).
  /// Used by the Merge pass to turn a scattered partition into a dense
  /// block that is scanned sequentially.
  AlignedDataset(const Dataset& data, std::span<const PointId> ids);

  std::size_t num_rows() const { return num_rows_; }
  Dim num_dims() const { return num_dims_; }

  /// Row stride in Values: num_dims rounded up to a whole cache line.
  std::size_t stride() const { return stride_; }

  /// Checked row accessor (free in Release without SKYLINE_CHECKS).
  const Value* row(std::size_t i) const {
    SKYLINE_ASSERT(i < num_rows_, "AlignedDataset::row: index out of range");
    return row_unchecked(i);
  }

  /// Unchecked row accessor for kernel interiors; the caller must have
  /// established i < num_rows().
  const Value* row_unchecked(std::size_t i) const {
    return values_.data() + i * stride_;
  }

  /// Overwrites every padding slot (columns num_dims..stride-1 of every
  /// row) with `v`. Test-only: proves the kernels never read the tail.
  void FillPaddingForTesting(Value v);

 private:
  Dim num_dims_;
  std::size_t stride_;
  std::size_t num_rows_;
  std::vector<Value, AlignedAllocator<Value>> values_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_ALIGNED_DATASET_H_
