// AlignedDataset: the padded, cache-line-aligned storage variant of
// Dataset used by the vectorized dominance kernels (src/core/kernels.h).
//
// Dataset keeps rows packed (stride == num_dims) because it is the
// user-facing, append-friendly container. The kernels instead want:
//
//   * every row starting on a 64-byte boundary (aligned vector loads),
//   * a power-of-two-friendly stride (no cross-row dependence when the
//     compiler unrolls across the tail), and
//   * an accessor without bounds checks on the hot path.
//
// Two planes are built from the source rows:
//
//   * the EXACT plane — bit-identical double copies at a stride of
//     num_dims rounded up to a full cache line, so any computation
//     routed through an AlignedDataset produces exactly the results of
//     the same computation on the source Dataset rows;
//   * the QUANTIZED summary plane — one byte per (row, dim), a
//     monotone per-dimension bucketing of the exact values onto 0..255
//     at a fixed 64-byte row stride. Monotonicity gives the prefilter
//     soundness direction: qa[i] > qb[i] implies a[i] > b[i], so a
//     quantized "a is strictly worse somewhere" verdict PROVES a
//     cannot dominate b and the exact plane need not be read. The
//     summary can only abstain, never decide wrongly (docs/kernels.md
//     has the full argument). The plane exists only when the dataset
//     is fully finite and d <= kMaxQuantDims; otherwise
//     has_quantized() is false and the kernels skip the prefilter.
//
// The EXACT plane is sized up front and filled in ONE gather pass over
// the source rows; nothing reallocates per row. The QUANTIZED plane is
// built on demand by EnsureQuantized() — one dense O(n*d) min/max sweep
// over the already-gathered exact plane plus the bucketing pass — so
// consumers that only ever run pairwise compares (or whose scan windows
// stay below the prefilter threshold) never pay for it. Assign() reuses
// existing capacity, so a long-lived instance (e.g. the per-thread
// scratch of the query-service seeded path) stops allocating once it
// has seen its high-water size; Reserve() pre-sizes that capacity
// explicitly.
//
// The padding tail of each EXACT row is zero-filled but, by contract,
// NEVER read by any kernel: all kernels loop over exactly num_dims()
// values, which the differential tests verify by poisoning the tail
// (FillPaddingForTesting) and re-checking results. The QUANTIZED
// padding tail is the opposite: it is deliberately neutral (zero on
// every row, including quantized probe rows), so the byte kernels may
// load whole 64-byte quantized rows without masking — equal bytes can
// never signal "worse somewhere".
//
// Accessor contract: `row(i)` is checked under SKYLINE_ASSERT (active in
// Debug and SKYLINE_CHECKS builds, free in plain Release);
// `row_unchecked(i)` / `qrow_unchecked(i)` are never checked and exist
// for kernel interiors that have already validated their index block
// once up front.
#ifndef SKYLINE_CORE_ALIGNED_DATASET_H_
#define SKYLINE_CORE_ALIGNED_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/aligned.h"
#include "src/core/contracts.h"
#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {

class AlignedDataset {
 public:
  /// Quantized rows are padded to one full cache line, so one aligned
  /// 64-byte vector covers any row (d <= kMaxQuantDims).
  static constexpr std::size_t kQuantStride = 64;

  /// Widest dimensionality the summary plane covers (one byte per
  /// dimension inside a single cache line; also Subspace::kMaxDims).
  static constexpr Dim kMaxQuantDims = 64;

  /// Empty dataset; fill via Assign / AssignProjected.
  AlignedDataset() = default;

  /// Copies every row of `data` (row i here == point i of `data`).
  explicit AlignedDataset(const Dataset& data) { Assign(data); }

  /// Gathers the rows named by `ids` (row i here == data.row(ids[i])).
  /// Used by the Merge pass to turn a scattered partition into a dense
  /// block that is scanned sequentially.
  AlignedDataset(const Dataset& data, std::span<const PointId> ids) {
    Assign(data, ids);
  }

  /// Rebuilds both planes from every row of `data`, reusing capacity.
  void Assign(const Dataset& data);

  /// Rebuilds both planes from the rows named by `ids`, reusing
  /// capacity.
  void Assign(const Dataset& data, std::span<const PointId> ids);

  /// Gathers the rows named by `ids` projected onto `subspace`: row i
  /// holds the values of data.row(ids[i]) at the subspace's dimensions,
  /// in ascending dimension order, so num_dims() == subspace.size().
  /// The seeded query path uses this to turn a candidate list into a
  /// dense projected block without materializing a Dataset first.
  void AssignProjected(const Dataset& data, Subspace subspace,
                       std::span<const PointId> ids);

  /// Pre-sizes the underlying storage of both planes for `rows` rows of
  /// `dims` dimensions; later Assign calls up to that shape never
  /// reallocate.
  void Reserve(std::size_t rows, Dim dims);

  std::size_t num_rows() const { return num_rows_; }
  Dim num_dims() const { return num_dims_; }

  /// Row stride in Values: num_dims rounded up to a whole cache line.
  std::size_t stride() const { return stride_; }

  /// Checked row accessor (free in Release without SKYLINE_CHECKS).
  const Value* row(std::size_t i) const {
    SKYLINE_ASSERT(i < num_rows_, "AlignedDataset::row: index out of range");
    return row_unchecked(i);
  }

  /// Unchecked row accessor for kernel interiors; the caller must have
  /// established i < num_rows().
  const Value* row_unchecked(std::size_t i) const {
    return values_.data() + i * stride_;
  }

  /// Builds the quantized summary plane if this shape supports one and
  /// it has not been built since the last Assign. Returns
  /// has_quantized(). Idempotent and cheap when already attempted (one
  /// flag test), so scan loops may call it per batch; callers that
  /// never scan simply never call it and skip the O(n*d) build.
  bool EnsureQuantized();

  /// True when the quantized summary plane exists: EnsureQuantized()
  /// ran after the last Assign, every value is finite, and
  /// 1 <= num_dims <= kMaxQuantDims with at least one row.
  bool has_quantized() const { return has_quantized_; }

  /// Unchecked quantized-row accessor (64 bytes: num_dims buckets, then
  /// neutral zero padding). Only meaningful when has_quantized().
  const std::uint8_t* qrow_unchecked(std::size_t i) const {
    return qvalues_.data() + i * kQuantStride;
  }

  /// Quantizes an external probe row (num_dims values) with this
  /// dataset's bucketing grid into `out` (kQuantStride bytes: buckets
  /// then zero padding). A member row quantizes to exactly its stored
  /// summary row. Returns false — and the caller must then skip the
  /// prefilter — when the probe contains a non-finite value, for which
  /// bucket order would not imply value order. Requires
  /// has_quantized().
  bool QuantizeRow(const Value* row, std::uint8_t* out) const;

  /// Overwrites every padding slot (columns num_dims..stride-1 of every
  /// exact row) with `v`. Test-only: proves the kernels never read the
  /// exact-plane tail. (The quantized tail stays zero — it is neutral
  /// by contract and IS read by whole-line byte compares.)
  void FillPaddingForTesting(Value v);

 private:
  /// Shared plane builder: `dims` lists the source dimensions of each
  /// output dimension (nullptr = identity), `ids` the source rows
  /// (nullptr = all rows in order).
  void Build(const Dataset& data, const PointId* ids, std::size_t n,
             const Dim* dims, Dim d);

  Dim num_dims_ = 0;
  std::size_t stride_ = 0;
  std::size_t num_rows_ = 0;
  bool has_quantized_ = false;
  /// EnsureQuantized already ran for the current contents (whether or
  /// not it produced a plane) — makes repeated calls a flag test.
  bool quant_attempted_ = false;
  std::vector<Value, AlignedAllocator<Value>> values_;
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> qvalues_;
  /// Per-dimension bucketing grid: bucket = clamp((v - lo) * scale).
  std::vector<Value> lo_;
  std::vector<Value> scale_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_ALIGNED_DATASET_H_
