// Subspace: a subset of the d dimensions of a dataset, stored as a bitmask.
//
// Definition 3.3 of the paper: given a d-dimensional dataset, the space is
// D = {1,...,d} and any subset D' of D is a subspace. Subspaces are the
// central currency of the subset approach: the Merge pass (Algorithm 1)
// assigns every non-pruned point a "maximum dominating subspace", and the
// SubsetIndex partitions skyline points by the *reversed* (complemented)
// subspace.
#ifndef SKYLINE_CORE_SUBSPACE_H_
#define SKYLINE_CORE_SUBSPACE_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace skyline {

/// A subset of dimensions {0, ..., d-1}, d <= 64, as a bitmask.
///
/// Bit i set means dimension i is a member. All set operations are O(1).
/// The class is a trivially copyable value type.
class Subspace {
 public:
  /// Maximum dimensionality representable.
  static constexpr Dim kMaxDims = 64;

  /// The empty subspace.
  constexpr Subspace() : bits_(0) {}

  /// Subspace from a raw bitmask.
  constexpr explicit Subspace(std::uint64_t bits) : bits_(bits) {}

  /// Subspace containing exactly the listed dimensions.
  constexpr Subspace(std::initializer_list<Dim> dims) : bits_(0) {
    for (Dim d : dims) {
      SKYLINE_ASSERT(d < kMaxDims, "Subspace dimension out of range");
      bits_ |= (std::uint64_t{1} << d);
    }
  }

  /// The full space D = {0, ..., num_dims-1}.
  static constexpr Subspace Full(Dim num_dims) {
    SKYLINE_ASSERT(num_dims <= kMaxDims, "Full: num_dims exceeds kMaxDims");
    if (num_dims == kMaxDims) return Subspace(~std::uint64_t{0});
    return Subspace((std::uint64_t{1} << num_dims) - 1);
  }

  /// The subspace containing the single dimension `dim`.
  static constexpr Subspace Single(Dim dim) {
    SKYLINE_ASSERT(dim < kMaxDims, "Single: dim exceeds kMaxDims");
    return Subspace(std::uint64_t{1} << dim);
  }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }

  /// Number of member dimensions (the "subspace size" of Figures 2 and 6).
  constexpr Dim size() const {
    return static_cast<Dim>(std::popcount(bits_));
  }

  constexpr bool Contains(Dim dim) const {
    SKYLINE_ASSERT(dim < kMaxDims, "Contains: dim exceeds kMaxDims");
    return ((bits_ >> dim) & std::uint64_t{1}) != 0;
  }

  constexpr void Add(Dim dim) {
    SKYLINE_ASSERT(dim < kMaxDims, "Add: dim exceeds kMaxDims");
    bits_ |= (std::uint64_t{1} << dim);
  }
  constexpr void Remove(Dim dim) {
    SKYLINE_ASSERT(dim < kMaxDims, "Remove: dim exceeds kMaxDims");
    bits_ &= ~(std::uint64_t{1} << dim);
  }

  /// True if every member of this subspace is a member of `other`.
  constexpr bool IsSubsetOf(Subspace other) const {
    return (bits_ & other.bits_) == bits_;
  }

  /// True if every member of `other` is a member of this subspace.
  constexpr bool IsSupersetOf(Subspace other) const {
    return other.IsSubsetOf(*this);
  }

  /// True if this is a *proper* subset of `other`.
  constexpr bool IsProperSubsetOf(Subspace other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }

  /// The reversed subspace D^¬ with respect to the full space of
  /// `num_dims` dimensions (Section 5 of the paper). Precondition: this
  /// subspace must lie inside the full space it is reversed against,
  /// otherwise the round-trip identity (S^¬)^¬ == S breaks.
  constexpr Subspace Complement(Dim num_dims) const {
    SKYLINE_ASSERT(IsSubsetOf(Full(num_dims)),
                   "Complement: subspace not contained in the full space");
    return Subspace(~bits_ & Full(num_dims).bits_);
  }

  constexpr Subspace Union(Subspace other) const {
    return Subspace(bits_ | other.bits_);
  }

  constexpr Subspace Intersection(Subspace other) const {
    return Subspace(bits_ & other.bits_);
  }

  constexpr Subspace Difference(Subspace other) const {
    return Subspace(bits_ & ~other.bits_);
  }

  constexpr Subspace& operator|=(Subspace other) {
    bits_ |= other.bits_;
    return *this;
  }

  constexpr Subspace& operator&=(Subspace other) {
    bits_ &= other.bits_;
    return *this;
  }

  friend constexpr Subspace operator|(Subspace a, Subspace b) {
    return a.Union(b);
  }
  friend constexpr Subspace operator&(Subspace a, Subspace b) {
    return a.Intersection(b);
  }
  friend constexpr bool operator==(Subspace a, Subspace b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Subspace a, Subspace b) {
    return a.bits_ != b.bits_;
  }
  /// Arbitrary but stable total order (by bitmask value), handy for maps.
  friend constexpr bool operator<(Subspace a, Subspace b) {
    return a.bits_ < b.bits_;
  }

  /// Smallest member dimension; undefined on the empty subspace.
  constexpr Dim Lowest() const {
    SKYLINE_ASSERT(!empty(), "Lowest: empty subspace has no member");
    return static_cast<Dim>(std::countr_zero(bits_));
  }

  /// Calls `fn(dim)` for every member dimension, in increasing order.
  template <typename Fn>
  void ForEachDim(Fn&& fn) const {
    std::uint64_t rest = bits_;
    while (rest != 0) {
      Dim d = static_cast<Dim>(std::countr_zero(rest));
      fn(d);
      rest &= rest - 1;
    }
  }

  /// Human-readable rendering like "{0,3,5}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEachDim([&](Dim d) {
      if (!first) out += ",";
      out += std::to_string(d);
      first = false;
    });
    out += "}";
    return out;
  }

 private:
  std::uint64_t bits_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_SUBSPACE_H_
