// Basic scalar types shared by the whole library.
#ifndef SKYLINE_CORE_TYPES_H_
#define SKYLINE_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace skyline {

/// Identifier of a point inside a Dataset: its row number in [0, N).
using PointId = std::uint32_t;

/// Index of a dimension in [0, d). The paper writes dimensions 1..d; the
/// implementation is zero-based throughout.
using Dim = std::uint32_t;

/// Value of a point in one dimension. The skyline convention in this
/// library is *minimization* in every dimension (smaller is better),
/// matching Definition 3.1 of the paper.
using Value = double;

/// Invalid point id sentinel.
inline constexpr PointId kInvalidPoint = static_cast<PointId>(-1);

}  // namespace skyline

#endif  // SKYLINE_CORE_TYPES_H_
