// Runtime contract checking for the invariants the correctness argument
// rests on (ISSUE 2): Merge's maximum-dominating-subspace postcondition,
// the SubsetIndex superset-query guarantee, partitioner determinism, and
// the Subspace set algebra. The streaming memory model (ISSUE 4) adds
// two more guarded invariants: SubsetIndex node accounting (num_nodes()
// counts exactly the live prefix nodes — Remove reclaims emptied chains,
// verified against a shadow mirror under SKYLINE_CHECKS) and the
// StreamingSkyline residency bound (resident rows never exceed
// max(compact_high_water, 2 * skyline_size) once compaction is enabled,
// with external ids stable across compactions).
//
// Three macros, two cost tiers:
//
//   SKYLINE_ASSERT(cond, msg)   O(1)/O(d) pre- and postconditions on the
//                               hot path. Compiled in when SKYLINE_CHECKS
//                               is defined OR NDEBUG is not (i.e. it
//                               subsumes <cassert> and adds a message).
//
//   SKYLINE_DCHECK(cond, msg)   Deep invariant sweeps (full-tree
//                               recounts, O(n*d) mask re-derivations).
//                               Compiled in only when SKYLINE_CHECKS is
//                               defined; guard the *computation* of the
//                               checked value with
//                               `if constexpr (kSkylineDeepChecks)`.
//
//   SKYLINE_CONTRACT_VIOLATION(msg)
//                               Unconditional: reports and aborts. Used
//                               for "unreachable" states and by the two
//                               macros above.
//
// Configure with `-DSKYLINE_CHECKS=ON` (CMake option) or the `checks`
// preset. Violations print the failing expression, file:line and message
// to stderr, then abort() — so sanitizers, ctest and the fuzz drivers
// all register them as hard failures.
#ifndef SKYLINE_CORE_CONTRACTS_H_
#define SKYLINE_CORE_CONTRACTS_H_

namespace skyline::internal {

/// Prints a contract-violation report to stderr and aborts. Never
/// returns. `expr` may be empty for direct SKYLINE_CONTRACT_VIOLATION
/// calls.
[[noreturn]] void ReportContractViolation(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const char* msg);

}  // namespace skyline::internal

namespace skyline {

/// True when the deep (SKYLINE_DCHECK-tier) checks are compiled in; use
/// to guard the computation feeding an expensive check.
#ifdef SKYLINE_CHECKS
inline constexpr bool kSkylineDeepChecks = true;
#else
inline constexpr bool kSkylineDeepChecks = false;
#endif

/// True when SKYLINE_ASSERT is active (deep checks on, or debug build).
#if defined(SKYLINE_CHECKS) || !defined(NDEBUG)
inline constexpr bool kSkylineAsserts = true;
#else
inline constexpr bool kSkylineAsserts = false;
#endif

}  // namespace skyline

#define SKYLINE_CONTRACT_VIOLATION(msg)                                  \
  ::skyline::internal::ReportContractViolation("contract violation", "", \
                                               __FILE__, __LINE__, (msg))

#if defined(SKYLINE_CHECKS) || !defined(NDEBUG)
#define SKYLINE_ASSERT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::skyline::internal::ReportContractViolation(                       \
          "assertion failed", #cond, __FILE__, __LINE__, (msg));          \
    }                                                                     \
  } while (false)
#else
// No-op that still "uses" the operands (unevaluated), so disabling the
// checks cannot introduce unused-variable warnings under -Werror.
#define SKYLINE_ASSERT(cond, msg)   \
  do {                              \
    (void)sizeof((cond) ? 1 : 0);   \
    (void)sizeof(msg);              \
  } while (false)
#endif

#ifdef SKYLINE_CHECKS
#define SKYLINE_DCHECK(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::skyline::internal::ReportContractViolation(                       \
          "deep check failed", #cond, __FILE__, __LINE__, (msg));         \
    }                                                                     \
  } while (false)
#else
#define SKYLINE_DCHECK(cond, msg)   \
  do {                              \
    (void)sizeof((cond) ? 1 : 0);   \
    (void)sizeof(msg);              \
  } while (false)
#endif

#endif  // SKYLINE_CORE_CONTRACTS_H_
