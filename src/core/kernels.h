// Vectorized dominance kernels: branch-light, auto-vectorization-friendly
// implementations of the pairwise tests of src/core/dominance.h, plus the
// batched one-vs-many forms the subset algorithms actually execute.
//
// Two rules make these loops vectorizable where the scalar reference
// versions are not:
//
//   1. No data-dependent early exit inside the d-loop. The scalar
//      `Dominates` returns at the first dimension where a[i] > b[i];
//      these kernels accumulate "worse"/"better" flags (or mask bits)
//      across all d dimensions with `|=` and decide once at the end.
//      For the short rows of the paper's workloads (d <= 24) the exit
//      saves little and the dependence-free form lets the compiler use
//      SIMD compares across the row.
//   2. Restrict-qualified pointers into padded, 64-byte-aligned rows
//      (AlignedDataset), so rows never alias and loads are aligned.
//
// Semantics contract: every kernel returns bit-identical results to its
// scalar reference on the same inputs — same booleans, same Subspace
// bits, same iteration order and early-exit points in the batched forms.
// The batched forms additionally report `scanned`, the number of pivots
// a scalar early-exit loop would have charged to the dominance-test
// counter; DominanceTester and the Merge pass add exactly that, so DT
// statistics stay comparable to the paper no matter which path ran.
// tests/core/kernel_differential_test.cc enforces both properties.
//
// The batched forms are thin wrappers over a per-ISA backend table
// (src/core/simd_dispatch.h) resolved once per process by src/core/cpu.h:
// explicit AVX-512/AVX2 intrinsics when the CPU has them, the portable
// auto-vectorized loops otherwise. Every backend obeys the same
// semantics contract, so callers see identical results and charges no
// matter which ISA executed — only the wall clock changes. DominatesAny
// additionally engages the quantized block prefilter (docs/kernels.md)
// when the dataset carries a summary plane, the block is large enough
// to amortize quantizing the probe, and SKYLINE_PREFILTER has not
// disabled it.
//
// Kernels read exactly num_dims values per row: the padding tail of an
// AlignedDataset row is never loaded (the differential tests poison it).
#ifndef SKYLINE_CORE_KERNELS_H_
#define SKYLINE_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/contracts.h"
#include "src/core/cpu.h"
#include "src/core/simd_dispatch.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

#if defined(__GNUC__) || defined(__clang__)
#define SKYLINE_RESTRICT __restrict__
#else
#define SKYLINE_RESTRICT
#endif

namespace skyline {

/// Full classification of an ordered pair of points.
enum class DominanceRelation {
  kFirstDominates,   // a < b
  kSecondDominates,  // b < a
  kEqual,            // a[i] == b[i] for all i
  kIncomparable,     // a ~ b (neither dominates)
};

namespace kernels {

/// Returns true iff a dominates b (Definition 3.1). Flag-accumulating,
/// no early exit; result identical to skyline::Dominates.
inline bool Dominates(const Value* SKYLINE_RESTRICT a,
                      const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned worse = 0;
  unsigned better = 0;
  for (Dim i = 0; i < d; ++i) {
    worse |= static_cast<unsigned>(a[i] > b[i]);
    better |= static_cast<unsigned>(a[i] < b[i]);
  }
  return worse == 0 && better != 0;
}

/// a <= b in every dimension; result identical to
/// skyline::DominatesOrEqual.
inline bool DominatesOrEqual(const Value* SKYLINE_RESTRICT a,
                             const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned worse = 0;
  for (Dim i = 0; i < d; ++i) {
    worse |= static_cast<unsigned>(a[i] > b[i]);
  }
  return worse == 0;
}

/// One-pass pair classification; result identical to skyline::Compare.
inline DominanceRelation Compare(const Value* SKYLINE_RESTRICT a,
                                 const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned a_better = 0;
  unsigned b_better = 0;
  for (Dim i = 0; i < d; ++i) {
    a_better |= static_cast<unsigned>(a[i] < b[i]);
    b_better |= static_cast<unsigned>(b[i] < a[i]);
  }
  if (a_better != 0 && b_better != 0) return DominanceRelation::kIncomparable;
  if (a_better != 0) return DominanceRelation::kFirstDominates;
  if (b_better != 0) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

/// D_{q<p} (Definition 3.4) as a branch-free mask build; bits identical
/// to skyline::DominatingSubspace. Requires d <= Subspace::kMaxDims.
inline Subspace DominatingSubspace(const Value* SKYLINE_RESTRICT q,
                                   const Value* SKYLINE_RESTRICT p, Dim d) {
  SKYLINE_ASSERT(d <= Subspace::kMaxDims,
                 "DominatingSubspace kernel: d exceeds Subspace::kMaxDims");
  std::uint64_t bits = 0;
  for (Dim i = 0; i < d; ++i) {
    bits |= static_cast<std::uint64_t>(q[i] < p[i]) << i;
  }
  return Subspace(bits);
}

/// D_{q<p} plus the q-strictly-worse-somewhere flag in one scan; output
/// identical to skyline::DominatingSubspaceEx.
inline Subspace DominatingSubspaceEx(const Value* SKYLINE_RESTRICT q,
                                     const Value* SKYLINE_RESTRICT p, Dim d,
                                     bool* q_somewhere_worse) {
  SKYLINE_ASSERT(d <= Subspace::kMaxDims,
                 "DominatingSubspaceEx kernel: d exceeds Subspace::kMaxDims");
  std::uint64_t bits = 0;
  unsigned worse = 0;
  for (Dim i = 0; i < d; ++i) {
    bits |= static_cast<std::uint64_t>(q[i] < p[i]) << i;
    worse |= static_cast<unsigned>(q[i] > p[i]);
  }
  *q_somewhere_worse = worse != 0;
  return Subspace(bits);
}

// kNoDominator / BatchProbeResult / BatchSubspaceResult live in
// src/core/simd_dispatch.h (shared with the per-ISA backends) and are
// re-exported here through the include above.

/// Tests candidate row `q_row` against the block of rows named by `ids`
/// in a single pass, in block order — the retrieval-loop shape of
/// SFS-Subset / SaLSa-Subset / SDI-Subset ("does any stored skyline
/// point dominate q?"). Rows equal to `skip` are passed over without
/// charge, mirroring the `cand == p` guard of the cross-filter loops.
/// Dispatches to the active ISA backend; consults the quantized
/// prefilter when enabled and the block is large enough to amortize
/// quantizing the probe row.
inline BatchProbeResult DominatesAny(const AlignedDataset& rows,
                                     std::span<const PointId> ids,
                                     const Value* q_row, Dim d,
                                     PointId skip = kInvalidPoint) {
  if constexpr (kSkylineAsserts) {
    for (PointId id : ids) {
      SKYLINE_ASSERT(id < rows.num_rows(), "DominatesAny: id out of range");
    }
  }
  const bool prefilter = cpu::PrefilterEnabled() &&
                         ids.size() >= cpu::kPrefilterMinBlock &&
                         rows.has_quantized();
  return cpu::ActiveOps().dominates_any(rows, ids, q_row, d, skip, prefilter);
}

/// Folds the dominating subspace of candidate `q_row` over the pivot
/// block `ids` in one pass — the mask re-base shape of the parallel
/// subset engine and the Merge postcondition. A pivot with empty
/// D_{q<p} that is strictly better somewhere eliminates q and stops the
/// scan; an exact duplicate of q contributes nothing and the scan
/// continues, exactly like the scalar loops. Dispatches to the active
/// ISA backend (no prefilter: every scanned pivot must contribute its
/// exact mask bits).
inline BatchSubspaceResult DominatingSubspaceBatch(
    const AlignedDataset& rows, std::span<const PointId> ids,
    const Value* q_row, Dim d, PointId skip = kInvalidPoint) {
  if constexpr (kSkylineAsserts) {
    for (PointId id : ids) {
      SKYLINE_ASSERT(id < rows.num_rows(),
                     "DominatingSubspaceBatch: id out of range");
    }
  }
  return cpu::ActiveOps().dominating_subspace_batch(rows, ids, q_row, d, skip);
}

/// The Merge inner-loop shape: D_{q<pivot} plus the q-somewhere-worse
/// flag for a dense block of rows against one pivot row, one output pair
/// per input row. No early exit — every active point must learn its mask
/// — so the charge is exactly row_ids.size() tests. Dispatches to the
/// active ISA backend.
inline void DominatingSubspaceExBatch(const AlignedDataset& rows,
                                      std::span<const std::uint32_t> row_ids,
                                      const Value* pivot_row, Dim d,
                                      Subspace* out_masks,
                                      std::uint8_t* out_worse) {
  if constexpr (kSkylineAsserts) {
    for (std::uint32_t r : row_ids) {
      SKYLINE_ASSERT(r < rows.num_rows(),
                     "DominatingSubspaceExBatch: row out of range");
    }
  }
  cpu::ActiveOps().dominating_subspace_ex_batch(rows, row_ids, pivot_row, d,
                                                out_masks, out_worse);
}

}  // namespace kernels
}  // namespace skyline

#endif  // SKYLINE_CORE_KERNELS_H_
