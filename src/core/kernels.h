// Vectorized dominance kernels: branch-light, auto-vectorization-friendly
// implementations of the pairwise tests of src/core/dominance.h, plus the
// batched one-vs-many forms the subset algorithms actually execute.
//
// Two rules make these loops vectorizable where the scalar reference
// versions are not:
//
//   1. No data-dependent early exit inside the d-loop. The scalar
//      `Dominates` returns at the first dimension where a[i] > b[i];
//      these kernels accumulate "worse"/"better" flags (or mask bits)
//      across all d dimensions with `|=` and decide once at the end.
//      For the short rows of the paper's workloads (d <= 24) the exit
//      saves little and the dependence-free form lets the compiler use
//      SIMD compares across the row.
//   2. Restrict-qualified pointers into padded, 64-byte-aligned rows
//      (AlignedDataset), so rows never alias and loads are aligned.
//
// Semantics contract: every kernel returns bit-identical results to its
// scalar reference on the same inputs — same booleans, same Subspace
// bits, same iteration order and early-exit points in the batched forms.
// The batched forms additionally report `scanned`, the number of pivots
// a scalar early-exit loop would have charged to the dominance-test
// counter; DominanceTester and the Merge pass add exactly that, so DT
// statistics stay comparable to the paper no matter which path ran.
// tests/core/kernel_differential_test.cc enforces both properties.
//
// Kernels read exactly num_dims values per row: the padding tail of an
// AlignedDataset row is never loaded (the differential tests poison it).
#ifndef SKYLINE_CORE_KERNELS_H_
#define SKYLINE_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/contracts.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

#if defined(__GNUC__) || defined(__clang__)
#define SKYLINE_RESTRICT __restrict__
#else
#define SKYLINE_RESTRICT
#endif

namespace skyline {

/// Full classification of an ordered pair of points.
enum class DominanceRelation {
  kFirstDominates,   // a < b
  kSecondDominates,  // b < a
  kEqual,            // a[i] == b[i] for all i
  kIncomparable,     // a ~ b (neither dominates)
};

namespace kernels {

/// Returns true iff a dominates b (Definition 3.1). Flag-accumulating,
/// no early exit; result identical to skyline::Dominates.
inline bool Dominates(const Value* SKYLINE_RESTRICT a,
                      const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned worse = 0;
  unsigned better = 0;
  for (Dim i = 0; i < d; ++i) {
    worse |= static_cast<unsigned>(a[i] > b[i]);
    better |= static_cast<unsigned>(a[i] < b[i]);
  }
  return worse == 0 && better != 0;
}

/// a <= b in every dimension; result identical to
/// skyline::DominatesOrEqual.
inline bool DominatesOrEqual(const Value* SKYLINE_RESTRICT a,
                             const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned worse = 0;
  for (Dim i = 0; i < d; ++i) {
    worse |= static_cast<unsigned>(a[i] > b[i]);
  }
  return worse == 0;
}

/// One-pass pair classification; result identical to skyline::Compare.
inline DominanceRelation Compare(const Value* SKYLINE_RESTRICT a,
                                 const Value* SKYLINE_RESTRICT b, Dim d) {
  unsigned a_better = 0;
  unsigned b_better = 0;
  for (Dim i = 0; i < d; ++i) {
    a_better |= static_cast<unsigned>(a[i] < b[i]);
    b_better |= static_cast<unsigned>(b[i] < a[i]);
  }
  if (a_better != 0 && b_better != 0) return DominanceRelation::kIncomparable;
  if (a_better != 0) return DominanceRelation::kFirstDominates;
  if (b_better != 0) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

/// D_{q<p} (Definition 3.4) as a branch-free mask build; bits identical
/// to skyline::DominatingSubspace. Requires d <= Subspace::kMaxDims.
inline Subspace DominatingSubspace(const Value* SKYLINE_RESTRICT q,
                                   const Value* SKYLINE_RESTRICT p, Dim d) {
  SKYLINE_ASSERT(d <= Subspace::kMaxDims,
                 "DominatingSubspace kernel: d exceeds Subspace::kMaxDims");
  std::uint64_t bits = 0;
  for (Dim i = 0; i < d; ++i) {
    bits |= static_cast<std::uint64_t>(q[i] < p[i]) << i;
  }
  return Subspace(bits);
}

/// D_{q<p} plus the q-strictly-worse-somewhere flag in one scan; output
/// identical to skyline::DominatingSubspaceEx.
inline Subspace DominatingSubspaceEx(const Value* SKYLINE_RESTRICT q,
                                     const Value* SKYLINE_RESTRICT p, Dim d,
                                     bool* q_somewhere_worse) {
  SKYLINE_ASSERT(d <= Subspace::kMaxDims,
                 "DominatingSubspaceEx kernel: d exceeds Subspace::kMaxDims");
  std::uint64_t bits = 0;
  unsigned worse = 0;
  for (Dim i = 0; i < d; ++i) {
    bits |= static_cast<std::uint64_t>(q[i] < p[i]) << i;
    worse |= static_cast<unsigned>(q[i] > p[i]);
  }
  *q_somewhere_worse = worse != 0;
  return Subspace(bits);
}

/// "No dominator found" sentinel of the batched probes.
inline constexpr std::size_t kNoDominator = static_cast<std::size_t>(-1);

/// Result of a one-vs-many probe over a pivot block.
struct BatchProbeResult {
  /// Block index (into the id span) of the first dominator, or
  /// kNoDominator.
  std::size_t first = kNoDominator;

  /// Dominance tests a scalar early-exit loop would have charged:
  /// the number of non-skipped pivots up to and including the first
  /// dominator, or all non-skipped pivots when none dominates.
  std::uint64_t scanned = 0;
};

/// Tests candidate row `q_row` against the block of rows named by `ids`
/// in a single pass, in block order — the retrieval-loop shape of
/// SFS-Subset / SaLSa-Subset / SDI-Subset ("does any stored skyline
/// point dominate q?"). Rows equal to `skip` are passed over without
/// charge, mirroring the `cand == p` guard of the cross-filter loops.
inline BatchProbeResult DominatesAny(const AlignedDataset& rows,
                                     std::span<const PointId> ids,
                                     const Value* q_row, Dim d,
                                     PointId skip = kInvalidPoint) {
  if constexpr (kSkylineAsserts) {
    for (PointId id : ids) {
      SKYLINE_ASSERT(id < rows.num_rows(), "DominatesAny: id out of range");
    }
  }
  BatchProbeResult r;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == skip) continue;
    ++r.scanned;
    if (Dominates(rows.row_unchecked(ids[i]), q_row, d)) {
      r.first = i;
      return r;
    }
  }
  return r;
}

/// Result of folding D_{q<p} over a pivot block.
struct BatchSubspaceResult {
  /// Union of D_{q<p} over every pivot scanned before the exit point.
  Subspace mask;

  /// Block index of the first pivot that weakly dominates q while being
  /// strictly better somewhere (i.e. q is eliminated), or kNoDominator.
  std::size_t dominated_by = kNoDominator;

  /// Pivots charged, with the same early-exit semantics as a scalar
  /// fold: everything up to and including `dominated_by`, or all
  /// non-skipped pivots.
  std::uint64_t scanned = 0;
};

/// Folds the dominating subspace of candidate `q_row` over the pivot
/// block `ids` in one pass — the mask re-base shape of the parallel
/// subset engine and the Merge postcondition. A pivot with empty
/// D_{q<p} that is strictly better somewhere eliminates q and stops the
/// scan; an exact duplicate of q contributes nothing and the scan
/// continues, exactly like the scalar loops.
inline BatchSubspaceResult DominatingSubspaceBatch(
    const AlignedDataset& rows, std::span<const PointId> ids,
    const Value* q_row, Dim d, PointId skip = kInvalidPoint) {
  if constexpr (kSkylineAsserts) {
    for (PointId id : ids) {
      SKYLINE_ASSERT(id < rows.num_rows(),
                     "DominatingSubspaceBatch: id out of range");
    }
  }
  BatchSubspaceResult r;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == skip) continue;
    ++r.scanned;
    bool q_worse = false;
    const Subspace m =
        DominatingSubspaceEx(q_row, rows.row_unchecked(ids[i]), d, &q_worse);
    if (m.empty() && q_worse) {
      r.dominated_by = i;
      return r;
    }
    r.mask |= m;
  }
  return r;
}

/// The Merge inner-loop shape: D_{q<pivot} plus the q-somewhere-worse
/// flag for a dense block of rows against one pivot row, one output pair
/// per input row. No early exit — every active point must learn its mask
/// — so the charge is exactly row_ids.size() tests.
inline void DominatingSubspaceExBatch(const AlignedDataset& rows,
                                      std::span<const std::uint32_t> row_ids,
                                      const Value* pivot_row, Dim d,
                                      Subspace* out_masks,
                                      std::uint8_t* out_worse) {
  if constexpr (kSkylineAsserts) {
    for (std::uint32_t r : row_ids) {
      SKYLINE_ASSERT(r < rows.num_rows(),
                     "DominatingSubspaceExBatch: row out of range");
    }
  }
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    bool worse = false;
    out_masks[i] = DominatingSubspaceEx(rows.row_unchecked(row_ids[i]),
                                        pivot_row, d, &worse);
    out_worse[i] = worse ? 1 : 0;
  }
}

}  // namespace kernels
}  // namespace skyline

#endif  // SKYLINE_CORE_KERNELS_H_
