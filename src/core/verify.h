// Reference skyline computation and result validation, used by tests and
// by the benchmark harness's self-checks. Deliberately simple and
// independent of the algorithm implementations under test.
#ifndef SKYLINE_CORE_VERIFY_H_
#define SKYLINE_CORE_VERIFY_H_

#include <vector>

#include "src/core/dataset.h"
#include "src/core/types.h"

namespace skyline {

/// O(d N^2) naive skyline: every point tested against every other.
/// Returns ids in ascending order. This is the correctness oracle.
std::vector<PointId> ReferenceSkyline(const Dataset& data);

/// True iff `candidate` (in any order, duplicates not allowed) equals the
/// skyline of `data` as an id set.
bool IsSkylineOf(const Dataset& data, std::vector<PointId> candidate);

/// True iff the two id lists are equal as sets.
bool SameIdSet(std::vector<PointId> a, std::vector<PointId> b);

}  // namespace skyline

#endif  // SKYLINE_CORE_VERIFY_H_
