#include "src/core/aligned_dataset.h"

#include <algorithm>

namespace skyline {

namespace {

std::size_t PaddedStride(Dim num_dims) {
  constexpr std::size_t kValuesPerLine = kRowAlignment / sizeof(Value);
  const std::size_t d = num_dims;
  return (d + kValuesPerLine - 1) / kValuesPerLine * kValuesPerLine;
}

}  // namespace

AlignedDataset::AlignedDataset(const Dataset& data)
    : num_dims_(data.num_dims()),
      stride_(PaddedStride(data.num_dims())),
      num_rows_(data.num_points()),
      values_(num_rows_ * stride_, Value{0}) {
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const Value* src = data.row(static_cast<PointId>(i));
    std::copy(src, src + num_dims_, values_.data() + i * stride_);
  }
}

AlignedDataset::AlignedDataset(const Dataset& data,
                               std::span<const PointId> ids)
    : num_dims_(data.num_dims()),
      stride_(PaddedStride(data.num_dims())),
      num_rows_(ids.size()),
      values_(num_rows_ * stride_, Value{0}) {
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const Value* src = data.row(ids[i]);
    std::copy(src, src + num_dims_, values_.data() + i * stride_);
  }
}

void AlignedDataset::FillPaddingForTesting(Value v) {
  for (std::size_t i = 0; i < num_rows_; ++i) {
    Value* row = values_.data() + i * stride_;
    std::fill(row + num_dims_, row + stride_, v);
  }
}

}  // namespace skyline
