#include "src/core/aligned_dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyline {

namespace {

std::size_t PaddedStride(Dim num_dims) {
  constexpr std::size_t kValuesPerLine = kRowAlignment / sizeof(Value);
  const std::size_t d = num_dims;
  return (d + kValuesPerLine - 1) / kValuesPerLine * kValuesPerLine;
}

/// Monotone bucket map onto 0..255. For a fixed (lo, scale >= 0) grid,
/// v1 <= v2 implies Bucket(v1) <= Bucket(v2), which is the entire
/// soundness argument of the prefilter (contrapositive: a bucket
/// strictly above proves a value strictly above). The comparison chain
/// sends NaN intermediates (degenerate grids) to bucket 0 without
/// undefined float-to-int casts.
std::uint8_t Bucket(Value v, Value lo, Value scale) {
  const Value t = (v - lo) * scale;
  if (!(t > Value{0})) return 0;
  if (t >= Value{255}) return 255;
  return static_cast<std::uint8_t>(t);
}

}  // namespace

void AlignedDataset::Assign(const Dataset& data) {
  Build(data, nullptr, data.num_points(), nullptr, data.num_dims());
}

void AlignedDataset::Assign(const Dataset& data,
                            std::span<const PointId> ids) {
  Build(data, ids.data(), ids.size(), nullptr, data.num_dims());
}

void AlignedDataset::AssignProjected(const Dataset& data, Subspace subspace,
                                     std::span<const PointId> ids) {
  Dim dims[Subspace::kMaxDims];
  Dim d = 0;
  subspace.ForEachDim([&](Dim i) { dims[d++] = i; });
  SKYLINE_ASSERT(d >= 1, "AssignProjected: empty subspace");
  Build(data, ids.data(), ids.size(), dims, d);
}

void AlignedDataset::Reserve(std::size_t rows, Dim dims) {
  values_.reserve(rows * PaddedStride(dims));
  qvalues_.reserve(rows * kQuantStride);
  lo_.reserve(dims);
  scale_.reserve(dims);
}

void AlignedDataset::Build(const Dataset& data, const PointId* ids,
                           std::size_t n, const Dim* dims, Dim d) {
  num_dims_ = d;
  stride_ = PaddedStride(d);
  num_rows_ = n;
  has_quantized_ = false;
  quant_attempted_ = false;

  // Single gather pass for the exact plane: pre-sized (clear keeps
  // capacity, so a reused instance never reallocates below its
  // high-water shape), every destination row written exactly once —
  // exact values then zero padding. The quantized plane is NOT built
  // here: EnsureQuantized() derives it from the gathered rows on
  // demand, so pairwise-only consumers pay nothing for it.
  values_.clear();
  values_.resize(n * stride_, Value{0});
  qvalues_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Value* src =
        data.row(ids != nullptr ? ids[i] : static_cast<PointId>(i));
    Value* dst = values_.data() + i * stride_;
    if (dims == nullptr) {
      std::copy(src, src + d, dst);
    } else {
      for (Dim k = 0; k < d; ++k) dst[k] = src[dims[k]];
    }
  }
}

bool AlignedDataset::EnsureQuantized() {
  if (quant_attempted_) return has_quantized_;
  quant_attempted_ = true;

  // Quantization grid: per-dimension minima/maxima plus a finiteness
  // check, one dense O(n*d) sweep over the already-gathered exact
  // plane (bit-identical to the source rows, so sweeping here equals
  // sweeping the source).
  const std::size_t n = num_rows_;
  const Dim d = num_dims_;
  const bool want_quantized = n > 0 && d >= 1 && d <= kMaxQuantDims;
  bool finite = want_quantized;
  lo_.assign(d, std::numeric_limits<Value>::infinity());
  scale_.assign(d, Value{0});
  Value hi[kMaxQuantDims];  // d <= kMaxQuantDims whenever this is read
  std::fill(hi, hi + (want_quantized ? d : Dim{0}),
            -std::numeric_limits<Value>::infinity());
  for (std::size_t i = 0; i < n && finite; ++i) {
    const Value* src = values_.data() + i * stride_;
    for (Dim k = 0; k < d; ++k) {
      const Value v = src[k];
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
      if (v < lo_[k]) lo_[k] = v;
      if (v > hi[k]) hi[k] = v;
    }
  }
  for (Dim k = 0; k < d && finite; ++k) {
    // A degenerate (single-value) dimension keeps scale 0: every
    // bucket collapses to 0 and the prefilter abstains on that
    // dimension. An infinite range (hi - lo overflows) likewise
    // degrades to an abstaining grid via the Bucket NaN chain.
    if (hi[k] > lo_[k]) scale_[k] = Value{255} / (hi[k] - lo_[k]);
  }
  has_quantized_ = finite;
  if (!has_quantized_) return false;

  qvalues_.clear();
  qvalues_.resize(n * kQuantStride, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Value* src = values_.data() + i * stride_;
    std::uint8_t* qdst = qvalues_.data() + i * kQuantStride;
    for (Dim k = 0; k < d; ++k) {
      qdst[k] = Bucket(src[k], lo_[k], scale_[k]);
    }
  }
  return true;
}

bool AlignedDataset::QuantizeRow(const Value* row, std::uint8_t* out) const {
  SKYLINE_ASSERT(has_quantized_,
                 "QuantizeRow: dataset carries no quantized plane");
  std::fill(out + num_dims_, out + kQuantStride, 0);
  bool finite = true;
  for (Dim k = 0; k < num_dims_; ++k) {
    finite = finite && std::isfinite(row[k]);
    out[k] = Bucket(row[k], lo_[k], scale_[k]);
  }
  return finite;
}

void AlignedDataset::FillPaddingForTesting(Value v) {
  for (std::size_t i = 0; i < num_rows_; ++i) {
    Value* row = values_.data() + i * stride_;
    std::fill(row + num_dims_, row + stride_, v);
  }
}

}  // namespace skyline
