// Portable backend of the batched dominance kernels: the
// flag-accumulating loops the compiler auto-vectorizes. This is the
// semantic reference every explicit-SIMD backend is differentially
// tested against, and the fallback the dispatcher uses on CPUs without
// AVX2.
//
// The quantized prefilter is implemented here too (as plain byte
// loops), so the prefilter on/off ablation is meaningful on every ISA
// level and the differential tests can pin the charge contract without
// needing vector hardware.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/kernels.h"
#include "src/core/simd_dispatch.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {
namespace kernels {
namespace simd {

namespace {

/// True when summary row `s` is strictly above `q` in some dimension —
/// by monotonicity that PROVES the exact row cannot dominate q. Reads
/// the whole 64-byte line; the padding tail is neutral zero on both
/// sides, so equal bytes never fire.
bool QuantWorseSomewhere(const std::uint8_t* SKYLINE_RESTRICT s,
                         const std::uint8_t* SKYLINE_RESTRICT q) {
  unsigned worse = 0;
  for (std::size_t k = 0; k < AlignedDataset::kQuantStride; ++k) {
    worse |= static_cast<unsigned>(s[k] > q[k]);
  }
  return worse != 0;
}

BatchProbeResult DominatesAnyScalar(const AlignedDataset& rows,
                                    std::span<const PointId> ids,
                                    const Value* q_row, Dim d, PointId skip,
                                    bool prefilter) {
  BatchProbeResult r;
  alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
  const bool use_prefilter =
      prefilter && rows.has_quantized() && rows.QuantizeRow(q_row, qbuf);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == skip) continue;
    ++r.scanned;
    // A prefilter reject still charges: the scalar reference loop
    // would have scanned this pivot (and found it non-dominating).
    if (use_prefilter &&
        QuantWorseSomewhere(rows.qrow_unchecked(ids[i]), qbuf)) {
      continue;
    }
    if (Dominates(rows.row_unchecked(ids[i]), q_row, d)) {
      r.first = i;
      return r;
    }
  }
  return r;
}

BatchSubspaceResult DominatingSubspaceBatchScalar(const AlignedDataset& rows,
                                                  std::span<const PointId> ids,
                                                  const Value* q_row, Dim d,
                                                  PointId skip) {
  BatchSubspaceResult r;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == skip) continue;
    ++r.scanned;
    bool q_worse = false;
    const Subspace m =
        DominatingSubspaceEx(q_row, rows.row_unchecked(ids[i]), d, &q_worse);
    if (m.empty() && q_worse) {
      r.dominated_by = i;
      return r;
    }
    r.mask |= m;
  }
  return r;
}

void DominatingSubspaceExBatchScalar(const AlignedDataset& rows,
                                     std::span<const std::uint32_t> row_ids,
                                     const Value* pivot_row, Dim d,
                                     Subspace* out_masks,
                                     std::uint8_t* out_worse) {
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    bool worse = false;
    out_masks[i] = DominatingSubspaceEx(rows.row_unchecked(row_ids[i]),
                                        pivot_row, d, &worse);
    out_worse[i] = worse ? 1 : 0;
  }
}

}  // namespace

const KernelOps kScalarOps = {
    &DominatesAnyScalar,
    &DominatingSubspaceBatchScalar,
    &DominatingSubspaceExBatchScalar,
};

}  // namespace simd
}  // namespace kernels
}  // namespace skyline
