// Dataset: an immutable-after-build, row-major in-memory table of
// d-dimensional points. All skyline algorithms in this library operate on
// a Dataset and identify points by their row id.
#ifndef SKYLINE_CORE_DATASET_H_
#define SKYLINE_CORE_DATASET_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace skyline {

/// An N x d table of Values, row-major and contiguous.
///
/// The skyline convention is minimization in every dimension. Callers with
/// maximization preferences should negate (or otherwise monotonically
/// invert) the affected column before building the Dataset; see
/// `examples/hotel_search.cc` for the idiom.
class Dataset {
 public:
  /// Empty dataset of a fixed dimensionality.
  explicit Dataset(Dim num_dims) : num_dims_(num_dims) {
    SKYLINE_ASSERT(num_dims >= 1, "Dataset: need at least one dimension");
  }

  /// Builds a dataset from `num_points * num_dims` row-major values.
  Dataset(Dim num_dims, std::vector<Value> values)
      : num_dims_(num_dims), values_(std::move(values)) {
    SKYLINE_ASSERT(num_dims >= 1, "Dataset: need at least one dimension");
    SKYLINE_ASSERT(values_.size() % num_dims_ == 0,
                   "Dataset: values size not a multiple of num_dims");
  }

  /// Builds a dataset from explicit rows; all rows must have equal length.
  static Dataset FromRows(std::initializer_list<std::initializer_list<Value>> rows);

  /// Builds a dataset from a vector of rows; all rows must have equal length.
  static Dataset FromRows(const std::vector<std::vector<Value>>& rows);

  /// Appends one point; `row` must have exactly num_dims() values.
  void Append(std::span<const Value> row) {
    SKYLINE_ASSERT(row.size() == num_dims_,
                   "Append: row length != num_dims");
    values_.insert(values_.end(), row.begin(), row.end());
  }

  /// Number of points N (the paper's "cardinality").
  std::size_t num_points() const { return values_.size() / num_dims_; }

  /// Number of dimensions d (the paper's "dimensionality").
  Dim num_dims() const { return num_dims_; }

  bool empty() const { return values_.empty(); }

  /// Pointer to the row of point `id`; valid for num_dims() values.
  const Value* row(PointId id) const {
    SKYLINE_ASSERT(id < num_points(), "row: point id out of range");
    return values_.data() + static_cast<std::size_t>(id) * num_dims_;
  }

  /// Value of point `id` in dimension `dim`.
  Value at(PointId id, Dim dim) const {
    SKYLINE_ASSERT(dim < num_dims_, "at: dimension out of range");
    return row(id)[dim];
  }

  /// The row of point `id` as a span.
  std::span<const Value> point(PointId id) const {
    return {row(id), num_dims_};
  }

  /// Raw row-major storage.
  const std::vector<Value>& values() const { return values_; }

  /// Human-readable rendering of one point, like "(0.25, 1, 3.5)".
  std::string PointToString(PointId id) const;

 private:
  Dim num_dims_;
  std::vector<Value> values_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_DATASET_H_
