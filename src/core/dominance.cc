#include "src/core/dominance.h"

namespace skyline {

const char* ToString(DominanceRelation r) {
  switch (r) {
    case DominanceRelation::kFirstDominates:
      return "first-dominates";
    case DominanceRelation::kSecondDominates:
      return "second-dominates";
    case DominanceRelation::kEqual:
      return "equal";
    case DominanceRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

}  // namespace skyline
