// Cache-line-aligned allocation support for the hot-loop storage layer.
//
// The vectorized dominance kernels (src/core/kernels.h) want rows that
// start on a 64-byte boundary so the compiler can emit aligned vector
// loads and never splits a row across more cache lines than necessary.
// AlignedAllocator is a minimal C++17-style allocator usable with
// std::vector; kAlignment is chosen to cover AVX-512 (64 bytes), which
// also satisfies SSE/AVX2/NEON alignment.
#ifndef SKYLINE_CORE_ALIGNED_H_
#define SKYLINE_CORE_ALIGNED_H_

#include <cstddef>
#include <new>

namespace skyline {

/// Alignment (bytes) of the padded row storage: one cache line, which is
/// also the widest vector register in common use (AVX-512).
inline constexpr std::size_t kRowAlignment = 64;

/// Minimal aligned allocator for std::vector<Value>.
template <typename T, std::size_t Alignment = kRowAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace skyline

#endif  // SKYLINE_CORE_ALIGNED_H_
