// Runtime CPU feature detection and kernel dispatch.
//
// The batched dominance kernels have one implementation per ISA level
// (src/core/simd_*.cc); this module picks the widest level the running
// CPU supports, exactly once per process, and hands out the matching
// KernelOps table. The choice is overridable for testing with
//
//   SKYLINE_FORCE_ISA=scalar|avx2|avx512
//
// read once at first use. Forcing a level the CPU (or the build) cannot
// execute clamps DOWN to the widest available level — running an
// illegal-instruction path is never an option — and the clamp is
// visible in Description() so a CI matrix leg that silently degraded
// can be detected from its logs.
//
// The quantized block prefilter (docs/kernels.md) is on by default and
// can be disabled with SKYLINE_PREFILTER=0 (or off/false); bench
// ablation and the differential tests flip it at runtime through
// SetPrefilterEnabledForTesting. Results are bit-identical either way —
// the flag only trades summary-plane compares against exact double
// compares.
#ifndef SKYLINE_CORE_CPU_H_
#define SKYLINE_CORE_CPU_H_

#include <string>

#include "src/core/simd_dispatch.h"

namespace skyline {
namespace cpu {

/// ISA levels of the kernel backends, widest last. The numeric order is
/// meaningful: forcing clamps toward kScalar, never upward.
enum class IsaLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr IsaLevel kAllLevels[] = {IsaLevel::kScalar, IsaLevel::kAvx2,
                                          IsaLevel::kAvx512};

/// Lower-case level name ("scalar", "avx2", "avx512").
const char* IsaName(IsaLevel level);

/// Widest level this process can execute: the CPU supports it AND the
/// matching backend was compiled in. Resolved once, before any force.
IsaLevel DetectedIsa();

/// The level the dispatcher actually uses: DetectedIsa() clamped by
/// SKYLINE_FORCE_ISA. Resolved once per process.
IsaLevel ActiveIsa();

/// Ops table of a specific level, or nullptr when that level is not
/// executable here. OpsFor(ActiveIsa()) is never null. The differential
/// tests iterate all non-null tables to pin every backend against the
/// scalar reference on the same machine.
const kernels::simd::KernelOps* OpsFor(IsaLevel level);

/// The dispatched table — what src/core/kernels.h routes through.
const kernels::simd::KernelOps& ActiveOps();

/// Whether DominatesAny consults the quantized summary plane (when the
/// dataset carries one). Default on; SKYLINE_PREFILTER=0 disables.
bool PrefilterEnabled();

/// Runtime override of the prefilter default, for bench ablation and
/// tests. Not thread-safe against in-flight kernels by design: flip it
/// only from single-threaded setup code.
void SetPrefilterEnabledForTesting(bool enabled);

/// Blocks smaller than this skip the prefilter: quantizing the probe
/// row costs O(d), which only amortizes over enough pivots.
inline constexpr std::size_t kPrefilterMinBlock = 8;

/// One-line summary for logs and bench metadata, e.g.
/// "isa=avx512 detected=avx512 forced=none prefilter=on".
std::string Description();

}  // namespace cpu
}  // namespace skyline

#endif  // SKYLINE_CORE_CPU_H_
