// Instrumentation collected by every skyline algorithm run.
#ifndef SKYLINE_CORE_STATS_H_
#define SKYLINE_CORE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/contracts.h"

namespace skyline {

/// Counters filled in by SkylineAlgorithm::Compute.
///
/// The headline metric of the paper's evaluation is the *mean dominance
/// test number* (Section 6): total dominance tests divided by the dataset
/// cardinality N. Every pairwise point comparison — a dominance test, a
/// dominating-subspace computation in the Merge pass, or a lattice-vector
/// computation against a BSkyTree pivot — increments `dominance_tests`,
/// since each costs one O(d) row scan.
struct SkylineStats {
  /// Total number of O(d) pairwise comparisons performed.
  std::uint64_t dominance_tests = 0;

  /// Number of candidate retrievals answered by the SubsetIndex
  /// (boosted algorithms only).
  std::uint64_t index_queries = 0;

  /// Total number of prefix-tree nodes visited while answering queries
  /// (boosted algorithms only).
  std::uint64_t index_nodes_visited = 0;

  /// Total number of candidate skyline points returned by index queries
  /// (boosted algorithms only). Comparing this with `dominance_tests` of
  /// the unboosted algorithm shows the pruning power of Lemma 5.1.
  std::uint64_t index_candidates = 0;

  /// Number of pivot points selected by the Merge pass (boosted only).
  std::uint64_t pivot_count = 0;

  /// Points pruned (found dominated) during the Merge pass (boosted only).
  std::uint64_t merge_pruned = 0;

  /// Dominance tests skipped thanks to region incomparability
  /// (BSkyTree) or index partitioning (boosted algorithms), when the
  /// algorithm can cheaply account for them.
  std::uint64_t tests_skipped = 0;

  /// Size of the computed skyline.
  std::size_t skyline_size = 0;

  /// Mean dominance test number: dominance_tests / N.
  double MeanDominanceTests(std::size_t num_points) const {
    return num_points == 0
               ? 0.0
               : static_cast<double>(dominance_tests) /
                     static_cast<double>(num_points);
  }

  /// Merges counters from a sub-phase into this object.
  void Accumulate(const SkylineStats& other) {
    dominance_tests += other.dominance_tests;
    index_queries += other.index_queries;
    index_nodes_visited += other.index_nodes_visited;
    index_candidates += other.index_candidates;
    pivot_count += other.pivot_count;
    merge_pruned += other.merge_pruned;
    tests_skipped += other.tests_skipped;
  }
};

/// Counters reported by StreamingSkyline (src/stream/). Lives next to
/// SkylineStats because the bench pipeline consumes both: the
/// candidate-per-insert ratio below is the gated drift metric of
/// bench_streaming.
struct StreamingStats {
  std::uint64_t inserts = 0;
  std::uint64_t rejected_dominated = 0;  // arrived already dominated
  std::uint64_t evictions = 0;           // skyline points displaced
  std::uint64_t dominance_tests = 0;     // O(d) pairwise scans
  std::uint64_t index_queries = 0;
  std::uint64_t index_candidates = 0;

  /// Storage compactions (dead rows reclaimed behind the stable-id
  /// remap).
  std::uint64_t compactions = 0;

  /// Adaptive re-references: the frozen reference set was replaced and
  /// all masks/index entries rebuilt because pruning power degraded.
  std::uint64_t refreezes = 0;

  /// High-water mark of resident dataset rows (live + not-yet-compacted
  /// dead); the memory-ceiling metric gated by bench_streaming.
  std::uint64_t peak_resident_rows = 0;

  /// Mean index candidates retrieved per insert — the observed pruning
  /// power of the current reference set. Degradation of this ratio is
  /// what triggers adaptive re-referencing.
  double CandidatesPerInsert() const {
    return inserts == 0 ? 0.0
                        : static_cast<double>(index_candidates) /
                              static_cast<double>(inserts);
  }
};

/// Per-work-unit counter slots for the parallel engines.
///
/// Each work unit (partition) owns one slot; a worker fills the slot of
/// the unit it is executing and never touches another unit's slot, so no
/// synchronization is needed beyond the thread join. `Combine` folds the
/// slots in slot order — totals therefore depend only on the work
/// decomposition, never on thread count or scheduling, which is what
/// makes the parallel engines' SkylineStats reproducible bit-for-bit.
class StatsAccumulator {
 public:
  explicit StatsAccumulator(std::size_t num_slots) : slots_(num_slots) {}

  SkylineStats& slot(std::size_t i) {
    SKYLINE_ASSERT(i < slots_.size(), "StatsAccumulator: slot out of range");
    return slots_[i];
  }
  const SkylineStats& slot(std::size_t i) const {
    SKYLINE_ASSERT(i < slots_.size(), "StatsAccumulator: slot out of range");
    return slots_[i];
  }
  std::size_t num_slots() const { return slots_.size(); }

  /// Slot counters accumulated in slot order (skyline_size is left to
  /// the caller — partial sizes do not add up to the final skyline).
  SkylineStats Combine() const {
    SkylineStats total;
    for (const SkylineStats& s : slots_) total.Accumulate(s);
    return total;
  }

 private:
  std::vector<SkylineStats> slots_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_STATS_H_
