#include "src/core/cpu.h"

#include <atomic>
#include <cstdlib>

namespace skyline {
namespace cpu {

namespace {

using kernels::simd::KernelOps;

/// True when the running CPU can execute the level's instructions.
/// Compile-time availability of the backend is checked separately.
bool CpuSupports(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case IsaLevel::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      // F for the masked double compares, BW for the 64-lane byte
      // compares of the quantized prefilter, VL is implied by BW+F on
      // every real part but checked anyway for the 256-bit tails.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelOps* CompiledOps(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return &kernels::simd::kScalarOps;
    case IsaLevel::kAvx2:
      return kernels::simd::Avx2Ops();
    case IsaLevel::kAvx512:
      return kernels::simd::Avx512Ops();
  }
  return nullptr;
}

bool Executable(IsaLevel level) {
  return CpuSupports(level) && CompiledOps(level) != nullptr;
}

IsaLevel ComputeDetected() {
  IsaLevel best = IsaLevel::kScalar;
  for (IsaLevel level : kAllLevels) {
    if (Executable(level)) best = level;
  }
  return best;
}

/// The once-resolved dispatch state. `forced` records what
/// SKYLINE_FORCE_ISA asked for (or -1 when absent/unparseable) so
/// Description() can surface a clamp.
struct DispatchState {
  IsaLevel detected;
  IsaLevel active;
  int forced;  // -1: none, otherwise the requested IsaLevel value

  DispatchState() : detected(ComputeDetected()), active(detected), forced(-1) {
    // Startup-only getenv: resolved exactly once inside this magic
    // static's initializer, before any concurrent kernel use.
    const char* env = std::getenv("SKYLINE_FORCE_ISA");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') return;
    const std::string value(env);
    IsaLevel want = detected;
    if (value == "scalar") {
      want = IsaLevel::kScalar;
    } else if (value == "avx2") {
      want = IsaLevel::kAvx2;
    } else if (value == "avx512") {
      want = IsaLevel::kAvx512;
    } else {
      return;  // unknown value: ignore, Description() shows forced=none
    }
    forced = static_cast<int>(want);
    // Clamp: never force a level this process cannot execute.
    active = Executable(want) && static_cast<int>(want) <=
                                     static_cast<int>(detected)
                 ? want
                 : detected;
    // Forcing below detected always works (every lower level is
    // compiled in via the scalar fallback chain); re-check anyway so a
    // backend-less build degrades safely.
    if (!Executable(active)) active = IsaLevel::kScalar;
  }
};

const DispatchState& State() {
  static const DispatchState state;
  return state;
}

std::atomic<bool>& PrefilterFlag() {
  static std::atomic<bool> flag = [] {
    // Startup-only getenv, same discipline as SKYLINE_FORCE_ISA.
    const char* env = std::getenv("SKYLINE_PREFILTER");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr) return true;
    const std::string value(env);
    return !(value == "0" || value == "off" || value == "false");
  }();
  return flag;
}

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

IsaLevel DetectedIsa() { return State().detected; }

IsaLevel ActiveIsa() { return State().active; }

const KernelOps* OpsFor(IsaLevel level) {
  return Executable(level) ? CompiledOps(level) : nullptr;
}

const KernelOps& ActiveOps() {
  static const KernelOps& ops = *CompiledOps(State().active);
  return ops;
}

bool PrefilterEnabled() {
  return PrefilterFlag().load(std::memory_order_relaxed);
}

void SetPrefilterEnabledForTesting(bool enabled) {
  PrefilterFlag().store(enabled, std::memory_order_relaxed);
}

std::string Description() {
  const DispatchState& s = State();
  std::string out = "isa=";
  out += IsaName(s.active);
  out += " detected=";
  out += IsaName(s.detected);
  out += " forced=";
  out += s.forced < 0 ? "none" : IsaName(static_cast<IsaLevel>(s.forced));
  out += " prefilter=";
  out += PrefilterEnabled() ? "on" : "off";
  return out;
}

}  // namespace cpu
}  // namespace skyline
