// Annotated synchronization primitives — the only file in src/ allowed
// to name a std locking type (scripts/check_invariants.py rule R1
// enforces this).
//
// The wrappers carry Clang Thread Safety Analysis attributes, so a
// Clang build with -Wthread-safety (CMake option SKYLINE_THREAD_SAFETY)
// proves lock discipline at COMPILE time, for every schedule — the
// static complement to the TSan preset, which only checks the schedules
// the test suite happens to execute. On non-Clang toolchains every
// attribute expands to nothing and the wrappers are zero-cost veneers
// over the std primitives, so gcc builds are unaffected.
//
// Discipline (see docs/static_analysis.md):
//
//   * A field protected by a lock is declared with
//     SKYLINE_GUARDED_BY(mu) (SKYLINE_PT_GUARDED_BY for the pointee of
//     a pointer). Clang then rejects any access outside a critical
//     section of `mu`.
//   * An internal helper that expects its caller to hold the lock says
//     so with SKYLINE_REQUIRES(mu) / SKYLINE_REQUIRES_SHARED(mu) —
//     documentation the compiler enforces at every call site.
//   * A public entry point that takes the lock itself is annotated
//     SKYLINE_EXCLUDES(mu), which turns self-deadlock (re-entry) into a
//     compile error.
//   * Lock-free publish protocols that the analysis cannot express
//     (release/acquire handshakes) are confined to single accessor
//     functions marked SKYLINE_NO_THREAD_SAFETY_ANALYSIS, each
//     commented with the protocol that makes it sound.
#ifndef SKYLINE_CORE_SYNC_H_
#define SKYLINE_CORE_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Attribute macros (Clang Thread Safety Analysis) ----
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__) && !defined(SKYLINE_NO_THREAD_SAFETY_ATTRIBUTES)
#define SKYLINE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SKYLINE_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex" names it in
/// diagnostics).
#define SKYLINE_CAPABILITY(x) SKYLINE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define SKYLINE_SCOPED_CAPABILITY SKYLINE_THREAD_ANNOTATION_(scoped_lockable)

/// Field access requires holding `x` (in any mode for reads, exclusive
/// for writes).
#define SKYLINE_GUARDED_BY(x) SKYLINE_THREAD_ANNOTATION_(guarded_by(x))

/// Dereferencing this pointer requires holding `x`.
#define SKYLINE_PT_GUARDED_BY(x) SKYLINE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability exclusively.
#define SKYLINE_REQUIRES(...) \
  SKYLINE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define SKYLINE_REQUIRES_SHARED(...) \
  SKYLINE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (and did not hold it).
#define SKYLINE_ACQUIRE(...) \
  SKYLINE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define SKYLINE_ACQUIRE_SHARED(...) \
  SKYLINE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (scoped wrappers: whatever mode the
/// scope holds — Clang tracks the mode per scoped object).
#define SKYLINE_RELEASE(...) \
  SKYLINE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define SKYLINE_RELEASE_SHARED(...) \
  SKYLINE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability — re-entry becomes a compile
/// error instead of a deadlock.
#define SKYLINE_EXCLUDES(...) \
  SKYLINE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns the capability guarding its result.
#define SKYLINE_RETURN_CAPABILITY(x) \
  SKYLINE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is excluded from the analysis. Every
/// use must carry a comment stating the protocol that makes it sound.
#define SKYLINE_NO_THREAD_SAFETY_ANALYSIS \
  SKYLINE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace skyline {

/// std::mutex with a capability annotation. Prefer the RAII MutexLock;
/// Lock()/Unlock() exist for the rare split-scope pattern.
class SKYLINE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKYLINE_ACQUIRE() { mu_.lock(); }
  void Unlock() SKYLINE_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with a capability annotation: one writer or many
/// readers. Prefer the RAII WriterLock / ReaderLock.
class SKYLINE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SKYLINE_ACQUIRE() { mu_.lock(); }
  void Unlock() SKYLINE_RELEASE() { mu_.unlock(); }
  void LockShared() SKYLINE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SKYLINE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// RAII critical section over a Mutex. Unlock() ends the section early;
/// the destructor is then a no-op.
class SKYLINE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKYLINE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() SKYLINE_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() SKYLINE_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) critical section over a SharedMutex.
class SKYLINE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SKYLINE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterLock() SKYLINE_RELEASE() {}

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void Unlock() SKYLINE_RELEASE() { lock_.unlock(); }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// RAII shared (reader) critical section over a SharedMutex.
class SKYLINE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SKYLINE_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderLock() SKYLINE_RELEASE() {}

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  void Unlock() SKYLINE_RELEASE() { lock_.unlock(); }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Condition variable bound to MutexLock. Wait atomically releases and
/// reacquires the section, which the static analysis cannot see — from
/// the caller's perspective the capability is held across the call,
/// which is exactly the guarantee Wait restores before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_SYNC_H_
