// AVX-512 backend of the batched dominance kernels (requires F for the
// masked double compares and BW for the 64-lane byte compares of the
// quantized prefilter).
//
// Same layout facts and semantics contract as src/core/simd_avx2.cc;
// the differences are mechanical:
//   * rows are processed 8 doubles per vector with lane-mask tails
//     (_mm512_maskz_loadu_pd suppresses the masked lanes entirely, so
//     the poisoned exact-plane padding is never read and the masked
//     lanes compare as the neutral 0.0 vs 0.0);
//   * compares produce __mmask8 directly, so the D_{q<p} Subspace bits
//     are just the compare mask shifted into place — no movemask;
//   * one _mm512_cmpgt_epu8_mask covers the whole 64-byte quantized
//     row in a single compare.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/simd_dispatch.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <bit>

namespace skyline {
namespace kernels {
namespace simd {

namespace {

/// Pivot rows interleaved per iteration in the one-vs-many probes.
constexpr unsigned kGroup = 4;

/// Lane mask enabling the first r of 8 double lanes (r in 1..7).
inline __mmask8 TailMask(Dim r) {
  return static_cast<__mmask8>((1u << r) - 1u);
}

/// Dominance of up to kGroup pivot rows over one probe row, as a
/// bitmask (bit j set iff p[j] dominates q).
inline unsigned Dominates4(const Value* const* p, unsigned m, const Value* q,
                           Dim d) {
  __mmask8 worse[kGroup] = {0, 0, 0, 0};
  __mmask8 better[kGroup] = {0, 0, 0, 0};
  Dim i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vq = _mm512_loadu_pd(q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vp = _mm512_loadu_pd(p[j] + i);
      worse[j] |= _mm512_cmp_pd_mask(vp, vq, _CMP_GT_OQ);
      better[j] |= _mm512_cmp_pd_mask(vp, vq, _CMP_LT_OQ);
    }
  }
  if (i < d) {
    const __mmask8 tm = TailMask(d - i);
    const __m512d vq = _mm512_maskz_loadu_pd(tm, q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vp = _mm512_maskz_loadu_pd(tm, p[j] + i);
      worse[j] |= _mm512_cmp_pd_mask(vp, vq, _CMP_GT_OQ);
      better[j] |= _mm512_cmp_pd_mask(vp, vq, _CMP_LT_OQ);
    }
  }
  unsigned out = 0;
  for (unsigned j = 0; j < m; ++j) {
    if (worse[j] == 0 && better[j] != 0) out |= 1u << j;
  }
  return out;
}

/// D_{q<p[j]} bits plus the q-somewhere-worse flag for one probe row
/// against up to kGroup pivot rows.
inline void SubspaceQ4(const Value* q, const Value* const* p, unsigned m,
                       Dim d, std::uint64_t* out_bits, unsigned* out_worse) {
  std::uint64_t bits[kGroup] = {0, 0, 0, 0};
  __mmask8 worse[kGroup] = {0, 0, 0, 0};
  Dim i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vq = _mm512_loadu_pd(q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vp = _mm512_loadu_pd(p[j] + i);
      bits[j] |= static_cast<std::uint64_t>(
                     _mm512_cmp_pd_mask(vq, vp, _CMP_LT_OQ))
                 << i;
      worse[j] |= _mm512_cmp_pd_mask(vq, vp, _CMP_GT_OQ);
    }
  }
  if (i < d) {
    const __mmask8 tm = TailMask(d - i);
    const __m512d vq = _mm512_maskz_loadu_pd(tm, q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vp = _mm512_maskz_loadu_pd(tm, p[j] + i);
      bits[j] |= static_cast<std::uint64_t>(
                     _mm512_cmp_pd_mask(vq, vp, _CMP_LT_OQ))
                 << i;
      worse[j] |= _mm512_cmp_pd_mask(vq, vp, _CMP_GT_OQ);
    }
  }
  for (unsigned j = 0; j < m; ++j) {
    out_bits[j] = bits[j];
    out_worse[j] = worse[j] != 0 ? 1u : 0u;
  }
}

/// D_{r[j]<pivot} bits plus the r[j]-somewhere-worse flag for up to
/// kGroup rows against one pivot row — the Merge inner-loop shape.
inline void SubspaceRow4(const Value* const* r, unsigned m, const Value* p,
                         Dim d, std::uint64_t* out_bits, unsigned* out_worse) {
  std::uint64_t bits[kGroup] = {0, 0, 0, 0};
  __mmask8 worse[kGroup] = {0, 0, 0, 0};
  Dim i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vp = _mm512_loadu_pd(p + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vr = _mm512_loadu_pd(r[j] + i);
      bits[j] |= static_cast<std::uint64_t>(
                     _mm512_cmp_pd_mask(vr, vp, _CMP_LT_OQ))
                 << i;
      worse[j] |= _mm512_cmp_pd_mask(vr, vp, _CMP_GT_OQ);
    }
  }
  if (i < d) {
    const __mmask8 tm = TailMask(d - i);
    const __m512d vp = _mm512_maskz_loadu_pd(tm, p + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m512d vr = _mm512_maskz_loadu_pd(tm, r[j] + i);
      bits[j] |= static_cast<std::uint64_t>(
                     _mm512_cmp_pd_mask(vr, vp, _CMP_LT_OQ))
                 << i;
      worse[j] |= _mm512_cmp_pd_mask(vr, vp, _CMP_GT_OQ);
    }
  }
  for (unsigned j = 0; j < m; ++j) {
    out_bits[j] = bits[j];
    out_worse[j] = worse[j] != 0 ? 1u : 0u;
  }
}

/// Quantized reject test: one 64-lane unsigned byte compare over the
/// whole quantized row (neutral zero padding on both sides).
inline bool QuantWorseSomewhere(const std::uint8_t* s, const std::uint8_t* q) {
  const __m512i vs = _mm512_load_si512(s);
  const __m512i vq = _mm512_load_si512(q);
  return _mm512_cmpgt_epu8_mask(vs, vq) != 0;
}

BatchProbeResult DominatesAnyAvx512(const AlignedDataset& rows,
                                    std::span<const PointId> ids,
                                    const Value* q_row, Dim d, PointId skip,
                                    bool prefilter) {
  BatchProbeResult r;
  alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
  // The prefilter engages lazily, after the first exact group fails:
  // probes resolved within kGroup pivots (the common case on
  // correlated data and for dominated-heavy streams) never pay for
  // quantizing the probe row. Engagement timing is invisible in the
  // results — a quantized reject is sound whenever it fires.
  bool use_prefilter = false;
  bool prefilter_pending = prefilter && rows.has_quantized();
  // Group-size ramp: the first group tests a single pivot, so a probe
  // the block's leading pivot resolves (the overwhelmingly common case
  // on correlated inputs, where blocks are sorted strongest-first)
  // pays for one row compare instead of kGroup.
  unsigned target = 1;
  const std::size_t n = ids.size();
  std::size_t i = 0;
  while (i < n) {
    const Value* prow[kGroup];
    std::size_t pidx[kGroup];
    std::uint64_t charge[kGroup];
    unsigned m = 0;
    while (i < n && m < target) {
      const PointId id = ids[i];
      if (id == skip) {
        ++i;
        continue;
      }
      ++r.scanned;
      // A prefilter reject is a proven non-dominator; it stays charged
      // (the scalar reference loop would have scanned it) but needs no
      // exact compare.
      if (use_prefilter &&
          QuantWorseSomewhere(rows.qrow_unchecked(id), qbuf)) {
        ++i;
        continue;
      }
      prow[m] = rows.row_unchecked(id);
      pidx[m] = i;
      charge[m] = r.scanned;
      ++m;
      ++i;
    }
    if (m == 0) break;
    const unsigned dom = Dominates4(prow, m, q_row, d);
    target = kGroup;
    if (dom != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(dom));
      r.first = pidx[j];
      // Roll the charge back to the scalar early-exit point: pivots
      // collected after the first dominator were never scanned by the
      // reference loop.
      r.scanned = charge[j];
      return r;
    }
    if (prefilter_pending) {
      prefilter_pending = false;
      use_prefilter = rows.QuantizeRow(q_row, qbuf);
    }
  }
  return r;
}

BatchSubspaceResult DominatingSubspaceBatchAvx512(
    const AlignedDataset& rows, std::span<const PointId> ids,
    const Value* q_row, Dim d, PointId skip) {
  BatchSubspaceResult r;
  const std::size_t n = ids.size();
  std::size_t i = 0;
  while (i < n) {
    const Value* prow[kGroup];
    std::size_t pidx[kGroup];
    unsigned m = 0;
    while (i < n && m < kGroup) {
      const PointId id = ids[i];
      if (id == skip) {
        ++i;
        continue;
      }
      prow[m] = rows.row_unchecked(id);
      pidx[m] = i;
      ++m;
      ++i;
    }
    if (m == 0) break;
    std::uint64_t bits[kGroup];
    unsigned worse[kGroup];
    SubspaceQ4(q_row, prow, m, d, bits, worse);
    // Fold in block order; charges accrue here (not at collection) so
    // pivots past an eliminating one stay uncharged.
    for (unsigned j = 0; j < m; ++j) {
      ++r.scanned;
      if (bits[j] == 0 && worse[j] != 0) {
        r.dominated_by = pidx[j];
        return r;
      }
      r.mask |= Subspace(bits[j]);
    }
  }
  return r;
}

void DominatingSubspaceExBatchAvx512(const AlignedDataset& rows,
                                     std::span<const std::uint32_t> row_ids,
                                     const Value* pivot_row, Dim d,
                                     Subspace* out_masks,
                                     std::uint8_t* out_worse) {
  const std::size_t n = row_ids.size();
  for (std::size_t i = 0; i < n; i += kGroup) {
    const unsigned m =
        static_cast<unsigned>(n - i < kGroup ? n - i : kGroup);
    const Value* rrow[kGroup];
    for (unsigned j = 0; j < m; ++j) {
      rrow[j] = rows.row_unchecked(row_ids[i + j]);
    }
    std::uint64_t bits[kGroup];
    unsigned worse[kGroup];
    SubspaceRow4(rrow, m, pivot_row, d, bits, worse);
    for (unsigned j = 0; j < m; ++j) {
      out_masks[i + j] = Subspace(bits[j]);
      out_worse[i + j] = worse[j] != 0 ? 1 : 0;
    }
  }
}

const KernelOps kAvx512OpsTable = {
    &DominatesAnyAvx512,
    &DominatingSubspaceBatchAvx512,
    &DominatingSubspaceExBatchAvx512,
};

}  // namespace

const KernelOps* Avx512Ops() { return &kAvx512OpsTable; }

}  // namespace simd
}  // namespace kernels
}  // namespace skyline

#else  // !(defined(__AVX512F__) && defined(__AVX512BW__))

namespace skyline {
namespace kernels {
namespace simd {

const KernelOps* Avx512Ops() { return nullptr; }

}  // namespace simd
}  // namespace kernels
}  // namespace skyline

#endif  // defined(__AVX512F__) && defined(__AVX512BW__)
