#include "src/core/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace skyline::internal {

void ReportContractViolation(const char* kind, const char* expr,
                             const char* file, int line, const char* msg) {
  if (expr != nullptr && expr[0] != '\0') {
    std::fprintf(stderr, "[skyline] %s: %s\n  at %s:%d\n  %s\n", kind, expr,
                 file, line, msg);
  } else {
    std::fprintf(stderr, "[skyline] %s\n  at %s:%d\n  %s\n", kind, file, line,
                 msg);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace skyline::internal
