// AVX2 backend of the batched dominance kernels.
//
// Layout facts the intrinsics rely on (see src/core/aligned_dataset.h):
//   * exact rows are 64-byte aligned with a padded stride, but the
//     padding tail may hold ANY bit pattern (tests poison it with NaN
//     and -inf), so tails are read with _mm256_maskload_pd — masked
//     lanes are architecturally not read and materialize as 0.0, and
//     0.0 vs 0.0 compares false for both GT and LT, i.e. neutral;
//   * the probe row of a one-vs-many call can be EXTERNAL packed
//     memory of exactly d doubles (streaming arrivals), so full-width
//     loads are only issued for whole in-bounds chunks;
//   * quantized rows are whole 64-byte aligned lines with a neutral
//     zero tail on both sides, so byte compares load full lines.
//
// Comparison predicates are ordered-quiet (_CMP_GT_OQ/_CMP_LT_OQ):
// false on NaN, exactly like the scalar `a > b` / `a < b`, which keeps
// results bit-identical to src/core/simd_scalar.cc on NaN inputs.
//
// The one-vs-many probes interleave 4 pivot rows per iteration to
// break the compare->accumulate dependence chain; the `scanned` charge
// is rolled back to the first dominator inside a group, so the
// early-exit charge contract is preserved exactly.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/simd_dispatch.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace skyline {
namespace kernels {
namespace simd {

namespace {

/// Pivot rows interleaved per iteration in the one-vs-many probes.
constexpr unsigned kGroup = 4;

/// Lane-enable vector for a tail of r doubles (r in 1..3): the first r
/// lanes all-ones, the rest zero.
alignas(32) constexpr std::int64_t kTailTable[8] = {-1, -1, -1, -1,
                                                    0,  0,  0,  0};

inline __m256i TailMask(Dim r) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailTable + 4 - r));
}

/// Dominance of up to kGroup pivot rows over one probe row, as a
/// bitmask (bit j set iff p[j] dominates q). Flag accumulation across
/// the row, decision at the end — same shape as the scalar reference.
inline unsigned Dominates4(const Value* const* p, unsigned m, const Value* q,
                           Dim d) {
  __m256d worse[kGroup];
  __m256d better[kGroup];
  for (unsigned j = 0; j < m; ++j) {
    worse[j] = _mm256_setzero_pd();
    better[j] = _mm256_setzero_pd();
  }
  Dim i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vq = _mm256_loadu_pd(q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vp = _mm256_loadu_pd(p[j] + i);
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vp, vq, _CMP_GT_OQ));
      better[j] = _mm256_or_pd(better[j], _mm256_cmp_pd(vp, vq, _CMP_LT_OQ));
    }
  }
  if (i < d) {
    const __m256i tm = TailMask(d - i);
    const __m256d vq = _mm256_maskload_pd(q + i, tm);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vp = _mm256_maskload_pd(p[j] + i, tm);
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vp, vq, _CMP_GT_OQ));
      better[j] = _mm256_or_pd(better[j], _mm256_cmp_pd(vp, vq, _CMP_LT_OQ));
    }
  }
  unsigned out = 0;
  for (unsigned j = 0; j < m; ++j) {
    if (_mm256_movemask_pd(worse[j]) == 0 &&
        _mm256_movemask_pd(better[j]) != 0) {
      out |= 1u << j;
    }
  }
  return out;
}

/// D_{q<p[j]} bits plus the q-somewhere-worse flag for one probe row
/// against up to kGroup pivot rows.
inline void SubspaceQ4(const Value* q, const Value* const* p, unsigned m,
                       Dim d, std::uint64_t* out_bits, unsigned* out_worse) {
  std::uint64_t bits[kGroup] = {0, 0, 0, 0};
  __m256d worse[kGroup];
  for (unsigned j = 0; j < m; ++j) worse[j] = _mm256_setzero_pd();
  Dim i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vq = _mm256_loadu_pd(q + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vp = _mm256_loadu_pd(p[j] + i);
      bits[j] |= static_cast<std::uint64_t>(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_cmp_pd(vq, vp, _CMP_LT_OQ))))
                 << i;
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vq, vp, _CMP_GT_OQ));
    }
  }
  if (i < d) {
    const __m256i tm = TailMask(d - i);
    const __m256d vq = _mm256_maskload_pd(q + i, tm);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vp = _mm256_maskload_pd(p[j] + i, tm);
      bits[j] |= static_cast<std::uint64_t>(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_cmp_pd(vq, vp, _CMP_LT_OQ))))
                 << i;
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vq, vp, _CMP_GT_OQ));
    }
  }
  for (unsigned j = 0; j < m; ++j) {
    out_bits[j] = bits[j];
    out_worse[j] = _mm256_movemask_pd(worse[j]) != 0 ? 1u : 0u;
  }
}

/// D_{r[j]<pivot} bits plus the r[j]-somewhere-worse flag for up to
/// kGroup rows against one pivot row — the Merge inner-loop shape.
inline void SubspaceRow4(const Value* const* r, unsigned m, const Value* p,
                         Dim d, std::uint64_t* out_bits, unsigned* out_worse) {
  std::uint64_t bits[kGroup] = {0, 0, 0, 0};
  __m256d worse[kGroup];
  for (unsigned j = 0; j < m; ++j) worse[j] = _mm256_setzero_pd();
  Dim i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vp = _mm256_loadu_pd(p + i);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vr = _mm256_loadu_pd(r[j] + i);
      bits[j] |= static_cast<std::uint64_t>(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_cmp_pd(vr, vp, _CMP_LT_OQ))))
                 << i;
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vr, vp, _CMP_GT_OQ));
    }
  }
  if (i < d) {
    const __m256i tm = TailMask(d - i);
    const __m256d vp = _mm256_maskload_pd(p + i, tm);
    for (unsigned j = 0; j < m; ++j) {
      const __m256d vr = _mm256_maskload_pd(r[j] + i, tm);
      bits[j] |= static_cast<std::uint64_t>(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_cmp_pd(vr, vp, _CMP_LT_OQ))))
                 << i;
      worse[j] = _mm256_or_pd(worse[j], _mm256_cmp_pd(vr, vp, _CMP_GT_OQ));
    }
  }
  for (unsigned j = 0; j < m; ++j) {
    out_bits[j] = bits[j];
    out_worse[j] = _mm256_movemask_pd(worse[j]) != 0 ? 1u : 0u;
  }
}

/// Quantized reject test: summary row `s` strictly above `q` somewhere
/// proves the exact row cannot dominate. Whole-line compare; the
/// padding tail is neutral zero on both sides. s <= q byte-wise iff
/// max_epu8(s, q) == q.
inline bool QuantWorseSomewhere(const std::uint8_t* s, const std::uint8_t* q) {
  const __m256i vs0 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(s));
  const __m256i vq0 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(q));
  const __m256i vs1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(s + 32));
  const __m256i vq1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(q + 32));
  const __m256i le0 = _mm256_cmpeq_epi8(_mm256_max_epu8(vs0, vq0), vq0);
  const __m256i le1 = _mm256_cmpeq_epi8(_mm256_max_epu8(vs1, vq1), vq1);
  return _mm256_movemask_epi8(_mm256_and_si256(le0, le1)) != -1;
}

BatchProbeResult DominatesAnyAvx2(const AlignedDataset& rows,
                                  std::span<const PointId> ids,
                                  const Value* q_row, Dim d, PointId skip,
                                  bool prefilter) {
  BatchProbeResult r;
  alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
  // The prefilter engages lazily, after the first exact group fails:
  // probes resolved within kGroup pivots (the common case on
  // correlated data and for dominated-heavy streams) never pay for
  // quantizing the probe row. Engagement timing is invisible in the
  // results — a quantized reject is sound whenever it fires.
  bool use_prefilter = false;
  bool prefilter_pending = prefilter && rows.has_quantized();
  // Group-size ramp: the first group tests a single pivot, so a probe
  // the block's leading pivot resolves (the overwhelmingly common case
  // on correlated inputs, where blocks are sorted strongest-first)
  // pays for one row compare instead of kGroup.
  unsigned target = 1;
  const std::size_t n = ids.size();
  std::size_t i = 0;
  while (i < n) {
    const Value* prow[kGroup];
    std::size_t pidx[kGroup];
    std::uint64_t charge[kGroup];
    unsigned m = 0;
    while (i < n && m < target) {
      const PointId id = ids[i];
      if (id == skip) {
        ++i;
        continue;
      }
      ++r.scanned;
      // A prefilter reject is a proven non-dominator; it stays charged
      // (the scalar reference loop would have scanned it) but needs no
      // exact compare.
      if (use_prefilter &&
          QuantWorseSomewhere(rows.qrow_unchecked(id), qbuf)) {
        ++i;
        continue;
      }
      prow[m] = rows.row_unchecked(id);
      pidx[m] = i;
      charge[m] = r.scanned;
      ++m;
      ++i;
    }
    if (m == 0) break;
    const unsigned dom = Dominates4(prow, m, q_row, d);
    target = kGroup;
    if (dom != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(dom));
      r.first = pidx[j];
      // Roll the charge back to the scalar early-exit point: pivots
      // collected after the first dominator were never scanned by the
      // reference loop.
      r.scanned = charge[j];
      return r;
    }
    if (prefilter_pending) {
      prefilter_pending = false;
      use_prefilter = rows.QuantizeRow(q_row, qbuf);
    }
  }
  return r;
}

BatchSubspaceResult DominatingSubspaceBatchAvx2(const AlignedDataset& rows,
                                                std::span<const PointId> ids,
                                                const Value* q_row, Dim d,
                                                PointId skip) {
  BatchSubspaceResult r;
  const std::size_t n = ids.size();
  std::size_t i = 0;
  while (i < n) {
    const Value* prow[kGroup];
    std::size_t pidx[kGroup];
    unsigned m = 0;
    while (i < n && m < kGroup) {
      const PointId id = ids[i];
      if (id == skip) {
        ++i;
        continue;
      }
      prow[m] = rows.row_unchecked(id);
      pidx[m] = i;
      ++m;
      ++i;
    }
    if (m == 0) break;
    std::uint64_t bits[kGroup];
    unsigned worse[kGroup];
    SubspaceQ4(q_row, prow, m, d, bits, worse);
    // Fold in block order; charges accrue here (not at collection) so
    // pivots past an eliminating one stay uncharged.
    for (unsigned j = 0; j < m; ++j) {
      ++r.scanned;
      if (bits[j] == 0 && worse[j] != 0) {
        r.dominated_by = pidx[j];
        return r;
      }
      r.mask |= Subspace(bits[j]);
    }
  }
  return r;
}

void DominatingSubspaceExBatchAvx2(const AlignedDataset& rows,
                                   std::span<const std::uint32_t> row_ids,
                                   const Value* pivot_row, Dim d,
                                   Subspace* out_masks,
                                   std::uint8_t* out_worse) {
  const std::size_t n = row_ids.size();
  for (std::size_t i = 0; i < n; i += kGroup) {
    const unsigned m =
        static_cast<unsigned>(n - i < kGroup ? n - i : kGroup);
    const Value* rrow[kGroup];
    for (unsigned j = 0; j < m; ++j) {
      rrow[j] = rows.row_unchecked(row_ids[i + j]);
    }
    std::uint64_t bits[kGroup];
    unsigned worse[kGroup];
    SubspaceRow4(rrow, m, pivot_row, d, bits, worse);
    for (unsigned j = 0; j < m; ++j) {
      out_masks[i + j] = Subspace(bits[j]);
      out_worse[i + j] = worse[j] != 0 ? 1 : 0;
    }
  }
}

const KernelOps kAvx2OpsTable = {
    &DominatesAnyAvx2,
    &DominatingSubspaceBatchAvx2,
    &DominatingSubspaceExBatchAvx2,
};

}  // namespace

const KernelOps* Avx2Ops() { return &kAvx2OpsTable; }

}  // namespace simd
}  // namespace kernels
}  // namespace skyline

#else  // !defined(__AVX2__)

namespace skyline {
namespace kernels {
namespace simd {

const KernelOps* Avx2Ops() { return nullptr; }

}  // namespace simd
}  // namespace kernels
}  // namespace skyline

#endif  // defined(__AVX2__)
