// Dispatch table of the batched dominance kernels: the result structs
// shared by every ISA backend, the function-pointer table the runtime
// dispatcher (src/core/cpu.h) resolves once per process, and the
// per-ISA entry points implemented in src/core/simd_{scalar,avx2,
// avx512}.cc.
//
// Layering contract (enforced by scripts/check_invariants.py R7): raw
// intrinsics live ONLY in src/core/simd_*.cc. Everything else — the
// public wrappers of src/core/kernels.h included — reaches a batched
// kernel through KernelOps, so exactly one place decides which ISA
// executes and the differential tests can pin every backend against
// the scalar reference.
//
// Every backend implements the same semantics contract as the scalar
// reference loops (see src/core/kernels.h): bit-identical booleans,
// Subspace bits, early-exit points, and `scanned` charges. The
// `prefilter` flag of `dominates_any` additionally allows the backend
// to consult the quantized summary plane of the AlignedDataset (see
// docs/kernels.md): a quantized reject is sound by construction, so
// results and charges are identical with the flag on or off.
#ifndef SKYLINE_CORE_SIMD_DISPATCH_H_
#define SKYLINE_CORE_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/aligned_dataset.h"
#include "src/core/subspace.h"
#include "src/core/types.h"

namespace skyline {
namespace kernels {

/// "No dominator found" sentinel of the batched probes.
inline constexpr std::size_t kNoDominator = static_cast<std::size_t>(-1);

/// Result of a one-vs-many probe over a pivot block.
struct BatchProbeResult {
  /// Block index (into the id span) of the first dominator, or
  /// kNoDominator.
  std::size_t first = kNoDominator;

  /// Dominance tests a scalar early-exit loop would have charged:
  /// the number of non-skipped pivots up to and including the first
  /// dominator, or all non-skipped pivots when none dominates.
  std::uint64_t scanned = 0;
};

/// Result of folding D_{q<p} over a pivot block.
struct BatchSubspaceResult {
  /// Union of D_{q<p} over every pivot scanned before the exit point.
  Subspace mask;

  /// Block index of the first pivot that weakly dominates q while being
  /// strictly better somewhere (i.e. q is eliminated), or kNoDominator.
  std::size_t dominated_by = kNoDominator;

  /// Pivots charged, with the same early-exit semantics as a scalar
  /// fold: everything up to and including `dominated_by`, or all
  /// non-skipped pivots.
  std::uint64_t scanned = 0;
};

namespace simd {

/// One ISA backend of the batched kernels. Callers never invoke a
/// backend directly; they go through cpu::ActiveOps() (or, in the
/// differential tests, cpu::OpsFor(level)).
struct KernelOps {
  BatchProbeResult (*dominates_any)(const AlignedDataset& rows,
                                    std::span<const PointId> ids,
                                    const Value* q_row, Dim d, PointId skip,
                                    bool prefilter);
  BatchSubspaceResult (*dominating_subspace_batch)(const AlignedDataset& rows,
                                                   std::span<const PointId> ids,
                                                   const Value* q_row, Dim d,
                                                   PointId skip);
  void (*dominating_subspace_ex_batch)(const AlignedDataset& rows,
                                       std::span<const std::uint32_t> row_ids,
                                       const Value* pivot_row, Dim d,
                                       Subspace* out_masks,
                                       std::uint8_t* out_worse);
};

/// Portable backend: the flag-accumulating loops the compiler
/// auto-vectorizes — the pre-dispatch behavior of this layer, kept as
/// the semantic reference and the fallback on every platform.
extern const KernelOps kScalarOps;

/// Explicit-intrinsics backends. Null when the translation unit was
/// compiled without the matching -m flags (non-x86 target or an old
/// compiler); the dispatcher then never offers the level.
const KernelOps* Avx2Ops();
const KernelOps* Avx512Ops();

}  // namespace simd
}  // namespace kernels
}  // namespace skyline

#endif  // SKYLINE_CORE_SIMD_DISPATCH_H_
