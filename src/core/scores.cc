#include "src/core/contracts.h"
#include "src/core/scores.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace skyline {

std::string_view ToString(ScoreFunction f) {
  switch (f) {
    case ScoreFunction::kSum:
      return "sum";
    case ScoreFunction::kEntropy:
      return "entropy";
    case ScoreFunction::kMinCoordinate:
      return "minC";
    case ScoreFunction::kEuclidean:
      return "euclidean";
  }
  return "?";
}

Value ScorePoint(const Value* p, Dim d, ScoreFunction f) {
  switch (f) {
    case ScoreFunction::kSum: {
      Value s = 0;
      for (Dim i = 0; i < d; ++i) s += p[i];
      return s;
    }
    case ScoreFunction::kEntropy: {
      Value s = 0;
      for (Dim i = 0; i < d; ++i) {
        SKYLINE_ASSERT(p[i] > Value{-1},
                       "log-sum score requires values > -1");
        s += std::log1p(p[i]);
      }
      return s;
    }
    case ScoreFunction::kMinCoordinate: {
      Value s = p[0];
      for (Dim i = 1; i < d; ++i) s = std::min(s, p[i]);
      return s;
    }
    case ScoreFunction::kEuclidean: {
      Value s = 0;
      for (Dim i = 0; i < d; ++i) s += p[i] * p[i];
      return s;
    }
  }
  return 0;
}

std::vector<Value> ComputeScores(const Dataset& data, ScoreFunction f) {
  const std::size_t n = data.num_points();
  std::vector<Value> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = ScorePoint(data.row(static_cast<PointId>(i)), data.num_dims(), f);
  }
  return scores;
}

std::vector<PointId> SortedByScore(const Dataset& data, ScoreFunction f) {
  const std::size_t n = data.num_points();
  std::vector<Value> primary = ComputeScores(data, f);
  std::vector<Value> secondary;
  if (f != ScoreFunction::kSum) {
    secondary = ComputeScores(data, ScoreFunction::kSum);
  }
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    if (primary[a] != primary[b]) return primary[a] < primary[b];
    if (!secondary.empty() && secondary[a] != secondary[b]) {
      return secondary[a] < secondary[b];
    }
    return a < b;
  });
  return order;
}

PointId ArgMinScore(const Dataset& data, ScoreFunction f) {
  const std::size_t n = data.num_points();
  if (n == 0) return kInvalidPoint;
  PointId best = 0;
  Value best_primary = ScorePoint(data.row(0), data.num_dims(), f);
  Value best_secondary = ScorePoint(data.row(0), data.num_dims(), ScoreFunction::kSum);
  for (PointId id = 1; id < n; ++id) {
    Value p = ScorePoint(data.row(id), data.num_dims(), f);
    if (p > best_primary) continue;
    Value s = ScorePoint(data.row(id), data.num_dims(), ScoreFunction::kSum);
    if (p < best_primary || s < best_secondary) {
      best = id;
      best_primary = p;
      best_secondary = s;
    }
  }
  return best;
}

}  // namespace skyline
