// Index — progressive skyline via per-dimension minimum lists (Tan, Eng,
// Ooi, VLDB 2001). Every point is filed under the dimension of its
// minimum value; the d lists are kept sorted by that value (the original
// uses a B+-tree per list; in-memory sorted arrays are the equivalent
// access structure). Processing pops the globally smallest head across
// lists — an ascending (minC, sum) order — outputs non-dominated points
// progressively, and terminates once no unprocessed point can escape
// domination by an already-found skyline point.
#ifndef SKYLINE_ALGO_INDEX_H_
#define SKYLINE_ALGO_INDEX_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory Index with early termination.
class IndexSkyline final : public SkylineAlgorithm {
 public:
  IndexSkyline() = default;

  std::string_view name() const override { return "index"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_INDEX_H_
