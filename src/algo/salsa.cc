#include "src/algo/salsa.h"

#include <algorithm>
#include <limits>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

std::vector<PointId> Salsa::Compute(const Dataset& data,
                                    SkylineStats* stats) const {
  DominanceTester tester(data);
  const Dim d = data.num_dims();
  std::vector<PointId> order = SortedByScore(data, ScoreFunction::kMinCoordinate);

  // stop_value = min over accepted skyline points s of max_i s[i]. If the
  // current point's minimum coordinate is strictly greater, the stop point
  // is strictly better in *every* dimension of every remaining point
  // (remaining points have even larger minima), so the scan can end.
  Value stop_value = std::numeric_limits<Value>::infinity();

  std::vector<PointId> result;
  for (PointId p : order) {
    const Value* row = data.row(p);
    Value min_coord = row[0];
    Value max_coord = row[0];
    for (Dim i = 1; i < d; ++i) {
      min_coord = std::min(min_coord, row[i]);
      max_coord = std::max(max_coord, row[i]);
    }
    if (min_coord > stop_value) break;

    bool dominated = false;
    for (PointId s : result) {
      if (tester.Dominates(s, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.push_back(p);
      stop_value = std::min(stop_value, max_coord);
    }
  }
  if (stats != nullptr) {
    *stats = SkylineStats{};
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
