// BSkyTree-S and BSkyTree-P (Lee & Hwang, EDBT 2010 / Information
// Systems 2014) — the state-of-the-art baselines of the paper's
// evaluation. Both select a balanced pivot and map points to lattice
// vectors; -S then runs a sorted scan that skips dominance tests between
// subset-incomparable lattice regions, while -P recursively partitions
// into the 2^d lattice regions and merges region skylines in level order.
#ifndef SKYLINE_ALGO_BSKYTREE_H_
#define SKYLINE_ALGO_BSKYTREE_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// BSkyTree-S: pivot-based incomparability pruning on top of a sorted
/// scan (the optimized sorting-based algorithm of Lee & Hwang).
class BSkyTreeS final : public SkylineAlgorithm {
 public:
  BSkyTreeS() = default;

  std::string_view name() const override { return "bskytree-s"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;
};

/// BSkyTree-P: recursive lattice-region partitioning (the optimized
/// partitioning-based algorithm of Lee & Hwang).
class BSkyTreeP final : public SkylineAlgorithm {
 public:
  explicit BSkyTreeP(const AlgorithmOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "bskytree-p"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_BSKYTREE_H_
