#include "src/algo/sfs.h"

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

std::vector<PointId> Sfs::Compute(const Dataset& data,
                                  SkylineStats* stats) const {
  DominanceTester tester(data);
  std::vector<PointId> result;
  // Monotone order: a dominator of p always precedes p, so testing p
  // against the accepted skyline alone is complete.
  for (PointId p : SortedByScore(data, options_.sort)) {
    bool dominated = false;
    for (PointId s : result) {
      if (tester.Dominates(s, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  if (stats != nullptr) {
    *stats = SkylineStats{};
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
