// BNL — Block Nested Loop skyline (Börzsönyi, Kossmann, Stocker,
// ICDE 2001). The baseline pairwise-comparison algorithm: maintains a
// window of candidate skyline points and streams the input through it.
#ifndef SKYLINE_ALGO_BNL_H_
#define SKYLINE_ALGO_BNL_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory BNL. O(d N^2) worst case; no presorting, so the window can
/// hold points that are later evicted by a dominator arriving behind them.
class Bnl final : public SkylineAlgorithm {
 public:
  Bnl() = default;

  std::string_view name() const override { return "bnl"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

  /// Core routine reusable by other algorithms (D&C leaves, BSkyTree-P
  /// leaves): skyline of the subset `ids` of `data`, counting tests into
  /// `tester`. Returns ids of the local skyline.
  static std::vector<PointId> ComputeSubset(class DominanceTester& tester,
                                            const std::vector<PointId>& ids);
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_BNL_H_
