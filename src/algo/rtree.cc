#include "src/algo/rtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace skyline {

namespace {

RTree::Mbr ComputeMbr(const Dataset& data, const std::vector<PointId>& ids) {
  const Dim d = data.num_dims();
  RTree::Mbr mbr;
  mbr.lo.assign(d, std::numeric_limits<Value>::infinity());
  mbr.hi.assign(d, -std::numeric_limits<Value>::infinity());
  for (PointId p : ids) {
    const Value* row = data.row(p);
    for (Dim i = 0; i < d; ++i) {
      mbr.lo[i] = std::min(mbr.lo[i], row[i]);
      mbr.hi[i] = std::max(mbr.hi[i], row[i]);
    }
  }
  return mbr;
}

RTree::Mbr MergeMbr(const RTree::Mbr& a, const RTree::Mbr& b) {
  RTree::Mbr out = a;
  for (std::size_t i = 0; i < out.lo.size(); ++i) {
    out.lo[i] = std::min(out.lo[i], b.lo[i]);
    out.hi[i] = std::max(out.hi[i], b.hi[i]);
  }
  return out;
}

struct BuildContext {
  const Dataset& data;
  std::size_t leaf_capacity;
  std::size_t fanout;
  std::size_t nodes = 0;
  std::size_t height = 0;
};

std::unique_ptr<RTree::Node> Build(BuildContext& ctx,
                                   std::vector<PointId> ids, Dim split_dim,
                                   std::size_t depth) {
  auto node = std::make_unique<RTree::Node>();
  ++ctx.nodes;
  ctx.height = std::max(ctx.height, depth + 1);
  if (ids.size() <= ctx.leaf_capacity) {
    node->mbr = ComputeMbr(ctx.data, ids);
    node->points = std::move(ids);
    return node;
  }
  // Tile: sort along the current dimension, cut into `fanout` runs.
  const Dim d = ctx.data.num_dims();
  std::sort(ids.begin(), ids.end(), [&](PointId a, PointId b) {
    const Value va = ctx.data.at(a, split_dim);
    const Value vb = ctx.data.at(b, split_dim);
    if (va != vb) return va < vb;
    return a < b;
  });
  const std::size_t chunks = std::min(ctx.fanout, ids.size());
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = ids.size() * c / chunks;
    const std::size_t hi = ids.size() * (c + 1) / chunks;
    if (lo == hi) continue;
    node->children.push_back(
        Build(ctx, std::vector<PointId>(ids.begin() + lo, ids.begin() + hi),
              (split_dim + 1) % d, depth + 1));
  }
  node->mbr = node->children.front()->mbr;
  for (std::size_t c = 1; c < node->children.size(); ++c) {
    node->mbr = MergeMbr(node->mbr, node->children[c]->mbr);
  }
  return node;
}

}  // namespace

RTree RTree::BulkLoad(const Dataset& data, std::size_t leaf_capacity,
                      std::size_t fanout) {
  RTree tree;
  tree.num_dims_ = data.num_dims();
  if (data.num_points() == 0) return tree;
  BuildContext ctx{data, std::max<std::size_t>(1, leaf_capacity),
                   std::max<std::size_t>(2, fanout)};
  std::vector<PointId> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), PointId{0});
  tree.root_ = Build(ctx, std::move(ids), 0, 0);
  tree.num_nodes_ = ctx.nodes;
  tree.height_ = ctx.height;
  return tree;
}

}  // namespace skyline
