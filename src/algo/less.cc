#include "src/algo/less.h"

#include <algorithm>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

namespace {

/// Bounded elimination filter: keeps up to `capacity` of the best-scored
/// (hence hard-to-dominate) points seen so far.
class EliminationFilter {
 public:
  EliminationFilter(std::size_t capacity, const std::vector<Value>& scores)
      : capacity_(capacity), scores_(scores) {}

  /// Returns true if `p` is dominated by a filter entry. Otherwise
  /// considers `p` for membership: it replaces the worst-scored entry if
  /// the filter is full and `p` scores better.
  bool DropsOrAbsorb(DominanceTester& tester, PointId p) {
    for (PointId f : entries_) {
      if (tester.Dominates(f, p)) return true;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(p);
    } else if (!entries_.empty()) {
      auto worst = std::max_element(
          entries_.begin(), entries_.end(),
          [&](PointId a, PointId b) { return scores_[a] < scores_[b]; });
      if (scores_[p] < scores_[*worst]) *worst = p;
    }
    return false;
  }

 private:
  std::size_t capacity_;
  const std::vector<Value>& scores_;
  std::vector<PointId> entries_;
};

}  // namespace

std::vector<PointId> Less::Compute(const Dataset& data,
                                   SkylineStats* stats) const {
  DominanceTester tester(data);
  const std::size_t n = data.num_points();
  std::vector<Value> scores = ComputeScores(data, options_.sort);

  // Pass 0: elimination-filter scan in input order.
  EliminationFilter filter(std::max<std::size_t>(1, options_.less_filter_size),
                           scores);
  std::vector<PointId> survivors;
  survivors.reserve(n);
  for (PointId p = 0; p < n; ++p) {
    if (!filter.DropsOrAbsorb(tester, p)) survivors.push_back(p);
  }

  // Sort survivors by (score, sum, id), then the usual SFS scan.
  std::vector<Value> sums = (options_.sort == ScoreFunction::kSum)
                                ? std::vector<Value>{}
                                : ComputeScores(data, ScoreFunction::kSum);
  std::sort(survivors.begin(), survivors.end(), [&](PointId a, PointId b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    if (!sums.empty() && sums[a] != sums[b]) return sums[a] < sums[b];
    return a < b;
  });

  std::vector<PointId> result;
  for (PointId p : survivors) {
    bool dominated = false;
    for (PointId s : result) {
      if (tester.Dominates(s, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  if (stats != nullptr) {
    *stats = SkylineStats{};
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
