// SDI — sort-based skyline with dimensional indexing (Liu & Li,
// EDBT 2020). The sort phase builds one sorted index per dimension; the
// scan phase traverses the dimensions breadth-first, resolving each point
// in the first dimension whose cursor reaches it. A point is tested only
// against the skyline points already passed in that dimension (the
// "dimension skyline"), which distributes the dominance tests across
// dimensions; duplicate dimension values are handled by SFS-like local
// tests inside the tie block. The point with minimal Euclidean distance
// serves as the stop point: once every dimension's cursor has passed its
// value, all unresolved points are dominated and the scan terminates.
#ifndef SKYLINE_ALGO_SDI_H_
#define SKYLINE_ALGO_SDI_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory SDI with per-dimension indexes and early termination.
class Sdi final : public SkylineAlgorithm {
 public:
  Sdi() = default;

  std::string_view name() const override { return "sdi"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_SDI_H_
