#include "src/core/contracts.h"
#include "src/algo/pivot.h"

#include <limits>

namespace skyline {

PointId SelectBalancedPivot(const Dataset& data,
                            const std::vector<PointId>& ids) {
  SKYLINE_ASSERT(!ids.empty(), "SelectBalancedPivot: empty id set");
  const Dim d = data.num_dims();

  // Region bounds for range normalization.
  std::vector<Value> lo(d, std::numeric_limits<Value>::infinity());
  std::vector<Value> hi(d, -std::numeric_limits<Value>::infinity());
  for (PointId p : ids) {
    const Value* row = data.row(p);
    for (Dim i = 0; i < d; ++i) {
      if (row[i] < lo[i]) lo[i] = row[i];
      if (row[i] > hi[i]) hi[i] = row[i];
    }
  }
  std::vector<Value> inv_range(d);
  for (Dim i = 0; i < d; ++i) {
    const Value range = hi[i] - lo[i];
    inv_range[i] = range > 0 ? Value{1} / range : Value{0};
  }

  // Minimizing the normalized sum is strictly monotone under dominance
  // (any strictly-better coordinate lies in a non-constant dimension), so
  // the argmin is a skyline point of the region.
  PointId best = ids.front();
  Value best_score = std::numeric_limits<Value>::infinity();
  for (PointId p : ids) {
    const Value* row = data.row(p);
    Value score = 0;
    for (Dim i = 0; i < d; ++i) {
      score += (row[i] - lo[i]) * inv_range[i];
    }
    if (score < best_score || (score == best_score && p < best)) {
      best = p;
      best_score = score;
    }
  }
  return best;
}

}  // namespace skyline
