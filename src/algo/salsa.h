// SaLSa — Sort and Limit Skyline algorithm (Bartolini, Ciaccia, Patella,
// CIKM 2006 / TODS 2008). Sorts by the minC function (minimum coordinate,
// sum as tie-break) and maintains a *stop point*: the skyline point whose
// maximum coordinate is smallest. Once the scan reaches points whose
// minimum coordinate exceeds that value, every remaining point is
// dominated by the stop point and the scan terminates without reading the
// whole sky.
#ifndef SKYLINE_ALGO_SALSA_H_
#define SKYLINE_ALGO_SALSA_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory SaLSa with minC sorting and early termination.
class Salsa final : public SkylineAlgorithm {
 public:
  Salsa() = default;

  std::string_view name() const override { return "salsa"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_SALSA_H_
