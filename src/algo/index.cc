#include "src/algo/index.h"

#include <algorithm>
#include <limits>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

namespace {

struct ListEntry {
  Value min_value;  // the point's minimum coordinate
  Value sum;        // monotone tie-break
  PointId id;
};

}  // namespace

std::vector<PointId> IndexSkyline::Compute(const Dataset& data,
                                           SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  // Build phase: file each point under its minimum dimension, lists
  // sorted ascending by (value, sum, id). The (minC, sum) order is
  // monotone under dominance: a dominator has a smaller-or-equal minC
  // and a strictly smaller sum.
  std::vector<std::vector<ListEntry>> lists(d);
  for (PointId p = 0; p < n; ++p) {
    const Value* row = data.row(p);
    Dim min_dim = 0;
    Value min_value = row[0];
    Value sum = row[0];
    for (Dim i = 1; i < d; ++i) {
      sum += row[i];
      if (row[i] < min_value) {
        min_value = row[i];
        min_dim = i;
      }
    }
    lists[min_dim].push_back({min_value, sum, p});
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end(),
              [](const ListEntry& a, const ListEntry& b) {
                if (a.min_value != b.min_value) {
                  return a.min_value < b.min_value;
                }
                if (a.sum != b.sum) return a.sum < b.sum;
                return a.id < b.id;
              });
  }

  // Scan phase: pop the globally smallest head; stop when every
  // remaining point's minimum coordinate exceeds the smallest maximum
  // coordinate among skyline points (it is then strictly dominated).
  DominanceTester tester(data);
  std::vector<std::size_t> cursor(d, 0);
  Value stop_value = std::numeric_limits<Value>::infinity();
  std::vector<PointId> result;
  for (;;) {
    Dim best = d;
    for (Dim i = 0; i < d; ++i) {
      if (cursor[i] >= lists[i].size()) continue;
      if (best == d) {
        best = i;
        continue;
      }
      const ListEntry& a = lists[i][cursor[i]];
      const ListEntry& b = lists[best][cursor[best]];
      if (a.min_value < b.min_value ||
          (a.min_value == b.min_value && a.sum < b.sum)) {
        best = i;
      }
    }
    if (best == d) break;  // all lists exhausted
    const ListEntry entry = lists[best][cursor[best]++];
    if (entry.min_value > stop_value) break;  // early termination

    bool dominated = false;
    for (PointId s : result) {
      if (tester.Dominates(s, entry.id)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.push_back(entry.id);
      const Value* row = data.row(entry.id);
      Value max_coord = row[0];
      for (Dim i = 1; i < d; ++i) max_coord = std::max(max_coord, row[i]);
      stop_value = std::min(stop_value, max_coord);
    }
  }

  if (stats != nullptr) {
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
