#include "src/algo/registry.h"

#include "src/algo/bbs.h"
#include "src/algo/bnl.h"
#include "src/algo/bskytree.h"
#include "src/algo/dnc.h"
#include "src/algo/index.h"
#include "src/algo/less.h"
#include "src/algo/salsa.h"
#include "src/algo/sdi.h"
#include "src/algo/sfs.h"
#include "src/parallel/parallel_skyline.h"
#include "src/parallel/parallel_subset.h"
#include "src/subset/boosted.h"

namespace skyline {

std::unique_ptr<SkylineAlgorithm> MakeAlgorithm(
    std::string_view name, const AlgorithmOptions& options) {
  if (name == "bnl") return std::make_unique<Bnl>();
  if (name == "sfs") return std::make_unique<Sfs>(options);
  if (name == "less") return std::make_unique<Less>(options);
  if (name == "salsa") return std::make_unique<Salsa>();
  if (name == "sdi") return std::make_unique<Sdi>();
  if (name == "dnc") return std::make_unique<DivideAndConquer>(options);
  if (name == "index") return std::make_unique<IndexSkyline>();
  if (name == "bbs") return std::make_unique<Bbs>(options);
  if (name == "bskytree-s") return std::make_unique<BSkyTreeS>();
  if (name == "bskytree-p") return std::make_unique<BSkyTreeP>(options);
  if (name == "sfs-subset") return std::make_unique<SfsSubset>(options);
  if (name == "salsa-subset") return std::make_unique<SalsaSubset>(options);
  if (name == "sdi-subset") return std::make_unique<SdiSubset>(options);
  if (name == "parallel-sfs") {
    return std::make_unique<ParallelSfs>(0, options);
  }
  if (name == "parallel-subset-sfs") {
    return std::make_unique<ParallelSubsetSfs>(0, options);
  }
  return nullptr;
}

std::vector<std::string> AlgorithmNames() {
  return {"bnl",        "sfs",          "less",         "salsa",
          "sdi",        "index",        "dnc",          "bbs",
          "bskytree-s", "bskytree-p",   "sfs-subset",   "salsa-subset",
          "sdi-subset", "parallel-sfs", "parallel-subset-sfs"};
}

std::vector<std::pair<std::string, std::string>> BoostedPairs() {
  return {{"sfs", "sfs-subset"},
          {"salsa", "salsa-subset"},
          {"sdi", "sdi-subset"}};
}

}  // namespace skyline
