// LESS — Linear Elimination Sort for Skyline (Godfrey, Shipley, Gryz,
// VLDB 2005). SFS with an elimination-filter pass: while the data is
// (conceptually) being sorted, a small window of the best-scored points
// seen so far drops dominated points early, before the main filter scan.
//
// The original operates on external sort-merge runs; this in-memory
// adaptation keeps the two essential ideas — the elimination-filter
// window during pass zero and the SFS scan over the sorted survivors —
// and skips the disk machinery (see DESIGN.md).
#ifndef SKYLINE_ALGO_LESS_H_
#define SKYLINE_ALGO_LESS_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory LESS with a bounded elimination-filter window
/// (options.less_filter_size entries, default 16).
class Less final : public SkylineAlgorithm {
 public:
  explicit Less(const AlgorithmOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "less"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_LESS_H_
