// String-keyed factory over all skyline algorithms in the library, used
// by the benchmark harness, the examples and the tests.
#ifndef SKYLINE_ALGO_REGISTRY_H_
#define SKYLINE_ALGO_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/algo/algorithm.h"

namespace skyline {

/// Creates the algorithm registered under `name`, or nullptr if unknown.
/// Known names: bnl, sfs, less, salsa, sdi, dnc, bskytree-s, bskytree-p,
/// sfs-subset, salsa-subset, sdi-subset.
std::unique_ptr<SkylineAlgorithm> MakeAlgorithm(
    std::string_view name, const AlgorithmOptions& options = {});

/// All registered algorithm names, in a stable presentation order
/// (sorting-based, then partitioning-based, then boosted).
std::vector<std::string> AlgorithmNames();

/// The algorithm/baseline pairs of the paper's evaluation tables:
/// {sfs, sfs-subset}, {salsa, salsa-subset}, {sdi, sdi-subset}.
std::vector<std::pair<std::string, std::string>> BoostedPairs();

}  // namespace skyline

#endif  // SKYLINE_ALGO_REGISTRY_H_
