// A minimal in-memory R-tree, bulk-loaded with a Sort-Tile-Recursive
// style packing. Built as the substrate for the BBS skyline algorithm
// (Papadias et al., SIGMOD 2003), which needs hierarchical minimum
// bounding rectangles with cheap lower-corner access.
#ifndef SKYLINE_ALGO_RTREE_H_
#define SKYLINE_ALGO_RTREE_H_

#include <memory>
#include <vector>

#include "src/core/dataset.h"

namespace skyline {

/// A packed R-tree over the points of a Dataset. Immutable after bulk
/// load; nodes own their children, leaves hold point ids.
class RTree {
 public:
  /// Minimum bounding rectangle: per-dimension [lo, hi].
  struct Mbr {
    std::vector<Value> lo;
    std::vector<Value> hi;
  };

  struct Node {
    Mbr mbr;
    std::vector<PointId> points;                  // non-empty iff leaf
    std::vector<std::unique_ptr<Node>> children;  // non-empty iff inner
    bool IsLeaf() const { return children.empty(); }
  };

  /// Packs `data` into a tree with at most `leaf_capacity` points per
  /// leaf and `fanout` children per inner node, tiling dimensions round
  /// robin. Returns an empty tree (null root) for an empty dataset.
  static RTree BulkLoad(const Dataset& data, std::size_t leaf_capacity = 32,
                        std::size_t fanout = 8);

  /// Root node; nullptr iff the dataset was empty.
  const Node* root() const { return root_.get(); }

  Dim num_dims() const { return num_dims_; }

  /// Total node count (inner + leaf).
  std::size_t num_nodes() const { return num_nodes_; }

  /// Height of the tree (leaf = 1); 0 when empty.
  std::size_t height() const { return height_; }

 private:
  std::unique_ptr<Node> root_;
  Dim num_dims_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t height_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_RTREE_H_
