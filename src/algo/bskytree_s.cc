#include <algorithm>

#include "src/core/contracts.h"
#include "src/algo/bskytree.h"
#include "src/algo/pivot.h"
#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

std::vector<PointId> BSkyTreeS::Compute(const Dataset& data,
                                        SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  DominanceTester tester(data);
  std::vector<PointId> all(n);
  for (PointId i = 0; i < n; ++i) all[i] = i;
  const PointId pivot = SelectBalancedPivot(data, all);
  const Value* pivot_row = data.row(pivot);
  const Subspace full = Subspace::Full(d);

  std::vector<PointId> result;
  result.push_back(pivot);

  // Map every point to its lattice vector. Full mask = weakly dominated
  // by the pivot: pruned, except exact duplicates of the pivot which are
  // themselves skyline points.
  struct Entry {
    PointId id;
    Subspace mask;
    Value sum;
  };
  std::vector<Entry> survivors;
  survivors.reserve(n);
  std::uint64_t masked = 0;
  for (PointId p = 0; p < n; ++p) {
    if (p == pivot) continue;
    const Value* row = data.row(p);
    Subspace mask = LatticeMask(row, pivot_row, d);
    ++masked;
    if (mask == full) {
      if (DominatesOrEqual(row, pivot_row, d)) result.push_back(p);  // dup
      continue;
    }
    SKYLINE_ASSERT(!mask.empty(),
                   "survivor lattice vector empty: p would dominate the pivot");
    survivors.push_back(
        {p, mask, ScorePoint(row, d, ScoreFunction::kSum)});
  }

  // Sort by (lattice level, sum, id): q < p implies B(q) ⊆ B(p), hence a
  // smaller level, or the same mask with a strictly smaller sum — so
  // dominators always precede the points they dominate.
  std::sort(survivors.begin(), survivors.end(),
            [](const Entry& a, const Entry& b) {
              const Dim la = a.mask.size(), lb = b.mask.size();
              if (la != lb) return la < lb;
              if (a.sum != b.sum) return a.sum < b.sum;
              return a.id < b.id;
            });

  // SFS-like scan, skipping tests between subset-incomparable regions.
  std::vector<Entry> accepted;
  std::uint64_t skipped = 0;
  for (const Entry& e : survivors) {
    bool dominated = false;
    for (const Entry& s : accepted) {
      if (!s.mask.IsSubsetOf(e.mask)) {
        ++skipped;
        continue;
      }
      if (tester.Dominates(s.id, e.id)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) accepted.push_back(e);
  }
  for (const Entry& e : accepted) result.push_back(e.id);

  if (stats != nullptr) {
    stats->dominance_tests = tester.tests() + masked;
    stats->tests_skipped = skipped;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
