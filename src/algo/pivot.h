// Pivot selection and lattice mapping shared by BSkyTree-S and
// BSkyTree-P (Lee & Hwang, EDBT 2010 / Inf. Syst. 2014).
//
// The pivot is a skyline point of the region; every other point is mapped
// to the lattice vector B(p) = { i : pivot[i] <= p[i] }. Two properties
// drive both algorithms: (1) B(p) = D (full) means the pivot weakly
// dominates p, and (2) q < p implies B(q) ⊆ B(p), so points whose masks
// are subset-incomparable need no dominance test.
#ifndef SKYLINE_ALGO_PIVOT_H_
#define SKYLINE_ALGO_PIVOT_H_

#include <vector>

#include "src/core/dataset.h"
#include "src/core/dominance.h"
#include "src/core/subspace.h"

namespace skyline {

/// Lattice vector of p with respect to the pivot: bit i set iff
/// pivot[i] <= p[i]. Costs one O(d) row scan, i.e. one dominance test.
inline Subspace LatticeMask(const Value* p, const Value* pivot, Dim d) {
  Subspace s;
  for (Dim i = 0; i < d; ++i) {
    if (pivot[i] <= p[i]) s.Add(i);
  }
  return s;
}

/// Selects a pivot for the region `ids`: the point minimizing the
/// range-normalized coordinate sum. This is always a skyline point of the
/// region and tends to sit centrally with a large dominated volume — a
/// simplification of the original balanced pivot-volume heuristic
/// (see DESIGN.md). `ids` must be non-empty.
PointId SelectBalancedPivot(const Dataset& data,
                            const std::vector<PointId>& ids);

}  // namespace skyline

#endif  // SKYLINE_ALGO_PIVOT_H_
