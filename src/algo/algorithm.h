// Common interface of all skyline algorithms in the library.
#ifndef SKYLINE_ALGO_ALGORITHM_H_
#define SKYLINE_ALGO_ALGORITHM_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/scores.h"
#include "src/core/stats.h"
#include "src/core/types.h"

namespace skyline {

/// Tuning knobs shared across algorithms. Every algorithm reads only the
/// fields relevant to it; defaults reproduce the paper's configuration.
struct AlgorithmOptions {
  /// Presorting function for SFS / LESS and the boosted SFS variant.
  ScoreFunction sort = ScoreFunction::kSum;

  /// Stability threshold sigma of Algorithm 1 (Merge) used by the
  /// -Subset algorithms. 0 means "auto": round(d/3) clamped to [2, d],
  /// the rule established in Section 6.1 of the paper.
  int sigma = 0;

  /// Recursion cutoff of the D&C and BSkyTree-P algorithms: regions at or
  /// below this size are solved with a block nested loop.
  std::size_t partition_leaf_size = 32;

  /// Capacity of the LESS elimination-filter window.
  std::size_t less_filter_size = 16;
};

/// A skyline algorithm: consumes a Dataset, returns the ids of all
/// non-dominated points (Definition 3.2). Implementations are stateless
/// and reusable across datasets; `Compute` is const and thread-compatible.
class SkylineAlgorithm {
 public:
  virtual ~SkylineAlgorithm();

  /// Stable identifier, e.g. "sfs" or "sdi-subset".
  virtual std::string_view name() const = 0;

  /// Computes the skyline of `data`. The returned ids are a set (no
  /// duplicates) in unspecified order. If `stats` is non-null its
  /// counters are overwritten with this run's instrumentation.
  virtual std::vector<PointId> Compute(const Dataset& data,
                                       SkylineStats* stats) const = 0;

  /// Convenience overload discarding statistics.
  std::vector<PointId> Compute(const Dataset& data) const {
    return Compute(data, nullptr);
  }

  /// Resolves the effective sigma for a d-dimensional dataset: explicit
  /// option value, or the paper's round(d/3) rule clamped to [2, d].
  static int EffectiveSigma(int option_sigma, Dim num_dims);
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_ALGORITHM_H_
