#include "src/algo/bbs.h"

#include <queue>

#include "src/algo/rtree.h"
#include "src/core/dominance.h"

namespace skyline {

namespace {

struct Entry {
  Value mindist;
  // Exactly one of the two is set.
  const RTree::Node* node;
  PointId point;

  bool operator>(const Entry& other) const {
    if (mindist != other.mindist) return mindist > other.mindist;
    // Nodes before points on ties: a node can still contain a dominator
    // of an equal-mindist point only through strictly smaller sums, but
    // expanding first is the conservative order.
    return node == nullptr && other.node != nullptr;
  }
};

Value SumOf(const Value* v, Dim d) {
  Value s = 0;
  for (Dim i = 0; i < d; ++i) s += v[i];
  return s;
}

}  // namespace

std::vector<PointId> Bbs::Compute(const Dataset& data,
                                  SkylineStats* stats) const {
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (data.num_points() == 0) return {};

  const RTree tree = RTree::BulkLoad(data, options_.partition_leaf_size);
  std::uint64_t corner_tests = 0;
  std::vector<PointId> result;

  // Is the given corner / point row strictly dominated by a result point?
  auto dominated_row = [&](const Value* row) {
    for (PointId s : result) {
      ++corner_tests;
      if (Dominates(data.row(s), row, d)) return true;
    }
    return false;
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({SumOf(tree.root()->mbr.lo.data(), d), tree.root(),
             kInvalidPoint});
  while (!heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    if (e.node != nullptr) {
      // A node whose lower corner is strictly dominated contains only
      // dominated points (every inside point weakly exceeds the corner).
      if (dominated_row(e.node->mbr.lo.data())) continue;
      if (e.node->IsLeaf()) {
        for (PointId p : e.node->points) {
          heap.push({SumOf(data.row(p), d), nullptr, p});
        }
      } else {
        for (const auto& child : e.node->children) {
          heap.push({SumOf(child->mbr.lo.data(), d), child.get(),
                     kInvalidPoint});
        }
      }
    } else {
      // Ascending sum order: every potential dominator of this point has
      // a strictly smaller sum and was already popped into the result.
      if (!dominated_row(data.row(e.point))) result.push_back(e.point);
    }
  }

  if (stats != nullptr) {
    stats->dominance_tests = corner_tests;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
