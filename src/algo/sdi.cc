#include "src/algo/sdi.h"

#include <algorithm>
#include <numeric>

#include "src/core/dominance.h"
#include "src/core/scores.h"

namespace skyline {

namespace {

enum class Status : unsigned char { kUnknown, kSkyline, kDominated };

}  // namespace

std::vector<PointId> Sdi::Compute(const Dataset& data,
                                  SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  const Dim d = data.num_dims();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  DominanceTester tester(data);

  // ---- Sort phase: one index of all point ids per dimension. ----
  std::vector<std::vector<PointId>> index(d);
  for (Dim k = 0; k < d; ++k) {
    index[k].resize(n);
    std::iota(index[k].begin(), index[k].end(), PointId{0});
    std::sort(index[k].begin(), index[k].end(), [&](PointId a, PointId b) {
      Value va = data.at(a, k), vb = data.at(b, k);
      if (va != vb) return va < vb;
      return a < b;
    });
  }

  // Stop point: minimal Euclidean distance to the origin. Any unresolved
  // point strictly beyond its value in *every* dimension is dominated by
  // it, whatever its own status.
  const PointId stop_point = ArgMinScore(data, ScoreFunction::kEuclidean);
  const Value* stop_row = data.row(stop_point);

  std::vector<Status> status(n, Status::kUnknown);
  std::vector<std::size_t> cursor(d, 0);
  // Dimension skyline: skyline points already passed by this dimension's
  // cursor, i.e. with a dim-k value <= any point still ahead of the cursor.
  std::vector<std::vector<PointId>> dim_skyline(d);
  std::vector<bool> done(d, false);
  Dim dims_done = 0;
  std::size_t resolved = 0;
  std::vector<PointId> result;

  // Advances dim k past already-resolved points, registering passed
  // skyline points into the dimension skyline. Marks the dimension done
  // when its cursor ran out or passed the stop point's value.
  auto fast_forward = [&](Dim k) {
    auto& ids = index[k];
    std::size_t& c = cursor[k];
    while (c < n && status[ids[c]] != Status::kUnknown) {
      if (status[ids[c]] == Status::kSkyline) dim_skyline[k].push_back(ids[c]);
      ++c;
    }
    if (!done[k] && (c == n || data.at(ids[c], k) > stop_row[k])) {
      done[k] = true;
      ++dims_done;
    }
  };

  // Resolves the unresolved point under dim k's cursor. Returns true if it
  // became a skyline point.
  auto resolve_at_cursor = [&](Dim k) {
    auto& ids = index[k];
    const std::size_t c = cursor[k];
    const PointId p = ids[c];
    bool dominated = false;
    // Dominators of p have a dim-k value <= p's. Those with a strictly
    // smaller value were already passed (hence resolved) and, if skyline,
    // registered in the dimension skyline.
    for (PointId s : dim_skyline[k]) {
      if (tester.Dominates(s, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      // Duplicate dimension values: a dominator may share p's dim-k value
      // and sit anywhere inside the tie block, resolved or not — test the
      // block locally, SFS-style.
      const Value v = data.at(p, k);
      for (std::size_t j = c + 1; j < n && data.at(ids[j], k) == v; ++j) {
        if (tester.Dominates(ids[j], p)) {
          dominated = true;
          break;
        }
      }
    }
    status[p] = dominated ? Status::kDominated : Status::kSkyline;
    ++resolved;
    if (!dominated) result.push_back(p);
    return !dominated;
  };

  // ---- Scan phase: breadth-first traversal among dimensions. ----
  Dim k = 0;
  for (Dim j = 0; j < d; ++j) fast_forward(j);
  while (dims_done < d && resolved < n) {
    // Points under this cursor may have been resolved from another
    // dimension since this dimension was last visited.
    fast_forward(k);
    if (done[k]) {
      // Move to the next dimension that still has work below its stop
      // frontier.
      k = (k + 1) % d;
      continue;
    }
    const bool new_skyline = resolve_at_cursor(k);
    fast_forward(k);
    if (new_skyline) {
      // Switch to the dimension possessing the least number of skyline
      // points (the breadth-first balancing rule of SDI).
      Dim best = k;
      std::size_t best_size = static_cast<std::size_t>(-1);
      for (Dim j = 0; j < d; ++j) {
        if (!done[j] && dim_skyline[j].size() < best_size) {
          best = j;
          best_size = dim_skyline[j].size();
        }
      }
      k = best;
    }
  }
  // Every dimension passed the stop frontier: all still-unresolved points
  // are strictly worse than the stop point everywhere, hence dominated.

  if (stats != nullptr) {
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
