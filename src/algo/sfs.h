// SFS — Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang, ICDE 2003).
// Presorts all points by a monotone scoring function; a scanned point can
// then only be dominated by points already accepted into the skyline, so
// the window never needs eviction and every accepted point is final
// (progressive output).
#ifndef SKYLINE_ALGO_SFS_H_
#define SKYLINE_ALGO_SFS_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory SFS with a configurable monotone sorting function
/// (default: sum; the original paper recommends entropy).
class Sfs final : public SkylineAlgorithm {
 public:
  explicit Sfs(const AlgorithmOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "sfs"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_SFS_H_
