#include "src/algo/bnl.h"

#include <numeric>

#include "src/core/dominance.h"

namespace skyline {

std::vector<PointId> Bnl::ComputeSubset(DominanceTester& tester,
                                        const std::vector<PointId>& ids) {
  // The window holds current candidates. For each incoming point p:
  //  - if some window point dominates p, drop p;
  //  - otherwise evict every window point dominated by p and append p.
  // Equal duplicates are both kept: neither dominates the other.
  std::vector<PointId> window;
  window.reserve(64);
  for (PointId p : ids) {
    bool dominated = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < window.size(); ++i) {
      PointId w = window[i];
      switch (tester.Compare(w, p)) {
        case DominanceRelation::kFirstDominates:
          dominated = true;
          break;
        case DominanceRelation::kSecondDominates:
          // w is evicted: do not copy it to the kept prefix.
          continue;
        case DominanceRelation::kEqual:
        case DominanceRelation::kIncomparable:
          break;
      }
      if (dominated) {
        // p is dead; the remaining window suffix is untouched, so shift
        // it down over any eviction gap and stop.
        for (std::size_t j = i; j < window.size(); ++j) {
          window[keep++] = window[j];
        }
        break;
      }
      window[keep++] = w;
    }
    window.resize(keep);
    if (!dominated) {
      window.push_back(p);
    }
  }
  return window;
}

std::vector<PointId> Bnl::Compute(const Dataset& data,
                                  SkylineStats* stats) const {
  DominanceTester tester(data);
  std::vector<PointId> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), PointId{0});
  std::vector<PointId> result = ComputeSubset(tester, ids);
  if (stats != nullptr) {
    *stats = SkylineStats{};
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
