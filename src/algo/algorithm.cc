#include "src/algo/algorithm.h"

#include <algorithm>
#include <cmath>

namespace skyline {

SkylineAlgorithm::~SkylineAlgorithm() = default;

int SkylineAlgorithm::EffectiveSigma(int option_sigma, Dim num_dims) {
  if (option_sigma > 0) return option_sigma;
  const int sigma = static_cast<int>(std::lround(num_dims / 3.0));
  const int lo = std::min(2, static_cast<int>(num_dims));
  return std::clamp(sigma, lo, static_cast<int>(num_dims));
}

}  // namespace skyline
