// BBS — Branch-and-Bound Skyline (Papadias, Tao, Fu, Seeger,
// SIGMOD 2003 / TODS 2005). The classic optimal progressive algorithm:
// traverse an R-tree in ascending mindist order (sum of the MBR's lower
// corner); a popped point is a skyline point unless dominated, and a
// popped node is expanded unless its lower corner is already strictly
// dominated — in which case every point inside is too.
#ifndef SKYLINE_ALGO_BBS_H_
#define SKYLINE_ALGO_BBS_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory BBS over a bulk-loaded R-tree (see rtree.h). The R-tree is
/// built inside Compute — its construction is part of the measured cost,
/// like the dimension indexes of SDI.
class Bbs final : public SkylineAlgorithm {
 public:
  explicit Bbs(const AlgorithmOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "bbs"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_BBS_H_
