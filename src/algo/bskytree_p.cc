#include <algorithm>
#include <map>

#include "src/core/contracts.h"
#include "src/algo/bnl.h"
#include "src/algo/bskytree.h"
#include "src/algo/pivot.h"
#include "src/core/dominance.h"

namespace skyline {

namespace {

struct Accepted {
  Subspace mask;
  PointId id;
};

/// Recursive lattice partitioning. Counters for lattice-mask computations
/// and skipped tests are accumulated into *masked / *skipped.
std::vector<PointId> SolveRegion(DominanceTester& tester,
                                 const std::vector<PointId>& ids,
                                 std::size_t leaf_size, std::uint64_t* masked,
                                 std::uint64_t* skipped) {
  const Dataset& data = tester.data();
  const Dim d = data.num_dims();
  if (ids.size() <= leaf_size) {
    return Bnl::ComputeSubset(tester, ids);
  }

  const PointId pivot = SelectBalancedPivot(data, ids);
  const Value* pivot_row = data.row(pivot);
  const Subspace full = Subspace::Full(d);

  std::vector<PointId> result;
  result.push_back(pivot);

  // Partition into the (up to) 2^d - 2 non-trivial lattice regions; the
  // map is ordered by mask bits, re-sorted below by lattice level.
  std::map<std::uint64_t, std::vector<PointId>> regions;
  for (PointId p : ids) {
    if (p == pivot) continue;
    const Value* row = data.row(p);
    Subspace mask = LatticeMask(row, pivot_row, d);
    ++*masked;
    if (mask == full) {
      if (DominatesOrEqual(row, pivot_row, d)) result.push_back(p);  // dup
      continue;
    }
    SKYLINE_ASSERT(!mask.empty(),
                   "survivor lattice vector empty: p would dominate the pivot");
    regions[mask.bits()].push_back(p);
  }

  // Merge region skylines in lattice-level order: a dominator can only
  // live in a region whose mask is a (proper) subset, which has a strictly
  // smaller level and was therefore merged earlier.
  std::vector<std::uint64_t> order;
  order.reserve(regions.size());
  for (const auto& [bits, _] : regions) order.push_back(bits);
  std::sort(order.begin(), order.end(), [](std::uint64_t a, std::uint64_t b) {
    const int la = std::popcount(a), lb = std::popcount(b);
    if (la != lb) return la < lb;
    return a < b;
  });

  std::vector<Accepted> accepted;
  for (std::uint64_t bits : order) {
    const Subspace mask(bits);
    std::vector<PointId> local =
        SolveRegion(tester, regions[bits], leaf_size, masked, skipped);
    for (PointId p : local) {
      bool dominated = false;
      for (const Accepted& s : accepted) {
        if (!s.mask.IsProperSubsetOf(mask)) {
          ++*skipped;
          continue;
        }
        if (tester.Dominates(s.id, p)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) accepted.push_back({mask, p});
    }
  }
  for (const Accepted& a : accepted) result.push_back(a.id);
  return result;
}

}  // namespace

std::vector<PointId> BSkyTreeP::Compute(const Dataset& data,
                                        SkylineStats* stats) const {
  const std::size_t n = data.num_points();
  if (stats != nullptr) *stats = SkylineStats{};
  if (n == 0) return {};

  DominanceTester tester(data);
  std::vector<PointId> ids(n);
  for (PointId i = 0; i < n; ++i) ids[i] = i;
  std::uint64_t masked = 0;
  std::uint64_t skipped = 0;
  std::vector<PointId> result =
      SolveRegion(tester, ids, std::max<std::size_t>(1, options_.partition_leaf_size),
                  &masked, &skipped);
  if (stats != nullptr) {
    stats->dominance_tests = tester.tests() + masked;
    stats->tests_skipped = skipped;
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
