// D&C — divide-and-conquer skyline (Börzsönyi et al., ICDE 2001, after
// Kung, Luccio, Preparata 1975). Splits the data at the median of a
// rotating dimension, solves both halves recursively, then removes from
// the "worse" half everything dominated by the "better" half's skyline.
//
// This is the basic variant (quadratic merge), the form used as the
// classic baseline in the skyline literature; the O(N log^(d-2) N)
// multidimensional-merge refinement is not reproduced (see DESIGN.md).
#ifndef SKYLINE_ALGO_DNC_H_
#define SKYLINE_ALGO_DNC_H_

#include "src/algo/algorithm.h"

namespace skyline {

/// In-memory divide-and-conquer skyline with BNL leaves.
class DivideAndConquer final : public SkylineAlgorithm {
 public:
  explicit DivideAndConquer(const AlgorithmOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "dnc"; }

  using SkylineAlgorithm::Compute;

  std::vector<PointId> Compute(const Dataset& data,
                               SkylineStats* stats) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace skyline

#endif  // SKYLINE_ALGO_DNC_H_
