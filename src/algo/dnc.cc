#include "src/algo/dnc.h"

#include <algorithm>
#include <numeric>

#include "src/algo/bnl.h"
#include "src/core/dominance.h"

namespace skyline {

namespace {

std::vector<PointId> Solve(DominanceTester& tester, std::vector<PointId> ids,
                           Dim split_dim, std::size_t leaf_size) {
  const Dataset& data = tester.data();
  const Dim d = data.num_dims();
  if (ids.size() <= leaf_size) {
    return Bnl::ComputeSubset(tester, ids);
  }

  // Median split on split_dim. If the dimension is constant over this
  // region, try the other dimensions; a region constant in every
  // dimension is a block of duplicates.
  Dim dim = split_dim;
  std::size_t mid = ids.size() / 2;
  bool split_ok = false;
  for (Dim tried = 0; tried < d; ++tried) {
    std::nth_element(ids.begin(), ids.begin() + mid, ids.end(),
                     [&](PointId a, PointId b) {
                       Value va = data.at(a, dim), vb = data.at(b, dim);
                       if (va != vb) return va < vb;
                       return a < b;
                     });
    // nth_element with the (value, id) order always separates as long as
    // the region is not a single repeated point.
    PointId pivot = ids[mid];
    bool all_equal_rows = true;
    for (PointId p : ids) {
      if (data.at(p, dim) != data.at(pivot, dim)) {
        all_equal_rows = false;
        break;
      }
    }
    if (!all_equal_rows) {
      split_ok = true;
      break;
    }
    dim = (dim + 1) % d;
  }
  if (!split_ok) {
    // All points share every coordinate: all duplicates, all skyline.
    return ids;
  }

  std::vector<PointId> low(ids.begin(), ids.begin() + mid);
  std::vector<PointId> high(ids.begin() + mid, ids.end());
  const Dim next = (dim + 1) % d;
  std::vector<PointId> sky_low = Solve(tester, std::move(low), next, leaf_size);
  std::vector<PointId> sky_high = Solve(tester, std::move(high), next, leaf_size);

  // Merge: the low half cannot be dominated by the high half in the split
  // order only if values differ strictly; with the (value, id) ordering a
  // high point can still dominate a low one through equal coordinates, so
  // we filter conservatively in both directions for correctness with
  // duplicated values. The dominant cost remains filtering high vs low.
  std::vector<PointId> result;
  result.reserve(sky_low.size() + sky_high.size());
  for (PointId p : sky_low) {
    bool dominated = false;
    for (PointId q : sky_high) {
      if (tester.Dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  for (PointId p : sky_high) {
    bool dominated = false;
    for (PointId q : sky_low) {
      if (tester.Dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  return result;
}

}  // namespace

std::vector<PointId> DivideAndConquer::Compute(const Dataset& data,
                                               SkylineStats* stats) const {
  DominanceTester tester(data);
  std::vector<PointId> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), PointId{0});
  std::vector<PointId> result =
      Solve(tester, std::move(ids), 0,
            std::max<std::size_t>(1, options_.partition_leaf_size));
  if (stats != nullptr) {
    *stats = SkylineStats{};
    stats->dominance_tests = tester.tests();
    stats->skyline_size = result.size();
  }
  return result;
}

}  // namespace skyline
