#include "src/core/contracts.h"
#include "src/data/generator.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "src/core/subspace.h"

namespace skyline {

namespace {

/// Uniform value in [lo, hi).
Value RandomEqual(std::mt19937_64& rng, Value lo, Value hi) {
  return std::uniform_real_distribution<Value>(lo, hi)(rng);
}

/// Peak-shaped value in [lo, hi): mean of `k` uniforms (Irwin-Hall),
/// the randdataset building block approximating a normal around the
/// interval's midpoint.
Value RandomPeak(std::mt19937_64& rng, Value lo, Value hi, int k) {
  Value sum = 0;
  for (int i = 0; i < k; ++i) sum += RandomEqual(rng, Value{0}, Value{1});
  return lo + (hi - lo) * (sum / static_cast<Value>(k));
}

Value Clamp01(Value v) { return std::clamp(v, Value{0}, Value{1}); }

}  // namespace

void GenerateCorrelatedPoint(std::mt19937_64& rng, Dim d, Value* out) {
  // A diagonal position v with a peak distribution, then each coordinate
  // is a small peak-shaped perturbation of v, bounded by the distance to
  // the nearest domain edge so that all coordinates stay correlated.
  const Value v = RandomPeak(rng, 0, 1, 8);
  const Value l = std::min(v, Value{1} - v);
  for (Dim i = 0; i < d; ++i) {
    const Value h = RandomPeak(rng, -l, l, 4);
    out[i] = Clamp01(v + h * Value{0.35});
  }
}

void GenerateAntiCorrelatedPoint(std::mt19937_64& rng, Dim d, Value* out) {
  // A plane position v (normal-ish around 1/2), all coordinates start at
  // v, then value is repeatedly transferred between random coordinate
  // pairs: the sum stays (approximately) constant while individual
  // coordinates spread — good somewhere means bad elsewhere.
  const Value v = RandomPeak(rng, 0, 1, 48);
  const Value l = std::min(v, Value{1} - v);
  for (Dim i = 0; i < d; ++i) out[i] = v;
  if (d == 1) return;
  std::uniform_int_distribution<Dim> pick(0, d - 1);
  const int transfers = static_cast<int>(4 * d);
  for (int t = 0; t < transfers; ++t) {
    Dim i = pick(rng);
    Dim j = pick(rng);
    if (i == j) continue;
    const Value h = RandomEqual(rng, -l, l);
    // Reject transfers that would leave the domain, as randdataset does.
    if (out[i] + h < 0 || out[i] + h > 1) continue;
    if (out[j] - h < 0 || out[j] - h > 1) continue;
    out[i] += h;
    out[j] -= h;
  }
}

Dataset Generate(DataType type, std::size_t n, Dim d, std::uint64_t seed) {
  SKYLINE_ASSERT(d >= 1 && d <= Subspace::kMaxDims,
                 "Generate: dimensionality out of range");
  std::mt19937_64 rng(seed);
  std::vector<Value> values(n * d);
  for (std::size_t p = 0; p < n; ++p) {
    Value* row = values.data() + p * d;
    switch (type) {
      case DataType::kUniformIndependent:
        for (Dim i = 0; i < d; ++i) row[i] = RandomEqual(rng, 0, 1);
        break;
      case DataType::kCorrelated:
        GenerateCorrelatedPoint(rng, d, row);
        break;
      case DataType::kAntiCorrelated:
        GenerateAntiCorrelatedPoint(rng, d, row);
        break;
    }
  }
  return Dataset(d, std::move(values));
}

std::string_view ToString(DataType type) {
  switch (type) {
    case DataType::kAntiCorrelated:
      return "anti-correlated";
    case DataType::kCorrelated:
      return "correlated";
    case DataType::kUniformIndependent:
      return "uniform-independent";
  }
  return "?";
}

std::string_view ShortName(DataType type) {
  switch (type) {
    case DataType::kAntiCorrelated:
      return "AC";
    case DataType::kCorrelated:
      return "CO";
    case DataType::kUniformIndependent:
      return "UI";
  }
  return "?";
}

bool ParseDataType(std::string_view text, DataType* out) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ac" || lower == "anti-correlated" || lower == "anti") {
    *out = DataType::kAntiCorrelated;
    return true;
  }
  if (lower == "co" || lower == "correlated" || lower == "corr") {
    *out = DataType::kCorrelated;
    return true;
  }
  if (lower == "ui" || lower == "uniform-independent" || lower == "uniform" ||
      lower == "indep") {
    *out = DataType::kUniformIndependent;
    return true;
  }
  return false;
}

}  // namespace skyline
