// Synthetic dataset generators following Börzsönyi, Kossmann, Stocker
// (ICDE 2001) — the same three families produced by the "Skyline
// Benchmark Data Generator" (pgfoundry randdataset) used by the paper:
// anti-correlated (AC), correlated (CO) and uniform independent (UI).
// All values lie in [0, 1] and the skyline convention is minimization.
//
// Generation is fully deterministic given (type, n, d, seed).
#ifndef SKYLINE_DATA_GENERATOR_H_
#define SKYLINE_DATA_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string_view>

#include "src/core/dataset.h"

namespace skyline {

/// The three data families of the skyline literature.
enum class DataType {
  /// Anti-correlated: points concentrate around the hyperplane
  /// sum_i x[i] = d/2; being good in one dimension implies being bad in
  /// others, so the skyline is very large.
  kAntiCorrelated,
  /// Correlated: points concentrate near the diagonal; a point good in
  /// one dimension is good in all, so the skyline is tiny.
  kCorrelated,
  /// Uniform independent: every coordinate i.i.d. uniform on [0, 1].
  kUniformIndependent,
};

/// Long name, e.g. "anti-correlated".
std::string_view ToString(DataType type);

/// The paper's two-letter tag: "AC", "CO" or "UI".
std::string_view ShortName(DataType type);

/// Parses "AC"/"CO"/"UI" (case-insensitive) or the long names; returns
/// true on success.
bool ParseDataType(std::string_view text, DataType* out);

/// Generates n points of d dimensions of the given family.
Dataset Generate(DataType type, std::size_t n, Dim d, std::uint64_t seed);

/// One AC point appended through `out`; exposed for tests.
void GenerateAntiCorrelatedPoint(std::mt19937_64& rng, Dim d, Value* out);

/// One CO point appended through `out`; exposed for tests.
void GenerateCorrelatedPoint(std::mt19937_64& rng, Dim d, Value* out);

}  // namespace skyline

#endif  // SKYLINE_DATA_GENERATOR_H_
