#include "src/data/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace skyline {

namespace {

/// Splits a CSV line on commas/semicolons/whitespace into numeric fields.
/// Returns false if any non-empty field is not numeric.
bool ParseLine(const std::string& line, std::vector<Value>* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && (line[i] == ',' || line[i] == ';' || line[i] == ' ' ||
                     line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= n) break;
    std::size_t j = i;
    while (j < n && line[j] != ',' && line[j] != ';' && line[j] != ' ' &&
           line[j] != '\t' && line[j] != '\r') {
      ++j;
    }
    Value v{};
    const auto [ptr, ec] =
        std::from_chars(line.data() + i, line.data() + j, v);
    if (ec != std::errc{} || ptr != line.data() + j) return false;
    out->push_back(v);
    i = j;
  }
  return true;
}

}  // namespace

void WriteCsv(const Dataset& data, std::ostream& out) {
  const Dim d = data.num_dims();
  for (PointId p = 0; p < data.num_points(); ++p) {
    const Value* row = data.row(p);
    for (Dim i = 0; i < d; ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

bool WriteCsvFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteCsv(data, out);
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadCsv(std::istream& in) {
  std::string line;
  std::vector<Value> fields;
  std::vector<Value> values;
  Dim dims = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(",;\t\r ") == std::string::npos) continue;
    if (!ParseLine(line, &fields)) {
      if (first_content_line) {
        first_content_line = false;  // header line: skip
        continue;
      }
      return std::nullopt;
    }
    if (fields.empty()) continue;
    if (dims == 0) {
      dims = static_cast<Dim>(fields.size());
    } else if (fields.size() != dims) {
      return std::nullopt;  // ragged row
    }
    values.insert(values.end(), fields.begin(), fields.end());
    first_content_line = false;
  }
  if (dims == 0) return std::nullopt;
  return Dataset(dims, std::move(values));
}

std::optional<Dataset> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadCsv(in);
}

}  // namespace skyline
