#include "src/data/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <string>
#include <system_error>
#include <vector>

namespace skyline {

namespace {

enum class FieldStatus {
  kOk,
  kNotNumeric,  // candidate header line
  kNonFinite,   // nan/inf: numeric to from_chars but poisonous downstream
};

/// Splits a CSV line on commas/semicolons/whitespace into numeric fields.
FieldStatus ParseLine(const std::string& line, std::vector<Value>* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && (line[i] == ',' || line[i] == ';' || line[i] == ' ' ||
                     line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= n) break;
    std::size_t j = i;
    while (j < n && line[j] != ',' && line[j] != ';' && line[j] != ' ' &&
           line[j] != '\t' && line[j] != '\r') {
      ++j;
    }
    Value v{};
    const auto [ptr, ec] =
        std::from_chars(line.data() + i, line.data() + j, v);
    if (ec != std::errc{} || ptr != line.data() + j) {
      return FieldStatus::kNotNumeric;
    }
    // from_chars accepts "nan"/"inf"/"-inf" as valid doubles, but a
    // non-finite coordinate breaks every dominance comparison (NaN makes
    // Compare non-transitive), so the reader refuses them outright.
    if (!std::isfinite(v)) return FieldStatus::kNonFinite;
    out->push_back(v);
    i = j;
  }
  return FieldStatus::kOk;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

void WriteCsv(const Dataset& data, std::ostream& out) {
  const Dim d = data.num_dims();
  // Shortest round-trip formatting: to_chars without a precision emits
  // the fewest digits that parse back to the exact same double, so a
  // write/read cycle is lossless (ostream default is 6 significant
  // digits, which silently perturbs values).
  char buf[64];
  for (PointId p = 0; p < data.num_points(); ++p) {
    const Value* row = data.row(p);
    for (Dim i = 0; i < d; ++i) {
      if (i > 0) out << ',';
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), row[i]);
      out.write(buf, ptr - buf);
      (void)ec;  // 64 bytes always fit a shortest double
    }
    out << '\n';
  }
}

bool WriteCsvFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteCsv(data, out);
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadCsv(std::istream& in, std::string* error) {
  std::string line;
  std::vector<Value> fields;
  std::vector<Value> values;
  Dim dims = 0;
  std::size_t line_number = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(",;\t\r ") == std::string::npos) continue;
    switch (ParseLine(line, &fields)) {
      case FieldStatus::kNotNumeric:
        if (first_content_line) {
          first_content_line = false;  // header line: skip
          continue;
        }
        SetError(error, "line " + std::to_string(line_number) +
                            ": non-numeric field");
        return std::nullopt;
      case FieldStatus::kNonFinite:
        SetError(error, "line " + std::to_string(line_number) +
                            ": non-finite value (nan/inf not allowed)");
        return std::nullopt;
      case FieldStatus::kOk:
        break;
    }
    if (fields.empty()) continue;
    if (dims == 0) {
      dims = static_cast<Dim>(fields.size());
    } else if (fields.size() != dims) {
      SetError(error, "line " + std::to_string(line_number) + ": expected " +
                          std::to_string(dims) + " fields, got " +
                          std::to_string(fields.size()));
      return std::nullopt;  // ragged row
    }
    values.insert(values.end(), fields.begin(), fields.end());
    first_content_line = false;
  }
  if (dims == 0) {
    SetError(error, "no data rows");
    return std::nullopt;
  }
  return Dataset(dims, std::move(values));
}

std::optional<Dataset> ReadCsvFile(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  return ReadCsv(in, error);
}

}  // namespace skyline
