// Minimal CSV import/export for Datasets — enough to exchange data with
// the usual skyline benchmark files (plain numeric rows, optional header).
#ifndef SKYLINE_DATA_CSV_H_
#define SKYLINE_DATA_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/core/dataset.h"

namespace skyline {

/// Writes `data` as comma-separated numeric rows. Values are formatted
/// with shortest-round-trip precision (std::to_chars), so
/// ReadCsv(WriteCsv(data)) reproduces every value bit-for-bit.
void WriteCsv(const Dataset& data, std::ostream& out);

/// Writes to `path`; returns false if the file cannot be opened.
bool WriteCsvFile(const Dataset& data, const std::string& path);

/// Parses comma- (or semicolon-/whitespace-) separated numeric rows. A
/// first line that fails numeric parsing is treated as a header and
/// skipped; blank lines are ignored. Returns std::nullopt on malformed
/// input: ragged rows, non-numeric fields past the header, or any
/// non-finite field (nan/inf parse numerically but poison dominance
/// comparisons, so they are rejected on every line — including the
/// first). If `error` is non-null it receives a description of the
/// failure, including the offending line number.
std::optional<Dataset> ReadCsv(std::istream& in, std::string* error = nullptr);

/// Reads from `path`; std::nullopt if the file cannot be opened or parsed
/// (`error` describes which, when non-null).
std::optional<Dataset> ReadCsvFile(const std::string& path,
                                   std::string* error = nullptr);

}  // namespace skyline

#endif  // SKYLINE_DATA_CSV_H_
