#include "src/data/real_world.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "src/data/generator.h"

namespace skyline {

namespace {

// Fixed seeds: the surrogates are reproducible datasets, not random
// workloads — every build of the library sees the same HOUSE/NBA/WEATHER.
constexpr std::uint64_t kHouseSeed = 0x5eed0001u;
constexpr std::uint64_t kNbaSeed = 0x5eed0002u;
constexpr std::uint64_t kWeatherSeed = 0x5eed0003u;

constexpr std::size_t kHousePoints = 127931;
constexpr Dim kHouseDims = 6;
constexpr std::size_t kNbaPoints = 17264;
constexpr Dim kNbaDims = 8;
constexpr std::size_t kWeatherPoints = 566268;
constexpr Dim kWeatherDims = 15;

Value Clamp01(Value v) { return std::clamp(v, Value{0}, Value{1}); }

/// Quantizes v in [0,1] onto `levels` integer steps — real attribute
/// domains (dollars, box-score counts, tenths of degrees) are discrete,
/// which is what creates duplicate dimension values.
Value Quantize(Value v, int levels) {
  return std::round(Clamp01(v) * levels);
}

}  // namespace

Dataset HouseSurrogate() {
  // Household expenditures: mildly anti-correlated (a family that spends
  // heavily in one category economizes elsewhere), continuous dollar
  // amounts quantized to a fine grid.
  std::mt19937_64 rng(kHouseSeed);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::vector<Value> values(kHousePoints * kHouseDims);
  std::vector<Value> ac(kHouseDims);
  for (std::size_t p = 0; p < kHousePoints; ++p) {
    Value* row = values.data() + p * kHouseDims;
    GenerateAntiCorrelatedPoint(rng, kHouseDims, ac.data());
    for (Dim i = 0; i < kHouseDims; ++i) {
      // 72% independent noise, 28% anti-correlated budget component.
      const Value v = Value{0.72} * uni(rng) + Value{0.28} * ac[i];
      row[i] = Quantize(v, 100000);  // dollar-resolution grid
    }
  }
  return Dataset(kHouseDims, std::move(values));
}

Dataset NbaSurrogate() {
  // Career box-score statistics under minimization (the usual NBA skyline
  // maximizes, which is the same problem on negated values): a latent
  // player-skill factor induces mild correlation across statistics, and
  // the small integer domains create heavy duplication.
  std::mt19937_64 rng(kNbaSeed);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::vector<Value> values(kNbaPoints * kNbaDims);
  for (std::size_t p = 0; p < kNbaPoints; ++p) {
    Value* row = values.data() + p * kNbaDims;
    // Skill peak: most players are average, few are stars.
    Value skill = 0;
    for (int k = 0; k < 6; ++k) skill += uni(rng);
    skill /= 6;
    for (Dim i = 0; i < kNbaDims; ++i) {
      const Value v = Value{0.72} * uni(rng) + Value{0.28} * skill;
      row[i] = Quantize(v, 42);  // e.g. points-per-game-sized domain
    }
  }
  return Dataset(kNbaDims, std::move(values));
}

Dataset WeatherSurrogate() {
  // Station measurements: a latent climate factor strongly correlates
  // the 15 attributes, and coarse quantization (tenths of units) makes
  // per-dimension duplicates massive — the property Section 6.3 blames
  // for crowded index nodes.
  std::mt19937_64 rng(kWeatherSeed);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::vector<Value> values(kWeatherPoints * kWeatherDims);
  for (std::size_t p = 0; p < kWeatherPoints; ++p) {
    Value* row = values.data() + p * kWeatherDims;
    Value climate = 0;
    for (int k = 0; k < 8; ++k) climate += uni(rng);
    climate /= 8;
    for (Dim i = 0; i < kWeatherDims; ++i) {
      const Value v = Value{0.45} * uni(rng) + Value{0.55} * climate;
      row[i] = Quantize(v, 180);
    }
  }
  return Dataset(kWeatherDims, std::move(values));
}

std::vector<RealDatasetInfo> RealDatasetCatalog() {
  return {
      {"house", kHousePoints, kHouseDims, /*sigma=*/4, 5774},
      {"nba", kNbaPoints, kNbaDims, /*sigma=*/2, 1796},
      {"weather", kWeatherPoints, kWeatherDims, /*sigma=*/3, 26713},
  };
}

Dataset MakeRealDataset(std::string_view name) {
  if (name == "house") return HouseSurrogate();
  if (name == "nba") return NbaSurrogate();
  if (name == "weather") return WeatherSurrogate();
  return Dataset(1);
}

}  // namespace skyline
