// Surrogates for the three real-world datasets of Section 6.3.
//
// The paper evaluates on HOUSE, NBA and WEATHER from the Chester et al.
// (ICDE 2015) bundle, which is not redistributable and unavailable
// offline. These generators build deterministic synthetic equivalents
// that preserve the characteristics the paper's discussion hinges on —
// cardinality, dimensionality, correlation character and (for NBA and
// WEATHER) heavy duplicate values per dimension; see DESIGN.md §3 for
// the substitution rationale.
#ifndef SKYLINE_DATA_REAL_WORLD_H_
#define SKYLINE_DATA_REAL_WORLD_H_

#include <string_view>
#include <vector>

#include "src/core/dataset.h"

namespace skyline {

/// Metadata of one surrogate dataset, mirroring Tables 15-17.
struct RealDatasetInfo {
  std::string_view name;
  std::size_t cardinality;
  Dim dimensionality;
  /// Stability threshold the paper manually tuned for this dataset.
  int sigma;
  /// Skyline size of the *original* dataset, for EXPERIMENTS.md context.
  std::size_t paper_skyline_size;
};

/// HOUSE: 6-D, 127,931 points. American household economic data; mildly
/// anti-correlated expenditure attributes, skyline about 4.5% of the
/// data (5,774 points in the original).
Dataset HouseSurrogate();

/// NBA: 8-D, 17,264 points. Career box-score statistics; small integer
/// domains with many duplicate dimension values, skyline about 10% of
/// the data (1,796 points in the original).
Dataset NbaSurrogate();

/// WEATHER: 15-D, 566,268 points. Quantized station measurements with
/// strong cross-dimension correlation and massive per-dimension
/// duplication, skyline about 4.7% of the data (26,713 points in the
/// original).
Dataset WeatherSurrogate();

/// Metadata for the three surrogates, in Table 15-17 order.
std::vector<RealDatasetInfo> RealDatasetCatalog();

/// Builds a surrogate by catalog name ("house", "nba", "weather");
/// returns an empty 1-D dataset for unknown names.
Dataset MakeRealDataset(std::string_view name);

}  // namespace skyline

#endif  // SKYLINE_DATA_REAL_WORLD_H_
