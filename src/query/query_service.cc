#include "src/query/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/core/contracts.h"
#include "src/parallel/parallel_subset.h"
#include "src/skycube/skycube.h"
#include "src/subset/boosted.h"

namespace skyline {

void QueryService::Entry::Publish(std::vector<PointId> new_ids) {
  {
    MutexLock lock(mu);
    ids_ = std::move(new_ids);
    ready.store(true, std::memory_order_release);
  }
  cv.NotifyAll();
}

const std::vector<PointId>& QueryService::Entry::published_ids() const {
  // Lock-free by protocol: ids_ was written under mu before the
  // releasing ready store, the caller synchronized with an acquiring
  // ready load, and no write ever follows publication.
  SKYLINE_DCHECK(ready.load(std::memory_order_acquire),
                 "Entry::published_ids: entry not published yet");
  return ids_;
}

QueryService::QueryService(const Dataset& data, QueryServiceOptions options)
    : data_(data), options_(std::move(options)) {
  SKYLINE_ASSERT(options_.max_entries >= 1,
                 "QueryService: max_entries must be at least 1");
  if (!options_.pin_full_space) return;
  const Subspace full = Subspace::Full(data_.num_dims());
  std::uint64_t tests = 0;
  auto entry = std::make_shared<Entry>(/*pinned_entry=*/true);
  std::vector<PointId> ids = ComputeCold(full, &tests);
  const std::size_t num_ids = ids.size();
  cold_tests_.fetch_add(tests, std::memory_order_relaxed);
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  entry->Publish(std::move(ids));
  // No other thread can hold a reference yet, but taking the lock keeps
  // the guarded-field discipline uniform (and is uncontended here).
  WriterLock lock(cache_mu_);
  pinned_entries_ = 1;
  pinned_ids_ = num_ids;
  cache_.emplace(full.bits(), std::move(entry));
}

std::vector<PointId> QueryService::AwaitAndCopy(const EntryPtr& entry) {
  if (!entry->ready.load(std::memory_order_acquire)) {
    MutexLock lock(entry->mu);
    entry->cv.Wait(
        lock, [&] { return entry->ready.load(std::memory_order_acquire); });
  }
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  return entry->published_ids();  // Immutable once ready; copy is race-free.
}

QueryService::EntryPtr QueryService::FindBestAncestor(
    Subspace v, Subspace* ancestor_subspace) const {
  EntryPtr best;
  Subspace best_subspace;
  for (const auto& [bits, entry] : cache_) {
    const Subspace u(bits);
    if (!v.IsSubsetOf(u)) continue;
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    const std::size_t num_ids = entry->published_ids().size();
    if (best == nullptr || num_ids < best->published_ids().size() ||
        (num_ids == best->published_ids().size() &&
         u.size() < best_subspace.size())) {
      best = entry;
      best_subspace = u;
    }
  }
  if (best != nullptr && ancestor_subspace != nullptr) {
    *ancestor_subspace = best_subspace;
  }
  return best;
}

std::vector<PointId> QueryService::ComputeCold(Subspace v,
                                               std::uint64_t* tests) const {
  if (data_.num_points() == 0) return {};
  const Dataset projected = ProjectDataset(data_, v);
  SkylineStats stats;
  std::vector<PointId> ids;
  if (projected.num_points() >= options_.parallel_cold_threshold) {
    ParallelSubsetSfs engine(options_.threads, options_.algorithm);
    ids = engine.Compute(projected, &stats);
  } else {
    SfsSubset engine(options_.algorithm);
    ids = engine.Compute(projected, &stats);
  }
  if (tests != nullptr) *tests += stats.dominance_tests;
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<PointId> QueryService::ComputeSeededCore(
    Subspace v, const std::vector<PointId>& candidates,
    std::uint64_t* tests) const {
  if (candidates.size() < options_.seeded_boost_threshold) {
    return SubspaceSkylineOverCandidates(data_, v, candidates, tests);
  }
  // Large seed (e.g. a near-total anti-correlated full-space skyline):
  // the O(|seed|^2) BNL loses to the subset-boosted engine on the
  // projected candidate rows. Engine row ids index `candidates`.
  const Dim pd = v.size();
  std::vector<Value> values;
  values.reserve(candidates.size() * pd);
  for (PointId id : candidates) {
    const Value* row = data_.row(id);
    v.ForEachDim([&](Dim i) { values.push_back(row[i]); });
  }
  const Dataset projected(pd, std::move(values));
  SkylineStats stats;
  SfsSubset engine(options_.algorithm);
  std::vector<PointId> local = engine.Compute(projected, &stats);
  if (tests != nullptr) *tests += stats.dominance_tests;
  std::vector<PointId> core;
  core.reserve(local.size());
  for (PointId id : local) core.push_back(candidates[id]);
  return core;
}

bool QueryService::OverBudget() const {
  const std::size_t unpinned = cache_.size() - pinned_entries_;
  if (unpinned > options_.max_entries) return true;
  return options_.max_total_ids != 0 && cached_ids_ > options_.max_total_ids;
}

void QueryService::PublishAndEvict(const EntryPtr& entry, std::uint64_t key,
                                   std::vector<PointId> ids) {
  const std::size_t num_ids = ids.size();
  entry->Publish(std::move(ids));

  WriterLock lock(cache_mu_);
  cached_ids_ += num_ids;
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);

  while (OverBudget()) {
    // LRU victim among ready unpinned entries, the freshly published
    // one excluded unless it is the only candidate left.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      const EntryPtr& e = it->second;
      if (e->pinned || e == entry) continue;
      if (!e->ready.load(std::memory_order_acquire)) continue;
      if (victim == cache_.end() ||
          e->last_used.load(std::memory_order_relaxed) <
              victim->second->last_used.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    if (victim == cache_.end()) {
      // Only in-flight entries (or the fresh one) remain; if the fresh
      // entry alone busts the id budget, keeping it is the policy.
      if (cache_.count(key) != 0 &&
          cache_.size() - pinned_entries_ > options_.max_entries) {
        cached_ids_ -= num_ids;
        cache_.erase(key);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    cached_ids_ -= victim->second->published_ids().size();
    cache_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<PointId> QueryService::Query(Subspace v) {
  SKYLINE_ASSERT(!v.empty(), "Query: empty subspace");
  SKYLINE_ASSERT(v.IsSubsetOf(Subspace::Full(data_.num_dims())),
                 "Query: subspace outside the dataset's space");
  const auto start = std::chrono::steady_clock::now();
  queries_.fetch_add(1, std::memory_order_relaxed);

  auto finish = [&](std::vector<PointId> ids) {
    latency_.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return ids;
  };

  // Fast path: shared-lock lookup.
  {
    ReaderLock lock(cache_mu_);
    auto it = cache_.find(v.bits());
    if (it != cache_.end()) {
      EntryPtr entry = it->second;
      const bool was_ready = entry->ready.load(std::memory_order_acquire);
      lock.Unlock();
      if (was_ready) {
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      }
      return finish(AwaitAndCopy(entry));
    }
  }

  // Miss: claim the cuboid (single-flight) and pick a seed.
  EntryPtr entry;
  EntryPtr ancestor;
  Subspace ancestor_subspace;
  {
    WriterLock lock(cache_mu_);
    auto it = cache_.find(v.bits());
    if (it != cache_.end()) {
      // Another thread claimed it between our two lookups.
      EntryPtr existing = it->second;
      const bool was_ready = existing->ready.load(std::memory_order_acquire);
      lock.Unlock();
      if (was_ready) {
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      }
      return finish(AwaitAndCopy(existing));
    }
    entry = std::make_shared<Entry>(/*pinned_entry=*/false);
    cache_.emplace(v.bits(), entry);
    ancestor = FindBestAncestor(v, &ancestor_subspace);
  }

  std::vector<PointId> ids;
  std::uint64_t tests = 0;
  if (ancestor != nullptr && ancestor_subspace != v) {
    // Top-down sharing from the ancestor cuboid: V-skyline of the
    // ancestor's ids, then the duplicate-projection tie repair.
    const std::vector<PointId> core =
        ComputeSeededCore(v, ancestor->published_ids(), &tests);
    ids = CloseUnderProjectionTies(data_, v, core);
    seeded_.fetch_add(1, std::memory_order_relaxed);
    seeded_tests_.fetch_add(tests, std::memory_order_relaxed);
  } else {
    ids = ComputeCold(v, &tests);
    cold_.fetch_add(1, std::memory_order_relaxed);
    cold_tests_.fetch_add(tests, std::memory_order_relaxed);
  }

  PublishAndEvict(entry, v.bits(), ids);
  return finish(std::move(ids));
}

bool QueryService::PeekExact(Subspace v, std::vector<PointId>* ids) {
  SKYLINE_ASSERT(!v.empty(), "PeekExact: empty subspace");
  ReaderLock lock(cache_mu_);
  auto it = cache_.find(v.bits());
  if (it == cache_.end()) return false;
  const EntryPtr& entry = it->second;
  if (!entry->ready.load(std::memory_order_acquire)) return false;
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  if (ids != nullptr) *ids = entry->published_ids();
  return true;
}

bool QueryService::PeekNearestAncestor(Subspace v, Subspace* ancestor,
                                       std::vector<PointId>* ids) {
  SKYLINE_ASSERT(!v.empty(), "PeekNearestAncestor: empty subspace");
  ReaderLock lock(cache_mu_);
  EntryPtr best;
  Subspace best_subspace;
  auto it = cache_.find(v.bits());
  if (it != cache_.end() &&
      it->second->ready.load(std::memory_order_acquire)) {
    best = it->second;  // the exact cuboid beats any proper ancestor
    best_subspace = v;
  } else {
    best = FindBestAncestor(v, &best_subspace);
  }
  if (best == nullptr) return false;
  best->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  if (ancestor != nullptr) *ancestor = best_subspace;
  if (ids != nullptr) *ids = best->published_ids();
  return true;
}

QueryStatsSnapshot QueryService::Stats() const {
  QueryStatsSnapshot snap;
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.coalesced = coalesced_.load(std::memory_order_relaxed);
  snap.seeded = seeded_.load(std::memory_order_relaxed);
  snap.cold = cold_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  snap.seeded_tests = seeded_tests_.load(std::memory_order_relaxed);
  snap.cold_tests = cold_tests_.load(std::memory_order_relaxed);
  {
    ReaderLock lock(cache_mu_);
    for (const auto& [bits, entry] : cache_) {
      if (!entry->ready.load(std::memory_order_acquire)) continue;
      ++snap.cache_entries;
      snap.cache_ids += entry->published_ids().size();
    }
  }
  snap.latency = latency_.Snap();
  return snap;
}

}  // namespace skyline
