#include "src/query/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/core/contracts.h"
#include "src/parallel/parallel_subset.h"
#include "src/skycube/skycube.h"
#include "src/subset/boosted.h"

namespace skyline {

void QueryService::Entry::Publish(std::vector<PointId> new_ids) {
  {
    MutexLock lock(mu);
    ids_ = std::move(new_ids);
    ready.store(true, std::memory_order_release);
  }
  cv.NotifyAll();
}

const std::vector<PointId>& QueryService::Entry::published_ids() const {
  // Lock-free by protocol: ids_ was written under mu before the
  // releasing ready store, the caller synchronized with an acquiring
  // ready load, and no write ever follows publication.
  SKYLINE_DCHECK(ready.load(std::memory_order_acquire),
                 "Entry::published_ids: entry not published yet");
  return ids_;
}

QueryService::QueryService(const Dataset& data, QueryServiceOptions options)
    : data_(data), options_(std::move(options)) {
  SKYLINE_ASSERT(options_.max_entries >= 1,
                 "QueryService: max_entries must be at least 1");
  auto v0 = std::make_shared<DatasetVersion>();
  v0->data = data_;
  v0->live.assign(data_.num_points(), 1);
  v0->num_live = data_.num_points();
  {
    WriterLock lock(cache_mu_);
    version_ = v0;
  }
  if (!options_.pin_full_space) return;
  const Subspace full = Subspace::Full(data_.num_dims());
  std::uint64_t tests = 0;
  auto entry = std::make_shared<Entry>(/*pinned_entry=*/true, /*entry_epoch=*/0);
  std::vector<PointId> ids = ComputeCold(*v0, full, &tests);
  const std::size_t num_ids = ids.size();
  cold_tests_.fetch_add(tests, std::memory_order_relaxed);
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  entry->Publish(std::move(ids));
  // No other thread can hold a reference yet, but taking the lock keeps
  // the guarded-field discipline uniform (and is uncontended here).
  WriterLock lock(cache_mu_);
  pinned_entries_ = 1;
  pinned_ids_ = num_ids;
  cache_.emplace(full.bits(), std::move(entry));
}

std::vector<PointId> QueryService::AwaitAndCopy(const EntryPtr& entry) {
  if (!entry->ready.load(std::memory_order_acquire)) {
    MutexLock lock(entry->mu);
    entry->cv.Wait(
        lock, [&] { return entry->ready.load(std::memory_order_acquire); });
  }
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  // epoch-ok: waiters get the answer of the epoch the entry was claimed
  // at; the Query caller reports entry->epoch alongside these ids.
  return entry->published_ids();  // Immutable once ready; copy is race-free.
}

QueryService::EntryPtr QueryService::FindBestAncestor(
    Subspace v, Subspace* ancestor_subspace) const {
  // epoch-ok: only entries stamped with the current epoch are eligible —
  // a stale cached answer is not a sound seed (points inserted since it
  // was computed would be missing from the candidate set).
  const std::uint64_t current = version_->epoch;
  EntryPtr best;
  Subspace best_subspace;
  for (const auto& [bits, entry] : cache_) {
    const Subspace u(bits);
    if (!v.IsSubsetOf(u)) continue;
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    if (entry->epoch != current) continue;
    const std::size_t num_ids = entry->published_ids().size();
    if (best == nullptr || num_ids < best->published_ids().size() ||
        (num_ids == best->published_ids().size() &&
         u.size() < best_subspace.size())) {
      best = entry;
      best_subspace = u;
    }
  }
  if (best != nullptr && ancestor_subspace != nullptr) {
    *ancestor_subspace = best_subspace;
  }
  return best;
}

std::vector<PointId> QueryService::ComputeCold(const DatasetVersion& version,
                                               Subspace v,
                                               std::uint64_t* tests) const {
  if (version.num_live == 0) return {};
  SkylineStats stats;
  std::vector<PointId> ids;
  if (!version.has_removed) {
    const Dataset projected = ProjectDataset(version.data, v);
    if (projected.num_points() >= options_.parallel_cold_threshold) {
      ParallelSubsetSfs engine(options_.threads, options_.algorithm);
      ids = engine.Compute(projected, &stats);
    } else {
      SfsSubset engine(options_.algorithm);
      ids = engine.Compute(projected, &stats);
    }
    if (tests != nullptr) *tests += stats.dominance_tests;
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  // Tombstoned version: project only the live rows into a dense dataset
  // (engine row ids index `live_ids`) and map back.
  std::vector<PointId> live_ids;
  live_ids.reserve(version.num_live);
  for (PointId p = 0; p < version.data.num_points(); ++p) {
    if (version.IsLive(p)) live_ids.push_back(p);
  }
  const Dim pd = v.size();
  std::vector<Value> values;
  values.reserve(live_ids.size() * pd);
  for (PointId id : live_ids) {
    const Value* row = version.data.row(id);
    v.ForEachDim([&](Dim i) { values.push_back(row[i]); });
  }
  const Dataset projected(pd, std::move(values));
  std::vector<PointId> local;
  if (projected.num_points() >= options_.parallel_cold_threshold) {
    ParallelSubsetSfs engine(options_.threads, options_.algorithm);
    local = engine.Compute(projected, &stats);
  } else {
    SfsSubset engine(options_.algorithm);
    local = engine.Compute(projected, &stats);
  }
  if (tests != nullptr) *tests += stats.dominance_tests;
  ids.reserve(local.size());
  for (PointId id : local) ids.push_back(live_ids[id]);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<PointId> QueryService::ComputeSeededCore(
    const DatasetVersion& version, Subspace v,
    const std::vector<PointId>& candidates, std::uint64_t* tests) const {
  // Candidates come from a current-epoch entry, so every id is live.
  if (candidates.size() < options_.seeded_boost_threshold) {
    // Warm this worker's projection scratch to the largest shape the
    // boosted path can see (threshold-sized seed, full dimensionality),
    // so repeated seeded queries stop allocating.
    WarmSubspaceScratch(options_.seeded_boost_threshold,
                        version.data.num_dims());
    return SubspaceSkylineOverCandidates(version.data, v, candidates, tests);
  }
  // Large seed (e.g. a near-total anti-correlated full-space skyline):
  // the O(|seed|^2) BNL loses to the subset-boosted engine on the
  // projected candidate rows. Engine row ids index `candidates`.
  const Dim pd = v.size();
  std::vector<Value> values;
  values.reserve(candidates.size() * pd);
  for (PointId id : candidates) {
    const Value* row = version.data.row(id);
    v.ForEachDim([&](Dim i) { values.push_back(row[i]); });
  }
  const Dataset projected(pd, std::move(values));
  SkylineStats stats;
  SfsSubset engine(options_.algorithm);
  std::vector<PointId> local = engine.Compute(projected, &stats);
  if (tests != nullptr) *tests += stats.dominance_tests;
  std::vector<PointId> core;
  core.reserve(local.size());
  for (PointId id : local) core.push_back(candidates[id]);
  return core;
}

bool QueryService::TryRepair(const DatasetVersion& next, Subspace v,
                             PointId first_inserted,
                             std::span<const PointId> removes,
                             std::vector<PointId>* ids,
                             std::uint64_t* tests) {
  // Remove rule: a removed member invalidates the answer (points it
  // alone dominated may surface); a removed non-member is harmless —
  // it was strictly V-dominated by a member (ties are members by the
  // closure property), and removing a dominated point never changes a
  // skyline. `*ids` is ascending, so membership is a binary search.
  for (PointId r : removes) {
    if (std::binary_search(ids->begin(), ids->end(), r)) return false;
  }
  // Insert rule: an inserted point p strictly V-dominated by some
  // member changes nothing (dominance is transitive, so a member
  // witness exists whenever any dominator exists); otherwise p joins
  // the answer and evicts exactly the members it V-dominates. A tie on
  // V with a member also joins (nothing can dominate p without
  // dominating that member). Inserted ids exceed every prior id, so
  // appending keeps `*ids` sorted; later inserts of the same batch are
  // correctly checked against earlier ones.
  std::uint64_t local_tests = 0;
  for (PointId p = first_inserted; p < next.data.num_points(); ++p) {
    const Value* row = next.data.row(p);
    bool dominated = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ids->size(); ++i) {
      const PointId s = (*ids)[i];
      ++local_tests;
      if (DominatesInSubspace(next.data.row(s), row, v)) {
        dominated = true;
        for (std::size_t j = i; j < ids->size(); ++j) {
          (*ids)[keep++] = (*ids)[j];
        }
        break;
      }
      if (DominatesInSubspace(row, next.data.row(s), v)) continue;
      (*ids)[keep++] = s;
    }
    ids->resize(keep);
    if (!dominated) ids->push_back(p);
  }
  if (tests != nullptr) *tests += local_tests;
  return true;
}

QueryService::EntryPtr QueryService::MakeReadyEntry(bool pinned,
                                                    std::uint64_t entry_epoch,
                                                    std::uint64_t last_used,
                                                    std::vector<PointId> ids) {
  auto entry = std::make_shared<Entry>(pinned, entry_epoch);
  entry->last_used.store(last_used, std::memory_order_relaxed);
  entry->Publish(std::move(ids));
  return entry;
}

std::uint64_t QueryService::ApplyUpdate(std::span<const Value> inserts,
                                        std::span<const PointId> removes) {
  const Dim d = data_.num_dims();
  SKYLINE_ASSERT(inserts.size() % d == 0,
                 "ApplyUpdate: inserts must be k * num_dims values");
  const std::size_t num_inserts = inserts.size() / d;
  if (num_inserts == 0 && removes.empty()) {
    ReaderLock lock(cache_mu_);
    return version_->epoch;  // Empty batch: no-op, no epoch bump.
  }
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t tests = 0;
  std::uint64_t new_epoch = 0;
  {
    WriterLock lock(cache_mu_);
    const DatasetVersionPtr old = version_;
    auto next = std::make_shared<DatasetVersion>();
    next->data = old->data;
    next->live = old->live;
    next->epoch = old->epoch + 1;
    const PointId first_inserted =
        static_cast<PointId>(next->data.num_points());
    for (std::size_t i = 0; i < num_inserts; ++i) {
      next->data.Append(inserts.subspan(i * d, d));
    }
    next->live.resize(next->data.num_points(), 1);
    for (PointId r : removes) {
      SKYLINE_ASSERT(r < first_inserted,
                     "ApplyUpdate: remove id out of range or from this batch");
      SKYLINE_ASSERT(next->live[r] != 0,
                     "ApplyUpdate: remove of an already-removed point");
      next->live[r] = 0;
    }
    next->has_removed = old->has_removed || !removes.empty();
    next->num_live = old->num_live + num_inserts - removes.size();
    version_ = next;
    new_epoch = next->epoch;

    // Sweep the cache: repair what the two rules allow, detach what is
    // still computing, leave the rest behind as stale.
    for (auto it = cache_.begin(); it != cache_.end();) {
      const EntryPtr entry = it->second;
      if (!entry->ready.load(std::memory_order_acquire)) {
        // In-flight computation over the old version: unlink it so its
        // result is never cached under the new epoch. The computing
        // thread still publishes to its waiters and detects the
        // detachment in PublishAndEvict.
        aborted_inflight_.fetch_add(1, std::memory_order_relaxed);
        it = cache_.erase(it);
        continue;
      }
      if (entry->epoch != old->epoch) {
        ++it;  // Already stale from an earlier epoch; nothing new to learn.
        continue;
      }
      const Subspace v(it->first);
      const std::size_t old_size = entry->published_ids().size();
      std::vector<PointId> ids = entry->published_ids();
      if (TryRepair(*next, v, first_inserted, removes, &ids, &tests)) {
        // Published id lists are immutable, so a repair installs a
        // replacement entry re-stamped with the new epoch.
        const std::size_t new_size = ids.size();
        it->second = MakeReadyEntry(
            entry->pinned, next->epoch,
            entry->last_used.load(std::memory_order_relaxed), std::move(ids));
        if (entry->pinned) {
          pinned_ids_ = pinned_ids_ - old_size + new_size;
        } else {
          cached_ids_ = cached_ids_ - old_size + new_size;
        }
        repaired_.fetch_add(1, std::memory_order_relaxed);
      } else if (entry->pinned) {
        // The pinned full-space seed lost a member: recompute it
        // eagerly (under the lock) so every future miss still has a
        // universal current-epoch seed.
        std::vector<PointId> fresh = ComputeCold(*next, v, &tests);
        const std::size_t new_size = fresh.size();
        it->second = MakeReadyEntry(
            /*pinned=*/true, next->epoch,
            clock_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::move(fresh));
        pinned_ids_ = pinned_ids_ - old_size + new_size;
        pinned_recomputes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Unrepairable: left in the map stamped with the old epoch.
        // Query() treats it as a miss and replaces it; the Peek probes
        // only surface it to callers that opted into staleness.
        invalidated_.fetch_add(1, std::memory_order_relaxed);
      }
      ++it;
    }
  }
  updates_.fetch_add(1, std::memory_order_relaxed);
  insert_points_.fetch_add(num_inserts, std::memory_order_relaxed);
  remove_points_.fetch_add(removes.size(), std::memory_order_relaxed);
  update_tests_.fetch_add(tests, std::memory_order_relaxed);
  update_latency_.Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return new_epoch;
}

bool QueryService::OverBudget() const {
  const std::size_t unpinned = cache_.size() - pinned_entries_;
  if (unpinned > options_.max_entries) return true;
  return options_.max_total_ids != 0 && cached_ids_ > options_.max_total_ids;
}

void QueryService::PublishAndEvict(const EntryPtr& entry, std::uint64_t key,
                                   std::vector<PointId> ids) {
  const std::size_t num_ids = ids.size();
  entry->Publish(std::move(ids));

  WriterLock lock(cache_mu_);
  auto self = cache_.find(key);
  if (self == cache_.end() || self->second != entry) {
    // An ApplyUpdate detached this computation while it ran: the
    // publication above fed the coalesced waiters (who get the answer
    // for the epoch they queued behind), but the cache — now at a newer
    // epoch — must not absorb it.
    return;
  }
  cached_ids_ += num_ids;
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);

  while (OverBudget()) {
    // LRU victim among ready unpinned entries, the freshly published
    // one excluded unless it is the only candidate left.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      const EntryPtr& e = it->second;
      if (e->pinned || e == entry) continue;
      if (!e->ready.load(std::memory_order_acquire)) continue;
      if (victim == cache_.end() ||
          e->last_used.load(std::memory_order_relaxed) <
              victim->second->last_used.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    if (victim == cache_.end()) {
      // Only in-flight entries (or the fresh one) remain; if the fresh
      // entry alone busts the id budget, keeping it is the policy.
      if (cache_.count(key) != 0 &&
          cache_.size() - pinned_entries_ > options_.max_entries) {
        cached_ids_ -= num_ids;
        cache_.erase(key);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    // epoch-ok: eviction accounting — the ids are dropped, not served.
    cached_ids_ -= victim->second->published_ids().size();
    cache_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<PointId> QueryService::Query(Subspace v,
                                         std::uint64_t* epoch_out) {
  SKYLINE_ASSERT(!v.empty(), "Query: empty subspace");
  SKYLINE_ASSERT(v.IsSubsetOf(Subspace::Full(data_.num_dims())),
                 "Query: subspace outside the dataset's space");
  const auto start = std::chrono::steady_clock::now();
  queries_.fetch_add(1, std::memory_order_relaxed);

  auto finish = [&](std::vector<PointId> ids) {
    latency_.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return ids;
  };

  // Fast path: shared-lock lookup. A ready entry from an older epoch
  // reads as a miss — stale answers are never served from Query().
  {
    ReaderLock lock(cache_mu_);
    auto it = cache_.find(v.bits());
    if (it != cache_.end()) {
      EntryPtr entry = it->second;
      const bool was_ready = entry->ready.load(std::memory_order_acquire);
      // epoch-ok: in-flight entries are always current (an update would
      // have detached them from the map); ready ones must match.
      const bool current = entry->epoch == version_->epoch;
      if (!was_ready || current) {
        lock.Unlock();
        if (was_ready) {
          hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        }
        if (epoch_out != nullptr) *epoch_out = entry->epoch;
        return finish(AwaitAndCopy(entry));
      }
    }
  }

  // Miss (or stale hit): claim the cuboid (single-flight) and pick a
  // seed, all under one exclusive-lock critical section.
  EntryPtr entry;
  EntryPtr ancestor;
  Subspace ancestor_subspace;
  DatasetVersionPtr snap;
  {
    WriterLock lock(cache_mu_);
    auto it = cache_.find(v.bits());
    if (it != cache_.end()) {
      EntryPtr existing = it->second;
      const bool was_ready = existing->ready.load(std::memory_order_acquire);
      // epoch-ok: same rule as the fast path — wait on in-flight or
      // current entries, replace stale ready ones below.
      if (!was_ready || existing->epoch == version_->epoch) {
        // Another thread claimed it between our two lookups.
        lock.Unlock();
        if (was_ready) {
          hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        }
        if (epoch_out != nullptr) *epoch_out = existing->epoch;
        return finish(AwaitAndCopy(existing));
      }
      // Stale ready entry: drop it from the accounting and replace it
      // in place (not counted as an eviction — the slot stays taken).
      cached_ids_ -= existing->published_ids().size();
      snap = version_;
      entry = std::make_shared<Entry>(/*pinned_entry=*/false, snap->epoch);
      it->second = entry;
    } else {
      snap = version_;
      entry = std::make_shared<Entry>(/*pinned_entry=*/false, snap->epoch);
      cache_.emplace(v.bits(), entry);
    }
    ancestor = FindBestAncestor(v, &ancestor_subspace);
  }

  std::vector<PointId> ids;
  std::uint64_t tests = 0;
  if (ancestor != nullptr && ancestor_subspace != v) {
    // Top-down sharing from the ancestor cuboid: V-skyline of the
    // ancestor's ids, then the duplicate-projection tie repair (live
    // rows only once the version carries tombstones).
    // epoch-ok: FindBestAncestor only returns current-epoch entries, so
    // the seed matches `snap` (both captured under the same lock).
    const std::vector<PointId> core =
        ComputeSeededCore(*snap, v, ancestor->published_ids(), &tests);
    ids = snap->has_removed
              ? CloseUnderProjectionTies(snap->data, v, core, snap->live)
              : CloseUnderProjectionTies(snap->data, v, core);
    seeded_.fetch_add(1, std::memory_order_relaxed);
    seeded_tests_.fetch_add(tests, std::memory_order_relaxed);
  } else {
    ids = ComputeCold(*snap, v, &tests);
    cold_.fetch_add(1, std::memory_order_relaxed);
    cold_tests_.fetch_add(tests, std::memory_order_relaxed);
  }

  if (epoch_out != nullptr) *epoch_out = snap->epoch;
  PublishAndEvict(entry, v.bits(), ids);
  return finish(std::move(ids));
}

bool QueryService::PeekExact(Subspace v, std::vector<PointId>* ids,
                             std::uint64_t* epoch_out,
                             std::uint64_t* epoch_delta) {
  SKYLINE_ASSERT(!v.empty(), "PeekExact: empty subspace");
  ReaderLock lock(cache_mu_);
  auto it = cache_.find(v.bits());
  if (it == cache_.end()) return false;
  const EntryPtr& entry = it->second;
  if (!entry->ready.load(std::memory_order_acquire)) return false;
  // epoch-ok: a stale entry is surfaced only to callers that asked for
  // the delta — a pre-update answer is never returned silently.
  const std::uint64_t delta = version_->epoch - entry->epoch;
  if (delta != 0 && epoch_delta == nullptr) return false;
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  if (ids != nullptr) *ids = entry->published_ids();
  if (epoch_out != nullptr) *epoch_out = entry->epoch;
  if (epoch_delta != nullptr) *epoch_delta = delta;
  return true;
}

bool QueryService::PeekNearestAncestor(Subspace v, Subspace* ancestor,
                                       std::vector<PointId>* ids,
                                       std::uint64_t* epoch_out,
                                       std::uint64_t* epoch_delta) {
  SKYLINE_ASSERT(!v.empty(), "PeekNearestAncestor: empty subspace");
  ReaderLock lock(cache_mu_);
  // epoch-ok: candidates are ranked freshest epoch first and stale ones
  // are eligible only with the caller's epoch_delta opt-in.
  const std::uint64_t current = version_->epoch;
  const bool allow_stale = epoch_delta != nullptr;
  EntryPtr best;
  Subspace best_subspace;
  std::uint64_t best_delta = 0;
  bool best_exact = false;
  std::size_t best_num_ids = 0;
  for (const auto& [bits, entry] : cache_) {
    const Subspace u(bits);
    if (!v.IsSubsetOf(u)) continue;
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    const std::uint64_t delta = current - entry->epoch;
    if (delta != 0 && !allow_stale) continue;
    const bool exact = u == v;
    const std::size_t num_ids = entry->published_ids().size();
    const bool better = [&] {
      if (best == nullptr) return true;
      if (delta != best_delta) return delta < best_delta;
      if (exact != best_exact) return exact;
      if (num_ids != best_num_ids) return num_ids < best_num_ids;
      return u.size() < best_subspace.size();
    }();
    if (better) {
      best = entry;
      best_subspace = u;
      best_delta = delta;
      best_exact = exact;
      best_num_ids = num_ids;
    }
  }
  if (best == nullptr) return false;
  best->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  if (ancestor != nullptr) *ancestor = best_subspace;
  // epoch-ok: best->epoch and its delta are forwarded right below.
  if (ids != nullptr) *ids = best->published_ids();
  if (epoch_out != nullptr) *epoch_out = best->epoch;
  if (epoch_delta != nullptr) *epoch_delta = best_delta;
  return true;
}

DatasetVersionPtr QueryService::current_version() const {
  ReaderLock lock(cache_mu_);
  return version_;
}

std::uint64_t QueryService::epoch() const {
  ReaderLock lock(cache_mu_);
  return version_->epoch;
}

QueryStatsSnapshot QueryService::Stats() const {
  QueryStatsSnapshot snap;
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.coalesced = coalesced_.load(std::memory_order_relaxed);
  snap.seeded = seeded_.load(std::memory_order_relaxed);
  snap.cold = cold_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  snap.seeded_tests = seeded_tests_.load(std::memory_order_relaxed);
  snap.cold_tests = cold_tests_.load(std::memory_order_relaxed);
  snap.updates = updates_.load(std::memory_order_relaxed);
  snap.insert_points = insert_points_.load(std::memory_order_relaxed);
  snap.remove_points = remove_points_.load(std::memory_order_relaxed);
  snap.repaired = repaired_.load(std::memory_order_relaxed);
  snap.invalidated = invalidated_.load(std::memory_order_relaxed);
  snap.aborted_inflight = aborted_inflight_.load(std::memory_order_relaxed);
  snap.pinned_recomputes = pinned_recomputes_.load(std::memory_order_relaxed);
  snap.update_tests = update_tests_.load(std::memory_order_relaxed);
  {
    ReaderLock lock(cache_mu_);
    snap.epoch = version_->epoch;
    snap.live_points = version_->num_live;
    for (const auto& [bits, entry] : cache_) {
      if (!entry->ready.load(std::memory_order_acquire)) continue;
      ++snap.cache_entries;
      snap.cache_ids += entry->published_ids().size();
      // epoch-ok: counting, not serving — the gauge reports staleness.
      if (entry->epoch != version_->epoch) ++snap.stale_entries;
    }
  }
  snap.latency = latency_.Snap();
  snap.update_latency = update_latency_.Snap();
  return snap;
}

}  // namespace skyline
