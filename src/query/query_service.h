// Concurrent subspace-skyline query service with a memoized cuboid
// cache — the serving layer over a fixed Dataset.
//
// A QueryService answers a stream of subspace-skyline queries ("best
// hotels by price and rating only") without recomputing per query:
//
//   * Exact hit: the queried cuboid is cached; the id list is returned
//     under a shared lock, with a single atomic LRU touch.
//   * Seeded miss: the nearest cached ancestor cuboid U ⊇ V (fewest
//     skyline ids) seeds the computation via the skycube top-down
//     sharing scheme — sky_V over sky(U) followed by the
//     duplicate-projection tie repair of src/skycube. Sound for ANY
//     ancestor, not just a parent: a U-dominator chain from any point
//     terminates in sky(U) without increasing any coordinate, so every
//     V-skyline point either is in sky(U) or ties on V with a core
//     member, and every core member is V-undominated globally.
//   * Cold miss: no cached ancestor — the subset-boosted engine
//     (sfs-subset, or the parallel partition + cross-filter engine
//     beyond `parallel_cold_threshold` rows) computes the cuboid on the
//     projected dataset.
//
// Concurrency: lookups take a shared lock; per-cuboid single-flight
// means concurrent identical misses compute once (latecomers block on
// the in-flight entry's condition variable, counted as `coalesced`).
// Cached id lists are immutable once published, so hits copy them
// without per-entry locking (release/acquire on the entry's `ready`
// flag), and eviction only unlinks entries from the map — readers that
// already hold the shared_ptr keep a valid snapshot.
//
// Eviction: bounded by entry count and (optionally) total cached ids;
// least-recently-used ready entries are dropped first. The full-space
// cuboid can be pinned (default) so every miss has a universal seed.
#ifndef SKYLINE_QUERY_QUERY_SERVICE_H_
#define SKYLINE_QUERY_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/algo/algorithm.h"
#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/core/sync.h"
#include "src/harness/histogram.h"

namespace skyline {

/// Tuning knobs of the QueryService cache.
struct QueryServiceOptions {
  /// Maximum number of cached cuboids, pinned entries excluded. At
  /// least 1; the entry being inserted always fits.
  std::size_t max_entries = 64;

  /// Total cached id budget across all unpinned cuboids; 0 = unbounded.
  /// When exceeded, LRU entries are evicted until the budget holds (the
  /// most recent entry survives even if it alone exceeds the budget —
  /// dropping fresh results would make hot big cuboids uncacheable).
  std::size_t max_total_ids = 0;

  /// Compute and pin the full-space cuboid at construction, so every
  /// miss has a cached ancestor and the cold path is construction-only.
  bool pin_full_space = true;

  /// Cold computes on datasets with at least this many rows use the
  /// parallel subset engine instead of the sequential one.
  std::size_t parallel_cold_threshold = 100000;

  /// Seeded misses with at least this many ancestor candidates run the
  /// subset-boosted engine over the projected candidate rows instead of
  /// the skycube BNL. Small seeds stay on the BNL, which wins when the
  /// candidate set is already near the answer (the common parent→child
  /// case); large seeds — e.g. a near-total anti-correlated full-space
  /// skyline — would cost O(|seed|^2) there.
  std::size_t seeded_boost_threshold = 256;

  /// Worker threads for parallel cold computes; 0 = hardware pick.
  unsigned threads = 0;

  /// Options forwarded to the subset-boosted engines (sigma etc.).
  AlgorithmOptions algorithm;
};

/// A plain, copyable snapshot of the service counters. All counts are
/// cumulative since construction.
struct QueryStatsSnapshot {
  std::uint64_t queries = 0;     ///< Total Query() calls.
  std::uint64_t hits = 0;        ///< Entry was ready on arrival.
  std::uint64_t coalesced = 0;   ///< Waited on another thread's compute.
  std::uint64_t seeded = 0;      ///< Misses computed from an ancestor.
  std::uint64_t cold = 0;        ///< Misses computed from scratch.
  std::uint64_t evictions = 0;   ///< Cuboids dropped by the LRU policy.
  std::uint64_t seeded_tests = 0;  ///< Dominance tests on seeded misses.
  std::uint64_t cold_tests = 0;    ///< Dominance tests on cold misses
                                   ///< (pinned full-space included).
  std::size_t cache_entries = 0;   ///< Ready cuboids currently cached.
  std::size_t cache_ids = 0;       ///< Ids currently cached (incl. pinned).
  LatencyHistogram::Snapshot latency;  ///< Per-Query() wall latency.

  std::uint64_t misses() const { return coalesced + seeded + cold; }
  std::uint64_t dominance_tests() const { return seeded_tests + cold_tests; }
  double HitRate() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(queries);
  }
};

/// Thread-safe memoizing subspace-skyline server over one Dataset. The
/// dataset must outlive the service and stay unmodified.
class QueryService {
 public:
  explicit QueryService(const Dataset& data, QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Ids of the skyline of the non-empty subspace `v` (which must lie
  /// inside the dataset's space), ascending. Safe to call concurrently.
  std::vector<PointId> Query(Subspace v) SKYLINE_EXCLUDES(cache_mu_);

  /// Copies the current counters; safe to call concurrently.
  QueryStatsSnapshot Stats() const SKYLINE_EXCLUDES(cache_mu_);

  /// Non-blocking exact lookup: if the cuboid `v` is cached and ready,
  /// copies its ids into `*ids` (when non-null), touches the LRU stamp,
  /// and returns true. Never computes and never waits on an in-flight
  /// entry. Counted neither as a hit nor as a query.
  bool PeekExact(Subspace v, std::vector<PointId>* ids)
      SKYLINE_EXCLUDES(cache_mu_);

  /// Non-blocking nearest-ancestor lookup: if any ready cached cuboid
  /// U ⊇ `v` exists (the exact cuboid preferred, otherwise the one with
  /// the fewest ids), copies its subspace/ids into the non-null
  /// out-params, touches the LRU stamp, and returns true. Never
  /// computes and never waits.
  bool PeekNearestAncestor(Subspace v, Subspace* ancestor,
                           std::vector<PointId>* ids)
      SKYLINE_EXCLUDES(cache_mu_);

  const Dataset& data() const { return data_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  /// One cached cuboid. Publication protocol: `ids_` is written exactly
  /// once, under `mu`, before `ready` is set with release order
  /// (Publish). Readers that observed `ready` with acquire order may
  /// therefore read `ids_` lock-free (published_ids) — the entry is
  /// immutable from publication on.
  struct Entry {
    explicit Entry(bool pinned_entry) : pinned(pinned_entry) {}

    /// Stores the result, marks the entry ready, and wakes coalesced
    /// waiters. Called exactly once per entry, by the computing thread.
    void Publish(std::vector<PointId> new_ids) SKYLINE_EXCLUDES(mu);

    /// The published id list, read lock-free. Sound without holding
    /// `mu` because the caller observed `ready` (acquire) and `ids_` is
    /// never written again after the releasing store in Publish.
    const std::vector<PointId>& published_ids() const
        SKYLINE_NO_THREAD_SAFETY_ANALYSIS;

    Mutex mu;
    CondVar cv;
    std::atomic<bool> ready{false};
    std::atomic<std::uint64_t> last_used{0};
    const bool pinned;

   private:
    std::vector<PointId> ids_ SKYLINE_GUARDED_BY(mu);
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Waits until `entry` is published and returns a copy of its ids.
  std::vector<PointId> AwaitAndCopy(const EntryPtr& entry);

  /// Smallest ready cached cuboid whose subspace is a superset of `v`
  /// (by id count, then by dimension count).
  EntryPtr FindBestAncestor(Subspace v, Subspace* ancestor_subspace) const
      SKYLINE_REQUIRES_SHARED(cache_mu_);

  /// Computes sky(v) from scratch with the subset-boosted engine on the
  /// projected dataset; adds the dominance tests spent to `tests`.
  std::vector<PointId> ComputeCold(Subspace v, std::uint64_t* tests) const;

  /// Computes the core of sky(v) over the ancestor `candidates`: the
  /// skycube BNL below `seeded_boost_threshold` candidates, the
  /// subset-boosted engine on the projected candidate rows at or above
  /// it. Tie repair is the caller's job.
  std::vector<PointId> ComputeSeededCore(Subspace v,
                                         const std::vector<PointId>& candidates,
                                         std::uint64_t* tests) const;

  /// Publishes `ids` into `entry`, accounts the size, and evicts LRU
  /// entries until the configured bounds hold again.
  void PublishAndEvict(const EntryPtr& entry, std::uint64_t key,
                       std::vector<PointId> ids) SKYLINE_EXCLUDES(cache_mu_);

  /// True while the cache exceeds its entry or id budget.
  bool OverBudget() const SKYLINE_REQUIRES_SHARED(cache_mu_);

  const Dataset& data_;
  const QueryServiceOptions options_;

  mutable SharedMutex cache_mu_;
  /// Key: subspace bits.
  std::unordered_map<std::uint64_t, EntryPtr> cache_
      SKYLINE_GUARDED_BY(cache_mu_);
  /// Ids over ready unpinned entries.
  std::size_t cached_ids_ SKYLINE_GUARDED_BY(cache_mu_) = 0;
  /// Ready pinned entries.
  std::size_t pinned_entries_ SKYLINE_GUARDED_BY(cache_mu_) = 0;
  std::size_t pinned_ids_ SKYLINE_GUARDED_BY(cache_mu_) = 0;

  std::atomic<std::uint64_t> clock_{0};  ///< LRU stamp source.

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> seeded_{0};
  std::atomic<std::uint64_t> cold_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> seeded_tests_{0};
  std::atomic<std::uint64_t> cold_tests_{0};
  LatencyHistogram latency_;  // unguarded: internally lock-free atomics
};

}  // namespace skyline

#endif  // SKYLINE_QUERY_QUERY_SERVICE_H_
