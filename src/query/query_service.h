// Concurrent subspace-skyline query service with a memoized cuboid
// cache — the serving layer over a live (mutable) dataset.
//
// A QueryService answers a stream of subspace-skyline queries ("best
// hotels by price and rating only") without recomputing per query:
//
//   * Exact hit: the queried cuboid is cached at the current epoch; the
//     id list is returned under a shared lock, with a single atomic LRU
//     touch.
//   * Seeded miss: the nearest cached ancestor cuboid U ⊇ V (fewest
//     skyline ids) seeds the computation via the skycube top-down
//     sharing scheme — sky_V over sky(U) followed by the
//     duplicate-projection tie repair of src/skycube. Sound for ANY
//     ancestor, not just a parent: a U-dominator chain from any point
//     terminates in sky(U) without increasing any coordinate, so every
//     V-skyline point either is in sky(U) or ties on V with a core
//     member, and every core member is V-undominated globally.
//   * Cold miss: no cached ancestor — the subset-boosted engine
//     (sfs-subset, or the parallel partition + cross-filter engine
//     beyond `parallel_cold_threshold` rows) computes the cuboid on the
//     projected dataset.
//
// Mutation (epochs): ApplyUpdate(inserts, removes) installs a new
// immutable DatasetVersion (copy-on-write snapshot) and bumps the
// epoch. Every cached cuboid entry is stamped with the epoch it was
// computed in; an update either cheaply REPAIRS a ready entry to the
// new epoch or leaves it behind as STALE (docs/query_service.md proves
// both rules):
//
//   * Insert rule — an inserted point p that is V-dominated by some
//     member of the cached answer sky(V) changes nothing; otherwise p
//     joins sky(V) and evicts exactly the members it V-dominates. Both
//     cases are an O(|sky(V)|) repair, no recompute.
//   * Remove rule — a removed point absent from the cached answer
//     leaves it valid; a removed member invalidates the entry (points
//     it alone dominated may surface).
//
// Stale entries never answer Query() (they read as misses and are
// replaced), never seed misses, and are only visible through the Peek
// probes when the caller explicitly asks for the epoch delta — the
// bounded-staleness contract of SkylineServer's kServeStale policy.
// In-flight computations that an update overtakes are detached from
// the cache: their waiters still get the pre-update answer (tagged with
// the entry's epoch) but the result is never cached under the new
// epoch.
//
// Concurrency: lookups take a shared lock; per-cuboid single-flight
// means concurrent identical misses compute once (latecomers block on
// the in-flight entry's condition variable, counted as `coalesced`).
// Cached id lists are immutable once published — a repair publishes a
// REPLACEMENT entry rather than mutating in place — so hits copy them
// without per-entry locking (release/acquire on the entry's `ready`
// flag), and eviction only unlinks entries from the map — readers that
// already hold the shared_ptr keep a valid snapshot. Updates hold the
// exclusive lock for the whole sweep, so they serialize against claims
// and publications (but not against in-flight computes, which are
// detached instead).
//
// Eviction: bounded by entry count and (optionally) total cached ids;
// least-recently-used ready entries are dropped first. The full-space
// cuboid can be pinned (default) so every miss has a universal seed;
// the pinned entry is kept current across updates (repaired, or
// recomputed inside ApplyUpdate when one of its members is removed).
#ifndef SKYLINE_QUERY_QUERY_SERVICE_H_
#define SKYLINE_QUERY_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/algo/algorithm.h"
#include "src/core/dataset.h"
#include "src/core/subspace.h"
#include "src/core/sync.h"
#include "src/harness/histogram.h"

namespace skyline {

/// Tuning knobs of the QueryService cache.
struct QueryServiceOptions {
  /// Maximum number of cached cuboids, pinned entries excluded. At
  /// least 1; the entry being inserted always fits.
  std::size_t max_entries = 64;

  /// Total cached id budget across all unpinned cuboids; 0 = unbounded.
  /// When exceeded, LRU entries are evicted until the budget holds (the
  /// most recent entry survives even if it alone exceeds the budget —
  /// dropping fresh results would make hot big cuboids uncacheable).
  std::size_t max_total_ids = 0;

  /// Compute and pin the full-space cuboid at construction, so every
  /// miss has a cached ancestor and the cold path is construction-only.
  bool pin_full_space = true;

  /// Cold computes on datasets with at least this many rows use the
  /// parallel subset engine instead of the sequential one.
  std::size_t parallel_cold_threshold = 100000;

  /// Seeded misses with at least this many ancestor candidates run the
  /// subset-boosted engine over the projected candidate rows instead of
  /// the skycube BNL. Small seeds stay on the BNL, which wins when the
  /// candidate set is already near the answer (the common parent→child
  /// case); large seeds — e.g. a near-total anti-correlated full-space
  /// skyline — would cost O(|seed|^2) there.
  std::size_t seeded_boost_threshold = 256;

  /// Worker threads for parallel cold computes; 0 = hardware pick.
  unsigned threads = 0;

  /// Options forwarded to the subset-boosted engines (sigma etc.).
  AlgorithmOptions algorithm;
};

/// One immutable snapshot of the live dataset. Rows are append-only and
/// point ids are stable across versions: an insert appends rows, a
/// remove only tombstones (live[id] = false). Any id valid at epoch e
/// therefore still names the same row values in every epoch >= e — the
/// property that lets a stale cached answer be re-projected against the
/// newest version's rows.
struct DatasetVersion {
  Dataset data;            ///< All rows ever inserted (removed included).
  std::vector<char> live;  ///< live[id] != 0 iff id has not been removed.
  std::size_t num_live = 0;   ///< Count of live rows.
  bool has_removed = false;   ///< Any tombstone in this version?
  std::uint64_t epoch = 0;    ///< 0 at construction; +1 per ApplyUpdate.

  DatasetVersion() : data(1) {}
  bool IsLive(PointId id) const { return live[id] != 0; }
};
using DatasetVersionPtr = std::shared_ptr<const DatasetVersion>;

/// A plain, copyable snapshot of the service counters. All counts are
/// cumulative since construction.
struct QueryStatsSnapshot {
  std::uint64_t queries = 0;     ///< Total Query() calls.
  std::uint64_t hits = 0;        ///< Entry was ready on arrival.
  std::uint64_t coalesced = 0;   ///< Waited on another thread's compute.
  std::uint64_t seeded = 0;      ///< Misses computed from an ancestor.
  std::uint64_t cold = 0;        ///< Misses computed from scratch.
  std::uint64_t evictions = 0;   ///< Cuboids dropped by the LRU policy.
  std::uint64_t seeded_tests = 0;  ///< Dominance tests on seeded misses.
  std::uint64_t cold_tests = 0;    ///< Dominance tests on cold misses
                                   ///< (pinned full-space included).

  // ---- Mutation counters (ApplyUpdate) ----
  std::uint64_t updates = 0;        ///< ApplyUpdate calls that changed data.
  std::uint64_t insert_points = 0;  ///< Rows inserted across all updates.
  std::uint64_t remove_points = 0;  ///< Rows tombstoned across all updates.
  std::uint64_t repaired = 0;       ///< Entries cheaply re-stamped current.
  std::uint64_t invalidated = 0;    ///< Ready entries left behind as stale.
  std::uint64_t aborted_inflight = 0;  ///< In-flight computes detached.
  std::uint64_t pinned_recomputes = 0;  ///< Pinned full-space recomputes.
  std::uint64_t update_tests = 0;  ///< Dominance tests in repairs + pinned
                                   ///< recomputes.

  std::uint64_t epoch = 0;         ///< Current dataset epoch.
  std::size_t live_points = 0;     ///< Live rows in the current version.
  std::size_t cache_entries = 0;   ///< Ready cuboids currently cached.
  std::size_t stale_entries = 0;   ///< Of those, stamped with an old epoch.
  std::size_t cache_ids = 0;       ///< Ids currently cached (incl. pinned).
  LatencyHistogram::Snapshot latency;  ///< Per-Query() wall latency.
  LatencyHistogram::Snapshot update_latency;  ///< Per-ApplyUpdate() wall.

  std::uint64_t misses() const { return coalesced + seeded + cold; }
  std::uint64_t dominance_tests() const {
    return seeded_tests + cold_tests + update_tests;
  }
  double HitRate() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(queries);
  }
};

/// Thread-safe memoizing subspace-skyline server over one Dataset. The
/// construction dataset is snapshotted as epoch 0; it must stay alive
/// and unmodified only through the constructor call itself. All later
/// mutation goes through ApplyUpdate.
class QueryService {
 public:
  explicit QueryService(const Dataset& data, QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Ids of the skyline of the non-empty subspace `v` (which must lie
  /// inside the dataset's space), ascending, over the live rows of one
  /// dataset version. Safe to call concurrently. When `epoch_out` is
  /// non-null it receives the epoch of the version the answer reflects
  /// — always the current epoch at some instant during the call, except
  /// for waiters coalesced onto a computation that an update detached,
  /// which get the pre-update epoch they queued behind.
  std::vector<PointId> Query(Subspace v, std::uint64_t* epoch_out = nullptr)
      SKYLINE_EXCLUDES(cache_mu_);

  /// Applies a batch of mutations: `inserts` is a row-major block of
  /// k * num_dims() values appended as k new points (their ids are
  /// returned epochs' num_points(), ascending); `removes` tombstones
  /// existing live points (each id must be live and predate this
  /// batch). Bumps the epoch, repairs or invalidates cached cuboids
  /// (see the header comment), and keeps the pinned full-space seed
  /// current. Returns the new epoch (the unchanged one for an empty
  /// batch, which is a no-op). Serializes against claims/publications
  /// via the cache lock; safe to call concurrently with Query.
  std::uint64_t ApplyUpdate(std::span<const Value> inserts,
                            std::span<const PointId> removes)
      SKYLINE_EXCLUDES(cache_mu_);

  /// Copies the current counters; safe to call concurrently.
  QueryStatsSnapshot Stats() const SKYLINE_EXCLUDES(cache_mu_);

  /// Non-blocking exact lookup: if the cuboid `v` is cached and ready,
  /// copies its ids into `*ids` (when non-null), touches the LRU stamp,
  /// and returns true. Never computes and never waits on an in-flight
  /// entry. Counted neither as a hit nor as a query.
  ///
  /// Epoch contract: with `epoch_delta == nullptr` only entries stamped
  /// with the CURRENT epoch are returned — a pre-update answer is never
  /// served silently. Passing `epoch_delta` opts into stale entries:
  /// `*epoch_delta` receives current − entry epoch (0 when current) and
  /// `*epoch_out` (when non-null) the entry's epoch.
  bool PeekExact(Subspace v, std::vector<PointId>* ids,
                 std::uint64_t* epoch_out = nullptr,
                 std::uint64_t* epoch_delta = nullptr)
      SKYLINE_EXCLUDES(cache_mu_);

  /// Non-blocking nearest-ancestor lookup: if any ready cached cuboid
  /// U ⊇ `v` exists (freshest epoch first, then the exact cuboid, then
  /// the one with the fewest ids), copies its subspace/ids into the
  /// non-null out-params, touches the LRU stamp, and returns true.
  /// Never computes and never waits. Same epoch contract as PeekExact:
  /// stale entries are only eligible when `epoch_delta` is non-null.
  bool PeekNearestAncestor(Subspace v, Subspace* ancestor,
                           std::vector<PointId>* ids,
                           std::uint64_t* epoch_out = nullptr,
                           std::uint64_t* epoch_delta = nullptr)
      SKYLINE_EXCLUDES(cache_mu_);

  /// The current dataset version (immutable snapshot); safe to hold
  /// across updates. Point ids of any epoch resolve against any later
  /// version's rows (rows are append-only).
  DatasetVersionPtr current_version() const SKYLINE_EXCLUDES(cache_mu_);

  /// The current epoch (0 until the first non-empty ApplyUpdate).
  std::uint64_t epoch() const SKYLINE_EXCLUDES(cache_mu_);

  /// The construction-time dataset (epoch 0). Later epochs are reached
  /// through current_version().
  const Dataset& data() const { return data_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  /// One cached cuboid. Publication protocol: `ids_` is written exactly
  /// once, under `mu`, before `ready` is set with release order
  /// (Publish). Readers that observed `ready` with acquire order may
  /// therefore read `ids_` lock-free (published_ids) — the entry is
  /// immutable from publication on. Repairs publish a replacement Entry
  /// instead of mutating this one; `epoch` is fixed at claim time.
  struct Entry {
    Entry(bool pinned_entry, std::uint64_t entry_epoch)
        : pinned(pinned_entry), epoch(entry_epoch) {}

    /// Stores the result, marks the entry ready, and wakes coalesced
    /// waiters. Called exactly once per entry, by the computing thread.
    void Publish(std::vector<PointId> new_ids) SKYLINE_EXCLUDES(mu);

    /// The published id list, read lock-free. Sound without holding
    /// `mu` because the caller observed `ready` (acquire) and `ids_` is
    /// never written again after the releasing store in Publish.
    const std::vector<PointId>& published_ids() const
        SKYLINE_NO_THREAD_SAFETY_ANALYSIS;

    Mutex mu;
    CondVar cv;
    std::atomic<bool> ready{false};
    std::atomic<std::uint64_t> last_used{0};
    const bool pinned;
    /// Epoch of the dataset version the ids are (being) computed for.
    const std::uint64_t epoch;

   private:
    std::vector<PointId> ids_ SKYLINE_GUARDED_BY(mu);
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Waits until `entry` is published and returns a copy of its ids.
  std::vector<PointId> AwaitAndCopy(const EntryPtr& entry);

  /// Smallest ready cached cuboid whose subspace is a superset of `v`
  /// (by id count, then by dimension count), restricted to the current
  /// epoch — a stale answer is never a sound seed.
  EntryPtr FindBestAncestor(Subspace v, Subspace* ancestor_subspace) const
      SKYLINE_REQUIRES_SHARED(cache_mu_);

  /// Computes sky(v) over the live rows of `version` from scratch with
  /// the subset-boosted engine; adds the dominance tests spent to
  /// `tests`.
  std::vector<PointId> ComputeCold(const DatasetVersion& version, Subspace v,
                                   std::uint64_t* tests) const;

  /// Computes the core of sky(v) over the ancestor `candidates`: the
  /// skycube BNL below `seeded_boost_threshold` candidates, the
  /// subset-boosted engine on the projected candidate rows at or above
  /// it. Tie repair is the caller's job.
  std::vector<PointId> ComputeSeededCore(const DatasetVersion& version,
                                         Subspace v,
                                         const std::vector<PointId>& candidates,
                                         std::uint64_t* tests) const;

  /// Attempts the cheap epoch repair of a cached answer `ids` for
  /// cuboid `v` against an update that appended the id range
  /// [first_inserted, next->data.num_points()) and tombstoned
  /// `removes`. On success returns true and leaves the repaired answer
  /// in `*ids` (ascending); on failure (a removed id was a member)
  /// returns false with `*ids` unspecified. Dominance tests are added
  /// to `*tests`.
  static bool TryRepair(const DatasetVersion& next, Subspace v,
                        PointId first_inserted,
                        std::span<const PointId> removes,
                        std::vector<PointId>* ids, std::uint64_t* tests);

  /// Builds an Entry that is already published, for repair
  /// replacements and eager pinned recomputes.
  static EntryPtr MakeReadyEntry(bool pinned, std::uint64_t entry_epoch,
                                 std::uint64_t last_used,
                                 std::vector<PointId> ids);

  /// Publishes `ids` into `entry`, accounts the size, and evicts LRU
  /// entries until the configured bounds hold again. If an update
  /// detached `entry` from the cache while it was computing, the
  /// publication only feeds its waiters and the cache is untouched.
  void PublishAndEvict(const EntryPtr& entry, std::uint64_t key,
                       std::vector<PointId> ids) SKYLINE_EXCLUDES(cache_mu_);

  /// True while the cache exceeds its entry or id budget.
  bool OverBudget() const SKYLINE_REQUIRES_SHARED(cache_mu_);

  const Dataset& data_;
  const QueryServiceOptions options_;

  mutable SharedMutex cache_mu_;
  /// Key: subspace bits.
  std::unordered_map<std::uint64_t, EntryPtr> cache_
      SKYLINE_GUARDED_BY(cache_mu_);
  /// The current dataset snapshot; replaced wholesale by ApplyUpdate.
  DatasetVersionPtr version_ SKYLINE_GUARDED_BY(cache_mu_);
  /// Ids over ready unpinned entries (stale ones included until they
  /// are replaced or evicted).
  std::size_t cached_ids_ SKYLINE_GUARDED_BY(cache_mu_) = 0;
  /// Ready pinned entries.
  std::size_t pinned_entries_ SKYLINE_GUARDED_BY(cache_mu_) = 0;
  std::size_t pinned_ids_ SKYLINE_GUARDED_BY(cache_mu_) = 0;

  std::atomic<std::uint64_t> clock_{0};  ///< LRU stamp source.

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> seeded_{0};
  std::atomic<std::uint64_t> cold_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> seeded_tests_{0};
  std::atomic<std::uint64_t> cold_tests_{0};
  std::atomic<std::uint64_t> updates_{0};
  std::atomic<std::uint64_t> insert_points_{0};
  std::atomic<std::uint64_t> remove_points_{0};
  std::atomic<std::uint64_t> repaired_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::uint64_t> aborted_inflight_{0};
  std::atomic<std::uint64_t> pinned_recomputes_{0};
  std::atomic<std::uint64_t> update_tests_{0};
  LatencyHistogram latency_;  // unguarded: internally lock-free atomics
  LatencyHistogram update_latency_;  // unguarded: internally lock-free atomics
};

}  // namespace skyline

#endif  // SKYLINE_QUERY_QUERY_SERVICE_H_
