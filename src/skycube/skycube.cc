#include "src/core/contracts.h"
#include "src/skycube/skycube.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/core/aligned_dataset.h"
#include "src/core/cpu.h"
#include "src/core/kernels.h"

namespace skyline {

namespace {

/// Per-thread scratch block of SubspaceSkylineOverCandidates; function-
/// scoped so WarmSubspaceScratch can pre-size it for a whole session of
/// seeded queries.
AlignedDataset& SubspaceScratchBlock() {
  thread_local AlignedDataset block;
  return block;
}

}  // namespace

void WarmSubspaceScratch(std::size_t rows, Dim dims) {
  SubspaceScratchBlock().Reserve(rows, dims);
}

bool DominatesInSubspace(const Value* a, const Value* b, Subspace subspace) {
  bool strict = false;
  bool dominated = true;
  subspace.ForEachDim([&](Dim i) {
    if (a[i] > b[i]) dominated = false;
    if (a[i] < b[i]) strict = true;
  });
  return dominated && strict;
}

bool EqualInSubspace(const Value* a, const Value* b, Subspace subspace) {
  bool equal = true;
  subspace.ForEachDim([&](Dim i) {
    if (a[i] != b[i]) equal = false;
  });
  return equal;
}

std::vector<PointId> SubspaceSkylineOverCandidates(
    const Dataset& data, Subspace subspace,
    const std::vector<PointId>& candidates, std::uint64_t* tests) {
  if (candidates.empty() || subspace.empty()) {
    // Degenerate inputs keep the historical scalar behavior (an empty
    // subspace never dominates, so every candidate survives).
    std::vector<PointId> window;
    std::uint64_t local_tests = 0;
    for (PointId p : candidates) {
      local_tests += window.size();
      window.push_back(p);
    }
    if (tests != nullptr) *tests += local_tests;
    return window;
  }

  // Gather the candidate rows projected onto the subspace into an
  // aligned block once, then run the BNL window through the dispatched
  // batched kernels — dominance restricted to the subspace is exactly
  // full-space dominance on the projected rows. Thread-local scratch:
  // the seeded query path calls this once per query, and a warmed
  // thread reuses the block's capacity instead of reallocating
  // (AlignedDataset::Assign + WarmSubspaceScratch).
  AlignedDataset& block = SubspaceScratchBlock();
  thread_local std::vector<PointId> window;
  block.AssignProjected(data, subspace, candidates);
  const Dim d = block.num_dims();
  window.clear();
  std::uint64_t local_tests = 0;
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const Value* q = block.row_unchecked(ci);
    // Lazy prefilter plane: built the first time the window is big
    // enough for the kernels to consult it (a flag test afterwards),
    // so small-window subspaces skip the build entirely.
    if (window.size() >= cpu::kPrefilterMinBlock) block.EnsureQuantized();
    // One charged test per window entry up to and including the first
    // dominator — identical to the scalar window scan.
    const kernels::BatchProbeResult probe =
        kernels::DominatesAny(block, window, q, d);
    local_tests += probe.scanned;
    std::size_t keep = 0;
    if (probe.first != kernels::kNoDominator) {
      // Dominated: replay the (uncharged) reverse evictions the scalar
      // scan applied to the entries it inspected before the dominator;
      // everything from the dominator onward stays.
      for (std::size_t i = 0; i < probe.first; ++i) {
        const PointId w = window[i];
        if (!kernels::Dominates(q, block.row_unchecked(w), d)) {
          window[keep++] = w;
        }
      }
      for (std::size_t i = probe.first; i < window.size(); ++i) {
        window[keep++] = window[i];
      }
      window.resize(keep);
      continue;
    }
    // Survivor: evict every window entry the candidate dominates
    // (uncharged, like the scalar scan), then append it.
    for (std::size_t i = 0; i < window.size(); ++i) {
      const PointId w = window[i];
      if (!kernels::Dominates(q, block.row_unchecked(w), d)) {
        window[keep++] = w;
      }
    }
    window.resize(keep);
    window.push_back(static_cast<PointId>(ci));
  }
  if (tests != nullptr) *tests += local_tests;
  std::vector<PointId> out;
  out.reserve(window.size());
  for (PointId ci : window) out.push_back(candidates[ci]);
  return out;
}

namespace {

/// Hash of the projection of a row onto a subspace (raw value bits).
struct ProjectionHasher {
  const Dataset* data;
  Subspace subspace;

  std::size_t Hash(PointId p) const {
    const Value* row = data->row(p);
    std::size_t h = 0xcbf29ce484222325ull;
    subspace.ForEachDim([&](Dim i) {
      std::uint64_t bits;
      std::memcpy(&bits, &row[i], sizeof(bits));
      h ^= bits;
      h *= 0x100000001b3ull;
    });
    return h;
  }
};

}  // namespace

namespace {

/// Shared body of the two tie-repair overloads; `live` may be null
/// (every row eligible) or must have one flag per dataset row.
std::vector<PointId> CloseUnderProjectionTiesImpl(
    const Dataset& data, Subspace subspace, const std::vector<PointId>& core,
    const std::vector<char>* live) {
  ProjectionHasher hasher{&data, subspace};
  std::unordered_multimap<std::size_t, PointId> core_by_hash;
  core_by_hash.reserve(core.size() * 2);
  for (PointId p : core) core_by_hash.emplace(hasher.Hash(p), p);
  std::vector<PointId> out;
  for (PointId p = 0; p < data.num_points(); ++p) {
    if (live != nullptr && (*live)[p] == 0) continue;
    const auto [begin, end] = core_by_hash.equal_range(hasher.Hash(p));
    for (auto it = begin; it != end; ++it) {
      if (EqualInSubspace(data.row(p), data.row(it->second), subspace)) {
        out.push_back(p);
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<PointId> CloseUnderProjectionTies(
    const Dataset& data, Subspace subspace,
    const std::vector<PointId>& core) {
  return CloseUnderProjectionTiesImpl(data, subspace, core, nullptr);
}

std::vector<PointId> CloseUnderProjectionTies(
    const Dataset& data, Subspace subspace, const std::vector<PointId>& core,
    const std::vector<char>& live) {
  SKYLINE_ASSERT(live.size() == data.num_points(),
                 "CloseUnderProjectionTies: live mask size != num_points");
  return CloseUnderProjectionTiesImpl(data, subspace, core, &live);
}

Dataset ProjectDataset(const Dataset& data, Subspace subspace) {
  SKYLINE_ASSERT(!subspace.empty(), "ProjectDataset: empty subspace");
  SKYLINE_ASSERT(subspace.IsSubsetOf(Subspace::Full(data.num_dims())),
                 "ProjectDataset: subspace outside the dataset's space");
  const Dim pd = subspace.size();
  std::vector<Value> values;
  values.reserve(data.num_points() * pd);
  for (PointId p = 0; p < data.num_points(); ++p) {
    const Value* row = data.row(p);
    subspace.ForEachDim([&](Dim i) { values.push_back(row[i]); });
  }
  return Dataset(pd, std::move(values));
}

std::vector<PointId> SubspaceSkyline(const Dataset& data, Subspace subspace,
                                     std::uint64_t* tests) {
  SKYLINE_ASSERT(!subspace.empty(), "SubspaceSkyline: empty subspace");
  std::vector<PointId> all(data.num_points());
  for (PointId i = 0; i < data.num_points(); ++i) all[i] = i;
  std::vector<PointId> result =
      SubspaceSkylineOverCandidates(data, subspace, all, tests);
  std::sort(result.begin(), result.end());
  return result;
}

Skycube Skycube::Compute(const Dataset& data, SkycubeStrategy strategy,
                         std::uint64_t* tests) {
  const Dim d = data.num_dims();
  SKYLINE_ASSERT(d >= 1 && d <= 20, "the skycube stores 2^d - 1 cuboids");
  Skycube cube;
  cube.num_dims_ = d;
  const std::size_t num_masks = std::size_t{1} << d;
  cube.cuboids_.resize(num_masks);

  if (strategy == SkycubeStrategy::kNaive) {
    for (std::uint64_t bits = 1; bits < num_masks; ++bits) {
      cube.cuboids_[bits] = SubspaceSkyline(data, Subspace(bits), tests);
    }
    return cube;
  }

  // Top-down: full space first, then decreasing subspace size; each
  // cuboid V seeds from the parent U = V + lowest missing dimension.
  std::vector<std::uint64_t> order;
  order.reserve(num_masks - 1);
  for (std::uint64_t bits = 1; bits < num_masks; ++bits) order.push_back(bits);
  std::sort(order.begin(), order.end(), [](std::uint64_t a, std::uint64_t b) {
    const int la = std::popcount(a), lb = std::popcount(b);
    if (la != lb) return la > lb;
    return a < b;
  });

  for (std::uint64_t bits : order) {
    const Subspace subspace(bits);
    if (subspace == Subspace::Full(d)) {
      cube.cuboids_[bits] = SubspaceSkyline(data, subspace, tests);
      continue;
    }
    const Dim missing = subspace.Complement(d).Lowest();
    Subspace parent = subspace;
    parent.Add(missing);
    const std::vector<PointId>& candidates = cube.cuboids_[parent.bits()];

    // Skyline of the candidates under V, closed under V-projection
    // equality over the whole dataset: a point that ties on V with a
    // core member is equally non-dominated.
    const std::vector<PointId> core =
        SubspaceSkylineOverCandidates(data, subspace, candidates, tests);
    cube.cuboids_[bits] = CloseUnderProjectionTies(data, subspace, core);
  }
  return cube;
}

const std::vector<PointId>& Skycube::skyline(Subspace subspace) const {
  SKYLINE_ASSERT(!subspace.empty(), "skyline: empty subspace");
  SKYLINE_ASSERT(subspace.bits() < cuboids_.size(),
                 "skyline: subspace outside the cube's dimensionality");
  return cuboids_[subspace.bits()];
}

std::size_t Skycube::total_size() const {
  std::size_t total = 0;
  for (const auto& cuboid : cuboids_) total += cuboid.size();
  return total;
}

}  // namespace skyline
