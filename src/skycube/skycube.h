// Subspace skylines and the skycube (Pei et al. / Yuan et al., VLDB 2005;
// discussed in the paper's related work). The skycube materializes the
// skyline of every non-empty subspace of the d dimensions — the
// structure subspace-skyline queries ("best hotels by price and rating
// only") are answered from.
//
// Two computation strategies are provided: independent per-cuboid
// evaluation, and a top-down sharing scheme that seeds each cuboid with
// its parent cuboid's skyline. Sharing is exact — including with
// duplicate projections, which the classic subset relationship
// sky(V) ⊆ sky(U) does not survive: a point can be in sky(V) while
// absent from every parent skyline if it ties on V with a parent-skyline
// member. The implementation repairs exactly that case by closing the
// candidate skyline under V-projection equality.
#ifndef SKYLINE_SKYCUBE_SKYCUBE_H_
#define SKYLINE_SKYCUBE_SKYCUBE_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/subspace.h"

namespace skyline {

/// Dominance restricted to a subspace: a <_V b iff a[i] <= b[i] for all
/// i in V with at least one strict dimension in V.
bool DominatesInSubspace(const Value* a, const Value* b, Subspace subspace);

/// Equality restricted to a subspace.
bool EqualInSubspace(const Value* a, const Value* b, Subspace subspace);

/// Skyline of `data` under dominance restricted to the non-empty
/// `subspace`. Adds the number of restricted dominance tests to `tests`
/// when non-null.
std::vector<PointId> SubspaceSkyline(const Dataset& data, Subspace subspace,
                                     std::uint64_t* tests = nullptr);

/// Skyline of the id list `candidates` under dominance restricted to
/// `subspace` (block nested loop). Returned ids keep candidate order and
/// are NOT sorted; `tests` (optional) accumulates the dominance tests
/// spent. This is the sharing primitive of the top-down skycube scheme
/// and of the query service's ancestor-seeded miss path.
std::vector<PointId> SubspaceSkylineOverCandidates(
    const Dataset& data, Subspace subspace,
    const std::vector<PointId>& candidates, std::uint64_t* tests = nullptr);

/// Pre-sizes the calling thread's SubspaceSkylineOverCandidates scratch
/// block (AlignedDataset::Reserve) for up to `rows` candidates of
/// `dims` dimensions, so a session of seeded queries at or below that
/// shape never reallocates. Idempotent and cheap when already warm.
void WarmSubspaceScratch(std::size_t rows, Dim dims);

/// The duplicate-projection tie repair of the top-down sharing scheme:
/// every point of `data` whose projection onto `subspace` equals that of
/// some member of `core`, ids ascending. With `core` being the
/// `subspace`-skyline of an ancestor cuboid's skyline, the result is
/// exactly sky(subspace) — see the header comment above and
/// docs/query_service.md for the chain argument that makes any ancestor
/// (not just a parent) a sound seed.
std::vector<PointId> CloseUnderProjectionTies(const Dataset& data,
                                              Subspace subspace,
                                              const std::vector<PointId>& core);

/// Tombstone-aware variant of the tie repair: only rows with
/// `live[id] != 0` are admitted, so a removed row can never resurrect
/// through a projection tie. `live` must have one flag per dataset row.
/// This is the query service's repair over a mutated DatasetVersion.
std::vector<PointId> CloseUnderProjectionTies(const Dataset& data,
                                              Subspace subspace,
                                              const std::vector<PointId>& core,
                                              const std::vector<char>& live);

/// Copies `data` restricted to the member dimensions of the non-empty
/// `subspace` (column order preserved, row ids unchanged) — the bridge
/// that lets the full-space subset-boosted engines answer subspace
/// skylines.
Dataset ProjectDataset(const Dataset& data, Subspace subspace);

/// How Skycube::Compute fills the cuboids.
enum class SkycubeStrategy {
  /// Every cuboid computed independently from the full dataset.
  kNaive,
  /// Top-down sharing: each cuboid's candidates are its parent cuboid's
  /// skyline, closed under projection equality. Exact, and much cheaper
  /// whenever skylines are small relative to N.
  kTopDown,
};

/// The materialized skycube: one skyline per non-empty subspace.
/// Practical for d <= 20 (2^d - 1 cuboids are stored).
class Skycube {
 public:
  /// Computes all cuboids of `data`. `tests` (optional) receives the
  /// total number of restricted dominance tests spent.
  static Skycube Compute(const Dataset& data,
                         SkycubeStrategy strategy = SkycubeStrategy::kTopDown,
                         std::uint64_t* tests = nullptr);

  /// Skyline of the given non-empty subspace, ids ascending.
  const std::vector<PointId>& skyline(Subspace subspace) const;

  Dim num_dims() const { return num_dims_; }

  /// Number of materialized cuboids: 2^d - 1.
  std::size_t num_cuboids() const { return cuboids_.size() - 1; }

  /// Total ids stored across all cuboids.
  std::size_t total_size() const;

 private:
  Dim num_dims_ = 0;
  /// Indexed by subspace bitmask; entry 0 unused.
  std::vector<std::vector<PointId>> cuboids_;
};

}  // namespace skyline

#endif  // SKYLINE_SKYCUBE_SKYCUBE_H_
