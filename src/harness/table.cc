#include "src/harness/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace skyline {

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;

  out << std::string(total, '=') << '\n' << title << '\n'
      << std::string(total, '-') << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  out << std::string(total, '=') << '\n';
}

std::string TextTable::FormatNumber(double v) {
  if (!std::isfinite(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string TextTable::FormatGain(double baseline, double boosted) {
  if (boosted <= 0 || baseline <= boosted) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "x %.2f", baseline / boosted);
  return buf;
}

}  // namespace skyline
