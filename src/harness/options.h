// Command-line options shared by all benchmark binaries.
//
// Every bench runs at a reduced scale by default so the whole suite
// completes in minutes; `--full` (or SKYLINE_FULL=1 in the environment)
// switches to the paper's scale (dimensionality up to 24, cardinality up
// to 1M, 10 timed runs), which takes hours for the AC sweeps — exactly
// as it did for the paper's authors.
#ifndef SKYLINE_HARNESS_OPTIONS_H_
#define SKYLINE_HARNESS_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skyline {

/// Parsed benchmark options.
struct BenchOptions {
  /// Paper-scale run (otherwise reduced CI scale).
  bool full = false;

  /// Extra-small scale for the standardized CI perf suite
  /// (scripts/run_bench_suite.sh --quick); ignored when `full` is set.
  bool quick = false;

  /// Timed runs per measurement; 0 = pick by scale (3 reduced, 10 full).
  int runs = 0;

  /// Seed for synthetic datasets.
  std::uint64_t seed = 42;

  /// Where to write the machine-readable JSON report
  /// (src/harness/json_report.h); empty = no JSON output.
  std::string json_path;

  /// Parses --full, --quick, --runs=N, --seed=N, --json=PATH and the
  /// SKYLINE_FULL env var. Unknown arguments are ignored (so binaries
  /// can add their own).
  static BenchOptions Parse(int argc, char** argv);

  /// Effective number of timed runs.
  int EffectiveRuns() const { return runs > 0 ? runs : (full ? 10 : 3); }

  /// Dimensionality sweep of the paper's tables (2..24-D), truncated at
  /// reduced scale.
  std::vector<unsigned> DimensionSweep() const;

  /// Cardinality sweep of the paper's tables (100K..1M), scaled down at
  /// reduced scale.
  std::vector<std::size_t> CardinalitySweep() const;

  /// Cardinality for the dimensionality sweep (paper: 200K).
  std::size_t SweepCardinality() const { return full ? 200000 : 4000; }
};

}  // namespace skyline

#endif  // SKYLINE_HARNESS_OPTIONS_H_
