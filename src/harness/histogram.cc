#include "src/harness/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace skyline {

std::vector<std::size_t> SubspaceSizeHistogram(
    const std::vector<Subspace>& masks, Dim num_dims) {
  std::vector<std::size_t> hist(num_dims + 1, 0);
  for (Subspace m : masks) ++hist[m.size()];
  return hist;
}

void PrintHistogram(std::ostream& out, const std::string& title,
                    const std::vector<std::size_t>& histogram) {
  out << title << '\n';
  std::size_t max_count = 1;
  for (std::size_t c : histogram) max_count = std::max(max_count, c);
  const double log_max = std::log10(static_cast<double>(max_count) + 1);
  for (std::size_t s = 0; s < histogram.size(); ++s) {
    if (s == 0 && histogram[s] == 0) continue;  // size 0 only if present
    const double frac =
        log_max > 0
            ? std::log10(static_cast<double>(histogram[s]) + 1) / log_max
            : 0;
    const int bar = static_cast<int>(frac * 50);
    out << "  size " << (s < 10 ? " " : "") << s << "  "
        << std::string(static_cast<std::size_t>(bar), '#') << ' '
        << histogram[s] << '\n';
  }
}

int LatencyHistogram::BucketOf(std::uint64_t nanos) {
  if (nanos < 2) return 0;
  const int b = std::bit_width(nanos) - 1;
  return std::min(b, kBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  for (int b = 0; b < kBuckets; ++b) {
    snap.counts[b] = counts_[b].load(std::memory_order_relaxed);
    snap.total += snap.counts[b];
  }
  return snap;
}

std::uint64_t LatencyHistogram::Snapshot::PercentileNanos(double p) const {
  if (total == 0) return 0;  // empty-histogram sentinel, any p
  // A non-finite p would pass std::clamp unchanged (every comparison
  // with NaN is false) and make the cast below undefined; treat it as
  // the max percentile instead.
  if (!std::isfinite(p)) p = 100.0;
  p = std::clamp(p, 0.0, 100.0);
  // rank is in [0, total]; rank 0 (p == 0) resolves to the first
  // non-empty bucket via the counts[b] > 0 guard.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank && counts[b] > 0) {
      return LatencyHistogram::BucketUpperNanos(b);
    }
  }
  return LatencyHistogram::BucketUpperNanos(kBuckets - 1);
}

namespace {

std::string FormatNanos(std::uint64_t nanos) {
  if (nanos >= 1000000000) {
    return std::to_string(nanos / 1000000000) + "s";
  }
  if (nanos >= 1000000) return std::to_string(nanos / 1000000) + "ms";
  if (nanos >= 1000) return std::to_string(nanos / 1000) + "us";
  return std::to_string(nanos) + "ns";
}

}  // namespace

void PrintLatencySummary(std::ostream& out, const std::string& title,
                         const LatencyHistogram::Snapshot& snapshot) {
  out << title << ": n=" << snapshot.total;
  if (snapshot.total > 0) {
    out << "  p50<=" << FormatNanos(snapshot.PercentileNanos(50))
        << "  p90<=" << FormatNanos(snapshot.PercentileNanos(90))
        << "  p99<=" << FormatNanos(snapshot.PercentileNanos(99))
        << "  max<=" << FormatNanos(snapshot.PercentileNanos(100));
  }
  out << '\n';
}

}  // namespace skyline
