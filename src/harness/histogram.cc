#include "src/harness/histogram.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace skyline {

std::vector<std::size_t> SubspaceSizeHistogram(
    const std::vector<Subspace>& masks, Dim num_dims) {
  std::vector<std::size_t> hist(num_dims + 1, 0);
  for (Subspace m : masks) ++hist[m.size()];
  return hist;
}

void PrintHistogram(std::ostream& out, const std::string& title,
                    const std::vector<std::size_t>& histogram) {
  out << title << '\n';
  std::size_t max_count = 1;
  for (std::size_t c : histogram) max_count = std::max(max_count, c);
  const double log_max = std::log10(static_cast<double>(max_count) + 1);
  for (std::size_t s = 0; s < histogram.size(); ++s) {
    if (s == 0 && histogram[s] == 0) continue;  // size 0 only if present
    const double frac =
        log_max > 0
            ? std::log10(static_cast<double>(histogram[s]) + 1) / log_max
            : 0;
    const int bar = static_cast<int>(frac * 50);
    out << "  size " << (s < 10 ? " " : "") << s << "  "
        << std::string(static_cast<std::size_t>(bar), '#') << ' '
        << histogram[s] << '\n';
  }
}

}  // namespace skyline
