#include "src/harness/runner.h"

#include <algorithm>
#include <chrono>

namespace skyline {

RunResult RunAlgorithm(const SkylineAlgorithm& algo, const Dataset& data,
                       int runs) {
  runs = std::max(runs, 1);
  RunResult result;
  double total_ms = 0;
  for (int r = 0; r < runs; ++r) {
    SkylineStats stats;
    const auto start = std::chrono::steady_clock::now();
    std::vector<PointId> skyline = algo.Compute(data, &stats);
    const auto end = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(end - start).count();
    if (r == runs - 1) {
      result.stats = stats;
      result.skyline = std::move(skyline);
    }
  }
  result.elapsed_ms = total_ms / runs;
  result.mean_dominance_tests =
      result.stats.MeanDominanceTests(data.num_points());
  result.skyline_size = result.stats.skyline_size;
  return result;
}

}  // namespace skyline
