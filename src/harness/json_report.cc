#include "src/harness/json_report.h"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace skyline {

namespace {

/// Escapes the characters JSON strings cannot hold verbatim. Bench and
/// algorithm names are plain ASCII identifiers, but the scenario labels
/// are caller-provided, so escape defensively.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest-round-trip double rendering (%.17g preserves every bit; the
/// DT gate needs exact values to survive the JSON round trip).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void JsonReport::Add(BenchRecord record) {
  if (record.bench.empty()) record.bench = bench_;
  records_.push_back(std::move(record));
}

void JsonReport::SetMeta(const std::string& key, const std::string& value) {
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += Escape(value);
  quoted += '"';
  SetMetaJson(key, std::move(quoted));
}

void JsonReport::SetMetaJson(const std::string& key, std::string raw_json) {
  for (auto& entry : meta_) {
    if (entry.first == key) {
      entry.second = std::move(raw_json);
      return;
    }
  }
  meta_.emplace_back(key, std::move(raw_json));
}

std::string JsonReport::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";
  out += "  \"bench\": \"" + Escape(bench_) + "\",\n";
  if (!meta_.empty()) {
    out += "  \"meta\": {\n";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      out += "    \"" + Escape(meta_[i].first) + "\": " + meta_[i].second;
      out += i + 1 < meta_.size() ? ",\n" : "\n";
    }
    out += "  },\n";
  }
  out += "  \"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out += "    {";
    out += "\"bench\": \"" + Escape(r.bench) + "\", ";
    out += "\"scenario\": \"" + Escape(r.scenario) + "\", ";
    out += "\"algorithm\": \"" + Escape(r.algorithm) + "\", ";
    out += "\"n\": " + std::to_string(r.n) + ", ";
    out += "\"d\": " + std::to_string(r.d) + ", ";
    out += "\"seed\": " + std::to_string(r.seed) + ", ";
    out += "\"runs\": " + std::to_string(r.runs) + ", ";
    out += "\"dt_per_point\": " + Num(r.dt_per_point) + ", ";
    out += "\"rt_ms\": " + Num(r.rt_ms) + ", ";
    out += "\"skyline_size\": " + std::to_string(r.skyline_size);
    out += i + 1 < records_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool JsonReport::WriteFile(const std::string& path,
                           std::ostream* diag) const {
  std::ofstream f(path);
  if (!f) {
    if (diag != nullptr) {
      *diag << "JsonReport: cannot open " << path << " for writing\n";
    }
    return false;
  }
  f << ToJson();
  f.close();
  if (!f) {
    if (diag != nullptr) {
      *diag << "JsonReport: write to " << path << " failed\n";
    }
    return false;
  }
  if (diag != nullptr) {
    *diag << "  [json] wrote " << records_.size() << " records to " << path
          << "\n";
  }
  return true;
}

}  // namespace skyline
