// Machine-readable benchmark reporting: every bench binary can append
// its measurements to a JsonReport and write them with `--json <path>`,
// making the perf trajectory diffable PR-over-PR and gateable in CI
// (scripts/check_perf.py compares against bench/baselines/*.json).
//
// Schema (version 1), one object per file:
//
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "meta": { "<key>": <string or raw JSON>, ... },   // optional
//     "records": [
//       {
//         "bench": "<binary name>",
//         "scenario": "<dataset label, e.g. UI-d8-n4000-s42>",
//         "algorithm": "<algorithm or kernel name>",
//         "n": <cardinality>, "d": <dimensionality>,
//         "seed": <dataset seed>, "runs": <timed runs>,
//         "dt_per_point": <mean dominance tests per point — deterministic,
//                          the CI hard gate>,
//         "rt_ms": <mean wall time per run in ms — advisory, noisy>,
//         "skyline_size": <result size, 0 for micro-kernels>
//       }, ...
//     ]
//   }
//
// (bench, scenario, algorithm) identifies a record; scripts/check_perf.py
// joins current and baseline files on that key.
#ifndef SKYLINE_HARNESS_JSON_REPORT_H_
#define SKYLINE_HARNESS_JSON_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace skyline {

/// One measurement row of the JSON schema above.
struct BenchRecord {
  std::string bench;
  std::string scenario;
  std::string algorithm;
  std::size_t n = 0;
  unsigned d = 0;
  std::uint64_t seed = 0;
  int runs = 0;
  double dt_per_point = 0;
  double rt_ms = 0;
  std::size_t skyline_size = 0;
};

/// Collects BenchRecords and serializes them as schema-version-1 JSON.
class JsonReport {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Appends a record; an empty `record.bench` inherits the report name.
  void Add(BenchRecord record);

  /// Sets a string-valued entry of the top-level "meta" object —
  /// machine-environment context (e.g. the resolved ISA dispatch line)
  /// that describes the run without being a gateable record.
  /// scripts/check_perf.py ignores unknown top-level keys by design.
  void SetMeta(const std::string& key, const std::string& value);

  /// Sets a meta entry whose value is pre-rendered JSON (an array or
  /// object the caller built), emitted verbatim. The caller guarantees
  /// well-formedness.
  void SetMetaJson(const std::string& key, std::string raw_json);

  const std::vector<BenchRecord>& records() const { return records_; }
  const std::string& bench() const { return bench_; }

  /// Serializes the report (pretty-printed, stable field order).
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Diagnostics (open/write failures and
  /// the success note) go to `diag` when non-null; callers that want
  /// them on the console pass `&std::cerr`. Returns false on I/O
  /// failure.
  bool WriteFile(const std::string& path,
                 std::ostream* diag = nullptr) const;

 private:
  std::string bench_;
  std::vector<BenchRecord> records_;
  /// Insertion-ordered (key, raw-JSON-value) meta entries.
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace skyline

#endif  // SKYLINE_HARNESS_JSON_REPORT_H_
