#include "src/harness/options.h"

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace skyline {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opts;
  // Parse() runs once from main() before any thread exists, so the
  // mt-unsafe getenv cannot race a setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("SKYLINE_FULL");
  if (env != nullptr && std::strcmp(env, "0") != 0 && *env != '\0') {
    opts.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      opts.full = true;
    } else if (arg == "--reduced") {
      opts.full = false;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg.rfind("--runs=", 0) == 0) {
      opts.runs = std::atoi(arg.data() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      opts.json_path = std::string(arg.substr(7));
    }
  }
  return opts;
}

std::vector<unsigned> BenchOptions::DimensionSweep() const {
  if (full) return {2, 4, 6, 8, 10, 12, 16, 20, 24};
  return {2, 4, 6, 8, 10, 12};
}

std::vector<std::size_t> BenchOptions::CardinalitySweep() const {
  if (full) {
    return {100000, 200000, 300000, 400000, 500000,
            600000, 700000, 800000, 900000, 1000000};
  }
  return {2000, 4000, 6000, 8000, 10000};
}

}  // namespace skyline
