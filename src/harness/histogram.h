// Histograms of the harness layer.
//
// SubspaceSizeHistogram — the quantity plotted in Figures 2 and 6 of
// the paper: how many (non-pruned) points carry a maximum dominating
// subspace of each size 1..d.
//
// LatencyHistogram — a lock-free log2-bucketed latency recorder for the
// concurrent serving layer (src/query): Record() is a single relaxed
// atomic increment, so it is safe and cheap to call from any number of
// query threads; snapshots are taken without stopping recorders.
#ifndef SKYLINE_HARNESS_HISTOGRAM_H_
#define SKYLINE_HARNESS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/subspace.h"

namespace skyline {

/// Counts masks per subspace size. Element [s] of the result is the
/// number of masks of size s, for s in 0..d.
std::vector<std::size_t> SubspaceSizeHistogram(
    const std::vector<Subspace>& masks, Dim num_dims);

/// Renders a histogram as an aligned two-column listing with a log-scaled
/// ASCII bar, as a stand-in for the paper's bar charts.
void PrintHistogram(std::ostream& out, const std::string& title,
                    const std::vector<std::size_t>& histogram);

/// Thread-safe latency histogram with power-of-two nanosecond buckets.
///
/// Bucket b counts samples with floor(log2(ns)) == b (bucket 0 holds
/// 0 ns and 1 ns); the top bucket absorbs everything beyond ~9 minutes.
/// Percentiles are reported as the upper bound of the bucket holding the
/// requested rank, so they over- rather than under-estimate.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  /// An immutable copy of the counters, for reporting.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;

    /// Upper bucket bound (in nanoseconds) of the p-th percentile.
    /// Pinned behavior (boundary tests assert all of it):
    ///   * empty histogram — returns the sentinel 0 for every p;
    ///   * p is clamped to [0, 100]; a non-finite p (NaN, ±inf) is
    ///     treated as 100 (never undefined behavior);
    ///   * p == 0 — upper bound of the smallest non-empty bucket (the
    ///     rank-1 sample's bucket);
    ///   * p == 100 — upper bound of the largest non-empty bucket;
    ///   * the returned value is always BucketUpperNanos(b) of some
    ///     bucket b in [0, kBuckets) — never an out-of-range index.
    std::uint64_t PercentileNanos(double p) const;
  };

  /// Records one sample. Safe to call concurrently with other Record
  /// and Snap calls.
  void Record(std::uint64_t nanos) {
    counts_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot Snap() const;

  /// Bucket index of a sample; exposed for tests.
  static int BucketOf(std::uint64_t nanos);

  /// Largest value bucket `b` can hold: 2^(b+1) - 1 ns (bucket 0 holds
  /// 0-1 ns; the top bucket reports its nominal bound even though it
  /// absorbs everything larger). Percentiles are reported in these
  /// units, so tests and callers can name exact expected values.
  static constexpr std::uint64_t BucketUpperNanos(int b) {
    return (std::uint64_t{2} << b) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

/// Renders a latency snapshot as a p50/p90/p99/max line (values scaled
/// to the most readable unit).
void PrintLatencySummary(std::ostream& out, const std::string& title,
                         const LatencyHistogram::Snapshot& snapshot);

}  // namespace skyline

#endif  // SKYLINE_HARNESS_HISTOGRAM_H_
