// Subspace-size histograms — the quantity plotted in Figures 2 and 6 of
// the paper: how many (non-pruned) points carry a maximum dominating
// subspace of each size 1..d.
#ifndef SKYLINE_HARNESS_HISTOGRAM_H_
#define SKYLINE_HARNESS_HISTOGRAM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/subspace.h"

namespace skyline {

/// Counts masks per subspace size. Element [s] of the result is the
/// number of masks of size s, for s in 0..d.
std::vector<std::size_t> SubspaceSizeHistogram(
    const std::vector<Subspace>& masks, Dim num_dims);

/// Renders a histogram as an aligned two-column listing with a log-scaled
/// ASCII bar, as a stand-in for the paper's bar charts.
void PrintHistogram(std::ostream& out, const std::string& title,
                    const std::vector<std::size_t>& histogram);

}  // namespace skyline

#endif  // SKYLINE_HARNESS_HISTOGRAM_H_
