// Paper-style text tables for the benchmark binaries: fixed-width
// columns, a title line, and number formatting close to the paper's
// (up to 6 significant digits).
#ifndef SKYLINE_HARNESS_TABLE_H_
#define SKYLINE_HARNESS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace skyline {

/// A simple column-aligned table accumulated row by row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a title banner.
  void Print(std::ostream& out, const std::string& title) const;

  /// Formats like the paper's tables: up to 6 significant digits, no
  /// trailing zeros, plain decimal (no exponent) for the ranges involved.
  static std::string FormatNumber(double v);

  /// Formats a paper-style performance gain: "x 4.84", or "-" when there
  /// is no gain (ratio <= 1), mirroring the tables' convention.
  static std::string FormatGain(double baseline, double boosted);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skyline

#endif  // SKYLINE_HARNESS_TABLE_H_
