// Experiment runner: executes a skyline algorithm several times on a
// dataset and reports the paper's two evaluation metrics — mean dominance
// test number (total tests / N) and elapsed time in milliseconds
// (mean over the runs; data is in memory before the clock starts,
// matching Section 6's protocol).
#ifndef SKYLINE_HARNESS_RUNNER_H_
#define SKYLINE_HARNESS_RUNNER_H_

#include <vector>

#include "src/algo/algorithm.h"
#include "src/core/stats.h"

namespace skyline {

/// Result of repeated measured runs of one algorithm on one dataset.
struct RunResult {
  /// Mean dominance tests per point (identical across runs — the
  /// algorithms are deterministic).
  double mean_dominance_tests = 0;

  /// Mean elapsed wall time per run, in milliseconds.
  double elapsed_ms = 0;

  /// Skyline size of the (deterministic) result.
  std::size_t skyline_size = 0;

  /// Full instrumentation of the last run.
  SkylineStats stats;

  /// The computed skyline ids of the last run.
  std::vector<PointId> skyline;
};

/// Runs `algo` on `data` `runs` times (>= 1) and aggregates the metrics.
RunResult RunAlgorithm(const SkylineAlgorithm& algo, const Dataset& data,
                       int runs);

}  // namespace skyline

#endif  // SKYLINE_HARNESS_RUNNER_H_
