// Skyline explorer: a small CLI to generate a synthetic dataset, run any
// registered algorithm on it, and compare against others.
//
//   $ ./build/examples/skyline_explorer --type=UI --n=20000 --d=8
//         --algo=sdi-subset --compare
//
// Flags:
//   --type=AC|CO|UI     data family                (default UI)
//   --n=N               cardinality                (default 20000)
//   --d=D               dimensionality             (default 8)
//   --seed=S            generator seed             (default 42)
//   --algo=NAME         algorithm to run           (default sdi-subset)
//   --sigma=K           stability threshold        (default auto d/3)
//   --auto-sigma        pick sigma with the sample-based cost model
//   --compare           also run every other algorithm and tabulate
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"
#include "src/subset/sigma_estimator.h"

int main(int argc, char** argv) {
  using namespace skyline;

  DataType type = DataType::kUniformIndependent;
  std::size_t n = 20000;
  unsigned d = 8;
  std::uint64_t seed = 42;
  std::string algo_name = "sdi-subset";
  AlgorithmOptions algo_opts;
  bool compare = false;
  bool auto_sigma = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--type=", 0) == 0) {
      if (!ParseDataType(arg.substr(7), &type)) {
        std::cerr << "unknown data type: " << arg.substr(7) << "\n";
        return 1;
      }
    } else if (arg.rfind("--n=", 0) == 0) {
      n = std::strtoull(arg.data() + 4, nullptr, 10);
    } else if (arg.rfind("--d=", 0) == 0) {
      d = static_cast<unsigned>(std::atoi(arg.data() + 4));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg.rfind("--algo=", 0) == 0) {
      algo_name = std::string(arg.substr(7));
    } else if (arg.rfind("--sigma=", 0) == 0) {
      algo_opts.sigma = std::atoi(arg.data() + 8);
    } else if (arg == "--auto-sigma") {
      auto_sigma = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--help") {
      std::cout << "see the comment at the top of skyline_explorer.cpp\n";
      return 0;
    }
  }
  if (d < 1 || d > 64) {
    std::cerr << "dimensionality must be in [1, 64]\n";
    return 1;
  }

  std::cout << "generating " << ShortName(type) << " data: " << n
            << " points, " << d << "-D, seed " << seed << "\n";
  Dataset data = Generate(type, n, d, seed);

  if (auto_sigma) {
    SigmaEstimate est = EstimateSigma(data, /*sample_size=*/2000, seed);
    algo_opts.sigma = est.sigma;
    std::cout << "cost model picked sigma = " << est.sigma << " from a "
              << est.sample_size << "-point sample\n";
  }

  const std::vector<std::string> names =
      compare ? AlgorithmNames() : std::vector<std::string>{algo_name};
  TextTable table({"Algorithm", "skyline", "DT/point", "RT (ms)",
                   "pivots", "index queries"});
  for (const std::string& name : names) {
    auto algo = MakeAlgorithm(name, algo_opts);
    if (algo == nullptr) {
      std::cerr << "unknown algorithm: " << name << "\n";
      return 1;
    }
    RunResult r = RunAlgorithm(*algo, data, 1);
    table.AddRow({name, std::to_string(r.skyline_size),
                  TextTable::FormatNumber(r.mean_dominance_tests),
                  TextTable::FormatNumber(r.elapsed_ms),
                  r.stats.pivot_count > 0
                      ? std::to_string(r.stats.pivot_count)
                      : std::string("-"),
                  r.stats.index_queries > 0
                      ? std::to_string(r.stats.index_queries)
                      : std::string("-")});
    std::cerr << "  " << name << " done\n";
  }
  table.Print(std::cout, "skyline explorer results");
  return 0;
}
