// k-skyband example on the NBA surrogate: the skyline ("first team") is
// the set of players no one strictly outclasses; the 2- and 3-skybands
// add the next layers — players outclassed by fewer than k others.
// Statistics are maximized, so the surrogate (already stored under the
// minimization convention) is used as-is.
//
//   $ ./build/examples/nba_skyband
#include <iostream>

#include "src/data/real_world.h"
#include "src/extras/skyband.h"

int main() {
  using namespace skyline;

  std::cout << "building the NBA surrogate (17,264 players, 8 stats)...\n";
  Dataset nba = NbaSurrogate();

  std::size_t previous = 0;
  for (std::uint32_t k : {1u, 2u, 3u, 5u}) {
    SkybandResult band = ComputeSkyband(nba, k);
    std::cout << k << "-skyband: " << band.points.size() << " players ("
              << band.points.size() - previous << " new in this layer, "
              << static_cast<double>(band.dominance_tests) /
                     static_cast<double>(nba.num_points())
              << " dominance tests per player)\n";
    previous = band.points.size();
  }

  SkybandResult top = ComputeSkyband(nba, 2);
  std::cout << "\nsample of the 2-skyband with dominator counts:\n";
  for (std::size_t i = 0; i < top.points.size() && i < 5; ++i) {
    std::cout << "  player #" << top.points[i] << " "
              << nba.PointToString(top.points[i]) << " — outclassed by "
              << top.dominator_counts[i] << "\n";
  }
  return 0;
}
