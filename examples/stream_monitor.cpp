// Streaming example: maintain the Pareto frontier of a live feed.
//
// Scenario: a load balancer receives periodic reports from backend
// replicas — (latency ms, error rate, cost per request) — and must keep
// the set of non-dominated replicas up to date after every report, not
// recompute it from scratch. StreamingSkyline does exactly that.
//
//   $ ./build/examples/stream_monitor [num_reports]
#include <cstdlib>
#include <iostream>
#include <random>

#include "src/stream/streaming_skyline.h"

int main(int argc, char** argv) {
  using namespace skyline;
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  StreamingSkyline frontier(/*num_dims=*/3);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::normal_distribution<Value> noise(0, 0.05);

  std::size_t on_arrival = 0;
  for (std::size_t i = 0; i < reports; ++i) {
    // Synthetic replica report: a latent "health" factor correlates the
    // three metrics, plus independent noise — and the fleet slowly
    // improves over time, so old frontier entries keep getting evicted.
    const Value health = uni(rng);
    const Value drift = static_cast<Value>(i) / reports * Value{0.2};
    const Value latency = std::max<Value>(
        0, Value{0.6} * health + Value{0.4} * uni(rng) - drift + noise(rng));
    const Value errors = std::max<Value>(
        0, Value{0.5} * health + Value{0.5} * uni(rng) - drift + noise(rng));
    const Value cost = std::max<Value>(0, uni(rng) + noise(rng));
    const Value report[] = {latency, errors, cost};
    if (frontier.Insert(report)) ++on_arrival;
  }

  const auto& stats = frontier.stats();
  std::cout << "reports processed        : " << reports << "\n"
            << "entered frontier on arrival: " << on_arrival << "\n"
            << "later evicted            : " << stats.evictions << "\n"
            << "current frontier size    : " << frontier.skyline_size()
            << "\n"
            << "dominance tests total    : " << stats.dominance_tests << "\n"
            << "tests per report         : "
            << static_cast<double>(stats.dominance_tests) / reports << "\n"
            << "mean index candidates    : "
            << (stats.index_queries
                    ? static_cast<double>(stats.index_candidates) /
                          static_cast<double>(stats.index_queries)
                    : 0.0)
            << "\n";

  std::cout << "\ncurrent Pareto-optimal replicas (latency, errors, cost):\n";
  std::size_t shown = 0;
  for (PointId id : frontier.Skyline()) {
    // frontier.point(id) translates the stable external id to the row
    // behind it — ids are NOT row indexes once eviction/compaction has
    // reclaimed storage.
    const auto values = frontier.point(id);
    std::cout << "  report #" << id << "  (";
    for (std::size_t dim = 0; dim < values.size(); ++dim) {
      if (dim > 0) std::cout << ", ";
      std::cout << values[dim];
    }
    std::cout << ")\n";
    if (++shown == 8) {
      std::cout << "  ... (" << frontier.skyline_size() - shown
                << " more)\n";
      break;
    }
  }
  return 0;
}
