// Subspace-skyline example: stand up the deadline-aware SkylineServer
// over a small hotel table and answer "best hotels if you only care
// about ..." queries — the full lattice submitted asynchronously in one
// burst (the batcher coalesces it into a handful of dispatch cycles),
// then a repeat-heavy stream resolved inline from the cuboid cache via
// the retrying client helper. The stats printout at the end shows the
// serving layer doing the work: admissions, batches, fast hits and the
// queue-wait histogram.
//
//   $ ./build/examples/subspace_queries
#include <iostream>
#include <string>
#include <vector>

#include "src/server/client.h"
#include "src/server/server.h"

int main() {
  using namespace skyline;

  const std::vector<std::string> names = {
      "Aurora", "Bellevue", "Coral", "Dune",   "Esplanade",
      "Fjord",  "Grand",    "Harbor", "Iris",  "Jasmine"};
  const std::vector<std::string> attrs = {"price", "distance", "noise"};
  Dataset hotels = Dataset::FromRows({
      {55, 1.9, 4},  {95, 0.7, 7}, {60, 1.2, 5}, {120, 0.3, 8},
      {70, 1.5, 2},  {65, 1.0, 6}, {150, 0.2, 9}, {58, 2.5, 1},
      {90, 0.9, 3},  {75, 0.8, 6},
  });

  ServerOptions options;
  options.policy = OverloadPolicy::kServeStale;
  SkylineServer server(hotels, options);  // Pins the full-space seed.

  const auto print = [&](Subspace v, const ServerResponse& response) {
    std::cout << "minimize {";
    bool first = true;
    v.ForEachDim([&](Dim i) {
      std::cout << (first ? "" : ", ") << attrs[i];
      first = false;
    });
    std::cout << "}: ";
    first = true;
    for (PointId id : response.ids) {
      std::cout << (first ? "" : ", ") << names[id];
      first = false;
    }
    std::cout << "  [" << StatusCodeName(response.status) << "]\n";
  };

  // The whole lattice in one asynchronous burst: Submit never computes,
  // so all seven requests are queued before the worker pool coalesces
  // them into batches.
  std::cout << "subspace skylines of " << hotels.num_points()
            << " hotels, served by the batching skyline server\n\n";
  std::vector<ResponseHandle> handles;
  for (std::uint64_t bits = 1; bits < (1u << hotels.num_dims()); ++bits) {
    handles.push_back(server.Submit(Subspace(bits)));
  }
  for (std::uint64_t bits = 1; bits < (1u << hotels.num_dims()); ++bits) {
    print(Subspace(bits), handles[bits - 1].Wait());
  }

  // A repeat-heavy follow-up stream: every cuboid is cached now, so
  // these resolve inline as fast hits — no queue, no dispatch cycle.
  std::cout << "\nrepeat queries (inline fast hits), via the retry client:\n";
  print(Subspace(0b011), QueryWithRetry(server, Subspace(0b011)));
  print(Subspace(0b101), QueryWithRetry(server, Subspace(0b101)));
  print(Subspace(0b011), QueryWithRetry(server, Subspace(0b011)));

  const ServerStatsSnapshot stats = server.Stats();
  std::cout << "\nserver stats: " << stats.submitted << " submitted, "
            << stats.admitted << " admitted, " << stats.fast_hits
            << " inline fast hits, " << stats.batches
            << " dispatch cycles (mean batch " << stats.MeanBatchSize()
            << "), " << stats.query.seeded << " ancestor-seeded computes, "
            << stats.query.dominance_tests() << " dominance tests total\n";
  PrintLatencySummary(std::cout, "queue wait", stats.queue_wait);
  return 0;
}
