// Subspace-skyline example: materialize the skycube of a small hotel
// table once, then answer "best hotels if you only care about ..."
// queries for every attribute combination from the cube.
//
//   $ ./build/examples/subspace_queries
#include <iostream>
#include <string>
#include <vector>

#include "src/skycube/skycube.h"

int main() {
  using namespace skyline;

  const std::vector<std::string> names = {
      "Aurora", "Bellevue", "Coral", "Dune",   "Esplanade",
      "Fjord",  "Grand",    "Harbor", "Iris",  "Jasmine"};
  const std::vector<std::string> attrs = {"price", "distance", "noise"};
  Dataset hotels = Dataset::FromRows({
      {55, 1.9, 4},  {95, 0.7, 7}, {60, 1.2, 5}, {120, 0.3, 8},
      {70, 1.5, 2},  {65, 1.0, 6}, {150, 0.2, 9}, {58, 2.5, 1},
      {90, 0.9, 3},  {75, 0.8, 6},
  });

  Skycube cube = Skycube::Compute(hotels);
  std::cout << "skycube of " << hotels.num_points() << " hotels over "
            << cube.num_cuboids() << " attribute combinations ("
            << cube.total_size() << " entries total)\n\n";

  for (std::uint64_t bits = 1; bits < (1u << hotels.num_dims()); ++bits) {
    const Subspace v(bits);
    std::cout << "minimize {";
    bool first = true;
    v.ForEachDim([&](Dim i) {
      std::cout << (first ? "" : ", ") << attrs[i];
      first = false;
    });
    std::cout << "}: ";
    first = true;
    for (PointId id : cube.skyline(v)) {
      std::cout << (first ? "" : ", ") << names[id];
      first = false;
    }
    std::cout << "\n";
  }
  return 0;
}
