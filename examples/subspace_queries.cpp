// Subspace-skyline example: stand up a QueryService over a small hotel
// table and answer "best hotels if you only care about ..." queries —
// the full lattice once, then a repeat-heavy stream that the memoized
// cuboid cache absorbs. The stats printout at the end shows the cache
// doing the work: hits for repeats, ancestor-seeded computes for first
// encounters, and only the pinned full-space cuboid paid cold.
//
//   $ ./build/examples/subspace_queries
#include <iostream>
#include <string>
#include <vector>

#include "src/query/query_service.h"

int main() {
  using namespace skyline;

  const std::vector<std::string> names = {
      "Aurora", "Bellevue", "Coral", "Dune",   "Esplanade",
      "Fjord",  "Grand",    "Harbor", "Iris",  "Jasmine"};
  const std::vector<std::string> attrs = {"price", "distance", "noise"};
  Dataset hotels = Dataset::FromRows({
      {55, 1.9, 4},  {95, 0.7, 7}, {60, 1.2, 5}, {120, 0.3, 8},
      {70, 1.5, 2},  {65, 1.0, 6}, {150, 0.2, 9}, {58, 2.5, 1},
      {90, 0.9, 3},  {75, 0.8, 6},
  });

  QueryService service(hotels);  // Pins the full-space skyline as seed.

  const auto describe = [&](Subspace v) {
    std::cout << "minimize {";
    bool first = true;
    v.ForEachDim([&](Dim i) {
      std::cout << (first ? "" : ", ") << attrs[i];
      first = false;
    });
    std::cout << "}: ";
    first = true;
    for (PointId id : service.Query(v)) {
      std::cout << (first ? "" : ", ") << names[id];
      first = false;
    }
    std::cout << "\n";
  };

  std::cout << "subspace skylines of " << hotels.num_points()
            << " hotels, served from the memoized cuboid cache\n\n";
  for (std::uint64_t bits = 1; bits < (1u << hotels.num_dims()); ++bits) {
    describe(Subspace(bits));
  }

  // A repeat-heavy follow-up stream: every one of these is a cache hit.
  std::cout << "\nrepeat queries (served from cache):\n";
  describe(Subspace(0b011));  // price + distance again
  describe(Subspace(0b101));  // price + noise again
  describe(Subspace(0b011));  // and price + distance once more

  const QueryStatsSnapshot stats = service.Stats();
  std::cout << "\nservice stats: " << stats.queries << " queries, "
            << stats.hits << " hits, " << stats.seeded
            << " ancestor-seeded computes, " << stats.cold
            << " cold computes (+1 pinned full space), "
            << stats.dominance_tests() << " dominance tests total\n";
  PrintLatencySummary(std::cout, "query latency", stats.latency);
  return 0;
}
