// The hotel example from the paper's introduction (Figure 1): choose
// hotels minimizing price and distance to the beach. Also shows the
// idiom for maximization preferences (negate the column).
//
//   $ ./build/examples/hotel_search
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/core/dataset.h"

int main() {
  using namespace skyline;

  struct Hotel {
    std::string name;
    double price;        // EUR per night — minimize
    double distance_km;  // to the beach — minimize
    double rating;       // stars — MAXIMIZE
  };
  const std::vector<Hotel> hotels = {
      {"Aurora", 55, 1.9, 3.5},  {"Bellevue", 95, 0.7, 4.5},
      {"Coral", 60, 1.2, 4.0},   {"Dune", 120, 0.3, 4.2},
      {"Esplanade", 70, 1.5, 3.0}, {"Fjord", 65, 1.0, 3.8},
      {"Grand", 150, 0.2, 5.0},  {"Harbor", 58, 2.5, 4.1},
      {"Iris", 90, 0.9, 3.9},    {"Jasmine", 75, 0.8, 4.4},
      {"Koral", 60, 1.2, 4.0},   // duplicate of Coral's attributes
      {"Lagoon", 110, 0.5, 3.7},
  };

  // The library minimizes every dimension, so maximization attributes
  // are negated when building the dataset.
  Dataset data(3);
  for (const Hotel& h : hotels) {
    const Value row[] = {h.price, h.distance_km, -h.rating};
    data.Append(row);
  }

  auto algo = MakeAlgorithm("sfs");
  std::vector<PointId> sky = algo->Compute(data);

  std::cout << "Non-dominated hotels (cheap + close + well rated):\n";
  std::cout << std::fixed << std::setprecision(1);
  for (PointId id : sky) {
    const Hotel& h = hotels[id];
    std::cout << "  " << std::left << std::setw(10) << h.name << " "
              << std::right << std::setw(5) << h.price << " EUR  "
              << std::setw(4) << h.distance_km << " km  " << h.rating
              << " stars\n";
  }
  std::cout << "(" << sky.size() << " of " << hotels.size()
            << " hotels are on the skyline)\n";
  return 0;
}
