// CSV skyline: read numeric CSV rows (optional header), compute the
// skyline, and write the non-dominated rows back out as CSV.
//
//   $ ./build/examples/csv_skyline input.csv output.csv [algo]
//   $ ./build/examples/csv_skyline --demo          # self-contained demo
//
// All columns are minimized; preprocess (negate/invert) any column you
// want maximized.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/algo/registry.h"
#include "src/data/csv.h"
#include "src/data/generator.h"

int main(int argc, char** argv) {
  using namespace skyline;

  if (argc >= 2 && std::string_view(argv[1]) == "--demo") {
    // Generate a small dataset, round-trip it through CSV, and print the
    // skyline rows.
    Dataset data = Generate(DataType::kAntiCorrelated, 200, 3, 7);
    std::ostringstream csv;
    WriteCsv(data, csv);
    std::istringstream in(csv.str());
    auto parsed = ReadCsv(in);
    if (!parsed) {
      std::cerr << "internal error: demo CSV did not parse\n";
      return 1;
    }
    auto sky = MakeAlgorithm("salsa")->Compute(*parsed);
    std::cout << "demo: " << parsed->num_points() << " rows, skyline "
              << sky.size() << " rows:\n";
    for (PointId id : sky) {
      std::cout << "  " << parsed->PointToString(id) << "\n";
    }
    return 0;
  }

  if (argc < 3) {
    std::cerr << "usage: csv_skyline <input.csv> <output.csv> [algorithm]\n"
              << "       csv_skyline --demo\n";
    return 1;
  }
  const std::string input = argv[1];
  const std::string output = argv[2];
  const std::string algo_name = argc >= 4 ? argv[3] : "sdi-subset";

  std::string error;
  auto data = ReadCsvFile(input, &error);
  if (!data) {
    std::cerr << "cannot read numeric CSV from " << input << ": " << error
              << "\n";
    return 1;
  }
  auto algo = MakeAlgorithm(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm: " << algo_name << " (try: ";
    for (const auto& name : AlgorithmNames()) std::cerr << name << " ";
    std::cerr << ")\n";
    return 1;
  }

  SkylineStats stats;
  std::vector<PointId> sky = algo->Compute(*data, &stats);

  Dataset result(data->num_dims());
  for (PointId id : sky) result.Append(data->point(id));
  if (!WriteCsvFile(result, output)) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  std::cout << data->num_points() << " rows in, " << sky.size()
            << " skyline rows out (" << stats.dominance_tests
            << " dominance tests, " << algo_name << ")\n";
  return 0;
}
