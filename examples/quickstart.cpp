// Quickstart: build a small dataset, compute its skyline with the
// boosted SDI-Subset algorithm, and inspect the run statistics.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

int main() {
  using namespace skyline;

  // 1. Get data: 10,000 uniform-independent points in 6 dimensions.
  //    (Any row-major table works — see Dataset::FromRows and ReadCsv.)
  Dataset data = Generate(DataType::kUniformIndependent, 10000, 6,
                          /*seed=*/2023);

  // 2. Pick an algorithm from the registry. "sdi-subset" is the paper's
  //    flagship; every algorithm computes exactly the same skyline.
  auto algo = MakeAlgorithm("sdi-subset");

  // 3. Compute. Smaller is better in every dimension.
  SkylineStats stats;
  std::vector<PointId> sky = algo->Compute(data, &stats);

  std::cout << "skyline size        : " << sky.size() << "\n"
            << "dominance tests     : " << stats.dominance_tests << "\n"
            << "mean tests per point: "
            << stats.MeanDominanceTests(data.num_points()) << "\n"
            << "merge pivots        : " << stats.pivot_count << "\n"
            << "pruned by merge     : " << stats.merge_pruned << "\n"
            << "index queries       : " << stats.index_queries << "\n";

  // 4. First few skyline points.
  std::cout << "\nfirst skyline points:\n";
  for (std::size_t i = 0; i < sky.size() && i < 5; ++i) {
    std::cout << "  #" << sky[i] << " " << data.PointToString(sky[i]) << "\n";
  }

  // 5. Cross-check against the naive reference (don't do this on big
  //    data — it is O(N^2) by design).
  std::cout << "\nreference check: "
            << (IsSkylineOf(data, sky) ? "OK" : "MISMATCH") << "\n";
  return 0;
}
