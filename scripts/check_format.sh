#!/usr/bin/env bash
# Verifies formatting (config: .clang-format) without reformatting.
#
# By default only the files that changed relative to the merge base with
# the default branch are checked, so the check can be enforced in CI
# without ever forcing a mass-reformat of the seed tree. `--all` checks
# every tracked C++ file instead.
#
# Toolchain gating: like run_clang_tidy.sh, this SKIPS (exit 0, loud
# message) when clang-format is absent; the CI lint job provides it.
#
# Usage: scripts/check_format.sh [--all] [base_ref]
set -euo pipefail

cd "$(dirname "$0")/.."

FMT=""
for candidate in clang-format clang-format-20 clang-format-19 \
                 clang-format-18 clang-format-17 clang-format-16 \
                 clang-format-15 clang-format-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    FMT="$candidate"
    break
  fi
done
if [ -z "$FMT" ]; then
  echo "SKIP: clang-format not found on PATH; install LLVM or rely on the" \
       "CI format job." >&2
  exit 0
fi

MODE="changed"
BASE_REF=""
for arg in "$@"; do
  case "$arg" in
    --all) MODE="all" ;;
    *) BASE_REF="$arg" ;;
  esac
done

if [ "$MODE" = "all" ]; then
  mapfile -t FILES < <(git ls-files '*.cc' '*.cpp' '*.h')
else
  if [ -z "$BASE_REF" ]; then
    BASE_REF=$(git merge-base HEAD origin/main 2> /dev/null ||
               git merge-base HEAD main 2> /dev/null ||
               echo HEAD)
  fi
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE_REF" \
                         -- '*.cc' '*.cpp' '*.h')
fi

if [ ${#FILES[@]} -eq 0 ]; then
  echo "No C++ files to check."
  exit 0
fi

echo "clang-format ($FMT) checking ${#FILES[@]} files"
"$FMT" --dry-run -Werror "${FILES[@]}"
echo "Formatting clean."
