#!/usr/bin/env bash
# Custom repo lint — pure bash/grep, so it runs on any host (no LLVM
# needed) and is the one analysis gate that can never be skipped.
#
# Rules:
#   L1  include guards in src/ and fuzz/ headers must match the path:
#       src/core/subspace.h -> SKYLINE_CORE_SUBSPACE_H_
#   L2  no raw assert()/<cassert> in src/ — invariants go through
#       src/core/contracts.h (SKYLINE_ASSERT/SKYLINE_DCHECK) so they are
#       switchable, messaged, and fuzz-visible
#   L3  no `using namespace` in any header
#   L4  project-relative includes must be rooted ("src/..." / "fuzz/...")
#   L5  no <iostream> in the library's compute layers (core, subset,
#       parallel, algo, query, stream) and in src/harness — printing
#       belongs to the binaries; the harness takes std::ostream sinks
#   L6  project invariants (scripts/check_invariants.py): annotated
#       locking only, guarded fields, side-effect-free contracts,
#       kernel-layer hot-loop rules — see docs/static_analysis.md
#
# Usage: scripts/check_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

report() {
  echo "LINT[$1] $2" >&2
  fail=1
}

# L1: include guards match the file path.
while IFS= read -r header; do
  guard=$(echo "$header" | tr 'a-z/.' 'A-Z__' | sed 's/^SRC_/SKYLINE_/;s/^FUZZ_/SKYLINE_FUZZ_/')
  guard="${guard%_H}_H_"
  if ! grep -q "#ifndef $guard" "$header" ||
     ! grep -q "#define $guard" "$header"; then
    report L1 "$header: include guard must be $guard"
  fi
done < <(git ls-files 'src/*.h' 'fuzz/*.h')

# L2: contracts, not raw asserts, inside the library.
while IFS= read -r match; do
  report L2 "$match: use SKYLINE_ASSERT/SKYLINE_DCHECK from src/core/contracts.h"
done < <(grep -rn --include='*.h' --include='*.cc' -E '(^|[^A-Za-z_])assert\(|<cassert>' src/ |
         grep -v '^src/core/contracts' || true)

# L3: headers never open namespaces wholesale.
while IFS= read -r match; do
  report L3 "$match: 'using namespace' is banned in headers"
done < <(grep -rn --include='*.h' 'using namespace' src/ fuzz/ tests/ bench/ || true)

# L4: quoted includes are repo-rooted.
while IFS= read -r match; do
  report L4 "$match: quoted includes must start with src/ or fuzz/"
done < <(grep -rn --include='*.h' --include='*.cc' '#include "' src/ fuzz/ |
         grep -v '#include "src/\|#include "fuzz/' || true)

# L5: compute layers stay print-free.
while IFS= read -r match; do
  report L5 "$match: <iostream> is banned in the compute layers"
done < <(grep -rln --include='*.h' --include='*.cc' '<iostream>' \
         src/core src/subset src/parallel src/algo src/query \
         src/stream src/harness 2> /dev/null || true)

# L6: the project-invariant linter (self-tested in CI with --self-test).
if ! python3 scripts/check_invariants.py; then
  report L6 "scripts/check_invariants.py found violations (see above)"
fi

if [ "$fail" -ne 0 ]; then
  echo "Custom lint FAILED." >&2
  exit 1
fi
echo "Custom lint clean."
