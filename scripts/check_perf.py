#!/usr/bin/env python3
"""Perf gate: compare BENCH_*.json reports against checked-in baselines.

Records are joined on (bench, scenario, algorithm). Two checks per pair:

  * dt_per_point — the mean dominance-test count. Deterministic given
    the scenario seed, so it is the HARD gate: a regression beyond
    --dt-tolerance (default 30%) fails, as does a record present in the
    baseline but missing from the current report (coverage loss) or a
    record present in the current report but absent from the baseline
    (an ungated measurement — renames and additions must land with a
    regenerated baseline, and failing this prints the full
    expected-vs-found record listing).
    Improvements beyond the tolerance are reported as a reminder to
    refresh the baseline, but do not fail.
  * rt_ms — wall time. Shared CI runners are noisy, so RT is ADVISORY
    only: regressions beyond --rt-tolerance (default 75%) are printed
    as warnings and never fail the gate.

Pairs are DISCOVERED from the baseline directory: every
bench/baselines/BENCH_<name>.json must have a matching BENCH_<name>.json
in the current directory, produced by the bench suite. A baseline whose
current report is missing is a HARD FAILURE — a silently skipped
benchmark is exactly how a perf regression sneaks past the gate. (An
earlier version only compared a hardcoded pair list, so new baselines
were silently ignored; --self-test covers this case now.)

Usage:
  scripts/check_perf.py                       # discover pairs from
                                              # bench/baselines/
  scripts/check_perf.py CURRENT BASELINE      # explicit pair(s) instead
  scripts/check_perf.py --self-test           # verify the gate's own
                                              # failure detection
"""

import argparse
import glob
import json
import os
import sys

BASELINE_DIR = "bench/baselines"


def discover_pairs(baseline_dir, current_dir):
    """One (current, baseline) pair per baseline file. Never empty-skips:
    a baseline directory with no BENCH_*.json at all is an error, since
    it means the gate would pass without checking anything."""
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    return [(os.path.join(current_dir, os.path.basename(b)), b)
            for b in baselines]


def load_records(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')}")
    out = {}
    for rec in doc["records"]:
        key = (rec["bench"], rec["scenario"], rec["algorithm"])
        if key in out:
            sys.exit(f"{path}: duplicate record {key}")
        out[key] = rec
    return out


def check_pair(current_path, baseline_path, dt_tol, rt_tol):
    """Returns (hard_failures, advisories) for one current/baseline pair."""
    if not os.path.exists(baseline_path):
        print(f"[FAIL] baseline {baseline_path} missing")
        return 1, 0
    if not os.path.exists(current_path):
        print(f"[FAIL] {current_path} missing — bench suite did not produce "
              "a report for this baseline (silently skipping it would let "
              "regressions through)")
        return 1, 0

    current = load_records(current_path)
    baseline = load_records(baseline_path)
    failures = 0
    advisories = 0

    # An empty record set means the gate would "pass" while checking
    # nothing — a truncated report or an empty baseline must be loud,
    # not a silent green.
    if not baseline:
        print(f"[FAIL] {baseline_path}: baseline contains zero records — "
              "the gate has nothing to compare; delete the file or "
              "regenerate it from a real bench run")
        return 1, 0
    if not current:
        print(f"[FAIL] {current_path}: current report contains zero "
              "records — the bench produced no measurements, so every "
              "baseline record would be unchecked")
        return 1, 0

    for key, base in sorted(baseline.items()):
        label = "/".join(key)
        cur = current.get(key)
        if cur is None:
            print(f"[FAIL] {label}: record missing from {current_path} "
                  "(coverage loss)")
            failures += 1
            continue

        # Scenario identity: DT is only comparable on identical inputs.
        for field in ("n", "d", "seed", "runs"):
            if cur[field] != base[field]:
                print(f"[FAIL] {label}: {field} changed "
                      f"({base[field]} -> {cur[field]}); refresh the baseline "
                      "instead of comparing different scenarios")
                failures += 1
                break
        else:
            base_dt, cur_dt = base["dt_per_point"], cur["dt_per_point"]
            if base_dt > 0 and cur_dt > base_dt * (1 + dt_tol):
                print(f"[FAIL] {label}: dt_per_point {base_dt:.2f} -> "
                      f"{cur_dt:.2f} (+{(cur_dt / base_dt - 1) * 100:.1f}% "
                      f"> {dt_tol * 100:.0f}%)")
                failures += 1
            elif base_dt > 0 and cur_dt < base_dt * (1 - dt_tol):
                print(f"[note] {label}: dt_per_point improved {base_dt:.2f} "
                      f"-> {cur_dt:.2f}; consider refreshing the baseline")

            base_rt, cur_rt = base["rt_ms"], cur["rt_ms"]
            if base_rt > 0 and cur_rt > base_rt * (1 + rt_tol):
                print(f"[warn] {label}: rt_ms {base_rt:.3f} -> {cur_rt:.3f} "
                      f"(+{(cur_rt / base_rt - 1) * 100:.1f}%) — advisory "
                      "only (runner noise)")
                advisories += 1

            if cur["skyline_size"] != base["skyline_size"]:
                print(f"[FAIL] {label}: skyline_size changed "
                      f"{base['skyline_size']} -> {cur['skyline_size']} "
                      "(correctness, not perf)")
                failures += 1

    # Symmetric direction: a record the bench now emits that the
    # baseline does not know is a hard failure too. Before this check, a
    # renamed or newly added record was simply never compared — the
    # bench could report anything for it and the gate stayed green
    # until someone remembered to regenerate the baseline. Fail with the
    # full expected-vs-found listing so a rename (old name "missing",
    # new name "unexpected") is obvious at a glance.
    extras = sorted(set(current) - set(baseline))
    if extras:
        for key in extras:
            print(f"[FAIL] {'/'.join(key)}: record not in {baseline_path} "
                  "(ungated measurement)")
        print(f"[FAIL] {current_path}: {len(extras)} record(s) have no "
              f"baseline — regenerate {baseline_path} from a fresh bench "
              "run so they are gated.")
        print(f"  expected (baseline): "
              f"{', '.join('/'.join(k) for k in sorted(baseline))}")
        print(f"  found    (current):  "
              f"{', '.join('/'.join(k) for k in sorted(current))}")
        failures += len(extras)

    print(f"[done] {current_path} vs {baseline_path}: "
          f"{len(baseline)} baseline records, {failures} failures, "
          f"{advisories} RT advisories")
    return failures, advisories


def run_gate(pairs, dt_tol, rt_tol):
    total_failures = 0
    for current, base in pairs:
        failures, _ = check_pair(current, base, dt_tol, rt_tol)
        total_failures += failures
    if total_failures:
        print(f"PERF GATE FAILED: {total_failures} hard failure(s)")
        return 1
    print("perf gate OK")
    return 0


def self_test():
    """Verifies the gate's own failure detection against synthetic
    reports — in particular that a baseline with no current report is a
    hard failure, not a silent pass (the historical bug)."""
    import tempfile

    def write_report(path, records):
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"schema_version": 1, "records": records}, f)

    def record(bench="b", scenario="s", algorithm="a", dt=100.0, rt=5.0,
               skyline=10):
        return {"bench": bench, "scenario": scenario, "algorithm": algorithm,
                "n": 1000, "d": 4, "seed": 42, "runs": 1,
                "dt_per_point": dt, "rt_ms": rt, "skyline_size": skyline}

    problems = []

    def expect(name, got_failures, want_nonzero):
        ok = (got_failures > 0) == want_nonzero
        print(f"[self-test] {name}: {'ok' if ok else 'BROKEN'}")
        if not ok:
            problems.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baselines")
        cur_dir = os.path.join(tmp, "current")
        os.makedirs(base_dir)
        os.makedirs(cur_dir)

        # Two baselines; only one has a current report. Discovery must
        # surface both and fail the missing one.
        write_report(os.path.join(base_dir, "BENCH_one.json"), [record()])
        write_report(os.path.join(base_dir, "BENCH_two.json"),
                     [record(bench="two")])
        write_report(os.path.join(cur_dir, "BENCH_one.json"), [record()])
        pairs = discover_pairs(base_dir, cur_dir)
        expect("discovery finds every baseline", 0 if len(pairs) == 2 else 1,
               False)
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_two.json"),
                          os.path.join(base_dir, "BENCH_two.json"), 0.3, 0.75)
        expect("missing current report is a hard failure", f, True)

        # Identical reports pass.
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_one.json"),
                          os.path.join(base_dir, "BENCH_one.json"), 0.3, 0.75)
        expect("identical reports pass", f, False)

        # A record dropped from the current report fails.
        write_report(os.path.join(base_dir, "BENCH_three.json"),
                     [record(), record(scenario="s2")])
        write_report(os.path.join(cur_dir, "BENCH_three.json"), [record()])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_three.json"),
                          os.path.join(base_dir, "BENCH_three.json"),
                          0.3, 0.75)
        expect("dropped record is a hard failure", f, True)

        # A DT regression beyond tolerance fails; within tolerance passes.
        write_report(os.path.join(cur_dir, "BENCH_reg.json"),
                     [record(dt=150.0)])
        write_report(os.path.join(base_dir, "BENCH_reg.json"),
                     [record(dt=100.0)])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_reg.json"),
                          os.path.join(base_dir, "BENCH_reg.json"), 0.3, 0.75)
        expect("dt regression beyond tolerance fails", f, True)
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_reg.json"),
                          os.path.join(base_dir, "BENCH_reg.json"), 0.6, 0.75)
        expect("dt regression within tolerance passes", f, False)

        # A changed skyline size fails (correctness, not perf).
        write_report(os.path.join(cur_dir, "BENCH_sky.json"),
                     [record(skyline=11)])
        write_report(os.path.join(base_dir, "BENCH_sky.json"),
                     [record(skyline=10)])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_sky.json"),
                          os.path.join(base_dir, "BENCH_sky.json"), 0.3, 0.75)
        expect("skyline_size change fails", f, True)

        # Zero records on either side is a hard failure, not a vacuous
        # pass (the empty-intersection bug: a baseline or report with an
        # empty records array used to sail through the comparison loop).
        write_report(os.path.join(base_dir, "BENCH_emptybase.json"), [])
        write_report(os.path.join(cur_dir, "BENCH_emptybase.json"),
                     [record()])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_emptybase.json"),
                          os.path.join(base_dir, "BENCH_emptybase.json"),
                          0.3, 0.75)
        expect("empty baseline records is a hard failure", f, True)
        write_report(os.path.join(base_dir, "BENCH_emptycur.json"),
                     [record()])
        write_report(os.path.join(cur_dir, "BENCH_emptycur.json"), [])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_emptycur.json"),
                          os.path.join(base_dir, "BENCH_emptycur.json"),
                          0.3, 0.75)
        expect("empty current records is a hard failure", f, True)

        # A record added (or renamed) in the current report with no
        # baseline counterpart fails loudly instead of going ungated —
        # the historical gap this self-test pins down: only the
        # baseline->current direction was checked, so new bench records
        # were never compared at all.
        write_report(os.path.join(base_dir, "BENCH_extra.json"), [record()])
        write_report(os.path.join(cur_dir, "BENCH_extra.json"),
                     [record(), record(algorithm="kernel/renamed")])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_extra.json"),
                          os.path.join(base_dir, "BENCH_extra.json"),
                          0.3, 0.75)
        expect("record without a baseline is a hard failure", f, True)

        # RT noise alone never fails.
        write_report(os.path.join(cur_dir, "BENCH_rt.json"),
                     [record(rt=50.0)])
        write_report(os.path.join(base_dir, "BENCH_rt.json"),
                     [record(rt=5.0)])
        f, _ = check_pair(os.path.join(cur_dir, "BENCH_rt.json"),
                          os.path.join(base_dir, "BENCH_rt.json"), 0.3, 0.75)
        expect("rt regression is advisory only", f, False)

    if problems:
        print(f"SELF-TEST FAILED: {', '.join(problems)}")
        return 1
    print("self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dt-tolerance", type=float, default=0.30,
                        help="hard-gate tolerance on dt_per_point")
    parser.add_argument("--rt-tolerance", type=float, default=0.75,
                        help="advisory tolerance on rt_ms")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR,
                        help="directory scanned for BENCH_*.json baselines")
    parser.add_argument("--current-dir", default=".",
                        help="directory holding the fresh BENCH_*.json reports")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate's own failure detection and exit")
    parser.add_argument("files", nargs="*",
                        help="explicit CURRENT BASELINE pairs (overrides "
                             "discovery)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.files:
        if len(args.files) % 2 != 0:
            parser.error("files must come in CURRENT BASELINE pairs")
        pairs = list(zip(args.files[::2], args.files[1::2]))
    else:
        pairs = discover_pairs(args.baseline_dir, args.current_dir)
        if not pairs:
            print(f"[FAIL] no BENCH_*.json baselines under "
                  f"{args.baseline_dir} — the gate has nothing to check")
            return 1

    return run_gate(pairs, args.dt_tolerance, args.rt_tolerance)


if __name__ == "__main__":
    sys.exit(main())
