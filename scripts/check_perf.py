#!/usr/bin/env python3
"""Perf gate: compare BENCH_*.json reports against checked-in baselines.

Records are joined on (bench, scenario, algorithm). Two checks per pair:

  * dt_per_point — the mean dominance-test count. Deterministic given
    the scenario seed, so it is the HARD gate: a regression beyond
    --dt-tolerance (default 30%) fails, as does a record present in the
    baseline but missing from the current report (coverage loss).
    Improvements beyond the tolerance are reported as a reminder to
    refresh the baseline, but do not fail.
  * rt_ms — wall time. Shared CI runners are noisy, so RT is ADVISORY
    only: regressions beyond --rt-tolerance (default 75%) are printed
    as warnings and never fail the gate.

A missing baseline file is skipped cleanly (exit 0 with a note), so the
gate can land before its first baseline does.

Usage:
  scripts/check_perf.py                       # default pairs (repo root
                                              # vs bench/baselines/)
  scripts/check_perf.py CURRENT BASELINE      # one explicit pair
  scripts/check_perf.py --dt-tolerance 0.3 --rt-tolerance 0.75 [pairs...]
"""

import argparse
import json
import os
import sys

DEFAULT_PAIRS = [
    ("BENCH_kernels.json", "bench/baselines/BENCH_kernels.json"),
    ("BENCH_subset.json", "bench/baselines/BENCH_subset.json"),
]


def load_records(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')}")
    out = {}
    for rec in doc["records"]:
        key = (rec["bench"], rec["scenario"], rec["algorithm"])
        if key in out:
            sys.exit(f"{path}: duplicate record {key}")
        out[key] = rec
    return out


def check_pair(current_path, baseline_path, dt_tol, rt_tol):
    """Returns (hard_failures, advisories) for one current/baseline pair."""
    if not os.path.exists(baseline_path):
        print(f"[skip] no baseline at {baseline_path} — nothing to gate")
        return 0, 0
    if not os.path.exists(current_path):
        print(f"[FAIL] {current_path} missing — bench suite did not run?")
        return 1, 0

    current = load_records(current_path)
    baseline = load_records(baseline_path)
    failures = 0
    advisories = 0

    for key, base in sorted(baseline.items()):
        label = "/".join(key)
        cur = current.get(key)
        if cur is None:
            print(f"[FAIL] {label}: record missing from {current_path} "
                  "(coverage loss)")
            failures += 1
            continue

        # Scenario identity: DT is only comparable on identical inputs.
        for field in ("n", "d", "seed", "runs"):
            if cur[field] != base[field]:
                print(f"[FAIL] {label}: {field} changed "
                      f"({base[field]} -> {cur[field]}); refresh the baseline "
                      "instead of comparing different scenarios")
                failures += 1
                break
        else:
            base_dt, cur_dt = base["dt_per_point"], cur["dt_per_point"]
            if base_dt > 0 and cur_dt > base_dt * (1 + dt_tol):
                print(f"[FAIL] {label}: dt_per_point {base_dt:.2f} -> "
                      f"{cur_dt:.2f} (+{(cur_dt / base_dt - 1) * 100:.1f}% "
                      f"> {dt_tol * 100:.0f}%)")
                failures += 1
            elif base_dt > 0 and cur_dt < base_dt * (1 - dt_tol):
                print(f"[note] {label}: dt_per_point improved {base_dt:.2f} "
                      f"-> {cur_dt:.2f}; consider refreshing the baseline")

            base_rt, cur_rt = base["rt_ms"], cur["rt_ms"]
            if base_rt > 0 and cur_rt > base_rt * (1 + rt_tol):
                print(f"[warn] {label}: rt_ms {base_rt:.3f} -> {cur_rt:.3f} "
                      f"(+{(cur_rt / base_rt - 1) * 100:.1f}%) — advisory "
                      "only (runner noise)")
                advisories += 1

            if cur["skyline_size"] != base["skyline_size"]:
                print(f"[FAIL] {label}: skyline_size changed "
                      f"{base['skyline_size']} -> {cur['skyline_size']} "
                      "(correctness, not perf)")
                failures += 1

    print(f"[done] {current_path} vs {baseline_path}: "
          f"{len(baseline)} baseline records, {failures} failures, "
          f"{advisories} RT advisories")
    return failures, advisories


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dt-tolerance", type=float, default=0.30,
                        help="hard-gate tolerance on dt_per_point")
    parser.add_argument("--rt-tolerance", type=float, default=0.75,
                        help="advisory tolerance on rt_ms")
    parser.add_argument("files", nargs="*",
                        help="CURRENT BASELINE pairs; default: "
                             + ", ".join("/".join(p) for p in DEFAULT_PAIRS))
    args = parser.parse_args()

    if args.files and len(args.files) % 2 != 0:
        parser.error("files must come in CURRENT BASELINE pairs")
    pairs = (list(zip(args.files[::2], args.files[1::2]))
             if args.files else DEFAULT_PAIRS)

    total_failures = 0
    for current, base in pairs:
        failures, _ = check_pair(current, base, args.dt_tolerance,
                                 args.rt_tolerance)
        total_failures += failures

    if total_failures:
        print(f"PERF GATE FAILED: {total_failures} hard failure(s)")
        return 1
    print("perf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
