#!/usr/bin/env bash
# Standardized perf scenario set: runs the kernel microbench, the
# subset-suite bench, the streaming bench, the query-service bench and
# the server bench on the fixed scenarios (seed 42) and writes the
# machine-readable reports
#
#   BENCH_kernels.json     (bench_kernels)
#   BENCH_subset.json      (bench_subset_suite)
#   BENCH_streaming.json   (bench_streaming)
#   BENCH_query.json       (bench_query_service)
#   BENCH_server.json      (bench_server)
#
# to the output directory (default: repo root), so the perf trajectory
# is diffable PR-over-PR. CI (the perf-smoke job) runs this with
# --quick and gates the result via scripts/check_perf.py against
# bench/baselines/*.json — every baseline file there must be reproduced
# by this script, or the gate hard-fails on the missing report.
#
# Usage: scripts/run_bench_suite.sh [--quick] [--full]
#                                   [--build-dir DIR] [--out-dir DIR]
#   --quick      smallest standardized scale (the CI + baseline scale)
#   --full       paper scale (hours; never gated)
#   --build-dir  CMake binary dir holding bench/ (default: build);
#                configured + built on demand if the binaries are absent
#   --out-dir    where to write BENCH_*.json (default: repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE=""
BUILD_DIR=build
OUT_DIR=.
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) SCALE="--quick" ;;
    --full) SCALE="--full" ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --out-dir) OUT_DIR="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

BENCHES=(bench_kernels bench_subset_suite bench_streaming
         bench_query_service bench_server)

missing=0
for bench in "${BENCHES[@]}"; do
  [ -x "$BUILD_DIR/bench/$bench" ] || missing=1
done
if [ "$missing" -ne 0 ]; then
  echo "==== bench binaries missing, building ($BUILD_DIR, Release) ===="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"
fi

mkdir -p "$OUT_DIR"

echo "==== bench_kernels ${SCALE:-(reduced)} ===="
"$BUILD_DIR/bench/bench_kernels" $SCALE --json="$OUT_DIR/BENCH_kernels.json"

echo "==== bench_subset_suite ${SCALE:-(reduced)} ===="
"$BUILD_DIR/bench/bench_subset_suite" $SCALE \
  --json="$OUT_DIR/BENCH_subset.json"

echo "==== bench_streaming ${SCALE:-(reduced)} ===="
"$BUILD_DIR/bench/bench_streaming" $SCALE \
  --json="$OUT_DIR/BENCH_streaming.json"

echo "==== bench_query_service ${SCALE:-(reduced)} ===="
"$BUILD_DIR/bench/bench_query_service" $SCALE \
  --json="$OUT_DIR/BENCH_query.json"

echo "==== bench_server ${SCALE:-(reduced)} ===="
"$BUILD_DIR/bench/bench_server" $SCALE \
  --json="$OUT_DIR/BENCH_server.json"

echo "Wrote $OUT_DIR/BENCH_kernels.json, $OUT_DIR/BENCH_subset.json," \
     "$OUT_DIR/BENCH_streaming.json, $OUT_DIR/BENCH_query.json and" \
     "$OUT_DIR/BENCH_server.json"
