#!/usr/bin/env python3
"""Project-invariant linter: repo-specific static rules that the generic
tools (clang-tidy, -Wthread-safety, check_lint.sh) cannot express.

Rules, each scoped to src/:

  R1  No naked standard locking primitive (std::mutex, std::shared_mutex,
      std::lock_guard, std::unique_lock, std::shared_lock,
      std::scoped_lock, std::condition_variable, ... or their headers)
      outside src/core/sync.h. All locking goes through the annotated
      wrappers so Clang Thread Safety Analysis sees every critical
      section (docs/static_analysis.md).

  R2  In a class that holds a Mutex/SharedMutex member, every mutable
      field must either carry SKYLINE_GUARDED_BY / SKYLINE_PT_GUARDED_BY
      or be exempt: const, a reference, a std::atomic, another sync
      primitive, or explicitly waived with an `unguarded: <reason>`
      comment on its declaration. Guards the guard: a new field added to
      a locked class cannot silently skip the annotation discipline.

  R3  SKYLINE_ASSERT / SKYLINE_DCHECK conditions must be side-effect
      free (no ++/--/assignment/mutating calls): contract macros compile
      out in release builds, so a side effect inside one changes
      behavior between build modes.

  R4  Kernel hot-loop files (src/core/kernels.h, the src/core/simd_*
      backends and src/core/cpu.cc) must never use the bounds-checked
      row() accessor — kernel hot loops read rows via row_unchecked()
      (the checked form re-validates per probe and defeats
      vectorization).

  R5  Kernel-layer files (src/core/kernels.h, src/core/aligned.h, the
      src/core/simd_* backends and src/core/cpu.cc) must be free of
      std::vector reallocation calls (push_back / resize / reserve /
      ...): kernels operate on caller-owned, pre-sized storage; an
      allocation inside a kernel is a hot-loop bug.

  R6  In the mutable-dataset layers (src/query/, src/server/), every
      cache-entry read site — a call through the published_ids()
      accessor — must visibly deal with epochs: the surrounding lines
      must mention `epoch` (comparing the entry's stamp, forwarding an
      epoch_delta, ...), or the read must be waived with an
      `// epoch-ok: <reason>` comment. Serving a cached answer without
      consulting its epoch is exactly how a pre-update answer leaks
      past ApplyUpdate.

  R7  SIMD intrinsics (immintrin.h and friends, __m128/__m256/__m512
      vector types, __mmask*, _mm*_* calls) are confined to the
      src/core/simd_* backend files. Everything else goes through the
      dispatched kernels:: wrappers, so a single compile flag boundary
      (per-file -mavx2 / -mavx512*) covers every intrinsic in the tree
      and no binary built for the baseline ISA can fault on an illegal
      instruction hidden in an unrelated layer.

Usage:
  scripts/check_invariants.py              lint src/ of this repository
  scripts/check_invariants.py --root DIR   lint DIR/src (for testing)
  scripts/check_invariants.py --self-test  prove every rule fires on a
                                           planted violation and stays
                                           quiet on clean code
"""

import argparse
import os
import re
import sys
import tempfile

SYNC_HEADER = os.path.join("src", "core", "sync.h")
# Files under R4 (no bounds-checked row()). The simd_* glob keeps the
# rule attached to backends added later without editing this list.
R4_FILES = (os.path.join("src", "core", "kernels.h"),
            os.path.join("src", "core", "cpu.cc"))
R4_PREFIX = os.path.join("src", "core", "simd_")
KERNEL_FILES = (
    os.path.join("src", "core", "kernels.h"),
    os.path.join("src", "core", "aligned.h"),
    os.path.join("src", "core", "cpu.cc"),
)
# Directory prefix whose files may contain SIMD intrinsics (R7).
SIMD_BACKEND_PREFIX = os.path.join("src", "core", "simd_")

STD_SYNC_TYPES = (
    "mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    "shared_mutex|shared_timed_mutex|condition_variable|"
    "condition_variable_any|lock_guard|unique_lock|shared_lock|"
    "scoped_lock|once_flag"
)
RE_STD_SYNC = re.compile(r"\bstd::(%s)\b" % STD_SYNC_TYPES)
RE_SYNC_INCLUDE = re.compile(
    r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>")

RE_CONTRACT_MACRO = re.compile(r"\b(SKYLINE_ASSERT|SKYLINE_DCHECK)\s*\(")
RE_SIDE_EFFECT = re.compile(
    r"\+\+|--"
    r"|[^=!<>]=[^=]"  # assignment incl. compound, but not == != <= >=
    r"|[.>](push_back|pop_back|emplace_back|emplace|insert|erase|clear"
    r"|resize|reserve|assign|store|exchange|fetch_add|fetch_sub"
    r"|notify_one|notify_all)\s*\(")

RE_CHECKED_ROW = re.compile(r"[.>]row\s*\(")
RE_REALLOC_CALL = re.compile(
    r"[.>](push_back|emplace_back|emplace|resize|reserve|insert|assign)"
    r"\s*\(")

RE_GUARD_MACRO = re.compile(r"SKYLINE_(PT_)?GUARDED_BY\s*\([^)]*\)")
RE_CLASS_HEAD = re.compile(
    r"\b(class|struct)\s+(?:SKYLINE_\w+\s*(?:\([^)]*\))?\s*)*"
    r"([A-Za-z_]\w*)[^;()]*$")
RE_FIELD_DECL = re.compile(
    r"^(?:mutable\s+)?[\w:<>,\s&*]+?[\s&*]"
    r"([A-Za-z_]\w*)\s*(\{[^{}]*\})?$")
RE_WRAPPER_MUTEX = re.compile(r"\b(Mutex|SharedMutex)\s+[A-Za-z_]\w*")
RE_SYNC_MEMBER_TYPE = re.compile(r"\b(Mutex|SharedMutex|CondVar)\b")
FIELD_SKIP_KEYWORDS = re.compile(
    r"\b(using|typedef|friend|static|operator|explicit|virtual|enum"
    r"|return|template)\b|~")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "INV[%s] %s:%d: %s" % (self.rule, self.path, self.line,
                                      self.message)


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving newlines and
    column positions so findings keep exact line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ---- R1 ------------------------------------------------------------------


def check_naked_primitives(relpath, stripped):
    if relpath.replace(os.sep, "/") == SYNC_HEADER.replace(os.sep, "/"):
        return []
    findings = []
    for regex, what in ((RE_STD_SYNC, "std locking primitive"),
                        (RE_SYNC_INCLUDE, "locking header include")):
        for m in regex.finditer(stripped):
            findings.append(Finding(
                "R1", relpath, line_of(stripped, m.start()),
                "naked %s '%s' — use the annotated wrappers of "
                "src/core/sync.h" % (what, m.group(0).strip())))
    return findings


# ---- R2 ------------------------------------------------------------------


def _field_statements(stripped):
    """Yields (class_name, statement, first_line, last_line) for every
    immediate-member statement of every class/struct body. Heuristic
    brace scanner: relies on clang-format'ed input (one declaration per
    statement), not a full C++ parser."""
    scopes = []  # (is_class, class_name)
    head = []  # code since the last ; { or } — classifies the next {
    buf = []  # current statement at class-body depth
    buf_line = None
    results = []
    line = 1
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
            head.append(" ")
            if buf:
                buf.append(" ")
        elif c == "{":
            head_text = "".join(head).strip()
            m = RE_CLASS_HEAD.search(head_text)
            is_class = bool(m) and "enum" not in head_text.split()
            scopes.append((is_class, m.group(2) if is_class else ""))
            head = []
            buf = []
            buf_line = None
        elif c == "}":
            if scopes:
                scopes.pop()
            head = []
            buf = []
            buf_line = None
        elif c == ";":
            if scopes and scopes[-1][0] and buf:
                stmt = re.sub(r"\s+", " ", "".join(buf)).strip()
                stmt = re.sub(r"^(public|private|protected)\s*:\s*", "",
                              stmt)
                if stmt:
                    results.append((scopes[-1][1], stmt, buf_line or line,
                                    line))
            head = []
            buf = []
            buf_line = None
        else:
            head.append(c)
            if scopes and scopes[-1][0]:
                if buf_line is None and not c.isspace():
                    buf_line = line
                buf.append(c)
        i += 1
    return results


def check_guarded_fields(relpath, stripped, raw_lines):
    statements = _field_statements(stripped)
    lock_holders = {
        cls for cls, stmt, _, _ in statements
        if RE_WRAPPER_MUTEX.search(RE_GUARD_MACRO.sub("", stmt))
        and "std::" not in stmt.split()[0]
    }
    findings = []
    for cls, stmt, first_line, last_line in statements:
        if cls not in lock_holders:
            continue
        if FIELD_SKIP_KEYWORDS.search(stmt):
            continue
        has_guard = bool(RE_GUARD_MACRO.search(stmt))
        body = RE_GUARD_MACRO.sub("", stmt).strip()
        if "(" in body:  # function / constructor / std::function member
            continue
        body = re.sub(r"=.*$", "", body).strip()  # drop `= init`
        m = RE_FIELD_DECL.match(body)
        if m is None:
            continue
        if has_guard:
            continue
        type_part = body[:body.rfind(m.group(1))]
        if ("const " in type_part or type_part.startswith("const")
                or "&" in type_part or "std::atomic" in type_part
                or RE_SYNC_MEMBER_TYPE.search(type_part)):
            continue
        waiver = range(max(0, first_line - 2), min(len(raw_lines),
                                                   last_line + 1))
        if any("unguarded:" in raw_lines[k] for k in waiver):
            continue
        findings.append(Finding(
            "R2", relpath, first_line,
            "field '%s' of lock-holding class '%s' has no "
            "SKYLINE_GUARDED_BY (waive deliberately lock-free state "
            "with an 'unguarded: <reason>' comment)" % (m.group(1), cls)))
    return findings


# ---- R3 ------------------------------------------------------------------


def _first_macro_argument(text, open_paren):
    depth, i = 1, open_paren + 1
    start = i
    while i < len(text) and depth > 0:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    return text[start:i - 1]


def check_contract_side_effects(relpath, stripped):
    findings = []
    for m in RE_CONTRACT_MACRO.finditer(stripped):
        condition = _first_macro_argument(stripped, m.end() - 1)
        hit = RE_SIDE_EFFECT.search(condition)
        if hit:
            findings.append(Finding(
                "R3", relpath, line_of(stripped, m.start()),
                "%s condition contains a side effect ('%s') — contract "
                "macros compile out in release builds" %
                (m.group(1), hit.group(0).strip())))
    return findings


# ---- R4 / R5 -------------------------------------------------------------


def check_kernel_rules(relpath, stripped):
    findings = []
    norm = relpath.replace(os.sep, "/")
    in_r4 = (norm in (k.replace(os.sep, "/") for k in R4_FILES)
             or norm.startswith(R4_PREFIX.replace(os.sep, "/")))
    in_r5 = (norm in (k.replace(os.sep, "/") for k in KERNEL_FILES)
             or norm.startswith(SIMD_BACKEND_PREFIX.replace(os.sep, "/")))
    if in_r4:
        for m in RE_CHECKED_ROW.finditer(stripped):
            findings.append(Finding(
                "R4", relpath, line_of(stripped, m.start()),
                "bounds-checked row() in a kernel hot loop — use "
                "row_unchecked() (ids are pre-validated at the batch "
                "boundary)"))
    if in_r5:
        for m in RE_REALLOC_CALL.finditer(stripped):
            findings.append(Finding(
                "R5", relpath, line_of(stripped, m.start()),
                "container reallocation call '%s' in the kernel layer — "
                "kernels run on caller-owned, pre-sized storage" %
                m.group(0).lstrip(".>").rstrip("(").strip()))
    return findings


# ---- R7 ------------------------------------------------------------------

RE_INTRINSIC = re.compile(
    r"#\s*include\s*<[a-z0-9]*intrin\.h>"
    r"|\b_mm\d*_\w+\s*\("
    r"|\b__m(128|256|512)[di]?\b"
    r"|\b__mmask(8|16|32|64)\b")


def check_intrinsic_containment(relpath, stripped):
    norm = relpath.replace(os.sep, "/")
    if norm.startswith(SIMD_BACKEND_PREFIX.replace(os.sep, "/")):
        return []
    findings = []
    for m in RE_INTRINSIC.finditer(stripped):
        findings.append(Finding(
            "R7", relpath, line_of(stripped, m.start()),
            "SIMD intrinsic '%s' outside src/core/simd_* — only the "
            "per-file-compiled backend files may use intrinsics; call "
            "through the dispatched kernels:: wrappers instead" %
            m.group(0).strip()))
    return findings


# ---- R6 ------------------------------------------------------------------

RE_ENTRY_READ = re.compile(r"[.>]\s*published_ids\s*\(")
EPOCH_SCOPES = ("src/query/", "src/server/")
EPOCH_WINDOW = 10  # lines above the read site that must mention epochs


def check_epoch_reads(relpath, stripped, raw_lines):
    norm = relpath.replace(os.sep, "/")
    if not norm.startswith(EPOCH_SCOPES):
        return []
    findings = []
    for m in RE_ENTRY_READ.finditer(stripped):
        line = line_of(stripped, m.start())
        lo = max(0, line - 1 - EPOCH_WINDOW)
        if any("epoch" in raw for raw in raw_lines[lo:line]):
            continue  # an epoch comparison or an `epoch-ok:` waiver
        findings.append(Finding(
            "R6", relpath, line,
            "cache-entry read (published_ids) with no epoch handling in "
            "the surrounding %d lines — compare the entry's epoch stamp, "
            "or waive a deliberately epoch-blind read with an "
            "'// epoch-ok: <reason>' comment" % EPOCH_WINDOW))
    return findings


# ---- driver --------------------------------------------------------------


def lint_file(relpath, text):
    stripped = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    findings = []
    findings += check_naked_primitives(relpath, stripped)
    findings += check_guarded_fields(relpath, stripped, raw_lines)
    findings += check_contract_side_effects(relpath, stripped)
    findings += check_kernel_rules(relpath, stripped)
    findings += check_epoch_reads(relpath, stripped, raw_lines)
    findings += check_intrinsic_containment(relpath, stripped)
    return findings


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _, filenames in sorted(os.walk(src)):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            relpath = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                findings += lint_file(relpath, f.read())
    return findings


# ---- self-test -----------------------------------------------------------

SELF_TEST_CASES = [
    ("R1 planted naked std::mutex", "src/query/bad_cache.h", """
        class BadCache {
         private:
          std::mutex mu_;
          int hits_ = 0;
        };
    """, ["R1"]),
    ("R1 planted locking include", "src/stream/bad_stream.cc", """
        #include <shared_mutex>
        void Run() {}
    """, ["R1"]),
    ("R1 allowed inside sync.h", "src/core/sync.h", """
        #include <mutex>
        class Mutex { std::mutex mu_; };
    """, []),
    ("R2 unguarded field in lock-holding class", "src/query/bad_guard.h",
     """
        class Service {
         private:
          Mutex mu_;
          int value_ SKYLINE_GUARDED_BY(mu_) = 0;
          int naked_counter_ = 0;
        };
    """, ["R2"]),
    ("R2 exemptions: const/atomic/waiver", "src/query/good_guard.h", """
        class Service {
         private:
          mutable SharedMutex mu_;
          std::size_t cached_ SKYLINE_GUARDED_BY(mu_) = 0;
          const bool pinned_ = true;
          std::atomic<int> clock_{0};
          Widget stats_;  // unguarded: internally synchronized
        };
    """, []),
    ("R3 side-effecting DCHECK", "src/subset/bad_check.cc", """
        void F(int next) {
          SKYLINE_DCHECK(counter_++ < limit_, "must stay below limit");
          SKYLINE_ASSERT(cursor_ = next, "oops, assignment not compare");
        }
    """, ["R3", "R3"]),
    ("R3 clean comparisons pass", "src/subset/good_check.cc", """
        void F() {
          SKYLINE_ASSERT(a == b && c <= d, "pure comparison");
          SKYLINE_DCHECK(runs[unit].load(std::memory_order_relaxed) == 1,
                         "reads are fine");
        }
    """, []),
    ("R4 checked row() in kernels.h", "src/core/kernels.h", """
        inline int Probe(const AlignedDataset& rows, PointId id) {
          return rows.row(id)[0];
        }
    """, ["R4"]),
    ("R4 row_unchecked passes", "src/core/kernels.h", """
        inline int Probe(const AlignedDataset& rows, PointId id) {
          return rows.row_unchecked(id)[0];
        }
    """, []),
    ("R4 checked row() in a SIMD backend", "src/core/simd_avx2.cc", """
        int Probe(const AlignedDataset& rows, PointId id) {
          return rows.row(id)[0];
        }
    """, ["R4"]),
    ("R5 reallocation in the kernel layer", "src/core/aligned.h", """
        inline void Grow(std::vector<Value>& v) {
          v.push_back(0);
        }
    """, ["R5"]),
    ("R5 reallocation in a SIMD backend", "src/core/simd_avx512.cc", """
        void Grow(std::vector<Value>& v) {
          v.resize(64);
        }
    """, ["R5"]),
    ("R5 covers cpu.cc", "src/core/cpu.cc", """
        void Grow(std::vector<int>& v) {
          v.reserve(8);
        }
    """, ["R5"]),
    ("R6 epoch-blind cache read", "src/query/bad_read.cc", """
        std::vector<PointId> Serve(const EntryPtr& entry) {
          return entry->published_ids();
        }
    """, ["R6"]),
    ("R6 epoch comparison nearby passes", "src/query/good_read.cc", """
        std::vector<PointId> Serve(const EntryPtr& entry,
                                   std::uint64_t current_epoch) {
          if (entry->epoch != current_epoch) return {};
          return entry->published_ids();
        }
    """, []),
    ("R6 waiver comment passes", "src/server/waived_read.cc", """
        std::size_t Gauge(const EntryPtr& entry) {
          // epoch-ok: counting ids, not serving them.
          return entry->published_ids().size();
        }
    """, []),
    ("R6 scope excludes other layers", "src/stream/other_read.cc", """
        std::vector<PointId> Serve(const EntryPtr& entry) {
          return entry->published_ids();
        }
    """, []),
    ("R7 intrinsic call outside simd_*", "src/subset/bad_simd.cc", """
        double Sum(const double* p) {
          __m256d v = _mm256_loadu_pd(p);
          return v[0];
        }
    """, ["R7", "R7"]),
    ("R7 intrinsics header include outside simd_*", "src/core/kernels.h",
     """
        #include <immintrin.h>
        inline void Nothing() {}
    """, ["R7"]),
    ("R7 mask type leak outside simd_*", "src/query/bad_mask.h", """
        struct Probe { __mmask8 lanes; };
    """, ["R7"]),
    ("R7 intrinsics allowed inside the backends", "src/core/simd_avx2.cc",
     """
        #include <immintrin.h>
        unsigned Lanes(const double* p) {
          const __m256d v = _mm256_loadu_pd(p);
          return static_cast<unsigned>(_mm256_movemask_pd(v));
        }
    """, []),
    ("R7 dispatched wrappers stay clean", "src/core/kernels.h", """
        inline int Probe(const AlignedDataset& rows, PointId id) {
          return rows.row_unchecked(id)[0];
        }
    """, []),
]


def run_self_test():
    failures = 0
    for name, relpath, code, expected in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(code)
            got = [f.rule for f in lint_tree(tmp)]
        if sorted(got) == sorted(expected):
            print("  ok: %s" % name)
        else:
            print("  FAIL: %s — expected %s, got %s" %
                  (name, expected or "no findings", got or "no findings"))
            failures += 1
    if failures:
        print("check_invariants.py self-test FAILED "
              "(%d case(s))" % failures, file=sys.stderr)
        return 1
    print("check_invariants.py self-test passed "
          "(%d cases)." % len(SELF_TEST_CASES))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Repo-specific static invariant linter over src/")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on planted "
                        "violations, then exit")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_tree(root)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print("Invariant lint FAILED (%d finding(s))." % len(findings),
              file=sys.stderr)
        return 1
    print("Invariant lint clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
