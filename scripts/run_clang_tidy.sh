#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every translation unit in
# src/, using a compile_commands.json exported from a dedicated
# configure. Exits non-zero on any finding (WarningsAsErrors: '*').
#
# Toolchain gating: clang-tidy ships with the LLVM toolchain, which not
# every dev container carries (this repo only hard-requires a C++20
# compiler). When the binary is absent the script SKIPS with exit 0 and
# a loud message — CI runs it on an image that has LLVM, so findings
# cannot land unnoticed; see .github/workflows/ci.yml.
#
# Usage: scripts/run_clang_tidy.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

TIDY=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "SKIP: clang-tidy not found on PATH; install LLVM or rely on the CI" \
       "clang-tidy job." >&2
  exit 0
fi

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DSKYLINE_CHECKS=ON \
      -DSKYLINE_BUILD_TESTS=OFF \
      -DSKYLINE_BUILD_BENCHMARKS=OFF \
      -DSKYLINE_BUILD_EXAMPLES=OFF > /dev/null

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "clang-tidy ($TIDY) over ${#SOURCES[@]} files, $JOBS jobs"

# xargs fans the files out; clang-tidy exits non-zero per failing file
# and xargs folds that into its own exit status.
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet

echo "clang-tidy clean."
