#!/usr/bin/env bash
# CI-style sanitizer gate: builds the library + tests under
# ThreadSanitizer, AddressSanitizer/UBSan and standalone UBSan
# (CMakePresets.json presets `tsan`, `asan` and `ubsan`) and runs the
# FULL ctest suite under each. Any reported race / memory error /
# undefined behavior fails the ctest run, because all three sanitizers
# exit non-zero on findings (UBSan via -fno-sanitize-recover).
#
# Usage: scripts/check_sanitizers.sh [jobs] [preset...]
#   jobs     parallel build/test jobs (default: nproc)
#   preset   subset of {tsan asan ubsan} to run (default: all three)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
shift || true
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(tsan asan ubsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build "build-$preset" -j "$JOBS"
  echo "==== [$preset] ctest (full suite) ===="
  # halt_on_error makes TSan fail fast inside ctest instead of just
  # logging; second_deadlock_stack improves lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "build-$preset" -j "$JOBS" --output-on-failure
done

echo "All sanitizer suites passed."
