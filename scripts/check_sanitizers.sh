#!/usr/bin/env bash
# CI-style sanitizer gate: builds the library + tests under
# ThreadSanitizer and AddressSanitizer/UBSan (CMakePresets.json presets
# `tsan` and `asan`) and runs the parallel + subset test suites under
# each. Any reported race / memory error fails the ctest run, because
# both sanitizers exit non-zero on findings.
#
# Usage: scripts/check_sanitizers.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# The suites exercising the concurrent code paths and the subset
# machinery they share. Keep in sync with tests/parallel/ and
# tests/subset/ test names.
FILTER='Parallel|Subset|Merge|WorkPartitioner|Determinism|Differential'

for preset in tsan asan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build "build-$preset" -j "$JOBS"
  echo "==== [$preset] ctest (-R '$FILTER') ===="
  # halt_on_error makes TSan fail fast inside ctest instead of just
  # logging; second_deadlock_stack improves lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "build-$preset" -j "$JOBS" \
          --output-on-failure -R "$FILTER"
done

echo "All sanitizer suites passed."
