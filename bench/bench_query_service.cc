// Query-service scenario set for the CI perf gate: a Zipf-skewed
// subspace-query mix over the paper's three data families, answered by
// the memoizing QueryService vs. cold per-query recomputation with the
// same subset-boosted engine.
//
// The query stream is deterministic given the seed (Zipf ranks over a
// seeded shuffle of the cuboid lattice), the service runs the stream
// single-threaded, and every engine in the chain is deterministic — so
// the dominance-test records below are exact and hard-gated by
// scripts/check_perf.py. Wall time and the latency percentiles are
// advisory.
//
// Records per scenario (dt_per_point semantics in brackets):
//
//   query-service    [dominance tests / query, pinned full-space
//                     construction included]
//   query-cold       [dominance tests / query when every query
//                     recomputes from scratch]
//   query-speedup    [cold / service dominance-test ratio — the paper's
//                     sharing win; must stay >= 5, also enforced here]
//   query-hit-pct    [cache hits per 100 queries]
//   query-seeded-pct [ancestor-seeded misses per 100 queries]
//
// Every service answer is verified against SubspaceSkyline before being
// reported, so the perf pipeline doubles as an equivalence check.
//
// Usage: bench_query_service [--quick|--full] [--seed=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/verify.h"
#include "src/harness/histogram.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace {

using namespace skyline;

/// Deterministic Zipf(s=1) sampler over `universe` ranks: rank r is
/// drawn with probability proportional to 1/(r+1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t universe, std::uint64_t seed) : rng_(seed) {
    cumulative_.reserve(universe);
    double total = 0;
    for (std::size_t r = 0; r < universe; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cumulative_.push_back(total);
    }
  }

  std::size_t Next() {
    std::uniform_real_distribution<double> uniform(0.0, cumulative_.back());
    const double u = uniform(rng_);
    return static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::vector<double> cumulative_;
};

/// The query mix: Zipf-ranked over a seeded shuffle of all non-empty
/// subspaces, so the hot set spans sizes 1..d rather than low masks.
std::vector<Subspace> MakeQueryStream(Dim d, std::size_t num_queries,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> masks;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
    masks.push_back(bits);
  }
  std::mt19937_64 shuffle_rng(seed ^ 0x5ca1ab1e);
  std::shuffle(masks.begin(), masks.end(), shuffle_rng);
  ZipfSampler zipf(masks.size(), seed ^ 0xbeefcafe);
  std::vector<Subspace> stream;
  stream.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    stream.push_back(Subspace(masks[zipf.Next()]));
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : (opts.quick ? 2000 : 10000);
  const Dim d = opts.quick ? 6 : 8;
  const std::size_t num_queries = opts.quick ? 2000 : 5000;

  std::cout << "# Query service — Zipf query mix, n=" << n << ", d="
            << static_cast<unsigned>(d) << ", queries=" << num_queries
            << ", seed=" << opts.seed << "\n\n";

  JsonReport report("bench_query_service");
  TextTable table({"Scenario", "DT/query (svc)", "DT/query (cold)", "speedup",
                   "hit%", "seeded%", "evict", "RT (ms)"});

  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    const Dataset data = Generate(type, n, d, opts.seed);
    const std::vector<Subspace> stream =
        MakeQueryStream(d, num_queries, opts.seed);

    // Cold baseline: per-query recomputation with the same engine the
    // service uses. Tests are deterministic per distinct cuboid, so the
    // 2^d - 1 distinct computes are weighted by stream frequency rather
    // than re-run per occurrence.
    std::vector<std::uint64_t> occurrences(std::size_t{1} << d, 0);
    for (Subspace v : stream) ++occurrences[v.bits()];
    QueryServiceOptions cold_options;
    cold_options.pin_full_space = false;
    double cold_total_tests = 0;
    double cold_rt_ms = 0;
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] == 0) continue;
      QueryServiceOptions one_shot = cold_options;
      one_shot.max_entries = 1;
      QueryService cold_service(data, one_shot);
      const auto start = std::chrono::steady_clock::now();
      cold_service.Query(Subspace(bits));
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      const double tests = static_cast<double>(
          cold_service.Stats().cold_tests);
      cold_total_tests += tests * static_cast<double>(occurrences[bits]);
      cold_rt_ms += ms * static_cast<double>(occurrences[bits]);
    }

    // The service: bounded cache, pinned full space, one warm pass over
    // the whole stream (single-threaded for deterministic counters).
    // Capacity covers the Zipf head but leaves the tail churning, so
    // eviction + re-seeding stay on the measured path. On AC data a
    // miss is expensive (the full-space seed is near-total), so the
    // cache must hold most of the lattice to amortize it.
    QueryServiceOptions options;
    options.max_entries = opts.quick ? 56 : 192;
    QueryService service(data, options);
    const auto start = std::chrono::steady_clock::now();
    for (Subspace v : stream) {
      service.Query(v);
    }
    const double service_rt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    // Counters frozen before the equivalence sweep issues extra queries.
    const QueryStatsSnapshot stats = service.Stats();

    // Equivalence check before anything is reported.
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] == 0) continue;
      if (service.Query(Subspace(bits)) !=
          SubspaceSkyline(data, Subspace(bits))) {
        std::cerr << "[bench_query_service] service answer differs from "
                  << "SubspaceSkyline on cuboid "
                  << Subspace(bits).ToString() << "\n";
        return 1;
      }
    }

    const double q = static_cast<double>(num_queries);
    const double service_tests =
        static_cast<double>(stats.dominance_tests());
    const double service_dt = service_tests / q;
    const double cold_dt = cold_total_tests / q;
    const double speedup = service_tests > 0 ? cold_total_tests / service_tests
                                             : 0;
    const double hit_pct =
        100.0 * static_cast<double>(stats.hits) / static_cast<double>(
            stats.queries);
    const double seeded_pct =
        100.0 * static_cast<double>(stats.seeded) / static_cast<double>(
            stats.queries);

    const std::string label = bench::ScenarioLabel(type, n, d, opts.seed);
    const std::size_t full_size =
        service.Query(Subspace::Full(d)).size();
    table.AddRow({label, TextTable::FormatNumber(service_dt),
                  TextTable::FormatNumber(cold_dt),
                  TextTable::FormatNumber(speedup),
                  TextTable::FormatNumber(hit_pct),
                  TextTable::FormatNumber(seeded_pct),
                  std::to_string(stats.evictions),
                  TextTable::FormatNumber(service_rt_ms)});
    PrintLatencySummary(std::cout, "  " + label + " latency", stats.latency);

    // The acceptance gate of the serving layer: the memoizing service
    // must beat cold per-query recomputation by >= 5x in dominance
    // tests on the repeated (Zipf) mix.
    if (speedup < 5.0) {
      std::cerr << "[bench_query_service] " << label << ": speedup "
                << speedup << " fell below the 5x gate\n";
      return 1;
    }

    report.Add({"", label, "query-service", n, d, opts.seed, 1, service_dt,
                service_rt_ms, full_size});
    report.Add({"", label, "query-cold", n, d, opts.seed, 1, cold_dt,
                cold_rt_ms, full_size});
    report.Add({"", label, "query-speedup", n, d, opts.seed, 1, speedup,
                0.0, full_size});
    report.Add({"", label, "query-hit-pct", n, d, opts.seed, 1, hit_pct,
                0.0, full_size});
    report.Add({"", label, "query-seeded-pct", n, d, opts.seed, 1,
                seeded_pct, 0.0, full_size});
    std::cerr << "  [query] " << label << " done (speedup "
              << TextTable::FormatNumber(speedup) << "x)\n";
  }

  table.Print(std::cout,
              "Query service: memoized cuboid cache vs cold recomputation");
  std::cout << '\n';
  return bench::FinishJson(opts, report);
}
