// Query-service scenario set for the CI perf gate: a Zipf-skewed
// subspace-query mix over the paper's three data families, answered by
// the memoizing QueryService vs. cold per-query recomputation with the
// same subset-boosted engine.
//
// The query stream is deterministic given the seed (Zipf ranks over a
// seeded shuffle of the cuboid lattice), the service runs the stream
// single-threaded, and every engine in the chain is deterministic — so
// the dominance-test records below are exact and hard-gated by
// scripts/check_perf.py. Wall time and the latency percentiles are
// advisory.
//
// Records per scenario (dt_per_point semantics in brackets):
//
//   query-service    [dominance tests / query, pinned full-space
//                     construction included]
//   query-cold       [dominance tests / query when every query
//                     recomputes from scratch]
//   query-speedup    [cold / service dominance-test ratio — the paper's
//                     sharing win; must stay >= 5, also enforced here]
//   query-hit-pct    [cache hits per 100 queries]
//   query-seeded-pct [ancestor-seeded misses per 100 queries]
//
// The mixed scenario interleaves the same Zipf query stream with
// deterministic ApplyUpdate bursts (every 16th op; every third burst
// also removes a member of the hottest cached cuboid so the
// invalidation path stays on the measured profile):
//
//   query-mixed-service [dominance tests / op — queries, repairs and
//                        pinned recomputes included]
//   query-mixed-hit-pct [cache hits per 100 queries in the mix]
//
// Every service answer is verified against SubspaceSkyline (the mixed
// scenario against a live-filtered recompute oracle, periodically and
// at the end), so the perf pipeline doubles as an equivalence check.
//
// Usage: bench_query_service [--quick|--full] [--seed=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/verify.h"
#include "src/harness/histogram.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace {

using namespace skyline;

/// Deterministic Zipf(s=1) sampler over `universe` ranks: rank r is
/// drawn with probability proportional to 1/(r+1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t universe, std::uint64_t seed) : rng_(seed) {
    cumulative_.reserve(universe);
    double total = 0;
    for (std::size_t r = 0; r < universe; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cumulative_.push_back(total);
    }
  }

  std::size_t Next() {
    std::uniform_real_distribution<double> uniform(0.0, cumulative_.back());
    const double u = uniform(rng_);
    return static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::vector<double> cumulative_;
};

/// The query mix: Zipf-ranked over a seeded shuffle of all non-empty
/// subspaces, so the hot set spans sizes 1..d rather than low masks.
std::vector<Subspace> MakeQueryStream(Dim d, std::size_t num_queries,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> masks;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
    masks.push_back(bits);
  }
  std::mt19937_64 shuffle_rng(seed ^ 0x5ca1ab1e);
  std::shuffle(masks.begin(), masks.end(), shuffle_rng);
  ZipfSampler zipf(masks.size(), seed ^ 0xbeefcafe);
  std::vector<Subspace> stream;
  stream.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    stream.push_back(Subspace(masks[zipf.Next()]));
  }
  return stream;
}

/// Live-filtered recompute oracle for the mixed scenario: densify the
/// live rows of `version`, run the reference SubspaceSkyline, map row
/// indices back to stable point ids.
std::vector<PointId> LiveOracle(const DatasetVersion& version, Subspace v) {
  std::vector<PointId> live_ids;
  Dataset dense(version.data.num_dims());
  for (PointId id = 0; id < version.data.num_points(); ++id) {
    if (!version.IsLive(id)) continue;
    live_ids.push_back(id);
    dense.Append(version.data.point(id));
  }
  std::vector<PointId> out;
  for (PointId p : SubspaceSkyline(dense, v)) out.push_back(live_ids[p]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : (opts.quick ? 2000 : 10000);
  const Dim d = opts.quick ? 6 : 8;
  const std::size_t num_queries = opts.quick ? 2000 : 5000;

  std::cout << "# Query service — Zipf query mix, n=" << n << ", d="
            << static_cast<unsigned>(d) << ", queries=" << num_queries
            << ", seed=" << opts.seed << "\n\n";

  JsonReport report("bench_query_service");
  TextTable table({"Scenario", "DT/query (svc)", "DT/query (cold)", "speedup",
                   "hit%", "seeded%", "evict", "RT (ms)"});

  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    const Dataset data = Generate(type, n, d, opts.seed);
    const std::vector<Subspace> stream =
        MakeQueryStream(d, num_queries, opts.seed);

    // Cold baseline: per-query recomputation with the same engine the
    // service uses. Tests are deterministic per distinct cuboid, so the
    // 2^d - 1 distinct computes are weighted by stream frequency rather
    // than re-run per occurrence.
    std::vector<std::uint64_t> occurrences(std::size_t{1} << d, 0);
    for (Subspace v : stream) ++occurrences[v.bits()];
    QueryServiceOptions cold_options;
    cold_options.pin_full_space = false;
    double cold_total_tests = 0;
    double cold_rt_ms = 0;
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] == 0) continue;
      QueryServiceOptions one_shot = cold_options;
      one_shot.max_entries = 1;
      QueryService cold_service(data, one_shot);
      const auto start = std::chrono::steady_clock::now();
      cold_service.Query(Subspace(bits));
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      const double tests = static_cast<double>(
          cold_service.Stats().cold_tests);
      cold_total_tests += tests * static_cast<double>(occurrences[bits]);
      cold_rt_ms += ms * static_cast<double>(occurrences[bits]);
    }

    // The service: bounded cache, pinned full space, one warm pass over
    // the whole stream (single-threaded for deterministic counters).
    // Capacity covers the Zipf head but leaves the tail churning, so
    // eviction + re-seeding stay on the measured path. On AC data a
    // miss is expensive (the full-space seed is near-total), so the
    // cache must hold most of the lattice to amortize it.
    QueryServiceOptions options;
    options.max_entries = opts.quick ? 56 : 192;
    QueryService service(data, options);
    const auto start = std::chrono::steady_clock::now();
    for (Subspace v : stream) {
      service.Query(v);
    }
    const double service_rt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    // Counters frozen before the equivalence sweep issues extra queries.
    const QueryStatsSnapshot stats = service.Stats();

    // Equivalence check before anything is reported.
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] == 0) continue;
      if (service.Query(Subspace(bits)) !=
          SubspaceSkyline(data, Subspace(bits))) {
        std::cerr << "[bench_query_service] service answer differs from "
                  << "SubspaceSkyline on cuboid "
                  << Subspace(bits).ToString() << "\n";
        return 1;
      }
    }

    const double q = static_cast<double>(num_queries);
    const double service_tests =
        static_cast<double>(stats.dominance_tests());
    const double service_dt = service_tests / q;
    const double cold_dt = cold_total_tests / q;
    const double speedup = service_tests > 0 ? cold_total_tests / service_tests
                                             : 0;
    const double hit_pct =
        100.0 * static_cast<double>(stats.hits) / static_cast<double>(
            stats.queries);
    const double seeded_pct =
        100.0 * static_cast<double>(stats.seeded) / static_cast<double>(
            stats.queries);

    const std::string label = bench::ScenarioLabel(type, n, d, opts.seed);
    const std::size_t full_size =
        service.Query(Subspace::Full(d)).size();
    table.AddRow({label, TextTable::FormatNumber(service_dt),
                  TextTable::FormatNumber(cold_dt),
                  TextTable::FormatNumber(speedup),
                  TextTable::FormatNumber(hit_pct),
                  TextTable::FormatNumber(seeded_pct),
                  std::to_string(stats.evictions),
                  TextTable::FormatNumber(service_rt_ms)});
    PrintLatencySummary(std::cout, "  " + label + " latency", stats.latency);

    // The acceptance gate of the serving layer: the memoizing service
    // must beat cold per-query recomputation by >= 5x in dominance
    // tests on the repeated (Zipf) mix.
    if (speedup < 5.0) {
      std::cerr << "[bench_query_service] " << label << ": speedup "
                << speedup << " fell below the 5x gate\n";
      return 1;
    }

    report.Add({"", label, "query-service", n, d, opts.seed, 1, service_dt,
                service_rt_ms, full_size});
    report.Add({"", label, "query-cold", n, d, opts.seed, 1, cold_dt,
                cold_rt_ms, full_size});
    report.Add({"", label, "query-speedup", n, d, opts.seed, 1, speedup,
                0.0, full_size});
    report.Add({"", label, "query-hit-pct", n, d, opts.seed, 1, hit_pct,
                0.0, full_size});
    report.Add({"", label, "query-seeded-pct", n, d, opts.seed, 1,
                seeded_pct, 0.0, full_size});
    std::cerr << "  [query] " << label << " done (speedup "
              << TextTable::FormatNumber(speedup) << "x)\n";
  }

  table.Print(std::cout,
              "Query service: memoized cuboid cache vs cold recomputation");
  std::cout << '\n';

  // ---- Mixed read/update scenario ----------------------------------
  // Same Zipf stream, but every 16th op is an ApplyUpdate burst instead
  // of a query: 1-2 uniform inserts, and every third burst removes a
  // member of the hottest cached cuboid (falling back to any live
  // point), which exercises invalidation + recompute, not just repair.
  // Single-threaded and fully seeded, so the dominance-test counters
  // are exact and hard-gated.
  TextTable mixed_table({"Scenario", "DT/op", "hit%", "repaired",
                         "invalidated", "epochs", "RT (ms)"});
  constexpr std::size_t kUpdateEvery = 16;
  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    const Dataset data = Generate(type, n, d, opts.seed);
    const std::vector<Subspace> stream =
        MakeQueryStream(d, num_queries, opts.seed);
    // The Zipf head: the most frequent cuboid, which is cached from its
    // first occurrence on — the deterministic victim source for
    // member removals.
    std::vector<std::uint64_t> occurrences(std::size_t{1} << d, 0);
    for (Subspace v : stream) ++occurrences[v.bits()];
    std::uint64_t hot_bits = 1;
    for (std::uint64_t bits = 1; bits + 1 < occurrences.size(); ++bits) {
      // The full space is excluded: its entry is pinned, and removing a
      // pinned member recomputes eagerly instead of invalidating.
      if (occurrences[bits] > occurrences[hot_bits]) hot_bits = bits;
    }
    const Subspace hot(hot_bits);

    QueryServiceOptions options;
    options.max_entries = opts.quick ? 56 : 192;
    QueryService service(data, options);
    std::mt19937_64 urng(opts.seed ^ 0xfeedface);
    std::uniform_real_distribution<double> value(0.0, 1.0);
    std::size_t update_count = 0;
    bool ok = true;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if ((i + 1) % kUpdateEvery == 0) {
        const std::size_t k = 1 + urng() % 2;
        std::vector<Value> rows;
        for (std::size_t r = 0; r < k * d; ++r) {
          rows.push_back(static_cast<Value>(value(urng)));
        }
        std::vector<PointId> removes;
        if (++update_count % 3 == 0) {
          std::vector<PointId> hot_ids;
          if (service.PeekExact(hot, &hot_ids) && !hot_ids.empty()) {
            removes.push_back(
                hot_ids[urng() % hot_ids.size()]);
          } else {
            const DatasetVersionPtr ver = service.current_version();
            PointId id = static_cast<PointId>(
                urng() % ver->data.num_points());
            while (!ver->IsLive(id)) {
              id = (id + 1) % static_cast<PointId>(ver->data.num_points());
            }
            removes.push_back(id);
          }
        }
        service.ApplyUpdate(rows, removes);
      } else {
        const std::vector<PointId> answer = service.Query(stream[i]);
        // Periodic in-loop oracle probe (cheap enough at this cadence).
        if (i % 500 == 0 &&
            answer != LiveOracle(*service.current_version(), stream[i])) {
          std::cerr << "[bench_query_service] mixed: op " << i
                    << " diverged from the live oracle on cuboid "
                    << stream[i].ToString() << "\n";
          ok = false;
          break;
        }
      }
    }
    const double mixed_rt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!ok) return 1;

    const QueryStatsSnapshot stats = service.Stats();

    // Final oracle sweep over every queried cuboid at the final epoch.
    const DatasetVersionPtr final_version = service.current_version();
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] == 0) continue;
      if (service.Query(Subspace(bits)) !=
          LiveOracle(*final_version, Subspace(bits))) {
        std::cerr << "[bench_query_service] mixed: final answer differs "
                  << "from the live oracle on cuboid "
                  << Subspace(bits).ToString() << "\n";
        return 1;
      }
    }

    // The mutation paths this scenario exists to measure must actually
    // run: at least one cheap repair and one unrepairable invalidation.
    if (stats.repaired == 0 || stats.invalidated == 0) {
      std::cerr << "[bench_query_service] mixed: repair/invalidate paths "
                << "not exercised (repaired=" << stats.repaired
                << ", invalidated=" << stats.invalidated << ")\n";
      return 1;
    }

    const double ops = static_cast<double>(stream.size());
    const double mixed_dt =
        static_cast<double>(stats.dominance_tests()) / ops;
    const double mixed_hit_pct =
        100.0 * static_cast<double>(stats.hits) /
        static_cast<double>(stats.queries);
    const std::string label = bench::ScenarioLabel(type, n, d, opts.seed);
    mixed_table.AddRow({label, TextTable::FormatNumber(mixed_dt),
                        TextTable::FormatNumber(mixed_hit_pct),
                        std::to_string(stats.repaired),
                        std::to_string(stats.invalidated),
                        std::to_string(stats.epoch),
                        TextTable::FormatNumber(mixed_rt_ms)});
    PrintLatencySummary(std::cout, "  " + label + " update latency",
                        stats.update_latency);

    report.Add({"", label, "query-mixed-service", n, d, opts.seed, 1,
                mixed_dt, mixed_rt_ms, service.Query(Subspace::Full(d)).size()});
    report.Add({"", label, "query-mixed-hit-pct", n, d, opts.seed, 1,
                mixed_hit_pct, 0.0, service.Query(Subspace::Full(d)).size()});
    std::cerr << "  [query] " << label << " mixed done (epoch "
              << stats.epoch << ")\n";
  }
  mixed_table.Print(std::cout,
                    "Query service: mixed Zipf read/update stream");
  std::cout << '\n';
  return bench::FinishJson(opts, report);
}
