// Tables 4 and 5: mean dominance test numbers and elapsed time on the
// synthetic 8-D AC dataset with respect to the cardinality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 4/5: AC data, cardinality sweep");
  JsonReport report("bench_table04_05_ac_card");
  bench::RunCardinalitySweep(
      DataType::kAntiCorrelated, opts,
      "Table 4: mean dominance test numbers, 8-D AC, cardinality sweep",
      "Table 5: elapsed time (ms), 8-D AC, cardinality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
