// Shared plumbing for the table/figure reproduction binaries: the
// standard algorithm roster of the paper's evaluation and the two table
// shapes (dimensionality sweep, cardinality sweep) used by Tables 2-13.
#ifndef SKYLINE_BENCH_BENCH_COMMON_H_
#define SKYLINE_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/harness/json_report.h"
#include "src/harness/options.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"

namespace skyline::bench {

/// The algorithm rows of Tables 2-14, in the paper's order: each base
/// directly followed by its boosted variant and a performance-gain row,
/// then the two BSkyTree baselines.
struct Roster {
  std::vector<std::pair<std::string, std::string>> pairs = BoostedPairs();
  std::vector<std::string> baselines = {"bskytree-s", "bskytree-p"};
};

/// DT and RT measurements for every roster algorithm on one dataset.
struct Measurements {
  std::map<std::string, RunResult> by_algorithm;
};

inline Measurements MeasureAll(const Dataset& data, const BenchOptions& opts,
                               int sigma = 0) {
  Measurements out;
  Roster roster;
  AlgorithmOptions algo_opts;
  algo_opts.sigma = sigma;
  auto run = [&](const std::string& name) {
    auto algo = MakeAlgorithm(name, algo_opts);
    out.by_algorithm[name] = RunAlgorithm(*algo, data, opts.EffectiveRuns());
  };
  for (const auto& [base, boosted] : roster.pairs) {
    run(base);
    run(boosted);
  }
  for (const auto& name : roster.baselines) run(name);
  return out;
}

/// Standard scenario label of the JSON reports: family, dimensionality,
/// cardinality and seed, e.g. "UI-d8-n4000-s42".
inline std::string ScenarioLabel(DataType type, std::size_t n, unsigned d,
                                 std::uint64_t seed) {
  return std::string(ShortName(type)) + "-d" + std::to_string(d) + "-n" +
         std::to_string(n) + "-s" + std::to_string(seed);
}

/// Appends one BenchRecord per measured algorithm to `report` (no-op on
/// nullptr), so every sweep bench can emit the machine-readable report
/// behind `--json` without changing its printed tables.
inline void AppendMeasurements(JsonReport* report, DataType type,
                               std::size_t n, unsigned d,
                               const BenchOptions& opts,
                               const Measurements& m) {
  if (report == nullptr) return;
  for (const auto& [name, r] : m.by_algorithm) {
    BenchRecord rec;
    rec.scenario = ScenarioLabel(type, n, d, opts.seed);
    rec.algorithm = name;
    rec.n = n;
    rec.d = d;
    rec.seed = opts.seed;
    rec.runs = opts.EffectiveRuns();
    rec.dt_per_point = r.mean_dominance_tests;
    rec.rt_ms = r.elapsed_ms;
    rec.skyline_size = r.skyline_size;
    report->Add(std::move(rec));
  }
}

/// Prints the paper's table layout: one column per sweep entry, one row
/// per algorithm, plus a performance-gain row under every boosted
/// algorithm. `metric` selects DT or RT.
enum class Metric { kDominanceTests, kElapsedMs };

inline double MetricOf(const RunResult& r, Metric metric) {
  return metric == Metric::kDominanceTests ? r.mean_dominance_tests
                                           : r.elapsed_ms;
}

inline void PrintSweepTable(std::ostream& out, const std::string& title,
                            const std::string& sweep_header,
                            const std::vector<std::string>& sweep_labels,
                            const std::vector<Measurements>& columns,
                            Metric metric) {
  Roster roster;
  std::vector<std::string> headers = {sweep_header};
  headers.insert(headers.end(), sweep_labels.begin(), sweep_labels.end());
  TextTable table(headers);
  auto metric_row = [&](const std::string& name) {
    std::vector<std::string> row = {name};
    for (const auto& m : columns) {
      row.push_back(
          TextTable::FormatNumber(MetricOf(m.by_algorithm.at(name), metric)));
    }
    table.AddRow(std::move(row));
  };
  for (const auto& [base, boosted] : roster.pairs) {
    metric_row(base);
    metric_row(boosted);
    std::vector<std::string> gain = {"  gain"};
    for (const auto& m : columns) {
      gain.push_back(
          TextTable::FormatGain(MetricOf(m.by_algorithm.at(base), metric),
                                MetricOf(m.by_algorithm.at(boosted), metric)));
    }
    table.AddRow(std::move(gain));
  }
  for (const auto& name : roster.baselines) metric_row(name);
  table.Print(out, title);
  out << '\n';
}

/// Runs the dimensionality sweep of Tables 2/3, 6/7, 10/11 for one data
/// type and prints both metric tables.
inline void RunDimensionSweep(DataType type, const BenchOptions& opts,
                              const std::string& dt_title,
                              const std::string& rt_title,
                              JsonReport* report = nullptr) {
  const std::size_t n = opts.SweepCardinality();
  std::vector<std::string> labels;
  std::vector<Measurements> columns;
  for (unsigned d : opts.DimensionSweep()) {
    Dataset data = Generate(type, n, d, opts.seed);
    columns.push_back(MeasureAll(data, opts));
    AppendMeasurements(report, type, n, d, opts, columns.back());
    labels.push_back(std::to_string(d) + "-D");
    std::cerr << "  [" << ShortName(type) << " dim sweep] d=" << d
              << " done\n";
  }
  PrintSweepTable(std::cout, dt_title, "Dimensionality", labels, columns,
                  Metric::kDominanceTests);
  PrintSweepTable(std::cout, rt_title, "Dimensionality", labels, columns,
                  Metric::kElapsedMs);
}

/// Runs the cardinality sweep of Tables 4/5, 8/9, 12/13 (8-D data).
inline void RunCardinalitySweep(DataType type, const BenchOptions& opts,
                                const std::string& dt_title,
                                const std::string& rt_title,
                                JsonReport* report = nullptr) {
  const Dim d = 8;
  std::vector<std::string> labels;
  std::vector<Measurements> columns;
  for (std::size_t n : opts.CardinalitySweep()) {
    Dataset data = Generate(type, n, d, opts.seed);
    columns.push_back(MeasureAll(data, opts));
    AppendMeasurements(report, type, n, d, opts, columns.back());
    if (n % 1000 == 0) {
      labels.push_back(std::to_string(n / 1000) + "K");
    } else {
      labels.push_back(std::to_string(n));
    }
    std::cerr << "  [" << ShortName(type) << " card sweep] n=" << n
              << " done\n";
  }
  PrintSweepTable(std::cout, dt_title, "Cardinality", labels, columns,
                  Metric::kDominanceTests);
  PrintSweepTable(std::cout, rt_title, "Cardinality", labels, columns,
                  Metric::kElapsedMs);
}

/// Writes the JSON report when `--json=PATH` was given; returns the
/// process exit code (I/O failure must fail the bench, or the CI perf
/// gate would silently compare stale files).
inline int FinishJson(const BenchOptions& opts, const JsonReport& report) {
  if (opts.json_path.empty()) return 0;
  return report.WriteFile(opts.json_path, &std::cerr) ? 0 : 1;
}

inline void PrintScaleBanner(const BenchOptions& opts, const char* what) {
  std::cout << "# " << what << " — "
            << (opts.full ? "FULL (paper) scale" : "reduced scale")
            << ", runs=" << opts.EffectiveRuns() << ", seed=" << opts.seed
            << (opts.full ? "" : "  [pass --full for the paper's scale]")
            << "\n\n";
}

}  // namespace skyline::bench

#endif  // SKYLINE_BENCH_BENCH_COMMON_H_
