// Extension bench: (a) parallel skyline scaling over worker threads;
// (b) k-skyband sizes and cost as k grows.
#include <iostream>

#include "src/data/generator.h"
#include "src/extras/skyband.h"
#include "src/harness/options.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"
#include "src/parallel/parallel_skyline.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 200000 : 20000;

  // Partitioned parallelism trades extra dominance tests (each worker's
  // local skyline is larger than the global one, and local skylines are
  // cross-filtered) for concurrency. It pays off when the skyline is a
  // small fraction of the data (low d) and inverts when the skyline
  // fraction is large (high d) — both regimes shown.
  for (Dim d : {4u, 8u}) {
    Dataset data = Generate(DataType::kUniformIndependent, n, d, opts.seed);
    TextTable table({"threads", "RT (ms)", "DT/point", "skyline"});
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      ParallelSfs algo(threads);
      RunResult r = RunAlgorithm(algo, data, opts.EffectiveRuns());
      table.AddRow({std::to_string(threads),
                    TextTable::FormatNumber(r.elapsed_ms),
                    TextTable::FormatNumber(r.mean_dominance_tests),
                    std::to_string(r.skyline_size)});
      std::cerr << "  [parallel] d=" << d << " threads=" << threads
                << " done\n";
    }
    table.Print(std::cout, "Parallel skyline scaling (" + std::to_string(d) +
                               "-D UI, " + std::to_string(n) + " points)");
    std::cout << '\n';
  }

  {
    Dataset data = Generate(DataType::kUniformIndependent, n / 2, 5, opts.seed);
    TextTable table({"k", "skyband size", "DT/point"});
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      SkybandResult band = ComputeSkyband(data, k);
      table.AddRow({std::to_string(k), std::to_string(band.points.size()),
                    TextTable::FormatNumber(
                        static_cast<double>(band.dominance_tests) /
                        static_cast<double>(data.num_points()))});
    }
    table.Print(std::cout, "k-skyband growth (5-D UI, " +
                               std::to_string(n / 2) + " points)");
  }
  return 0;
}
