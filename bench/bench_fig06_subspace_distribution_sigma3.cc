// Figure 6: distribution of points with respect to subspace size after
// the full Merge pass with stability threshold sigma = 3 (contrast with
// Figure 2's single pivot). AC/CO/UI, 8-D, 100K points (reduced: 10K).
#include <iostream>

#include "src/data/generator.h"
#include "src/harness/histogram.h"
#include "src/harness/options.h"
#include "src/subset/merge.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : 10000;
  const Dim d = 8;
  std::cout << "# Figure 6: point distribution per subspace size after "
               "Merge with sigma = 3, 8-D, "
            << n << " points\n\n";

  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);
    MergeResult merge = MergeSubspaces(data, 3);
    PrintHistogram(
        std::cout,
        std::string(ShortName(type)) + " dataset — pivots: " +
            std::to_string(merge.pivots.size()) + ", pruned: " +
            std::to_string(merge.pruned) + ", non-pruned points per "
            "subspace size:",
        SubspaceSizeHistogram(merge.subspaces, d));
    std::cout << '\n';
  }
  return 0;
}
