// Extension bench: streaming skyline maintenance (the paper's future-
// work item 3). Compares the subset-index-based StreamingSkyline against
// the naive strategy of recomputing the skyline from scratch after every
// batch of arrivals, and reports insert throughput per data type.
#include <chrono>
#include <iostream>

#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/harness/options.h"
#include "src/harness/table.h"
#include "src/stream/streaming_skyline.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 200000 : 20000;
  const Dim d = 8;
  std::cout << "# Extension: streaming skyline (8-D, " << n
            << " inserts, batch recompute every n/20 arrivals)\n\n";

  TextTable table({"Data", "stream ms", "inserts/ms", "recompute ms",
                   "speedup", "final skyline", "evictions",
                   "mean candidates"});
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);

    // Streaming: one structure, n inserts.
    StreamingSkyline stream(d);
    const auto s0 = std::chrono::steady_clock::now();
    for (PointId p = 0; p < data.num_points(); ++p) {
      stream.Insert(data.point(p));
    }
    const auto s1 = std::chrono::steady_clock::now();
    const double stream_ms =
        std::chrono::duration<double, std::milli>(s1 - s0).count();

    // Naive periodic recompute: batch algorithm on every prefix at 20
    // checkpoints (what an application without incremental maintenance
    // would do to keep a fresh skyline).
    auto algo = MakeAlgorithm("sdi-subset");
    const auto r0 = std::chrono::steady_clock::now();
    std::size_t last_size = 0;
    for (int checkpoint = 1; checkpoint <= 20; ++checkpoint) {
      const std::size_t prefix = n * checkpoint / 20;
      Dataset slice(d, std::vector<Value>(data.values().begin(),
                                          data.values().begin() + prefix * d));
      last_size = algo->Compute(slice).size();
    }
    const auto r1 = std::chrono::steady_clock::now();
    const double recompute_ms =
        std::chrono::duration<double, std::milli>(r1 - r0).count();
    if (last_size != stream.skyline_size()) {
      std::cerr << "MISMATCH: stream " << stream.skyline_size()
                << " vs batch " << last_size << "\n";
      return 1;
    }

    const auto& st = stream.stats();
    table.AddRow({std::string(ShortName(type)),
                  TextTable::FormatNumber(stream_ms),
                  TextTable::FormatNumber(n / stream_ms),
                  TextTable::FormatNumber(recompute_ms),
                  TextTable::FormatGain(recompute_ms, stream_ms),
                  std::to_string(stream.skyline_size()),
                  std::to_string(st.evictions),
                  TextTable::FormatNumber(
                      st.index_queries == 0
                          ? 0.0
                          : static_cast<double>(st.index_candidates) /
                                static_cast<double>(st.index_queries))});
    std::cerr << "  [streaming] " << ShortName(type) << " done\n";
  }
  table.Print(std::cout,
              "Streaming skyline vs periodic batch recompute (20 checkpoints)");
  return 0;
}
