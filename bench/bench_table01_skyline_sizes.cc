// Table 1: skyline size of the synthetic datasets — dimensionality sweep
// at the sweep cardinality (paper: 200K, 2-D..24-D) and cardinality sweep
// at 8-D (paper: 100K..1M), for AC, CO and UI data.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algo/bskytree.h"

namespace {

using namespace skyline;

std::size_t SkylineSize(DataType type, std::size_t n, Dim d,
                        std::uint64_t seed) {
  Dataset data = Generate(type, n, d, seed);
  return BSkyTreeP().Compute(data).size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Table 1: skyline size of synthetic datasets");

  const std::vector<DataType> types = {DataType::kAntiCorrelated,
                                       DataType::kCorrelated,
                                       DataType::kUniformIndependent};

  {
    std::vector<std::string> headers = {"Dimensionality"};
    for (unsigned d : opts.DimensionSweep()) {
      headers.push_back(std::to_string(d) + "-D");
    }
    TextTable table(headers);
    for (DataType type : types) {
      std::vector<std::string> row = {std::string(ShortName(type)) +
                                      " datasets"};
      for (unsigned d : opts.DimensionSweep()) {
        row.push_back(std::to_string(
            SkylineSize(type, opts.SweepCardinality(), d, opts.seed)));
        std::cerr << "  [skyline size] " << ShortName(type) << " d=" << d
                  << " done\n";
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout,
                "Table 1a: skyline size vs dimensionality (" +
                    std::to_string(opts.SweepCardinality()) + " points)");
    std::cout << '\n';
  }

  {
    std::vector<std::string> headers = {"Cardinality"};
    for (std::size_t n : opts.CardinalitySweep()) {
      headers.push_back(n % 1000 == 0 ? std::to_string(n / 1000) + "K"
                                      : std::to_string(n));
    }
    TextTable table(headers);
    for (DataType type : types) {
      std::vector<std::string> row = {std::string(ShortName(type)) +
                                      " datasets"};
      for (std::size_t n : opts.CardinalitySweep()) {
        row.push_back(std::to_string(SkylineSize(type, n, 8, opts.seed)));
        std::cerr << "  [skyline size] " << ShortName(type) << " n=" << n
                  << " done\n";
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout, "Table 1b: skyline size vs cardinality (8-D)");
  }
  return 0;
}
