// Figures 4 and 5: effect of the stability threshold sigma on the mean
// dominance test number (Fig. 4) and elapsed time (Fig. 5) of the three
// boosted algorithms, on 8-D AC/CO/UI data with 100K points (reduced:
// 10K). sigma sweeps 2..d as in Section 6.1.
#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : 10000;
  const Dim d = 8;
  bench::PrintScaleBanner(opts,
                          "Figures 4/5: effect of the stability threshold");

  const std::vector<std::string> boosted = {"sfs-subset", "salsa-subset",
                                            "sdi-subset"};
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);

    std::vector<std::string> headers = {"Method"};
    for (Dim sigma = 2; sigma <= d; ++sigma) {
      headers.push_back("s=" + std::to_string(sigma));
    }
    TextTable dt_table(headers);
    TextTable rt_table(headers);
    for (const std::string& name : boosted) {
      std::vector<std::string> dt_row = {name};
      std::vector<std::string> rt_row = {name};
      for (Dim sigma = 2; sigma <= d; ++sigma) {
        AlgorithmOptions algo_opts;
        algo_opts.sigma = static_cast<int>(sigma);
        auto algo = MakeAlgorithm(name, algo_opts);
        RunResult r = RunAlgorithm(*algo, data, opts.EffectiveRuns());
        dt_row.push_back(TextTable::FormatNumber(r.mean_dominance_tests));
        rt_row.push_back(TextTable::FormatNumber(r.elapsed_ms));
      }
      dt_table.AddRow(std::move(dt_row));
      rt_table.AddRow(std::move(rt_row));
      std::cerr << "  [stability] " << ShortName(type) << " " << name
                << " done\n";
    }
    dt_table.Print(std::cout,
                   "Figure 4 (" + std::string(ShortName(type)) +
                       "): mean dominance tests vs stability threshold");
    rt_table.Print(std::cout,
                   "Figure 5 (" + std::string(ShortName(type)) +
                       "): elapsed time (ms) vs stability threshold");
    std::cout << '\n';
  }
  return 0;
}
