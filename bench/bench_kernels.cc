// Microbenchmark of the dominance-kernel layer (src/core/kernels.h):
// scalar reference loops over packed Dataset rows vs vectorized kernels
// over padded, 64-byte-aligned AlignedDataset rows, plus the batched
// one-vs-many probes the subset algorithms execute.
//
// Every variant accumulates a checksum; a scalar/kernel checksum or
// scan-count mismatch fails the binary, so the perf numbers can never
// come from semantically diverged code. DT-style metrics (row scans per
// point) are deterministic given the seed and form the CI hard gate;
// wall time is advisory.
//
// Usage: bench_kernels [--quick|--full] [--runs=N] [--seed=N]
//                      [--json=PATH]
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/aligned_dataset.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/data/generator.h"
#include "src/harness/json_report.h"
#include "src/harness/options.h"
#include "src/harness/table.h"

namespace {

using namespace skyline;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct VariantResult {
  double ms = 0;
  std::uint64_t checksum = 0;
  std::uint64_t scans = 0;  // O(d) row scans performed (deterministic)
};

/// Times `pass` (which returns {checksum, scans}) `runs` times; reports
/// the mean wall time and the last checksum/scans.
VariantResult Run(int runs,
                  const std::function<std::pair<std::uint64_t, std::uint64_t>()>&
                      pass) {
  VariantResult out;
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const double t0 = NowMs();
    auto [checksum, scans] = pass();
    total += NowMs() - t0;
    out.checksum = checksum;
    out.scans = scans;
  }
  out.ms = total / runs;
  return out;
}

int g_failures = 0;

/// Registers a scalar/kernel variant pair: checks checksum + scan
/// equality, prints one table row, appends two JSON records.
void Record(JsonReport* report, TextTable* table, const std::string& scenario,
            std::size_t n, Dim d, std::uint64_t seed, int runs,
            const std::string& name, const VariantResult& scalar,
            const VariantResult& kernel) {
  if (scalar.checksum != kernel.checksum || scalar.scans != kernel.scans) {
    std::cerr << "MISMATCH in " << scenario << " " << name
              << ": scalar checksum=" << scalar.checksum
              << " scans=" << scalar.scans
              << " vs kernel checksum=" << kernel.checksum
              << " scans=" << kernel.scans << "\n";
    ++g_failures;
  }
  const double dt = static_cast<double>(scalar.scans) / static_cast<double>(n);
  table->AddRow({name, TextTable::FormatNumber(dt),
                 TextTable::FormatNumber(scalar.ms),
                 TextTable::FormatNumber(kernel.ms),
                 TextTable::FormatGain(scalar.ms, kernel.ms)});
  report->Add({"", scenario, "scalar/" + name, n, d, seed, runs, dt, scalar.ms,
               0});
  report->Add({"", scenario, "kernel/" + name, n, d, seed, runs, dt, kernel.ms,
               0});
}

void BenchScenario(DataType type, std::size_t n, Dim d,
                   const BenchOptions& opts, JsonReport* report) {
  const int runs = opts.EffectiveRuns();
  const std::string scenario = bench::ScenarioLabel(type, n, d, opts.seed);
  const Dataset data = Generate(type, n, d, opts.seed);
  const AlignedDataset aligned(data);

  // Fixed pseudo-random pair sequence for the pairwise kernels.
  const std::size_t num_pairs = 4 * n;
  std::vector<std::pair<PointId, PointId>> pairs(num_pairs);
  std::mt19937_64 rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& p : pairs) {
    p = {static_cast<PointId>(rng() % n), static_cast<PointId>(rng() % n)};
  }

  // Pivot block for the batched probes: the strongest points by
  // coordinate sum, the shape of a SubsetIndex candidate list.
  const std::size_t block_size = std::min<std::size_t>(64, n);
  std::vector<PointId> by_sum(n);
  std::iota(by_sum.begin(), by_sum.end(), PointId{0});
  std::sort(by_sum.begin(), by_sum.end(), [&](PointId a, PointId b) {
    const Value* ra = data.row(a);
    const Value* rb = data.row(b);
    Value sa = 0, sb = 0;
    for (Dim k = 0; k < d; ++k) {
      sa += ra[k];
      sb += rb[k];
    }
    if (sa != sb) return sa < sb;
    return a < b;
  });
  const std::vector<PointId> block(by_sum.begin(),
                                   by_sum.begin() + block_size);

  TextTable table({"Kernel", "scans/point", "scalar ms", "kernel ms", "gain"});

  // ---- dominates: pairwise a < b over the pair sequence. ----
  const auto scalar_dom = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += Dominates(data.row(a), data.row(b), d) ? 1 : 0;
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_dom = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += kernels::Dominates(aligned.row_unchecked(a),
                                     aligned.row_unchecked(b), d)
                      ? 1
                      : 0;
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "dominates",
         scalar_dom, kernel_dom);

  // ---- compare: full pair classification. ----
  const auto scalar_cmp = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += static_cast<std::uint64_t>(Compare(data.row(a), data.row(b), d));
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_cmp = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += static_cast<std::uint64_t>(kernels::Compare(
          aligned.row_unchecked(a), aligned.row_unchecked(b), d));
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "compare",
         scalar_cmp, kernel_cmp);

  // ---- dominating-subspace-ex: the Merge inner-loop pair kernel. ----
  const auto scalar_dse = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      bool worse = false;
      checksum += DominatingSubspaceEx(data.row(a), data.row(b), d, &worse)
                      .bits() +
                  (worse ? 1 : 0);
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_dse = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      bool worse = false;
      checksum += kernels::DominatingSubspaceEx(aligned.row_unchecked(a),
                                                aligned.row_unchecked(b), d,
                                                &worse)
                      .bits() +
                  (worse ? 1 : 0);
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs,
         "dominating-subspace-ex", scalar_dse, kernel_dse);

  // ---- dominates-any: every point probed against the pivot block,
  // early exit at the first dominator (the retrieval-loop shape). ----
  const auto scalar_any = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const Value* q_row = data.row(static_cast<PointId>(q));
      bool dominated = false;
      for (PointId s : block) {
        ++scans;
        if (Dominates(data.row(s), q_row, d)) {
          dominated = true;
          break;
        }
      }
      checksum += dominated ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_any = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const auto r = kernels::DominatesAny(
          aligned, block, aligned.row_unchecked(q), d);
      scans += r.scanned;
      checksum += r.first != kernels::kNoDominator ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "dominates-any",
         scalar_any, kernel_any);

  // ---- dominating-subspace-batch: every point's mask folded over the
  // pivot block (the re-base shape). ----
  const auto scalar_fold = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const Value* q_row = data.row(static_cast<PointId>(q));
      Subspace mask;
      for (PointId s : block) {
        if (s == static_cast<PointId>(q)) continue;
        ++scans;
        bool worse = false;
        const Subspace m =
            DominatingSubspaceEx(q_row, data.row(s), d, &worse);
        if (m.empty() && worse) {
          mask = Subspace{};
          break;
        }
        mask |= m;
      }
      checksum += mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_fold = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const auto r = kernels::DominatingSubspaceBatch(
          aligned, block, aligned.row_unchecked(q), d,
          /*skip=*/static_cast<PointId>(q));
      scans += r.scanned;
      checksum +=
          r.dominated_by != kernels::kNoDominator ? 0 : r.mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs,
         "dominating-subspace-batch", scalar_fold, kernel_fold);

  table.Print(std::cout, scenario + ": scalar vs vectorized kernels");
  std::cout << '\n';
  std::cerr << "  [kernels] " << scenario << " done\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 64000 : (opts.quick ? 4000 : 16000);
  const std::vector<Dim> dims =
      opts.quick ? std::vector<Dim>{8} : std::vector<Dim>{4, 8, 16};
  std::cout << "# Dominance-kernel microbench — n=" << n
            << ", runs=" << opts.EffectiveRuns() << ", seed=" << opts.seed
            << "\n\n";

  JsonReport report("bench_kernels");
  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    for (Dim d : dims) {
      BenchScenario(type, n, d, opts, &report);
    }
  }
  if (g_failures != 0) {
    std::cerr << g_failures << " scalar/kernel mismatches\n";
    return 1;
  }
  return bench::FinishJson(opts, report);
}
