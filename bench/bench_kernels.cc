// Microbenchmark of the dominance-kernel layer (src/core/kernels.h):
// scalar reference loops over packed Dataset rows vs vectorized kernels
// over padded, 64-byte-aligned AlignedDataset rows, plus the batched
// one-vs-many probes the subset algorithms execute.
//
// Every variant accumulates a checksum; a scalar/kernel checksum or
// scan-count mismatch fails the binary, so the perf numbers can never
// come from semantically diverged code. DT-style metrics (row scans per
// point) are deterministic given the seed and form the CI hard gate;
// wall time is advisory.
//
// On top of the scalar-vs-dispatched records, the bench sweeps every
// compiled ISA backend (scalar / AVX2 / AVX-512) with the quantized
// prefilter off and on over the sustained block-scan workloads, and
// enforces the PR's speedup gate in-binary: on the correlated and
// independent scenarios the dispatched-SIMD-plus-prefilter path must
// beat the portable auto-vectorized backend by >= 1.5x on both
// one-vs-many scan records (anti-correlated is advisory). The per-ISA
// timings land in the JSON "meta" object — they are machine-specific,
// so they never become baseline records — while the ISA-agnostic
// scalar/kernel records stay gateable by scripts/check_perf.py.
//
// Usage: bench_kernels [--quick|--full] [--runs=N] [--seed=N]
//                      [--json=PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/aligned_dataset.h"
#include "src/core/cpu.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/core/simd_dispatch.h"
#include "src/data/generator.h"
#include "src/harness/json_report.h"
#include "src/harness/options.h"
#include "src/harness/table.h"

namespace {

using namespace skyline;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct VariantResult {
  double ms = 0;
  std::uint64_t checksum = 0;
  std::uint64_t scans = 0;  // O(d) row scans performed (deterministic)
};

/// Times `pass` (which returns {checksum, scans}) `runs` times; reports
/// the mean wall time and the last checksum/scans.
VariantResult Run(int runs,
                  const std::function<std::pair<std::uint64_t, std::uint64_t>()>&
                      pass) {
  VariantResult out;
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const double t0 = NowMs();
    auto [checksum, scans] = pass();
    total += NowMs() - t0;
    out.checksum = checksum;
    out.scans = scans;
  }
  out.ms = total / runs;
  return out;
}

int g_failures = 0;

/// Per-scenario per-ISA timings and gate verdicts, rendered into the
/// JSON "meta" object at the end of main.
std::vector<std::string> g_isa_sweep_entries;
std::vector<std::string> g_gate_entries;

/// Required dispatched-vs-autovec speedup on the scan records of the
/// UI and CO scenarios (AC advisory). Enforced only when the dispatcher
/// actually selected a SIMD backend — a scalar-only machine has nothing
/// to gate.
constexpr double kRequiredSpeedup = 1.5;

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JoinEntries(const std::vector<std::string>& entries) {
  std::string out = "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += entries[i];
    if (i + 1 < entries.size()) out += ", ";
  }
  out += "]";
  return out;
}

/// Registers a scalar/kernel variant pair: checks checksum + scan
/// equality, prints one table row, appends two JSON records.
void Record(JsonReport* report, TextTable* table, const std::string& scenario,
            std::size_t n, Dim d, std::uint64_t seed, int runs,
            const std::string& name, const VariantResult& scalar,
            const VariantResult& kernel) {
  if (scalar.checksum != kernel.checksum || scalar.scans != kernel.scans) {
    std::cerr << "MISMATCH in " << scenario << " " << name
              << ": scalar checksum=" << scalar.checksum
              << " scans=" << scalar.scans
              << " vs kernel checksum=" << kernel.checksum
              << " scans=" << kernel.scans << "\n";
    ++g_failures;
  }
  const double dt = static_cast<double>(scalar.scans) / static_cast<double>(n);
  table->AddRow({name, TextTable::FormatNumber(dt),
                 TextTable::FormatNumber(scalar.ms),
                 TextTable::FormatNumber(kernel.ms),
                 TextTable::FormatGain(scalar.ms, kernel.ms)});
  report->Add({"", scenario, "scalar/" + name, n, d, seed, runs, dt, scalar.ms,
               0});
  report->Add({"", scenario, "kernel/" + name, n, d, seed, runs, dt, kernel.ms,
               0});
}

void BenchScenario(DataType type, std::size_t n, Dim d,
                   const BenchOptions& opts, JsonReport* report) {
  const int runs = opts.EffectiveRuns();
  const std::string scenario = bench::ScenarioLabel(type, n, d, opts.seed);
  const Dataset data = Generate(type, n, d, opts.seed);
  AlignedDataset aligned(data);
  // Built up front: the ISA sweep and gate records measure prefiltered
  // scans, so the plane must exist before any timed region.
  aligned.EnsureQuantized();

  // Fixed pseudo-random pair sequence for the pairwise kernels.
  const std::size_t num_pairs = 4 * n;
  std::vector<std::pair<PointId, PointId>> pairs(num_pairs);
  std::mt19937_64 rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& p : pairs) {
    p = {static_cast<PointId>(rng() % n), static_cast<PointId>(rng() % n)};
  }

  // Pivot block for the batched probes: the strongest points by
  // coordinate sum, the shape of a SubsetIndex candidate list.
  const std::size_t block_size = std::min<std::size_t>(64, n);
  std::vector<PointId> by_sum(n);
  std::iota(by_sum.begin(), by_sum.end(), PointId{0});
  std::sort(by_sum.begin(), by_sum.end(), [&](PointId a, PointId b) {
    const Value* ra = data.row(a);
    const Value* rb = data.row(b);
    Value sa = 0, sb = 0;
    for (Dim k = 0; k < d; ++k) {
      sa += ra[k];
      sb += rb[k];
    }
    if (sa != sb) return sa < sb;
    return a < b;
  });
  const std::vector<PointId> block(by_sum.begin(),
                                   by_sum.begin() + block_size);

  TextTable table({"Kernel", "scans/point", "scalar ms", "kernel ms", "gain"});

  // ---- dominates: pairwise a < b over the pair sequence. ----
  const auto scalar_dom = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += Dominates(data.row(a), data.row(b), d) ? 1 : 0;
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_dom = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += kernels::Dominates(aligned.row_unchecked(a),
                                     aligned.row_unchecked(b), d)
                      ? 1
                      : 0;
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "dominates",
         scalar_dom, kernel_dom);

  // ---- compare: full pair classification. ----
  const auto scalar_cmp = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += static_cast<std::uint64_t>(Compare(data.row(a), data.row(b), d));
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_cmp = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      checksum += static_cast<std::uint64_t>(kernels::Compare(
          aligned.row_unchecked(a), aligned.row_unchecked(b), d));
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "compare",
         scalar_cmp, kernel_cmp);

  // ---- dominating-subspace-ex: the Merge inner-loop pair kernel. ----
  const auto scalar_dse = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      bool worse = false;
      checksum += DominatingSubspaceEx(data.row(a), data.row(b), d, &worse)
                      .bits() +
                  (worse ? 1 : 0);
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  const auto kernel_dse = Run(runs, [&] {
    std::uint64_t checksum = 0;
    for (const auto& [a, b] : pairs) {
      bool worse = false;
      checksum += kernels::DominatingSubspaceEx(aligned.row_unchecked(a),
                                                aligned.row_unchecked(b), d,
                                                &worse)
                      .bits() +
                  (worse ? 1 : 0);
    }
    return std::make_pair(checksum, static_cast<std::uint64_t>(num_pairs));
  });
  Record(report, &table, scenario, n, d, opts.seed, runs,
         "dominating-subspace-ex", scalar_dse, kernel_dse);

  // ---- dominates-any: every point probed against the pivot block,
  // early exit at the first dominator (the retrieval-loop shape). ----
  const auto scalar_any = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const Value* q_row = data.row(static_cast<PointId>(q));
      bool dominated = false;
      for (PointId s : block) {
        ++scans;
        if (Dominates(data.row(s), q_row, d)) {
          dominated = true;
          break;
        }
      }
      checksum += dominated ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_any = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const auto r = kernels::DominatesAny(
          aligned, block, aligned.row_unchecked(q), d);
      scans += r.scanned;
      checksum += r.first != kernels::kNoDominator ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "dominates-any",
         scalar_any, kernel_any);

  // ---- dominating-subspace-batch: every point's mask folded over the
  // pivot block (the re-base shape). ----
  const auto scalar_fold = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const Value* q_row = data.row(static_cast<PointId>(q));
      Subspace mask;
      for (PointId s : block) {
        if (s == static_cast<PointId>(q)) continue;
        ++scans;
        bool worse = false;
        const Subspace m =
            DominatingSubspaceEx(q_row, data.row(s), d, &worse);
        if (m.empty() && worse) {
          mask = Subspace{};
          break;
        }
        mask |= m;
      }
      checksum += mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_fold = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (std::size_t q = 0; q < n; ++q) {
      const auto r = kernels::DominatingSubspaceBatch(
          aligned, block, aligned.row_unchecked(q), d,
          /*skip=*/static_cast<PointId>(q));
      scans += r.scanned;
      checksum +=
          r.dominated_by != kernels::kNoDominator ? 0 : r.mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs,
         "dominating-subspace-batch", scalar_fold, kernel_fold);

  // ---- Sustained block-scan workloads: probes no pivot dominates, so
  // every probe scans the whole block. This is the expensive shape of
  // the subset inner loops (a point that WILL be admitted to the
  // skyline always pays the full window), and the one where kernel
  // throughput — not early-exit luck — decides the wall clock. The
  // probe list cycles the survivor set up to n probes. Never empty:
  // the block's minimum-sum point cannot be dominated (dominance
  // strictly lowers the coordinate sum). ----
  std::vector<PointId> survivors;
  for (std::size_t q = 0; q < n; ++q) {
    const Value* q_row = data.row(static_cast<PointId>(q));
    bool dominated = false;
    for (PointId s : block) {
      if (Dominates(data.row(s), q_row, d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) survivors.push_back(static_cast<PointId>(q));
  }
  std::vector<PointId> probes(n);
  for (std::size_t i = 0; i < n; ++i) {
    probes[i] = survivors[i % survivors.size()];
  }

  // ---- dominates-any-scan: the one-vs-many probe at full block
  // occupancy. ----
  const auto scalar_any_scan = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (PointId q : probes) {
      const Value* q_row = data.row(q);
      bool dominated = false;
      for (PointId s : block) {
        ++scans;
        if (Dominates(data.row(s), q_row, d)) {
          dominated = true;
          break;
        }
      }
      checksum += dominated ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_any_scan = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (PointId q : probes) {
      const auto r =
          kernels::DominatesAny(aligned, block, aligned.row_unchecked(q), d);
      scans += r.scanned;
      checksum += r.first != kernels::kNoDominator ? 1 : 0;
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs, "dominates-any-scan",
         scalar_any_scan, kernel_any_scan);

  // ---- dominating-subspace-batch-scan: the mask fold at full block
  // occupancy (a survivor is never eliminated, so no early exit). ----
  const auto scalar_fold_scan = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (PointId q : probes) {
      const Value* q_row = data.row(q);
      Subspace mask;
      for (PointId s : block) {
        ++scans;
        bool worse = false;
        const Subspace m = DominatingSubspaceEx(q_row, data.row(s), d, &worse);
        if (m.empty() && worse) {
          mask = Subspace{};
          break;
        }
        mask |= m;
      }
      checksum += mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  const auto kernel_fold_scan = Run(runs, [&] {
    std::uint64_t checksum = 0;
    std::uint64_t scans = 0;
    for (PointId q : probes) {
      const auto r = kernels::DominatingSubspaceBatch(
          aligned, block, aligned.row_unchecked(q), d);
      scans += r.scanned;
      checksum += r.dominated_by != kernels::kNoDominator ? 0 : r.mask.bits();
    }
    return std::make_pair(checksum, scans);
  });
  Record(report, &table, scenario, n, d, opts.seed, runs,
         "dominating-subspace-batch-scan", scalar_fold_scan, kernel_fold_scan);

  table.Print(std::cout, scenario + ": scalar vs vectorized kernels");
  std::cout << '\n';

  // ---- Per-ISA sweep and speedup gate over the scan workloads. Every
  // backend is checksummed against the scalar reference above, so a
  // diverged backend fails the binary before it can post a number. ----
  const auto run_ops_any = [&](const kernels::simd::KernelOps& ops,
                               bool prefilter) {
    return Run(runs, [&] {
      std::uint64_t checksum = 0;
      std::uint64_t scans = 0;
      for (PointId q : probes) {
        const auto r = ops.dominates_any(aligned, block,
                                         aligned.row_unchecked(q), d,
                                         kInvalidPoint, prefilter);
        scans += r.scanned;
        checksum += r.first != kernels::kNoDominator ? 1 : 0;
      }
      return std::make_pair(checksum, scans);
    });
  };
  const auto run_ops_fold = [&](const kernels::simd::KernelOps& ops) {
    return Run(runs, [&] {
      std::uint64_t checksum = 0;
      std::uint64_t scans = 0;
      for (PointId q : probes) {
        const auto r = ops.dominating_subspace_batch(
            aligned, block, aligned.row_unchecked(q), d, kInvalidPoint);
        scans += r.scanned;
        checksum += r.dominated_by != kernels::kNoDominator ? 0 : r.mask.bits();
      }
      return std::make_pair(checksum, scans);
    });
  };
  const auto check = [&](const char* what, const VariantResult& got,
                         const VariantResult& want) {
    if (got.checksum != want.checksum || got.scans != want.scans) {
      std::cerr << "MISMATCH in " << scenario << " " << what
                << ": checksum=" << got.checksum << " scans=" << got.scans
                << " vs reference checksum=" << want.checksum
                << " scans=" << want.scans << "\n";
      ++g_failures;
    }
  };

  // The autovec reference: the portable backend with the prefilter off
  // — the pre-dispatch kernel this layer replaces.
  const auto autovec_any = run_ops_any(kernels::simd::kScalarOps, false);
  const auto autovec_fold = run_ops_fold(kernels::simd::kScalarOps);
  check("autovec/dominates-any-scan", autovec_any, scalar_any_scan);
  check("autovec/dominating-subspace-batch-scan", autovec_fold,
        scalar_fold_scan);

  TextTable isa_table({"Backend", "any-scan ms", "gain", "fold-scan ms",
                       "gain"});
  double active_any_ms = autovec_any.ms;
  double active_fold_ms = autovec_fold.ms;
  for (cpu::IsaLevel level : cpu::kAllLevels) {
    const kernels::simd::KernelOps* ops = cpu::OpsFor(level);
    if (ops == nullptr) continue;
    const auto fold_r = run_ops_fold(*ops);
    check("isa-fold", fold_r, scalar_fold_scan);
    for (bool prefilter : {false, true}) {
      const auto any_r = run_ops_any(*ops, prefilter);
      check("isa-any", any_r, scalar_any_scan);
      const std::string label = std::string(cpu::IsaName(level)) +
                                (prefilter ? "+prefilter" : "");
      isa_table.AddRow({label, TextTable::FormatNumber(any_r.ms),
                        TextTable::FormatGain(autovec_any.ms, any_r.ms),
                        TextTable::FormatNumber(fold_r.ms),
                        TextTable::FormatGain(autovec_fold.ms, fold_r.ms)});
      g_isa_sweep_entries.push_back(
          std::string("{\"scenario\": \"") + scenario + "\", \"isa\": \"" +
          cpu::IsaName(level) +
          "\", \"prefilter\": " + (prefilter ? "true" : "false") +
          ", \"dominates_any_scan_ms\": " + FmtDouble(any_r.ms) +
          ", \"subspace_fold_scan_ms\": " + FmtDouble(fold_r.ms) + "}");
      if (level == cpu::ActiveIsa() && prefilter) {
        active_any_ms = any_r.ms;
        active_fold_ms = fold_r.ms;
      }
    }
  }
  isa_table.Print(std::cout,
                  scenario + ": per-ISA block-scan sweep (vs autovec)");
  std::cout << '\n';

  // ---- The speedup gate. ----
  const bool gate_applies = cpu::ActiveIsa() != cpu::IsaLevel::kScalar;
  const bool enforced =
      gate_applies && (type == DataType::kUniformIndependent ||
                       type == DataType::kCorrelated);
  const struct {
    const char* record;
    double speedup;
  } gates[] = {
      {"dominates-any-scan", autovec_any.ms / active_any_ms},
      {"dominating-subspace-batch-scan", autovec_fold.ms / active_fold_ms},
  };
  for (const auto& g : gates) {
    const bool pass = g.speedup >= kRequiredSpeedup;
    g_gate_entries.push_back(
        std::string("{\"scenario\": \"") + scenario + "\", \"record\": \"" +
        g.record + "\", \"required\": " + FmtDouble(kRequiredSpeedup) +
        ", \"speedup\": " + FmtDouble(g.speedup) +
        ", \"enforced\": " + (enforced ? "true" : "false") +
        ", \"pass\": " + (pass ? "true" : "false") + "}");
    if (!gate_applies) continue;
    if (!pass && enforced) {
      std::cerr << "GATE FAIL " << scenario << " " << g.record
                << ": dispatched+prefilter is only x" << FmtDouble(g.speedup)
                << " over autovec (need x" << FmtDouble(kRequiredSpeedup)
                << ")\n";
      ++g_failures;
    } else if (!pass) {
      std::cerr << "  [gate-advisory] " << scenario << " " << g.record
                << ": x" << FmtDouble(g.speedup) << " (< x"
                << FmtDouble(kRequiredSpeedup) << ", not enforced)\n";
    }
  }

  std::cerr << "  [kernels] " << scenario << " done\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 64000 : (opts.quick ? 4000 : 16000);
  const std::vector<Dim> dims =
      opts.quick ? std::vector<Dim>{8} : std::vector<Dim>{4, 8, 16};
  std::cout << "# Dominance-kernel microbench — n=" << n
            << ", runs=" << opts.EffectiveRuns() << ", seed=" << opts.seed
            << "\n# " << cpu::Description() << "\n\n";

  JsonReport report("bench_kernels");
  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    for (Dim d : dims) {
      BenchScenario(type, n, d, opts, &report);
    }
  }
  report.SetMeta("cpu", cpu::Description());
  report.SetMetaJson("isa_sweep", JoinEntries(g_isa_sweep_entries));
  report.SetMetaJson("gate", JoinEntries(g_gate_entries));
  if (g_failures != 0) {
    std::cerr << g_failures << " scalar/kernel mismatches or gate failures\n";
    return 1;
  }
  return bench::FinishJson(opts, report);
}
