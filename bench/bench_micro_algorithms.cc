// End-to-end micro benchmarks: every registered algorithm on a fixed
// 8-D UI dataset and on an 8-D AC dataset, via google-benchmark.
#include <benchmark/benchmark.h>

#include "src/algo/registry.h"
#include "src/data/generator.h"

namespace {

using namespace skyline;

const Dataset& UiData() {
  static const Dataset data =
      Generate(DataType::kUniformIndependent, 8000, 8, 3);
  return data;
}

const Dataset& AcData() {
  static const Dataset data =
      Generate(DataType::kAntiCorrelated, 2000, 8, 3);
  return data;
}

void RunAlgo(benchmark::State& state, const std::string& name,
             const Dataset& data) {
  auto algo = MakeAlgorithm(name);
  SkylineStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->Compute(data, &stats));
  }
  state.counters["dominance_tests"] =
      static_cast<double>(stats.dominance_tests);
  state.counters["skyline"] = static_cast<double>(stats.skyline_size);
}

void BM_Ui(benchmark::State& state, const std::string& name) {
  RunAlgo(state, name, UiData());
}
void BM_Ac(benchmark::State& state, const std::string& name) {
  RunAlgo(state, name, AcData());
}

int RegisterAll() {
  for (const std::string& name : AlgorithmNames()) {
    benchmark::RegisterBenchmark(("BM_UI_8D_8K/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Ui(s, name);
                                 })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("BM_AC_8D_2K/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Ac(s, name);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}

const int kRegistered = RegisterAll();

}  // namespace
