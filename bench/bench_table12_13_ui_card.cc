// Tables 12 and 13: mean dominance test numbers and elapsed time on the
// synthetic 8-D UI dataset with respect to the cardinality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 12/13: UI data, cardinality sweep");
  JsonReport report("bench_table12_13_ui_card");
  bench::RunCardinalitySweep(
      DataType::kUniformIndependent, opts,
      "Table 12: mean dominance test numbers, 8-D UI, cardinality sweep",
      "Table 13: elapsed time (ms), 8-D UI, cardinality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
