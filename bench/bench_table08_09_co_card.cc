// Tables 8 and 9: mean dominance test numbers and elapsed time on the
// synthetic 8-D CO dataset with respect to the cardinality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 8/9: CO data, cardinality sweep");
  JsonReport report("bench_table08_09_co_card");
  bench::RunCardinalitySweep(
      DataType::kCorrelated, opts,
      "Table 8: mean dominance test numbers, 8-D CO, cardinality sweep",
      "Table 9: elapsed time (ms), 8-D CO, cardinality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
