// Streaming skyline scenario set for the CI perf gate: insert-rate and
// memory-ceiling metrics for StreamingSkyline across the paper's three
// data families plus the two adversarial regimes the memory model was
// built for (dominated-heavy stream, reference drift).
//
// Every scenario is verified against the offline sfs-subset skyline of
// the whole stream before being reported — a result mismatch exits
// non-zero, so the perf pipeline doubles as an equivalence check.
//
// Per scenario the report carries three records (all deterministic given
// the seed, so all hard-gated by scripts/check_perf.py):
//
//   streaming                 dt_per_point = dominance tests / insert
//   streaming-resident-peak   dt_per_point = peak resident rows (the
//                             memory ceiling the compactor must hold)
//   streaming-candidate-ratio dt_per_point = index candidates / insert
//                             (pruning power; drift shows up here)
//
// Usage: bench_streaming [--quick|--full] [--seed=N] [--json=PATH]
#include <chrono>
#include <iostream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/verify.h"
#include "src/stream/streaming_skyline.h"

namespace {

using namespace skyline;

struct Scenario {
  std::string label;
  Dataset data;
  StreamingOptions options;
};

Dataset MakeAdversarial(std::size_t n, Dim d, std::uint64_t seed) {
  // 99% of arrivals in [1.001, 2]^d are dominated by any of the 1% in
  // [0, 1]^d: the reject path does all the work and dead rows pile up
  // only from the good points' churn.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Value> bad(1.001, 2.0);
  std::uniform_real_distribution<Value> good(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, 99);
  std::vector<Value> values;
  values.reserve(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    auto& dist = pick(rng) == 0 ? good : bad;
    for (Dim dim = 0; dim < d; ++dim) values.push_back(dist(rng));
  }
  return Dataset(d, std::move(values));
}

Dataset MakeDrift(std::size_t n, Dim d, std::uint64_t seed) {
  // First quarter far from the origin (bootstrap + references), rest
  // near it: every late arrival dominates the frozen references, which
  // collapses all masks and forces the adaptive re-reference.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Value> far(0.5, 1.0);
  std::uniform_real_distribution<Value> near(0.0, 0.5);
  const std::size_t phase1 = n / 4;
  std::vector<Value> values;
  values.reserve(n * d);
  for (std::size_t i = 0; i < phase1 * d; ++i) values.push_back(far(rng));
  for (std::size_t i = phase1 * d; i < n * d; ++i) values.push_back(near(rng));
  return Dataset(d, std::move(values));
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 200000 : (opts.quick ? 20000 : 50000);
  const std::size_t adv_n = opts.full ? 1000000 : (opts.quick ? 100000 : 250000);
  const Dim d = 8;

  std::vector<Scenario> scenarios;
  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    scenarios.push_back({bench::ScenarioLabel(type, n, d, opts.seed),
                         Generate(type, n, d, opts.seed),
                         StreamingOptions{}});
  }
  scenarios.push_back({"ADV99-d4-n" + std::to_string(adv_n) + "-s" +
                           std::to_string(opts.seed),
                       MakeAdversarial(adv_n, 4, opts.seed),
                       StreamingOptions{}});
  {
    StreamingOptions drift_options;
    drift_options.adapt_interval = 256;
    scenarios.push_back({"DRIFT-d4-n" + std::to_string(n) + "-s" +
                             std::to_string(opts.seed),
                         MakeDrift(n, 4, opts.seed), drift_options});
  }

  std::cout << "# Streaming scenario set — n=" << n << " (adversarial "
            << adv_n << "), seed=" << opts.seed << "\n\n";

  JsonReport report("bench_streaming");
  TextTable table({"Scenario", "DT/insert", "RT (ms)", "skyline",
                   "peak rows", "cand/insert", "compactions", "refreezes"});
  const auto offline = MakeAlgorithm("sfs-subset");

  for (const Scenario& scenario : scenarios) {
    const Dataset& data = scenario.data;
    StreamingSkyline stream(data.num_dims(), scenario.options);
    const auto start = std::chrono::steady_clock::now();
    for (PointId p = 0; p < data.num_points(); ++p) {
      stream.Insert(data.point(p));
    }
    const double rt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (!SameIdSet(stream.Skyline(), offline->Compute(data))) {
      std::cerr << "[bench_streaming] " << scenario.label
                << ": streaming result differs from the offline skyline\n";
      return 1;
    }

    const StreamingStats& stats = stream.stats();
    const double dt_per_insert =
        static_cast<double>(stats.dominance_tests) /
        static_cast<double>(data.num_points());
    const double cand_per_insert = stats.CandidatesPerInsert();

    table.AddRow({scenario.label, TextTable::FormatNumber(dt_per_insert),
                  TextTable::FormatNumber(rt_ms),
                  std::to_string(stream.skyline_size()),
                  std::to_string(stats.peak_resident_rows),
                  TextTable::FormatNumber(cand_per_insert),
                  std::to_string(stats.compactions),
                  std::to_string(stats.refreezes)});

    const std::size_t sn = data.num_points();
    const unsigned sd = data.num_dims();
    report.Add({"", scenario.label, "streaming", sn, sd, opts.seed, 1,
                dt_per_insert, rt_ms, stream.skyline_size()});
    report.Add({"", scenario.label, "streaming-resident-peak", sn, sd,
                opts.seed, 1, static_cast<double>(stats.peak_resident_rows),
                rt_ms, stream.skyline_size()});
    report.Add({"", scenario.label, "streaming-candidate-ratio", sn, sd,
                opts.seed, 1, cand_per_insert, rt_ms, stream.skyline_size()});
    std::cerr << "  [streaming] " << scenario.label << " done\n";
  }

  table.Print(std::cout, "Streaming skyline: insert cost and memory ceiling");
  std::cout << '\n';
  return bench::FinishJson(opts, report);
}
