// Extension bench: skycube materialization — per-level cuboid sizes and
// the cost of independent vs top-down shared computation.
#include <chrono>
#include <iostream>

#include "src/data/generator.h"
#include "src/harness/options.h"
#include "src/harness/table.h"
#include "src/skycube/skycube.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 50000 : 5000;
  const Dim d = 6;
  std::cout << "# Extension: skycube materialization (6-D, " << n
            << " points, " << ((1u << d) - 1) << " cuboids)\n\n";

  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);

    std::uint64_t naive_tests = 0, shared_tests = 0;
    const auto t0 = std::chrono::steady_clock::now();
    Skycube naive = Skycube::Compute(data, SkycubeStrategy::kNaive,
                                     &naive_tests);
    const auto t1 = std::chrono::steady_clock::now();
    Skycube shared = Skycube::Compute(data, SkycubeStrategy::kTopDown,
                                      &shared_tests);
    const auto t2 = std::chrono::steady_clock::now();

    // Per-level size summary (min/max cuboid size per subspace size).
    TextTable sizes({"level", "cuboids", "min size", "max size", "total"});
    for (Dim level = 1; level <= d; ++level) {
      std::size_t count = 0, total = 0;
      std::size_t min_size = data.num_points(), max_size = 0;
      for (std::uint64_t bits = 1; bits < (1u << d); ++bits) {
        const Subspace v(bits);
        if (v.size() != level) continue;
        const std::size_t s = shared.skyline(v).size();
        ++count;
        total += s;
        min_size = std::min(min_size, s);
        max_size = std::max(max_size, s);
      }
      sizes.AddRow({std::to_string(level), std::to_string(count),
                    std::to_string(min_size), std::to_string(max_size),
                    std::to_string(total)});
    }
    sizes.Print(std::cout, std::string(ShortName(type)) +
                               ": cuboid sizes per subspace level");

    TextTable strat({"strategy", "tests/point/cuboid", "RT (ms)"});
    const double cuboids = static_cast<double>((1u << d) - 1);
    strat.AddRow({"naive",
                  TextTable::FormatNumber(static_cast<double>(naive_tests) /
                                          n / cuboids),
                  TextTable::FormatNumber(
                      std::chrono::duration<double, std::milli>(t1 - t0)
                          .count())});
    strat.AddRow({"top-down shared",
                  TextTable::FormatNumber(static_cast<double>(shared_tests) /
                                          n / cuboids),
                  TextTable::FormatNumber(
                      std::chrono::duration<double, std::milli>(t2 - t1)
                          .count())});
    strat.Print(std::cout, std::string(ShortName(type)) +
                               ": naive vs top-down sharing");
    std::cout << '\n';
    std::cerr << "  [skycube] " << ShortName(type) << " done\n";
  }
  return 0;
}
