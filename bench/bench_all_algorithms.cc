// Supplementary: every registered algorithm (including the ones the
// paper's tables omit — BNL, LESS, Index, D&C, BBS, parallel) on one
// 8-D dataset per data family.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/harness/options.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 200000 : (opts.quick ? 2000 : 10000);
  const Dim d = 8;
  std::cout << "# All registered algorithms, 8-D, " << n << " points\n\n";

  JsonReport report("bench_all_algorithms");
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);
    TextTable table({"Algorithm", "DT/point", "RT (ms)", "skyline"});
    for (const std::string& name : AlgorithmNames()) {
      auto algo = MakeAlgorithm(name);
      RunResult r = RunAlgorithm(*algo, data, opts.EffectiveRuns());
      table.AddRow({name, TextTable::FormatNumber(r.mean_dominance_tests),
                    TextTable::FormatNumber(r.elapsed_ms),
                    std::to_string(r.skyline_size)});
      report.Add({"", bench::ScenarioLabel(type, n, d, opts.seed), name, n, d,
                  opts.seed, opts.EffectiveRuns(), r.mean_dominance_tests,
                  r.elapsed_ms, r.skyline_size});
      std::cerr << "  [all] " << ShortName(type) << " " << name << " done\n";
    }
    table.Print(std::cout, std::string(ShortName(type)) +
                               ": all algorithms, 8-D, " +
                               std::to_string(n) + " points");
    std::cout << '\n';
  }
  return bench::FinishJson(opts, report);
}
