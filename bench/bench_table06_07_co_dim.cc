// Tables 6 and 7: mean dominance test numbers and elapsed time on the
// synthetic CO dataset with respect to the dimensionality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 6/7: CO data, dimensionality sweep");
  JsonReport report("bench_table06_07_co_dim");
  bench::RunDimensionSweep(
      DataType::kCorrelated, opts,
      "Table 6: mean dominance test numbers, CO, dimensionality sweep",
      "Table 7: elapsed time (ms), CO, dimensionality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
