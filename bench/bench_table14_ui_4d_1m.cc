// Table 14: all algorithms on a 4-D UI dataset with 1M points (reduced:
// 50K) — the paper's demonstration that on large low-dimensional UI data
// every boosted method beats both BSkyTree variants in elapsed time.
#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Table 14: 4-D UI dataset, 1M points");

  const std::size_t n = opts.full ? 1000000 : 50000;
  Dataset data = Generate(DataType::kUniformIndependent, n, 4, opts.seed);
  bench::Measurements m = bench::MeasureAll(data, opts);

  TextTable table({"Method", "DT", "RT"});
  bench::Roster roster;
  auto row = [&](const std::string& name) {
    const RunResult& r = m.by_algorithm.at(name);
    table.AddRow({name, TextTable::FormatNumber(r.mean_dominance_tests),
                  TextTable::FormatNumber(r.elapsed_ms) + " ms"});
  };
  for (const auto& [base, boosted] : roster.pairs) {
    row(base);
    row(boosted);
    const auto& b = m.by_algorithm.at(base);
    const auto& s = m.by_algorithm.at(boosted);
    table.AddRow({"  gain",
                  TextTable::FormatGain(b.mean_dominance_tests,
                                        s.mean_dominance_tests),
                  TextTable::FormatGain(b.elapsed_ms, s.elapsed_ms)});
  }
  for (const auto& name : roster.baselines) row(name);
  table.Print(std::cout, "Table 14: 4-D UI dataset with " +
                             std::to_string(n) + " points (skyline size " +
                             std::to_string(
                                 m.by_algorithm.at("sfs").skyline_size) +
                             ")");
  return 0;
}
