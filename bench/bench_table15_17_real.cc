// Tables 15-17: the HOUSE, NBA and WEATHER real-world datasets
// (deterministic surrogates — see DESIGN.md §3), each with the stability
// threshold the paper tuned manually for it. At reduced scale the HOUSE
// and WEATHER surrogates are subsampled to keep the run short; --full
// uses the complete cardinalities.
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/real_world.h"

namespace {

using namespace skyline;

Dataset Subsample(const Dataset& data, std::size_t max_points) {
  if (data.num_points() <= max_points) return Dataset(data);
  // Deterministic stride subsample preserving the value distribution.
  const std::size_t stride = data.num_points() / max_points;
  Dataset out(data.num_dims());
  for (std::size_t i = 0; i < max_points; ++i) {
    out.Append(data.point(static_cast<PointId>(i * stride)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 15-17: real-world dataset surrogates");

  int table_no = 15;
  for (const RealDatasetInfo& info : RealDatasetCatalog()) {
    Dataset data = MakeRealDataset(info.name);
    if (!opts.full) data = Subsample(data, 15000);
    std::cerr << "  [real] " << info.name << ": " << data.num_points()
              << " points, " << data.num_dims() << "-D, sigma="
              << info.sigma << "\n";
    bench::Measurements m = bench::MeasureAll(data, opts, info.sigma);

    TextTable table({"Method", "DT", "RT", "sigma"});
    bench::Roster roster;
    auto row = [&](const std::string& name, bool boosted) {
      const RunResult& r = m.by_algorithm.at(name);
      table.AddRow({name, TextTable::FormatNumber(r.mean_dominance_tests),
                    TextTable::FormatNumber(r.elapsed_ms) + " ms",
                    boosted ? std::to_string(info.sigma) : ""});
    };
    for (const auto& [base, boosted] : roster.pairs) {
      row(base, false);
      row(boosted, true);
      const auto& b = m.by_algorithm.at(base);
      const auto& s = m.by_algorithm.at(boosted);
      table.AddRow({"  gain",
                    TextTable::FormatGain(b.mean_dominance_tests,
                                          s.mean_dominance_tests),
                    TextTable::FormatGain(b.elapsed_ms, s.elapsed_ms), ""});
    }
    for (const auto& name : roster.baselines) row(name, false);
    std::string upper(info.name);
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    table.Print(std::cout,
                "Table " + std::to_string(table_no++) + ": the " + upper +
                    " dataset (" + std::to_string(data.num_points()) +
                    " points, " + std::to_string(data.num_dims()) +
                    "-D, skyline " +
                    std::to_string(m.by_algorithm.at("sfs").skyline_size) +
                    ")");
    std::cout << '\n';
  }
  return 0;
}
