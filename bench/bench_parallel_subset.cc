// Bench: the parallel subset-boosted engine against its sequential
// baseline (sfs-subset) and the plain parallel SFS, over worker thread
// counts. Reduced scale: 100K 8-D uniform-independent points; --full
// runs the 1M-point configuration of the acceptance experiment. The
// speedup column is relative to sfs-subset on the same dataset.
#include <iostream>
#include <string>

#include "src/data/generator.h"
#include "src/harness/options.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"
#include "src/parallel/parallel_skyline.h"
#include "src/parallel/parallel_subset.h"
#include "src/subset/boosted.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 1000000 : 100000;
  const Dim d = 8;

  Dataset data = Generate(DataType::kUniformIndependent, n, d, opts.seed);
  std::cerr << "  [parallel-subset] generated " << n << " x " << unsigned(d)
            << " UI points\n";

  TextTable table({"algorithm", "threads", "RT (ms)", "DT/point",
                   "speedup vs sfs-subset"});

  SfsSubset baseline;
  RunResult base = RunAlgorithm(baseline, data, opts.EffectiveRuns());
  table.AddRow({"sfs-subset", "1", TextTable::FormatNumber(base.elapsed_ms),
                TextTable::FormatNumber(base.mean_dominance_tests), "1.00"});
  std::cerr << "  [parallel-subset] sfs-subset done (" << base.elapsed_ms
            << " ms)\n";

  auto speedup = [&](double elapsed_ms) {
    return TextTable::FormatNumber(elapsed_ms > 0 ? base.elapsed_ms / elapsed_ms
                                                  : 0.0);
  };

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ParallelSubsetSfs algo(threads);
    RunResult r = RunAlgorithm(algo, data, opts.EffectiveRuns());
    table.AddRow({"parallel-subset-sfs", std::to_string(threads),
                  TextTable::FormatNumber(r.elapsed_ms),
                  TextTable::FormatNumber(r.mean_dominance_tests),
                  speedup(r.elapsed_ms)});
    std::cerr << "  [parallel-subset] parallel-subset-sfs threads=" << threads
              << " done (" << r.elapsed_ms << " ms)\n";
  }

  for (unsigned threads : {1u, 8u}) {
    ParallelSfs algo(threads);
    RunResult r = RunAlgorithm(algo, data, opts.EffectiveRuns());
    table.AddRow({"parallel-sfs", std::to_string(threads),
                  TextTable::FormatNumber(r.elapsed_ms),
                  TextTable::FormatNumber(r.mean_dominance_tests),
                  speedup(r.elapsed_ms)});
    std::cerr << "  [parallel-subset] parallel-sfs threads=" << threads
              << " done (" << r.elapsed_ms << " ms)\n";
  }

  table.Print(std::cout,
              "Parallel subset-boosted skyline (" + std::to_string(unsigned(d)) +
                  "-D UI, " + std::to_string(n) + " points)");
  return 0;
}
