// Micro benchmarks of the subset-approach building blocks: dominance
// kernels, dominating-subspace computation, SubsetIndex add/query, and
// the Merge pass, via google-benchmark.
#include <benchmark/benchmark.h>

#include <random>

#include "src/core/dominance.h"
#include "src/data/generator.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

namespace {

using namespace skyline;

void BM_DominanceTest(benchmark::State& state) {
  const Dim d = static_cast<Dim>(state.range(0));
  Dataset data = Generate(DataType::kUniformIndependent, 1024, d, 1);
  PointId a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Dominates(data.row(a), data.row(1023 - a), d));
    a = (a + 1) & 1023;
  }
}
BENCHMARK(BM_DominanceTest)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DominatingSubspace(benchmark::State& state) {
  const Dim d = static_cast<Dim>(state.range(0));
  Dataset data = Generate(DataType::kUniformIndependent, 1024, d, 1);
  PointId a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DominatingSubspace(data.row(a), data.row(1023 - a), d));
    a = (a + 1) & 1023;
  }
}
BENCHMARK(BM_DominatingSubspace)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SubsetIndexAdd(benchmark::State& state) {
  const Dim d = static_cast<Dim>(state.range(0));
  std::mt19937_64 rng(7);
  const std::uint64_t space = Subspace::Full(d).bits();
  std::vector<Subspace> masks(4096);
  for (auto& m : masks) {
    m = Subspace(rng() & space);
    if (m.empty()) m = Subspace::Single(0);
  }
  std::size_t i = 0;
  SubsetIndex index(d);
  for (auto _ : state) {
    index.Add(static_cast<PointId>(i), masks[i & 4095]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_SubsetIndexAdd)->Arg(8)->Arg(16)->Arg(32);

void BM_SubsetIndexQuery(benchmark::State& state) {
  const Dim d = static_cast<Dim>(state.range(0));
  const std::size_t stored = static_cast<std::size_t>(state.range(1));
  std::mt19937_64 rng(7);
  const std::uint64_t space = Subspace::Full(d).bits();
  SubsetIndex index(d);
  std::vector<Subspace> masks(stored);
  for (std::size_t i = 0; i < stored; ++i) {
    masks[i] = Subspace(rng() & space);
    if (masks[i].empty()) masks[i] = Subspace::Single(0);
    index.Add(static_cast<PointId>(i), masks[i]);
  }
  std::vector<PointId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    index.Query(masks[i % stored], &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_SubsetIndexQuery)
    ->Args({8, 1000})
    ->Args({8, 10000})
    ->Args({16, 10000})
    ->Args({16, 100000});

void BM_MergePass(benchmark::State& state) {
  const int sigma = static_cast<int>(state.range(0));
  Dataset data = Generate(DataType::kUniformIndependent, 20000, 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeSubspaces(data, sigma));
  }
}
BENCHMARK(BM_MergePass)->Arg(2)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
