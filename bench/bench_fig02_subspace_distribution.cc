// Figure 2: distribution of non-pruned points with respect to subspace
// size, where the single pivot is the skyline point with minimal
// Euclidean distance to the origin — i.e. the state after the *first*
// Merge iteration. AC/CO/UI, 8-D, 100K points (reduced: 10K).
#include <iostream>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/data/generator.h"
#include "src/harness/histogram.h"
#include "src/harness/options.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : 10000;
  const Dim d = 8;
  std::cout << "# Figure 2: point distribution per subspace size, single "
               "pivot (min-Euclidean skyline point), 8-D, "
            << n << " points\n\n";

  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, n, d, opts.seed);
    const PointId pivot = ArgMinScore(data, ScoreFunction::kEuclidean);
    std::vector<Subspace> masks;
    std::size_t pruned = 0;
    for (PointId q = 0; q < data.num_points(); ++q) {
      if (q == pivot) continue;
      Subspace mask = DominatingSubspace(data.row(q), data.row(pivot), d);
      if (mask.empty()) {
        ++pruned;  // dominated by (or equal to) the pivot
        continue;
      }
      masks.push_back(mask);
    }
    PrintHistogram(std::cout,
                   std::string(ShortName(type)) +
                       " dataset — non-pruned points per subspace size "
                       "(pruned by pivot: " +
                       std::to_string(pruned) + ")",
                   SubspaceSizeHistogram(masks, d));
    std::cout << '\n';
  }
  return 0;
}
