// Tables 2 and 3: mean dominance test numbers and elapsed time on the
// synthetic AC dataset with respect to the dimensionality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 2/3: AC data, dimensionality sweep");
  JsonReport report("bench_table02_03_ac_dim");
  bench::RunDimensionSweep(
      DataType::kAntiCorrelated, opts,
      "Table 2: mean dominance test numbers, AC, dimensionality sweep",
      "Table 3: elapsed time (ms), AC, dimensionality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
