// Standardized perf scenario set for the CI gate: the paper's three data
// families (UI/CO/AC) at one fixed (n, d, seed) each, across the base
// algorithms, their subset-boosted variants and the parallel engine.
// scripts/run_bench_suite.sh runs this with --quick and publishes the
// JSON as BENCH_subset.json; scripts/check_perf.py gates on the
// deterministic DT column against bench/baselines/BENCH_subset.json.
//
// Usage: bench_subset_suite [--quick|--full] [--runs=N] [--seed=N]
//                           [--json=PATH]
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : (opts.quick ? 4000 : 10000);
  const Dim d = 8;
  // The roster the perf trajectory tracks: each base directly followed
  // by its boosted variant, then the strongest baseline and the
  // parallel subset engine.
  const std::vector<std::string> roster = {
      "sfs",      "sfs-subset",  "salsa",      "salsa-subset",
      "sdi",      "sdi-subset",  "bskytree-s", "parallel-subset-sfs",
  };
  std::cout << "# Subset-suite scenario set — 8-D, n=" << n
            << ", runs=" << opts.EffectiveRuns() << ", seed=" << opts.seed
            << "\n\n";

  JsonReport report("bench_subset_suite");
  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    Dataset data = Generate(type, n, d, opts.seed);
    TextTable table({"Algorithm", "DT/point", "RT (ms)", "skyline"});
    for (const std::string& name : roster) {
      auto algo = MakeAlgorithm(name);
      RunResult r = RunAlgorithm(*algo, data, opts.EffectiveRuns());
      table.AddRow({name, TextTable::FormatNumber(r.mean_dominance_tests),
                    TextTable::FormatNumber(r.elapsed_ms),
                    std::to_string(r.skyline_size)});
      report.Add({"", bench::ScenarioLabel(type, n, d, opts.seed), name, n, d,
                  opts.seed, opts.EffectiveRuns(), r.mean_dominance_tests,
                  r.elapsed_ms, r.skyline_size});
      std::cerr << "  [suite] " << ShortName(type) << " " << name << " done\n";
    }
    table.Print(std::cout, std::string(ShortName(type)) +
                               ": subset suite, 8-D, " + std::to_string(n) +
                               " points");
    std::cout << '\n';
  }
  return bench::FinishJson(opts, report);
}
