// Server scenario set for the CI perf gate: a skewed Zipf subspace
// stream, answered by the batching SkylineServer vs. a naive
// one-thread-per-request baseline that recomputes every answer from
// scratch with the same engine.
//
// Two kinds of measurements:
//
//   * Deterministic dominance-test records (hard-gated). The batched
//     run defers Start() until the whole stream is queued and uses a
//     single worker, so batch composition — and therefore the inner
//     QueryService's dominance-test counters — is a pure function of
//     the seed. The naive count weighs one cold compute per distinct
//     cuboid by its stream frequency, exactly like bench_query_service.
//   * Open-loop latency (advisory rt_ms, dt_per_point = 0 so the DT
//     comparison is skipped). Arrivals follow a seeded exponential
//     schedule whose offered load is 2x the naive baseline's measured
//     capacity; per-request latency runs from the scheduled arrival to
//     resolution, p99 taken over exact sorted latencies (not histogram
//     buckets).
//
// Records per scenario (dt_per_point semantics in brackets):
//
//   server-batched     [dominance tests / request through the batching
//                       server: coalescing + union seeding + cache]
//   server-naive       [dominance tests / request when every request
//                       recomputes cold]
//   server-dt-speedup  [naive / batched dominance-test ratio; >= 2
//                       also enforced here]
//   server-stale       [stale-path dominance tests / request when every
//                       request degrades to the pinned ancestor]
//   server-shed        [dominance tests / request when every request is
//                       shed: the pinned construction cost amortized]
//   server-p99-ms      [0; rt_ms = server p99 latency, advisory]
//   server-p99-naive-ms[0; rt_ms = naive p99 latency, advisory]
//   server-p99-x       [0; rt_ms = naive/server p99 ratio; >= 2 also
//                       enforced here — the tentpole acceptance gate]
//
// Every kOk answer is verified against SubspaceSkyline and every kStale
// answer is verified to be a sorted subset of it before anything is
// reported.
//
// Usage: bench_server [--quick|--full] [--seed=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/histogram.h"
#include "src/server/server.h"
#include "src/skycube/skycube.h"

namespace {

using namespace skyline;
using Clock = std::chrono::steady_clock;

/// Deterministic Zipf(s=1) sampler over `universe` ranks: rank r is
/// drawn with probability proportional to 1/(r+1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t universe, std::uint64_t seed) : rng_(seed) {
    cumulative_.reserve(universe);
    double total = 0;
    for (std::size_t r = 0; r < universe; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cumulative_.push_back(total);
    }
  }

  std::size_t Next() {
    std::uniform_real_distribution<double> uniform(0.0, cumulative_.back());
    const double u = uniform(rng_);
    return static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::vector<double> cumulative_;
};

/// The request mix: Zipf-ranked over a seeded shuffle of all non-empty
/// subspaces, so the hot set spans sizes 1..d rather than low masks.
std::vector<Subspace> MakeQueryStream(Dim d, std::size_t num_requests,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> masks;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
    masks.push_back(bits);
  }
  std::mt19937_64 shuffle_rng(seed ^ 0x5ca1ab1e);
  std::shuffle(masks.begin(), masks.end(), shuffle_rng);
  ZipfSampler zipf(masks.size(), seed ^ 0xbeefcafe);
  std::vector<Subspace> stream;
  stream.reserve(num_requests);
  for (std::size_t q = 0; q < num_requests; ++q) {
    stream.push_back(Subspace(masks[zipf.Next()]));
  }
  return stream;
}

/// One cold per-request compute with the engine the service itself
/// uses — the unit of work of the naive baseline.
std::vector<PointId> NaiveCompute(const Dataset& data, Subspace v,
                                  QueryStatsSnapshot* stats_out = nullptr) {
  QueryServiceOptions one_shot;
  one_shot.pin_full_space = false;
  one_shot.max_entries = 1;
  QueryService cold(data, one_shot);
  std::vector<PointId> ids = cold.Query(v);
  if (stats_out != nullptr) *stats_out = cold.Stats();
  return ids;
}

double ExactP99Ms(std::vector<double> latencies_ms) {
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(latencies_ms.size())));
  return latencies_ms[std::min(idx, latencies_ms.size()) - 1];
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// The miss-heavy batching configuration shared by the deterministic
/// and the open-loop runs: unpinned, a cache smaller than the lattice,
/// union seeding on.
ServerOptions BatchedOptions(bool quick, std::size_t num_requests) {
  ServerOptions options;
  options.queue_capacity = num_requests;
  options.max_batch_cuboids = 16;
  options.union_seed_threshold = 2;
  options.query.pin_full_space = false;
  options.query.max_entries = quick ? 24 : 96;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : (opts.quick ? 2000 : 10000);
  const Dim d = opts.quick ? 6 : 8;
  const std::size_t num_requests = opts.full ? 2000 : (opts.quick ? 400 : 800);
  const double q = static_cast<double>(num_requests);

  std::cout << "# Skyline server — Zipf request mix, batching vs naive "
            << "thread-per-request, n=" << n << ", d="
            << static_cast<unsigned>(d) << ", requests=" << num_requests
            << ", seed=" << opts.seed << "\n\n";

  JsonReport report("bench_server");
  TextTable table({"Scenario", "DT/q naive", "DT/q batched", "DTx",
                   "p99 naive", "p99 server", "p99x", "DT/q stale",
                   "DT/q shed"});

  for (DataType type : {DataType::kUniformIndependent, DataType::kCorrelated,
                        DataType::kAntiCorrelated}) {
    const Dataset data = Generate(type, n, d, opts.seed);
    const std::vector<Subspace> stream =
        MakeQueryStream(d, num_requests, opts.seed);
    const std::string label = bench::ScenarioLabel(type, n, d, opts.seed);

    std::vector<std::uint64_t> occurrences(std::size_t{1} << d, 0);
    for (Subspace v : stream) ++occurrences[v.bits()];

    // Oracles for every cuboid the stream touches.
    std::map<std::uint64_t, std::vector<PointId>> oracles;
    for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << d); ++bits) {
      if (occurrences[bits] != 0) {
        oracles[bits] = SubspaceSkyline(data, Subspace(bits));
      }
    }

    // ---- Naive baseline, deterministic part: one cold compute per
    // distinct cuboid, weighted by stream frequency.
    double naive_total_tests = 0;
    double naive_rt_ms = 0;
    for (const auto& [bits, oracle] : oracles) {
      QueryStatsSnapshot one;
      const auto start = Clock::now();
      const std::vector<PointId> ids =
          NaiveCompute(data, Subspace(bits), &one);
      const double ms = MsBetween(start, Clock::now());
      if (ids != oracle) {
        std::cerr << "[bench_server] naive answer differs from "
                  << "SubspaceSkyline on cuboid "
                  << Subspace(bits).ToString() << "\n";
        return 1;
      }
      const double w = static_cast<double>(occurrences[bits]);
      naive_total_tests += static_cast<double>(one.dominance_tests()) * w;
      naive_rt_ms += ms * w;
    }
    const double naive_dt = naive_total_tests / q;

    // ---- Batched server, deterministic run: the whole stream queued
    // before a single worker starts, so batch composition (and the
    // dominance-test counters) depend only on the seed.
    double batched_dt = 0;
    double batched_rt_ms = 0;
    {
      ServerOptions options = BatchedOptions(opts.quick, num_requests);
      options.auto_start = false;
      options.workers = 1;
      options.inline_fast_hits = false;  // every request flows through a batch
      SkylineServer server(data, options);
      std::vector<ResponseHandle> handles;
      handles.reserve(num_requests);
      for (Subspace v : stream) handles.push_back(server.Submit(v));
      const auto start = Clock::now();
      server.Start();
      for (std::size_t i = 0; i < num_requests; ++i) {
        const ServerResponse response = handles[i].Wait();
        if (response.status != StatusCode::kOk ||
            response.ids != oracles.at(stream[i].bits())) {
          std::cerr << "[bench_server] batched answer differs from "
                    << "SubspaceSkyline on cuboid " << stream[i].ToString()
                    << " (" << StatusCodeName(response.status) << ")\n";
          return 1;
        }
      }
      batched_rt_ms = MsBetween(start, Clock::now());
      const ServerStatsSnapshot stats = server.Stats();
      batched_dt = static_cast<double>(stats.query.dominance_tests()) / q;
      std::cerr << "  [server] " << label << " batched: "
                << stats.batches << " cycles, mean batch "
                << TextTable::FormatNumber(stats.MeanBatchSize())
                << ", union seeds " << stats.union_seeds << "\n";
    }
    const double dt_speedup = batched_dt > 0 ? naive_dt / batched_dt : 0;
    if (dt_speedup < 2.0) {
      std::cerr << "[bench_server] " << label << ": dominance-test speedup "
                << dt_speedup << " fell below the 2x gate\n";
      return 1;
    }

    // ---- Degraded modes, deterministic. Stale: a zero-capacity queue
    // under kServeStale degrades every request to the pinned full-space
    // ancestor at admission — no worker involved. Shed: every request
    // expires before its dispatch, so the only dominance tests are the
    // pinned construction, amortized over the stream.
    double stale_dt = 0;
    std::size_t full_size = 0;
    {
      ServerOptions options;
      options.auto_start = false;
      options.queue_capacity = 0;
      options.policy = OverloadPolicy::kServeStale;
      options.inline_fast_hits = false;
      SkylineServer server(data, options);
      full_size = server.Query(Subspace::Full(d)).ids.size();
      for (Subspace v : stream) {
        const ServerResponse response = server.Query(v);
        const std::vector<PointId>& oracle = oracles.at(v.bits());
        const bool sound =
            response.ok() &&
            std::is_sorted(response.ids.begin(), response.ids.end()) &&
            std::includes(oracle.begin(), oracle.end(), response.ids.begin(),
                          response.ids.end());
        if (!sound) {
          std::cerr << "[bench_server] stale answer is not a sorted subset "
                    << "of the skyline on cuboid " << v.ToString() << "\n";
          return 1;
        }
      }
      stale_dt = static_cast<double>(server.Stats().stale_tests) / q;
    }

    double shed_dt = 0;
    {
      ServerOptions options;
      options.auto_start = false;
      options.workers = 1;
      options.policy = OverloadPolicy::kShedExpired;
      options.inline_fast_hits = false;
      SkylineServer server(data, options);
      std::vector<ResponseHandle> handles;
      handles.reserve(num_requests);
      for (Subspace v : stream) {
        handles.push_back(server.Submit(v, std::chrono::nanoseconds(0)));
      }
      server.Start();
      for (const ResponseHandle& h : handles) {
        if (h.Wait().status != StatusCode::kDeadlineExceeded) {
          std::cerr << "[bench_server] expired request was not shed\n";
          return 1;
        }
      }
      const ServerStatsSnapshot stats = server.Stats();
      if (stats.query.queries != 0) {
        std::cerr << "[bench_server] shed run still computed "
                  << stats.query.queries << " queries\n";
        return 1;
      }
      shed_dt = static_cast<double>(stats.query.dominance_tests()) / q;
    }

    // ---- Open-loop latency: the same seeded exponential arrival
    // schedule drives both systems, offered at 2x the naive baseline's
    // measured capacity. Latency runs from the SCHEDULED arrival to
    // resolution, so submitter lag counts against the system (open
    // loop), and p99 is exact, not histogram-bucketed.
    std::vector<double> arrival_ms;
    {
      arrival_ms.reserve(num_requests);
      std::mt19937_64 rng(opts.seed ^ 0xa11ca115);
      std::exponential_distribution<double> gap(2.0 * q / naive_rt_ms);
      double t = 0;
      for (std::size_t i = 0; i < num_requests; ++i) {
        t += gap(rng);
        arrival_ms.push_back(t);
      }
    }
    auto arrival_at = [&](Clock::time_point t0, std::size_t i) {
      return t0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          arrival_ms[i]));
    };

    std::vector<double> naive_lat_ms(num_requests);
    {
      std::vector<std::thread> threads;
      threads.reserve(num_requests);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < num_requests; ++i) {
        const auto arrival = arrival_at(t0, i);
        std::this_thread::sleep_until(arrival);
        threads.emplace_back([&, i, arrival] {
          NaiveCompute(data, stream[i]);
          naive_lat_ms[i] = MsBetween(arrival, Clock::now());
        });
      }
      for (std::thread& t : threads) t.join();
    }

    std::vector<double> server_lat_ms(num_requests);
    {
      SkylineServer server(data, BatchedOptions(opts.quick, num_requests));
      std::vector<ResponseHandle> handles;
      handles.reserve(num_requests);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < num_requests; ++i) {
        std::this_thread::sleep_until(arrival_at(t0, i));
        handles.push_back(server.Submit(stream[i]));
      }
      for (std::size_t i = 0; i < num_requests; ++i) {
        const ServerResponse response = handles[i].Wait();
        if (response.status != StatusCode::kOk ||
            response.ids != oracles.at(stream[i].bits())) {
          std::cerr << "[bench_server] open-loop answer differs from "
                    << "SubspaceSkyline on cuboid " << stream[i].ToString()
                    << " (" << StatusCodeName(response.status) << ")\n";
          return 1;
        }
        server_lat_ms[i] = MsBetween(arrival_at(t0, i), response.resolved_at);
      }
      PrintLatencySummary(std::cout, "  " + label + " queue wait",
                          server.Stats().queue_wait);
    }

    const double naive_p99 = ExactP99Ms(naive_lat_ms);
    const double server_p99 = ExactP99Ms(server_lat_ms);
    const double p99_ratio = server_p99 > 0 ? naive_p99 / server_p99 : 0;
    // The tentpole acceptance gate: batching must improve p99 latency
    // by >= 2x over thread-per-request under the same open-loop load.
    if (p99_ratio < 2.0) {
      std::cerr << "[bench_server] " << label << ": p99 improvement "
                << p99_ratio << "x fell below the 2x gate (naive "
                << naive_p99 << " ms, server " << server_p99 << " ms)\n";
      return 1;
    }

    table.AddRow({label, TextTable::FormatNumber(naive_dt),
                  TextTable::FormatNumber(batched_dt),
                  TextTable::FormatNumber(dt_speedup),
                  TextTable::FormatNumber(naive_p99),
                  TextTable::FormatNumber(server_p99),
                  TextTable::FormatNumber(p99_ratio),
                  TextTable::FormatNumber(stale_dt),
                  TextTable::FormatNumber(shed_dt)});

    report.Add({"", label, "server-batched", n, d, opts.seed, 1, batched_dt,
                batched_rt_ms, full_size});
    report.Add({"", label, "server-naive", n, d, opts.seed, 1, naive_dt,
                naive_rt_ms, full_size});
    report.Add({"", label, "server-dt-speedup", n, d, opts.seed, 1,
                dt_speedup, 0.0, full_size});
    report.Add({"", label, "server-stale", n, d, opts.seed, 1, stale_dt, 0.0,
                full_size});
    report.Add({"", label, "server-shed", n, d, opts.seed, 1, shed_dt, 0.0,
                full_size});
    report.Add({"", label, "server-p99-ms", n, d, opts.seed, 1, 0.0,
                server_p99, full_size});
    report.Add({"", label, "server-p99-naive-ms", n, d, opts.seed, 1, 0.0,
                naive_p99, full_size});
    report.Add({"", label, "server-p99-x", n, d, opts.seed, 1, 0.0,
                p99_ratio, full_size});
    std::cerr << "  [server] " << label << " done (DT "
              << TextTable::FormatNumber(dt_speedup) << "x, p99 "
              << TextTable::FormatNumber(p99_ratio) << "x)\n";
  }

  table.Print(std::cout,
              "Skyline server: batched admission vs naive thread-per-request");
  std::cout << '\n';
  return bench::FinishJson(opts, report);
}
