// Tables 10 and 11: mean dominance test numbers and elapsed time on the
// synthetic UI dataset with respect to the dimensionality.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  bench::PrintScaleBanner(opts, "Tables 10/11: UI data, dimensionality sweep");
  JsonReport report("bench_table10_11_ui_dim");
  bench::RunDimensionSweep(
      DataType::kUniformIndependent, opts,
      "Table 10: mean dominance test numbers, UI, dimensionality sweep",
      "Table 11: elapsed time (ms), UI, dimensionality sweep",
      &report);
  return bench::FinishJson(opts, report);
}
