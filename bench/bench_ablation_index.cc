// Ablation study of the design choices DESIGN.md calls out:
//  (a) sigma vs pivot count / index size / candidate-set size — how the
//      stability threshold controls the Merge pass;
//  (b) SubsetIndex retrieval vs a brute-force superset filter over the
//      stored (mask, id) pairs — what the prefix tree actually buys;
//  (c) candidate-set size vs full-skyline scan — the Lemma 5.1 pruning
//      factor that the boosted algorithms exploit.
#include <chrono>
#include <iostream>
#include <random>

#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/harness/options.h"
#include "src/harness/table.h"
#include "src/subset/merge.h"
#include "src/subset/subset_index.h"

int main(int argc, char** argv) {
  using namespace skyline;
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::size_t n = opts.full ? 100000 : 10000;
  const Dim d = 8;
  std::cout << "# Ablation: subset-index design choices (8-D UI, " << n
            << " points)\n\n";
  Dataset data = Generate(DataType::kUniformIndependent, n, d, opts.seed);

  // (a) sigma vs Merge outcome and boosted-run statistics.
  {
    TextTable table({"sigma", "pivots", "pruned", "remaining",
                     "index nodes", "mean candidates/query", "DT (sdi-subset)"});
    for (int sigma = 2; sigma <= static_cast<int>(d); ++sigma) {
      MergeResult merge = MergeSubspaces(data, sigma);
      SubsetIndex index(d);
      for (std::size_t i = 0; i < merge.remaining.size(); ++i) {
        index.Add(merge.remaining[i], merge.subspaces[i]);
      }
      AlgorithmOptions algo_opts;
      algo_opts.sigma = sigma;
      SkylineStats stats;
      MakeAlgorithm("sdi-subset", algo_opts)->Compute(data, &stats);
      const double mean_candidates =
          stats.index_queries == 0
              ? 0.0
              : static_cast<double>(stats.index_candidates) /
                    static_cast<double>(stats.index_queries);
      table.AddRow({std::to_string(sigma),
                    std::to_string(merge.pivots.size()),
                    std::to_string(merge.pruned),
                    std::to_string(merge.remaining.size()),
                    std::to_string(index.num_nodes()),
                    TextTable::FormatNumber(mean_candidates),
                    TextTable::FormatNumber(
                        stats.MeanDominanceTests(data.num_points()))});
    }
    table.Print(std::cout, "Ablation (a): stability threshold vs Merge/index");
    std::cout << '\n';
  }

  // (b) prefix-tree query vs brute-force superset filter.
  {
    MergeResult merge = MergeSubspaces(data, 3);
    SubsetIndex index(d);
    std::vector<std::pair<PointId, Subspace>> flat;
    for (std::size_t i = 0; i < merge.remaining.size(); ++i) {
      index.Add(merge.remaining[i], merge.subspaces[i]);
      flat.emplace_back(merge.remaining[i], merge.subspaces[i]);
    }
    const int kQueries = 20000;
    std::mt19937_64 rng(opts.seed);
    std::vector<Subspace> queries(kQueries);
    for (auto& q : queries) {
      q = merge.subspaces[rng() % merge.subspaces.size()];
    }
    std::vector<PointId> out;
    std::size_t sink = 0;

    auto t0 = std::chrono::steady_clock::now();
    for (const Subspace& q : queries) {
      out.clear();
      index.Query(q, &out);
      sink += out.size();
    }
    auto t1 = std::chrono::steady_clock::now();
    for (const Subspace& q : queries) {
      out.clear();
      for (const auto& [id, mask] : flat) {
        if (mask.IsSupersetOf(q)) out.push_back(id);
      }
      sink += out.size();
    }
    auto t2 = std::chrono::steady_clock::now();
    const double tree_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double brute_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    TextTable table({"Retrieval", "stored", "queries", "total ms"});
    table.AddRow({"prefix tree (Algorithms 3/4)",
                  std::to_string(flat.size()), std::to_string(kQueries),
                  TextTable::FormatNumber(tree_ms)});
    table.AddRow({"brute-force superset filter", std::to_string(flat.size()),
                  std::to_string(kQueries), TextTable::FormatNumber(brute_ms)});
    table.Print(std::cout, "Ablation (b): index vs linear superset filter "
                           "(checksum " + std::to_string(sink % 1000) + ")");
    std::cout << '\n';
  }

  // (c) Lemma 5.1 pruning factor: candidates per query vs skyline size.
  {
    SkylineStats stats;
    auto skyline = MakeAlgorithm("sdi-subset")->Compute(data, &stats);
    const double mean_candidates =
        static_cast<double>(stats.index_candidates) /
        static_cast<double>(stats.index_queries);
    TextTable table({"quantity", "value"});
    table.AddRow({"skyline size", std::to_string(skyline.size())});
    table.AddRow({"index queries", std::to_string(stats.index_queries)});
    table.AddRow({"mean candidates per query",
                  TextTable::FormatNumber(mean_candidates)});
    table.AddRow(
        {"pruning factor vs full-skyline scan",
         TextTable::FormatNumber(static_cast<double>(skyline.size()) /
                                 mean_candidates)});
    table.Print(std::cout, "Ablation (c): Lemma 5.1 candidate pruning");
  }
  return 0;
}
