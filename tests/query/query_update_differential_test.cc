// The ISSUE 9 acceptance test: reader threads hammer Query/PeekExact
// while a writer thread applies insert/remove bursts, and every answer
// is checked against a recompute-from-scratch oracle AT THE EPOCH THE
// ANSWER REPORTS. Runs under TSan and ASan via the sanitizer presets
// (label `query`).
//
// The check exploits two properties the service guarantees:
//   * rows are append-only and ids stable, so the FINAL version can
//     replay any earlier epoch — the test writer records, per epoch,
//     the number of appended rows and the cumulative tombstone set;
//   * every answer carries the epoch it reflects, so readers can defer
//     verification to the end instead of racing the writer for a
//     matching snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/core/dataset.h"
#include "src/data/generator.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

constexpr int kReaders = 4;
constexpr int kQueriesPerReader = 150;
constexpr int kUpdates = 60;
constexpr Dim kDims = 4;

// Deterministic per-thread mixing (tests must not depend on timing for
// coverage of the cuboid lattice).
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct EpochSpec {
  std::size_t num_rows = 0;          // rows appended through this epoch
  std::vector<PointId> tombstones;   // cumulative removed ids
};

struct Observation {
  Subspace v;
  std::uint64_t epoch;
  std::vector<PointId> ids;
};

std::vector<PointId> OracleAtEpoch(const Dataset& final_rows,
                                   const EpochSpec& spec, Subspace v) {
  std::vector<PointId> live_ids;
  Dataset dense(final_rows.num_dims());
  for (PointId id = 0; id < spec.num_rows; ++id) {
    if (std::binary_search(spec.tombstones.begin(), spec.tombstones.end(), id))
      continue;
    live_ids.push_back(id);
    dense.Append(final_rows.point(id));
  }
  std::vector<PointId> out;
  for (PointId p : SubspaceSkyline(dense, v)) out.push_back(live_ids[p]);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QueryUpdateDifferentialTest, ConcurrentQueriesAndUpdatesMatchOracle) {
  const Dataset seed_data =
      Generate(DataType::kAntiCorrelated, 600, kDims, 1234);
  QueryServiceOptions options;
  options.max_entries = 8;  // force eviction + recompute churn too
  QueryService service(seed_data, options);

  // The writer publishes, under a mutex, the replay spec of every epoch
  // it has created; readers only record observations and verify later.
  std::mutex spec_mu;
  std::map<std::uint64_t, EpochSpec> specs;
  specs[0] = EpochSpec{seed_data.num_points(), {}};

  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> threads;

  std::thread writer([&] {
    std::uint64_t rng = 77;
    std::size_t next_row = seed_data.num_points();
    std::vector<PointId> tombstones;  // cumulative, sorted
    for (int u = 0; u < kUpdates; ++u) {
      rng = Mix(rng + u);
      // 1-3 inserts; every third burst also removes one live id.
      const std::size_t k = 1 + rng % 3;
      std::vector<Value> rows;
      for (std::size_t i = 0; i < k * kDims; ++i) {
        rng = Mix(rng);
        rows.push_back(static_cast<Value>(rng % 1000) / 1000.0);
      }
      std::vector<PointId> removes;
      if (u % 3 == 2) {
        rng = Mix(rng);
        PointId victim = static_cast<PointId>(rng % next_row);
        while (std::binary_search(tombstones.begin(), tombstones.end(),
                                  victim)) {
          victim = (victim + 1) % next_row;
        }
        removes.push_back(victim);
      }
      const std::uint64_t epoch = service.ApplyUpdate(rows, removes);
      next_row += k;
      tombstones.insert(
          std::upper_bound(tombstones.begin(), tombstones.end(),
                           removes.empty() ? 0 : removes[0]),
          removes.begin(), removes.end());
      {
        std::lock_guard<std::mutex> lock(spec_mu);
        specs[epoch] = EpochSpec{next_row, tombstones};
      }
    }
  });

  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 1000 + static_cast<std::uint64_t>(t);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        rng = Mix(rng + static_cast<std::uint64_t>(q));
        const Subspace v(1 + rng % ((1u << kDims) - 1));
        std::uint64_t epoch = 0;
        if (rng % 5 == 0) {
          // Current-epoch-only probe: a hit must be exact at its epoch.
          std::vector<PointId> ids;
          std::uint64_t delta = 99;
          if (service.PeekExact(v, &ids, &epoch, &delta)) {
            observed[t].push_back({v, epoch, std::move(ids)});
          }
        } else {
          observed[t].push_back({v, 0, {}});
          Observation& obs = observed[t].back();
          obs.ids = service.Query(v, &obs.epoch);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  writer.join();

  // Every epoch must have been published (the writer created them all).
  ASSERT_EQ(specs.size(), static_cast<std::size_t>(kUpdates) + 1);
  const DatasetVersionPtr final_version = service.current_version();
  ASSERT_EQ(final_version->epoch, static_cast<std::uint64_t>(kUpdates));

  std::size_t checked = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    for (const Observation& obs : per_thread) {
      const auto it = specs.find(obs.epoch);
      ASSERT_NE(it, specs.end()) << "answer reported unknown epoch "
                                 << obs.epoch;
      EXPECT_EQ(obs.ids,
                OracleAtEpoch(final_version->data, it->second, obs.v))
          << "cuboid " << obs.v.ToString() << " at epoch " << obs.epoch;
      ++checked;
    }
  }
  EXPECT_GE(checked, static_cast<std::size_t>(kReaders) *
                         (kQueriesPerReader * 3 / 5));

  // Terminal sweep: after the dust settles, the service agrees with the
  // final-epoch oracle on every cuboid.
  for (std::uint64_t bits = 1; bits < (1u << kDims); ++bits) {
    const Subspace v(bits);
    std::uint64_t epoch = 0;
    EXPECT_EQ(service.Query(v, &epoch),
              OracleAtEpoch(final_version->data,
                            specs.at(final_version->epoch), v));
    EXPECT_EQ(epoch, final_version->epoch);
  }

  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(stats.epoch, static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(stats.queries, stats.hits + stats.misses());
}

TEST(QueryUpdateDifferentialTest, ServeStaleBurstKeepsPeekAnswersSound) {
  // kServeStale's backing contract: during an update burst, opting into
  // stale Peek answers must still return an answer that is exact for
  // the (older) epoch it is tagged with, never a torn or mixed one.
  const Dataset seed_data =
      Generate(DataType::kUniformIndependent, 400, kDims, 4321);
  QueryService service(seed_data);
  for (std::uint64_t bits = 1; bits < (1u << kDims); ++bits) {
    service.Query(Subspace(bits));
  }

  std::mutex spec_mu;
  std::map<std::uint64_t, EpochSpec> specs;
  specs[0] = EpochSpec{seed_data.num_points(), {}};

  std::vector<Observation> stale_hits;
  std::mutex hits_mu;
  std::thread reader([&] {
    std::uint64_t rng = 9;
    for (int q = 0; q < 400; ++q) {
      rng = Mix(rng + static_cast<std::uint64_t>(q));
      const Subspace v(1 + rng % ((1u << kDims) - 1));
      std::vector<PointId> ids;
      std::uint64_t epoch = 0, delta = 0;
      if (service.PeekExact(v, &ids, &epoch, &delta)) {
        std::lock_guard<std::mutex> lock(hits_mu);
        stale_hits.push_back({v, epoch, std::move(ids)});
      }
    }
  });

  std::uint64_t rng = 5150;
  std::size_t next_row = seed_data.num_points();
  for (int u = 0; u < 30; ++u) {
    rng = Mix(rng);
    std::vector<Value> row;
    for (Dim d = 0; d < kDims; ++d) {
      rng = Mix(rng);
      row.push_back(static_cast<Value>(rng % 1000) / 1000.0);
    }
    const std::uint64_t epoch = service.ApplyUpdate(row, {});
    ++next_row;
    std::lock_guard<std::mutex> lock(spec_mu);
    specs[epoch] = EpochSpec{next_row, {}};
  }
  reader.join();

  const DatasetVersionPtr final_version = service.current_version();
  for (const Observation& obs : stale_hits) {
    const auto it = specs.find(obs.epoch);
    ASSERT_NE(it, specs.end());
    EXPECT_EQ(obs.ids, OracleAtEpoch(final_version->data, it->second, obs.v))
        << "cuboid " << obs.v.ToString() << " at epoch " << obs.epoch;
  }
  EXPECT_FALSE(stale_hits.empty());
}

}  // namespace
}  // namespace skyline
