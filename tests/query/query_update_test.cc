// Unit tests of QueryService::ApplyUpdate: epoch bumping, the
// insert/remove repair rules, invalidation, the pinned full-space
// seed's eager maintenance, the Peek epoch opt-in contract, and the
// epoch edge cases of ISSUE 9 (update overtaking an in-flight compute,
// removal of a pinned seed member, empty batches).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/core/dataset.h"
#include "src/data/generator.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

// Recompute-from-scratch oracle over a version's live rows: densify,
// run the reference SubspaceSkyline, map row indices back to stable
// point ids.
std::vector<PointId> OracleSkyline(const DatasetVersion& version, Subspace v) {
  std::vector<PointId> live_ids;
  Dataset dense(version.data.num_dims());
  for (PointId id = 0; id < version.data.num_points(); ++id) {
    if (!version.IsLive(id)) continue;
    live_ids.push_back(id);
    dense.Append(version.data.point(id));
  }
  std::vector<PointId> out;
  for (PointId p : SubspaceSkyline(dense, v)) out.push_back(live_ids[p]);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectAllCuboidsMatchOracle(QueryService& service) {
  const DatasetVersionPtr version = service.current_version();
  const std::uint64_t full = (std::uint64_t{1} << version->data.num_dims()) - 1;
  for (std::uint64_t bits = 1; bits <= full; ++bits) {
    const Subspace v(bits);
    std::uint64_t epoch = 0;
    EXPECT_EQ(service.Query(v, &epoch), OracleSkyline(*version, v))
        << "cuboid " << v.ToString();
    EXPECT_EQ(epoch, version->epoch);
  }
}

TEST(QueryUpdateTest, EmptyUpdateIsANoOp) {
  const Dataset data = Generate(DataType::kUniformIndependent, 100, 3, 40);
  QueryService service(data);
  EXPECT_EQ(service.ApplyUpdate({}, {}), 0u);
  EXPECT_EQ(service.epoch(), 0u);
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates, 0u);
  EXPECT_EQ(stats.update_latency.total, 0u);
}

TEST(QueryUpdateTest, InsertBumpsEpochAndAssignsAppendedIds) {
  const Dataset data = Generate(DataType::kUniformIndependent, 50, 3, 41);
  QueryService service(data);
  const std::vector<Value> rows = {0.5, 0.5, 0.5, 0.25, 0.9, 0.1};
  EXPECT_EQ(service.ApplyUpdate(rows, {}), 1u);
  EXPECT_EQ(service.epoch(), 1u);

  const DatasetVersionPtr version = service.current_version();
  EXPECT_EQ(version->epoch, 1u);
  EXPECT_EQ(version->data.num_points(), 52u);
  EXPECT_EQ(version->num_live, 52u);
  EXPECT_TRUE(version->IsLive(50));
  EXPECT_EQ(version->data.at(50, 0), 0.5);
  EXPECT_EQ(version->data.at(51, 1), 0.9);

  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.insert_points, 2u);
  EXPECT_EQ(stats.remove_points, 0u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.live_points, 52u);
  EXPECT_EQ(stats.update_latency.total, 1u);
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, DominatedInsertRepairsCachedCuboids) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 42);
  QueryService service(data);
  for (std::uint64_t bits = 1; bits < 8; ++bits) service.Query(Subspace(bits));
  const std::vector<PointId> before = service.Query(Subspace::Full(3));

  // A point dominated by everything cannot join any cuboid's skyline:
  // every cached entry repairs in place and stays current.
  const std::uint64_t repaired_before = service.Stats().repaired;
  service.ApplyUpdate(std::vector<Value>{2.0, 2.0, 2.0}, {});
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.repaired - repaired_before, 7u);
  EXPECT_EQ(stats.invalidated, 0u);
  EXPECT_EQ(stats.stale_entries, 0u);
  EXPECT_GT(stats.update_tests, 0u);

  // Repaired entries serve hits at the new epoch — no recompute.
  const std::uint64_t hits_before = stats.hits;
  std::uint64_t epoch = 0;
  EXPECT_EQ(service.Query(Subspace::Full(3), &epoch), before);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(service.Stats().hits, hits_before + 1);
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, DominatingInsertJoinsAndEvictsViaRepair) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 43);
  QueryService service(data);
  for (std::uint64_t bits = 1; bits < 8; ++bits) service.Query(Subspace(bits));

  // A point that dominates every row takes over every cuboid — still a
  // repair (insert rule), never an invalidation.
  service.ApplyUpdate(std::vector<Value>{-1.0, -1.0, -1.0}, {});
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.invalidated, 0u);
  EXPECT_GE(stats.repaired, 7u);
  for (std::uint64_t bits = 1; bits < 8; ++bits) {
    EXPECT_EQ(service.Query(Subspace(bits)), (std::vector<PointId>{200}));
  }
}

TEST(QueryUpdateTest, RemoveOfNonMemberRepairsRemoveOfMemberInvalidates) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 44);
  QueryServiceOptions options;
  options.pin_full_space = false;
  QueryService service(data, options);
  const Subspace v = Subspace::Full(3);
  const std::vector<PointId> sky = service.Query(v);
  ASSERT_FALSE(sky.empty());

  // Remove a non-member: the cached answer stays valid (remove rule).
  PointId non_member = 0;
  while (std::binary_search(sky.begin(), sky.end(), non_member)) ++non_member;
  service.ApplyUpdate({}, std::vector<PointId>{non_member});
  QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_EQ(stats.invalidated, 0u);
  std::uint64_t epoch = 0;
  EXPECT_EQ(service.Query(v, &epoch), sky);
  EXPECT_EQ(epoch, 1u);

  // Remove a member: unrepairable — the entry goes stale and the next
  // query recomputes at the new epoch.
  service.ApplyUpdate({}, std::vector<PointId>{sky.front()});
  stats = service.Stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.stale_entries, 1u);
  const std::uint64_t misses_before = stats.misses();
  EXPECT_EQ(service.Query(v, &epoch), OracleSkyline(*service.current_version(), v));
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(service.Stats().misses(), misses_before + 1);
  EXPECT_EQ(service.Stats().stale_entries, 0u);  // replaced in place
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, RemovedPinnedSeedMemberIsRecomputedEagerly) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 45);
  QueryService service(data);  // pinned full space
  const std::vector<PointId> sky = service.Query(Subspace::Full(4));
  ASSERT_FALSE(sky.empty());

  service.ApplyUpdate({}, std::vector<PointId>{sky.front()});
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.pinned_recomputes, 1u);
  EXPECT_EQ(stats.stale_entries, 0u);  // the pin never goes stale

  // The recomputed pin still seeds every first subspace query: no cold
  // misses beyond construction.
  for (std::uint64_t bits = 1; bits < 15; ++bits) service.Query(Subspace(bits));
  EXPECT_EQ(service.Stats().cold, 0u);
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, PeekExactEpochOptInContract) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 46);
  QueryServiceOptions options;
  options.pin_full_space = false;
  QueryService service(data, options);
  const Subspace v = Subspace::Full(3);
  const std::vector<PointId> sky = service.Query(v);

  // Invalidate the entry by removing a member.
  service.ApplyUpdate({}, std::vector<PointId>{sky.front()});

  // Default probe: a stale entry is never served silently.
  std::vector<PointId> ids;
  EXPECT_FALSE(service.PeekExact(v, &ids));

  // Opting in via epoch_delta returns it, tagged with its age.
  std::uint64_t entry_epoch = 99, delta = 99;
  ASSERT_TRUE(service.PeekExact(v, &ids, &entry_epoch, &delta));
  EXPECT_EQ(ids, sky);
  EXPECT_EQ(entry_epoch, 0u);
  EXPECT_EQ(delta, 1u);

  // After a fresh compute the probe serves current with delta 0.
  service.Query(v);
  ASSERT_TRUE(service.PeekExact(v, &ids, &entry_epoch, &delta));
  EXPECT_EQ(entry_epoch, 1u);
  EXPECT_EQ(delta, 0u);
  EXPECT_TRUE(service.PeekExact(v, nullptr));
}

TEST(QueryUpdateTest, PeekNearestAncestorPrefersFresherEpochs) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 47);
  QueryServiceOptions options;
  options.pin_full_space = false;
  QueryService service(data, options);
  const Subspace target{0};
  const std::vector<PointId> full_sky = service.Query(Subspace::Full(3));

  // Make the full-space entry stale (remove one of its members), then
  // cache a current-epoch ancestor {0,1}.
  service.ApplyUpdate({}, std::vector<PointId>{full_sky.front()});
  const std::vector<PointId> pair_sky = service.Query(Subspace{0, 1});

  // Without the opt-in only the current-epoch ancestor is eligible.
  Subspace ancestor;
  std::vector<PointId> ids;
  ASSERT_TRUE(service.PeekNearestAncestor(target, &ancestor, &ids));
  EXPECT_EQ(ancestor, (Subspace{0, 1}));
  EXPECT_EQ(ids, pair_sky);

  // With the opt-in the current ancestor still ranks first (delta 0
  // beats delta 1 regardless of size).
  std::uint64_t entry_epoch = 99, delta = 99;
  ASSERT_TRUE(service.PeekNearestAncestor(target, &ancestor, &ids,
                                          &entry_epoch, &delta));
  EXPECT_EQ(ancestor, (Subspace{0, 1}));
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(entry_epoch, 1u);
}

TEST(QueryUpdateTest, StaleEntryNeverSeedsAMiss) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 3, 48);
  QueryServiceOptions options;
  options.pin_full_space = false;
  QueryService service(data, options);
  const std::vector<PointId> full_sky = service.Query(Subspace::Full(3));

  // Invalidate the only cached cuboid, then query a subspace: the miss
  // must go cold, not seed from the stale full space.
  service.ApplyUpdate({}, std::vector<PointId>{full_sky.front()});
  const std::uint64_t cold_before = service.Stats().cold;
  service.Query(Subspace{0, 1});
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cold, cold_before + 1);
  EXPECT_EQ(stats.seeded, 0u);
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, MixedBatchMatchesOracleOnDuplicateHeavyData) {
  // Quantized values force duplicate projections, exercising the
  // tombstone-aware tie-closure path of seeded misses after updates.
  Dataset base = Generate(DataType::kUniformIndependent, 300, 3, 49);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 4);
  const Dataset data(3, std::move(values));
  QueryService service(data);
  for (std::uint64_t bits = 1; bits < 8; ++bits) service.Query(Subspace(bits));

  service.ApplyUpdate(std::vector<Value>{1.0, 2.0, 0.0, 0.0, 1.0, 3.0},
                      std::vector<PointId>{7, 42, 133});
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.Stats().remove_points, 3u);
  ExpectAllCuboidsMatchOracle(service);

  service.ApplyUpdate(std::vector<Value>{0.0, 0.0, 0.0}, std::vector<PointId>{300});
  EXPECT_EQ(service.epoch(), 2u);
  ExpectAllCuboidsMatchOracle(service);
}

TEST(QueryUpdateTest, UpdateOvertakingInFlightComputeDetachesEntry) {
  // Race an uncached-query thread against an update burst. Any compute
  // the updates overtake must feed its waiter the pre-update epoch and
  // stay out of the cache; afterwards every cuboid must read current.
  const Dataset data = Generate(DataType::kAntiCorrelated, 2000, 4, 50);
  QueryServiceOptions options;
  options.pin_full_space = false;  // keep first queries slow (cold)
  QueryService service(data, options);

  std::uint64_t detached_observed = 0;
  for (int round = 0; round < 20; ++round) {
    const Subspace v(1 + static_cast<std::uint64_t>(round) % 14);
    std::uint64_t query_epoch = 0;
    std::vector<PointId> answer;
    std::thread querier([&] { answer = service.Query(v, &query_epoch); });
    const std::vector<Value> row = {0.5, 0.5, 0.5, 0.5};
    const std::uint64_t new_epoch = service.ApplyUpdate(row, {});
    querier.join();

    // The answer must be exact for the epoch it reports.
    DatasetVersionPtr version = service.current_version();
    ASSERT_LE(query_epoch, version->epoch);
    if (query_epoch < new_epoch) ++detached_observed;

    // And the cache must never hold that answer under a newer epoch:
    // a post-update query returns the current-epoch oracle.
    std::uint64_t check_epoch = 0;
    const std::vector<PointId> now = service.Query(v, &check_epoch);
    version = service.current_version();
    EXPECT_EQ(check_epoch, version->epoch);
    EXPECT_EQ(now, OracleSkyline(*version, v)) << "cuboid " << v.ToString();
  }
  // Whether any round actually raced (aborted_inflight > 0) is
  // timing-dependent and not asserted; the invariants above are what
  // must hold on every interleaving.
  (void)detached_observed;
}

TEST(QueryUpdateTest, UpdateCountersAreExact) {
  const Dataset data = Generate(DataType::kUniformIndependent, 100, 3, 51);
  QueryService service(data);
  service.ApplyUpdate(std::vector<Value>{0.1, 0.2, 0.3}, {});
  service.ApplyUpdate({}, std::vector<PointId>{0, 1});
  service.ApplyUpdate(std::vector<Value>{0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
                      std::vector<PointId>{2});
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates, 3u);
  EXPECT_EQ(stats.insert_points, 3u);
  EXPECT_EQ(stats.remove_points, 3u);
  EXPECT_EQ(stats.epoch, 3u);
  EXPECT_EQ(stats.live_points, 100u);  // 100 + 3 - 3
  EXPECT_EQ(stats.update_latency.total, 3u);
  EXPECT_EQ(stats.dominance_tests(),
            stats.seeded_tests + stats.cold_tests + stats.update_tests);
}

}  // namespace
}  // namespace skyline
