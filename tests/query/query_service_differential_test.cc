// Differential load test: N threads fire random subspace-query streams
// at one QueryService and every response is compared against a fresh
// SubspaceSkyline oracle. Runs in three cache regimes — roomy, tiny
// (eviction on almost every miss), and id-budgeted — and once with all
// threads replaying the SAME stream (single-flight coalescing storm).
// The suite is in the `query` ctest label, which the sanitizer presets
// run in full: TSan over these threads is the data-race gate of the
// serving layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

/// All cuboid oracles of `data`, precomputed single-threaded so worker
/// threads only read.
std::map<std::uint64_t, std::vector<PointId>> AllOracles(const Dataset& data) {
  std::map<std::uint64_t, std::vector<PointId>> oracles;
  for (std::uint64_t bits = 1;
       bits < (std::uint64_t{1} << data.num_dims()); ++bits) {
    oracles[bits] = SubspaceSkyline(data, Subspace(bits));
  }
  return oracles;
}

struct LoadConfig {
  const char* label;
  QueryServiceOptions options;
  unsigned threads;
  int queries_per_thread;
  bool same_stream;  // all threads replay one stream → coalescing storm
};

void RunLoad(const Dataset& data, const LoadConfig& config) {
  const auto oracles = AllOracles(data);
  QueryService service(data, config.options);
  const std::uint64_t num_masks = std::uint64_t{1} << data.num_dims();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (unsigned t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(config.same_stream ? 7u : 1000u + t);
      for (int q = 0; q < config.queries_per_thread; ++q) {
        const std::uint64_t bits = 1 + rng() % (num_masks - 1);
        const std::vector<PointId> got = service.Query(Subspace(bits));
        if (got != oracles.at(bits)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(mismatches.load(), 0) << config.label;
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.queries,
            static_cast<std::uint64_t>(config.threads) *
                config.queries_per_thread)
      << config.label;
  EXPECT_EQ(stats.hits + stats.misses(), stats.queries) << config.label;
  EXPECT_EQ(stats.latency.total, stats.queries) << config.label;
}

TEST(QueryServiceDifferentialTest, RoomyCacheRandomStreams) {
  const Dataset data = Generate(DataType::kUniformIndependent, 400, 4, 41);
  LoadConfig config{"roomy", {}, 4, 150, false};
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, TinyCacheEvictionHeavy) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 42);
  LoadConfig config{"tiny", {}, 4, 150, false};
  config.options.max_entries = 2;  // eviction on almost every miss
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, TinyCacheUnpinnedColdPath) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 250, 4, 43);
  LoadConfig config{"tiny-unpinned", {}, 4, 100, false};
  config.options.max_entries = 1;
  config.options.pin_full_space = false;
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, IdBudgetEvictionHeavy) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 44);
  LoadConfig config{"id-budget", {}, 4, 100, false};
  config.options.max_total_ids = 40;
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, BoostedSeededKernelUnderLoad) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 47);
  LoadConfig config{"boosted-seeded", {}, 4, 120, false};
  config.options.seeded_boost_threshold = 0;  // boosted kernel everywhere
  config.options.max_entries = 2;
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, IdenticalStreamsCoalesce) {
  const Dataset data = Generate(DataType::kUniformIndependent, 400, 4, 45);
  LoadConfig config{"coalescing", {}, 8, 80, true};
  RunLoad(data, config);
}

TEST(QueryServiceDifferentialTest, DuplicateHeavyDataUnderLoad) {
  Dataset base = Generate(DataType::kUniformIndependent, 300, 4, 46);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 4);
  const Dataset data(4, std::move(values));
  LoadConfig config{"duplicates", {}, 4, 120, false};
  config.options.max_entries = 3;
  RunLoad(data, config);
}

}  // namespace
}  // namespace skyline
