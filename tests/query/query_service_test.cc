// Unit tests of the QueryService cache machinery: hit/miss/seeded/cold
// accounting, LRU eviction bounds, full-space pinning, and result
// correctness against SubspaceSkyline on small inputs.
#include "src/query/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

TEST(QueryServiceTest, AnswersMatchSubspaceSkyline) {
  const Dataset data = Generate(DataType::kUniformIndependent, 400, 4, 21);
  QueryService service(data);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    const Subspace v(bits);
    EXPECT_EQ(service.Query(v), SubspaceSkyline(data, v))
        << "cuboid " << v.ToString();
  }
}

TEST(QueryServiceTest, AnswersSortedAscending) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 22);
  QueryService service(data);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    const std::vector<PointId> ids = service.Query(Subspace(bits));
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

TEST(QueryServiceTest, RepeatQueriesHitTheCache) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 23);
  QueryService service(data);
  const Subspace v{0, 2};
  const std::vector<PointId> first = service.Query(v);
  const std::vector<PointId> second = service.Query(v);
  EXPECT_EQ(first, second);

  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses(), 1u);
  EXPECT_EQ(stats.latency.total, 2u);
}

TEST(QueryServiceTest, PinnedFullSpaceSeedsEveryFirstQuery) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 24);
  QueryService service(data);  // pin_full_space default: true
  for (std::uint64_t bits = 1; bits < 15; ++bits) {
    service.Query(Subspace(bits));
  }
  const QueryStatsSnapshot stats = service.Stats();
  // Every proper-subspace miss found the pinned full cube as ancestor.
  EXPECT_EQ(stats.cold, 0u);
  EXPECT_EQ(stats.seeded, 14u);
  EXPECT_GT(stats.cold_tests, 0u);  // construction compute
}

TEST(QueryServiceTest, UnpinnedFirstQueryIsCold) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 25);
  QueryServiceOptions options;
  options.pin_full_space = false;
  QueryService service(data, options);
  service.Query(Subspace{0, 1});
  QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cold, 1u);
  EXPECT_EQ(stats.seeded, 0u);

  // {0} ⊂ {0,1} is now cached: the second query seeds from it.
  service.Query(Subspace{0});
  stats = service.Stats();
  EXPECT_EQ(stats.cold, 1u);
  EXPECT_EQ(stats.seeded, 1u);
}

TEST(QueryServiceTest, SeededAnswersAgreeWithColdOnDuplicateHeavyData) {
  // Quantized values force duplicate projections — the tie-repair path.
  Dataset base = Generate(DataType::kUniformIndependent, 400, 4, 26);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 4);
  const Dataset data(4, std::move(values));

  QueryService seeded(data);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    const Subspace v(bits);
    EXPECT_EQ(seeded.Query(v), SubspaceSkyline(data, v))
        << "cuboid " << v.ToString();
  }
}

TEST(QueryServiceTest, BoostedSeededKernelMatchesBnlSeededKernel) {
  // threshold 0 forces every seeded miss onto the subset-boosted
  // engine over the projected candidate rows; the default (large
  // threshold here) keeps them all on the skycube BNL. Same answers,
  // on duplicate-heavy data so the tie repair runs in both.
  Dataset base = Generate(DataType::kAntiCorrelated, 500, 4, 32);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 8);
  const Dataset data(4, std::move(values));

  QueryServiceOptions boosted_options;
  boosted_options.seeded_boost_threshold = 0;
  QueryService boosted(data, boosted_options);
  QueryServiceOptions bnl_options;
  bnl_options.seeded_boost_threshold = 100000;
  QueryService bnl(data, bnl_options);

  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    const Subspace v(bits);
    const std::vector<PointId> expected = SubspaceSkyline(data, v);
    EXPECT_EQ(boosted.Query(v), expected) << "cuboid " << v.ToString();
    EXPECT_EQ(bnl.Query(v), expected) << "cuboid " << v.ToString();
  }
  // Both services actually took the seeded path (full space pinned).
  EXPECT_EQ(boosted.Stats().seeded, 14u);
  EXPECT_EQ(bnl.Stats().seeded, 14u);
}

TEST(QueryServiceTest, EvictionRespectsEntryBound) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 27);
  QueryServiceOptions options;
  options.max_entries = 3;
  QueryService service(data, options);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    service.Query(Subspace(bits));
  }
  const QueryStatsSnapshot stats = service.Stats();
  // 3 unpinned + 1 pinned full space.
  EXPECT_LE(stats.cache_entries, 4u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(QueryServiceTest, EvictionRespectsIdBudget) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 28);
  QueryServiceOptions options;
  options.max_total_ids = 50;
  QueryService service(data, options);
  const std::size_t pinned_ids = service.Stats().cache_ids;
  for (std::uint64_t bits = 1; bits < 15; ++bits) {
    const std::size_t latest = service.Query(Subspace(bits)).size();
    // Budget holds after every query, up to the latest entry's own size
    // (the fresh entry is never dropped for the id budget alone).
    const QueryStatsSnapshot stats = service.Stats();
    const std::size_t unpinned_ids = stats.cache_ids - pinned_ids;
    EXPECT_LE(unpinned_ids, 50u + latest);
  }
  EXPECT_GT(service.Stats().evictions, 0u);
}

TEST(QueryServiceTest, PinnedEntrySurvivesEvictionPressure) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 29);
  QueryServiceOptions options;
  options.max_entries = 1;
  QueryService service(data, options);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    service.Query(Subspace(bits));
  }
  // The full space is still served as a hit (pinned, never evicted).
  const std::uint64_t hits_before = service.Stats().hits;
  service.Query(Subspace::Full(4));
  EXPECT_EQ(service.Stats().hits, hits_before + 1);
}

TEST(QueryServiceTest, LruEvictsColdestCuboid) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 30);
  QueryServiceOptions options;
  options.max_entries = 2;
  options.pin_full_space = false;
  QueryService service(data, options);
  service.Query(Subspace{0});      // A
  service.Query(Subspace{1});      // B
  service.Query(Subspace{0});      // touch A: B is now LRU
  service.Query(Subspace{0, 1});   // evicts B
  const std::uint64_t hits_before = service.Stats().hits;
  service.Query(Subspace{0});      // still cached
  EXPECT_EQ(service.Stats().hits, hits_before + 1);
  service.Query(Subspace{1});      // evicted: recomputed, not a hit
  EXPECT_EQ(service.Stats().hits, hits_before + 1);
}

TEST(QueryServiceTest, SingleDimensionQueryIsArgminSet) {
  const Dataset data = Dataset::FromRows({{3, 1}, {1, 2}, {1, 9}, {2, 0}});
  QueryService service(data);
  EXPECT_EQ(service.Query(Subspace{0}), (std::vector<PointId>{1, 2}));
  EXPECT_EQ(service.Query(Subspace{1}), (std::vector<PointId>{3}));
}

TEST(QueryServiceTest, StatsSnapshotIsConsistent) {
  const Dataset data = Generate(DataType::kCorrelated, 300, 4, 31);
  QueryService service(data);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t bits = 1; bits < 16; ++bits) {
      service.Query(Subspace(bits));
    }
  }
  const QueryStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.queries, 45u);
  EXPECT_EQ(stats.hits + stats.misses(), stats.queries);
  EXPECT_EQ(stats.latency.total, stats.queries);
  EXPECT_GT(stats.HitRate(), 0.5);
  EXPECT_EQ(stats.dominance_tests(), stats.seeded_tests + stats.cold_tests);
}

TEST(LatencyHistogramQueryTest, BucketsAndPercentiles) {
  LatencyHistogram hist;
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 9);
  EXPECT_EQ(LatencyHistogram::BucketOf(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  for (int i = 0; i < 90; ++i) hist.Record(100);    // bucket 6, <=127
  for (int i = 0; i < 10; ++i) hist.Record(100000);  // bucket 16
  const LatencyHistogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_LE(snap.PercentileNanos(50), 127u);
  EXPECT_GT(snap.PercentileNanos(99), 100000u / 2);
}

}  // namespace
}  // namespace skyline
