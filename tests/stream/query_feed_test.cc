// Tests of QueryFeed: batching semantics (auto-flush at batch_size,
// explicit Flush, remove-of-pending forcing a flush), the stable-id
// contract between Push and the service, and the StreamingSkyline
// mirror's arrival numbering.
#include "src/stream/query_feed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/dataset.h"
#include "src/data/generator.h"
#include "src/query/query_service.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

std::vector<Value> Row(Value a, Value b) { return {a, b}; }

TEST(QueryFeedTest, BuffersUntilBatchSizeThenFlushes) {
  const Dataset data = Generate(DataType::kUniformIndependent, 50, 2, 60);
  QueryService service(data);
  QueryFeedOptions options;
  options.batch_size = 3;
  QueryFeed feed(service, options);

  EXPECT_EQ(feed.Push(Row(0.1, 0.9)), 50u);
  EXPECT_EQ(feed.Push(Row(0.2, 0.8)), 51u);
  EXPECT_EQ(feed.pending(), 2u);
  EXPECT_EQ(service.epoch(), 0u);  // nothing applied yet

  EXPECT_EQ(feed.Push(Row(0.3, 0.7)), 52u);  // third event: auto-flush
  EXPECT_EQ(feed.pending(), 0u);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.current_version()->data.num_points(), 53u);
  EXPECT_EQ(feed.flushed_inserts(), 3u);
}

TEST(QueryFeedTest, ExplicitFlushAppliesPartialBatch) {
  const Dataset data = Generate(DataType::kUniformIndependent, 50, 2, 61);
  QueryService service(data);
  QueryFeed feed(service);  // default batch_size 64

  feed.Push(Row(0.0, 1.0));
  EXPECT_EQ(feed.pending(), 1u);
  EXPECT_EQ(feed.Flush(), 1u);
  EXPECT_EQ(feed.pending(), 0u);
  // Flushing nothing is a no-op that reports the current epoch.
  EXPECT_EQ(feed.Flush(), 1u);
  EXPECT_EQ(service.Stats().updates, 1u);
}

TEST(QueryFeedTest, RemoveOfFlushedPointTombstonesIt) {
  const Dataset data = Generate(DataType::kUniformIndependent, 50, 2, 62);
  QueryService service(data);
  QueryFeedOptions options;
  options.batch_size = 2;
  QueryFeed feed(service, options);

  feed.Remove(7);
  EXPECT_EQ(feed.pending(), 1u);
  feed.Remove(9);  // second event: auto-flush
  EXPECT_EQ(feed.pending(), 0u);
  const DatasetVersionPtr version = service.current_version();
  EXPECT_FALSE(version->IsLive(7));
  EXPECT_FALSE(version->IsLive(9));
  EXPECT_EQ(version->num_live, 48u);
  EXPECT_EQ(feed.flushed_removes(), 2u);
}

TEST(QueryFeedTest, RemoveOfPendingInsertForcesAFlushFirst) {
  const Dataset data = Generate(DataType::kUniformIndependent, 50, 2, 63);
  QueryService service(data);
  QueryFeed feed(service);  // batch_size 64: nothing flushes on its own

  const PointId id = feed.Push(Row(0.5, 0.5));
  EXPECT_EQ(id, 50u);
  // Removing the still-buffered point must first ship its insert (an
  // ApplyUpdate batch cannot remove its own inserts), then buffer the
  // remove.
  feed.Remove(id);
  EXPECT_EQ(service.epoch(), 1u);  // the forced flush
  EXPECT_EQ(feed.pending(), 1u);   // the remove, still buffered
  feed.Flush();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_FALSE(service.current_version()->IsLive(id));
}

TEST(QueryFeedTest, ServedAnswersTrackTheFeed) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 100, 3, 64);
  QueryService service(data);
  QueryFeedOptions options;
  options.batch_size = 5;
  QueryFeed feed(service, options);

  // A point dominating everything: once its batch lands, every cuboid
  // collapses to it.
  const PointId champion = feed.Push(std::vector<Value>{-1.0, -1.0, -1.0});
  for (int i = 0; i < 4; ++i) {
    feed.Push(std::vector<Value>{1.0 + i, 1.0 + i, 1.0 + i});
  }
  EXPECT_EQ(feed.pending(), 0u);  // fifth push flushed
  for (std::uint64_t bits = 1; bits < 8; ++bits) {
    EXPECT_EQ(service.Query(Subspace(bits)), std::vector<PointId>{champion});
  }
  // Remove the champion; the skyline reverts to the base answer.
  feed.Remove(champion);
  feed.Flush();
  EXPECT_EQ(service.Query(Subspace::Full(3)),
            SubspaceSkyline(service.data(), Subspace::Full(3)));
}

TEST(QueryFeedTest, MirrorsArrivalsIntoStreamingSkyline) {
  const Dataset data(2);  // empty service dataset: ids align from 0
  QueryService service(data);
  StreamingSkyline stream(2);
  QueryFeedOptions options;
  options.batch_size = 1;  // flush every event
  QueryFeed feed(service, stream, options);

  const std::vector<std::vector<Value>> arrivals = {
      {0.5, 0.5}, {0.2, 0.8}, {0.8, 0.2}, {0.9, 0.9}, {0.1, 0.1}};
  for (const std::vector<Value>& row : arrivals) feed.Push(row);

  EXPECT_EQ(stream.num_points(), 5u);
  EXPECT_EQ(service.current_version()->data.num_points(), 5u);

  // Same ids, same full-space skyline in both layers.
  std::vector<PointId> stream_sky = stream.Skyline();
  std::sort(stream_sky.begin(), stream_sky.end());
  EXPECT_EQ(service.Query(Subspace::Full(2)), stream_sky);
}

}  // namespace
}  // namespace skyline
