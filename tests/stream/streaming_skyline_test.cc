#include "src/stream/streaming_skyline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

/// Feeds the dataset's rows into a StreamingSkyline in row order.
StreamingSkyline Feed(const Dataset& data, StreamingOptions options = {}) {
  StreamingSkyline stream(data.num_dims(), options);
  for (PointId p = 0; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
  }
  return stream;
}

struct StreamCase {
  DataType type;
  unsigned dims;
  std::size_t points;
  std::size_t bootstrap;
  std::uint64_t seed;
};

class StreamingEquivalenceTest : public ::testing::TestWithParam<StreamCase> {};

// The invariant everything else rests on: after any prefix of inserts,
// the streaming skyline equals the batch skyline of the prefix.
TEST_P(StreamingEquivalenceTest, MatchesBatchSkylineAtEveryCheckpoint) {
  const auto& c = GetParam();
  Dataset data = Generate(c.type, c.points, c.dims, c.seed);
  StreamingOptions options;
  options.bootstrap_size = c.bootstrap;
  StreamingSkyline stream(data.num_dims(), options);
  for (PointId p = 0; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
    // Check at a few prefixes, including right around the freeze.
    const std::size_t sz = p + 1;
    if (sz == c.bootstrap - 1 || sz == c.bootstrap ||
        sz == c.bootstrap + 1 || sz == c.points / 2 || sz == c.points) {
      Dataset prefix(data.num_dims(),
                     std::vector<Value>(data.values().begin(),
                                        data.values().begin() +
                                            sz * data.num_dims()));
      ASSERT_TRUE(SameIdSet(stream.Skyline(), ReferenceSkyline(prefix)))
          << "prefix " << sz;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamingEquivalenceTest,
    ::testing::Values(
        StreamCase{DataType::kUniformIndependent, 4, 600, 64, 1},
        StreamCase{DataType::kUniformIndependent, 8, 600, 64, 2},
        StreamCase{DataType::kAntiCorrelated, 5, 500, 32, 3},
        StreamCase{DataType::kCorrelated, 6, 500, 64, 4},
        StreamCase{DataType::kUniformIndependent, 3, 400, 8, 5},
        // bootstrap larger than the stream: never freezes
        StreamCase{DataType::kUniformIndependent, 4, 200, 1000, 6}));

TEST(StreamingSkylineTest, InsertReportsSkylineMembershipAtArrival) {
  StreamingSkyline stream(2, {.bootstrap_size = 2});
  const Value a[] = {5, 5};
  const Value b[] = {3, 3};
  const Value c[] = {4, 4};
  EXPECT_TRUE(stream.Insert(a));   // first point is always skyline
  EXPECT_TRUE(stream.Insert(b));   // dominates a
  EXPECT_FALSE(stream.IsSkyline(0));
  EXPECT_FALSE(stream.Insert(c));  // dominated by b
  EXPECT_EQ(stream.Skyline(), std::vector<PointId>{1});
  EXPECT_EQ(stream.stats().evictions, 1u);
  EXPECT_EQ(stream.stats().rejected_dominated, 1u);
}

TEST(StreamingSkylineTest, EvictionAfterFreeze) {
  // Freeze very early, then insert a point dominating an indexed one.
  StreamingSkyline stream(2, {.bootstrap_size = 2});
  const Value a[] = {1, 9};
  const Value b[] = {9, 1};
  const Value c[] = {5, 5};
  const Value d[] = {4, 4};  // dominates c after the freeze
  stream.Insert(a);
  stream.Insert(b);  // freeze happens here
  EXPECT_TRUE(stream.Insert(c));
  EXPECT_TRUE(stream.Insert(d));
  EXPECT_FALSE(stream.IsSkyline(2));
  EXPECT_TRUE(SameIdSet(stream.Skyline(), {0, 1, 3}));
}

TEST(StreamingSkylineTest, DuplicatesAllStayOnSkyline) {
  StreamingSkyline stream(3, {.bootstrap_size = 4});
  const Value p[] = {1, 2, 3};
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(stream.Insert(p));
  EXPECT_EQ(stream.skyline_size(), 6u);
}

TEST(StreamingSkylineTest, MonotoneImprovingStreamKeepsOnlyLast) {
  StreamingSkyline stream(2, {.bootstrap_size = 4});
  for (int i = 10; i >= 1; --i) {
    const Value row[] = {static_cast<Value>(i), static_cast<Value>(i)};
    EXPECT_TRUE(stream.Insert(row));
  }
  EXPECT_EQ(stream.skyline_size(), 1u);
  EXPECT_TRUE(stream.IsSkyline(9));
  EXPECT_EQ(stream.stats().evictions, 9u);
}

TEST(StreamingSkylineTest, ReferencePointsFrozenFromBootstrapSkyline) {
  Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 9);
  StreamingOptions options;
  options.bootstrap_size = 50;
  options.max_reference_points = 8;
  StreamingSkyline stream = Feed(data, options);
  EXPECT_LE(stream.reference_points().size(), 8u);
  EXPECT_GE(stream.reference_points().size(), 1u);
  // References were drawn from the first 50 inserts.
  for (PointId ref : stream.reference_points()) {
    EXPECT_LT(ref, 50u);
  }
}

TEST(StreamingSkylineTest, StatsAccumulate) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 11);
  StreamingSkyline stream = Feed(data);
  EXPECT_EQ(stream.stats().inserts, 500u);
  EXPECT_GT(stream.stats().dominance_tests, 0u);
  EXPECT_GT(stream.stats().index_queries, 0u);
  EXPECT_EQ(stream.num_points(), 500u);
}

TEST(StreamingSkylineTest, IndexPruningBeatsFullScanCandidateCounts) {
  // The subset masks must keep candidate sets well below "every insert
  // scans the whole skyline".
  Dataset data = Generate(DataType::kUniformIndependent, 4000, 8, 13);
  StreamingSkyline stream = Feed(data);
  const auto& stats = stream.stats();
  // Upper bound if every query returned the full current skyline:
  // inserts * final skyline size is a loose proxy.
  const double mean_candidates =
      static_cast<double>(stats.index_candidates) /
      static_cast<double>(stats.index_queries);
  EXPECT_LT(mean_candidates,
            static_cast<double>(stream.skyline_size()) * 0.8);
}

TEST(StreamingBoundaryTest, BootstrapSizeOneFreezesOnFirstInsert) {
  // The smallest legal bootstrap: the first point becomes the entire
  // reference set and every later insert goes through the index.
  Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 21);
  StreamingOptions options;
  options.bootstrap_size = 1;
  StreamingSkyline stream(data.num_dims(), options);
  stream.Insert(data.point(0));
  EXPECT_EQ(stream.reference_points().size(), 1u);
  EXPECT_EQ(stream.reference_points()[0], 0u);
  for (PointId p = 1; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
  }
  EXPECT_TRUE(SameIdSet(stream.Skyline(), ReferenceSkyline(data)));
}

TEST(StreamingBoundaryTest, BootstrapSizeZeroIsClampedToOne) {
  StreamingSkyline stream(2, {.bootstrap_size = 0});
  const Value a[] = {1, 2};
  EXPECT_TRUE(stream.Insert(a));
  EXPECT_EQ(stream.reference_points().size(), 1u);
  EXPECT_EQ(stream.skyline_size(), 1u);
}

TEST(StreamingBoundaryTest, DuplicatePointsSurviveAcrossTheFreeze) {
  // Duplicates never dominate each other, so every copy stays on the
  // skyline whether it arrived before or after the freeze.
  StreamingSkyline stream(3, {.bootstrap_size = 1});
  const Value p[] = {1, 2, 3};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(stream.Insert(p));
  EXPECT_EQ(stream.skyline_size(), 5u);
  EXPECT_EQ(stream.stats().evictions, 0u);
  for (PointId id = 0; id < 5; ++id) EXPECT_TRUE(stream.IsSkyline(id));
}

TEST(StreamingBoundaryTest, AllDominatedStreamStoresNothing) {
  // One good point, then a long stream of strictly worse arrivals: the
  // structure must not retain a single rejected point, in either the
  // bootstrap or the indexed regime.
  StreamingSkyline stream(3, {.bootstrap_size = 8});
  const Value good[] = {0, 0, 0};
  EXPECT_TRUE(stream.Insert(good));
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<Value> bad(1.0, 2.0);
  for (int i = 0; i < 2000; ++i) {
    const Value row[] = {bad(rng), bad(rng), bad(rng)};
    EXPECT_FALSE(stream.Insert(row));
  }
  EXPECT_EQ(stream.resident_rows(), 1u);
  EXPECT_EQ(stream.stats().peak_resident_rows, 1u);
  EXPECT_EQ(stream.stats().rejected_dominated, 2000u);
  EXPECT_EQ(stream.num_points(), 2001u);
  EXPECT_EQ(stream.Skyline(), std::vector<PointId>{0});
}

TEST(StreamingMemoryTest, ExternalIdsStayValidAcrossCompaction) {
  StreamingSkyline stream(2, {.bootstrap_size = 2});
  const Value a[] = {1, 9};
  const Value b[] = {9, 1};
  const Value c[] = {5, 5};
  const Value d[] = {4, 4};  // evicts c
  stream.Insert(a);
  stream.Insert(b);
  stream.Insert(c);
  stream.Insert(d);
  ASSERT_EQ(stream.resident_rows(), 4u);  // dead row for c still resident
  stream.CompactNow();
  EXPECT_EQ(stream.resident_rows(), 3u);
  EXPECT_EQ(stream.stats().compactions, 1u);
  // Ids are insertion-order and survive the row shuffle.
  EXPECT_TRUE(stream.IsSkyline(0));
  EXPECT_TRUE(stream.IsSkyline(1));
  EXPECT_FALSE(stream.IsSkyline(2));
  EXPECT_TRUE(stream.IsSkyline(3));
  EXPECT_TRUE(SameIdSet(stream.Skyline(), {0, 1, 3}));
  // point(id) resolves external ids to the moved rows.
  EXPECT_EQ(stream.point(0)[0], 1);
  EXPECT_EQ(stream.point(0)[1], 9);
  EXPECT_EQ(stream.point(3)[0], 4);
  EXPECT_EQ(stream.point(3)[1], 4);
  // The structure keeps answering inserts correctly after compaction.
  const Value e[] = {3, 3};  // evicts d
  EXPECT_TRUE(stream.Insert(e));
  EXPECT_TRUE(SameIdSet(stream.Skyline(), {0, 1, 4}));
  EXPECT_EQ(stream.point(4)[0], 3);
}

TEST(StreamingMemoryTest, HighWaterMarkBoundsResidentRows) {
  // A monotone-improving stream evicts on every insert — the worst case
  // for dead-row accumulation. Resident rows must stay within
  // max(high_water, 2 * skyline_size) at every step.
  StreamingOptions options;
  options.bootstrap_size = 4;
  options.compact_high_water = 64;
  StreamingSkyline stream(2, options);
  for (int i = 5000; i >= 1; --i) {
    const Value row[] = {static_cast<Value>(i), static_cast<Value>(i)};
    stream.Insert(row);
    ASSERT_LE(stream.resident_rows(), 64u) << "insert " << 5000 - i;
  }
  EXPECT_EQ(stream.skyline_size(), 1u);
  EXPECT_GT(stream.stats().compactions, 0u);
  EXPECT_LE(stream.stats().peak_resident_rows, 64u);
  EXPECT_TRUE(stream.IsSkyline(4999));
}

TEST(StreamingMemoryTest, CompactionDisabledRetainsEveryAcceptedRow) {
  StreamingOptions options;
  options.bootstrap_size = 4;
  options.compact_high_water = 0;  // pre-bounded behavior
  StreamingSkyline stream(2, options);
  for (int i = 200; i >= 1; --i) {
    const Value row[] = {static_cast<Value>(i), static_cast<Value>(i)};
    stream.Insert(row);
  }
  // Every insert entered the skyline (then died); none were compacted.
  EXPECT_EQ(stream.resident_rows(), 200u);
  EXPECT_EQ(stream.stats().compactions, 0u);
  EXPECT_EQ(stream.skyline_size(), 1u);
}

/// Two-phase drift stream: bootstrap and references come from the
/// far-from-origin box, then the stream moves to the near-origin box.
/// Every phase-2 point dominates all frozen references, so all masks
/// collapse to the full subspace and the index stops pruning — until
/// the adaptive re-reference kicks in.
Dataset MakeDriftDataset(std::size_t phase1, std::size_t phase2,
                         Dim d, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Value> far(0.5, 1.0);
  std::uniform_real_distribution<Value> near(0.0, 0.5);
  std::vector<Value> values;
  values.reserve((phase1 + phase2) * d);
  for (std::size_t i = 0; i < phase1 * d; ++i) values.push_back(far(rng));
  for (std::size_t i = 0; i < phase2 * d; ++i) values.push_back(near(rng));
  return Dataset(d, std::move(values));
}

TEST(StreamingAdaptTest, RefreezesWhenReferenceSetDrifts) {
  Dataset data = MakeDriftDataset(1000, 3000, 4, 31);
  StreamingOptions options;
  options.bootstrap_size = 64;
  options.adapt_interval = 256;
  StreamingSkyline stream = Feed(data, options);
  EXPECT_GE(stream.stats().refreezes, 1u);
  // Adaptation must not change the answer.
  EXPECT_TRUE(SameIdSet(stream.Skyline(), ReferenceSkyline(data)));
  // After re-freezing, the references come from the drifted skyline.
  for (PointId ref : stream.reference_points()) {
    EXPECT_GE(ref, 1000u) << "reference still from the stale phase";
  }
}

TEST(StreamingAdaptTest, RefreezeRestoresPruningPower) {
  Dataset data = MakeDriftDataset(1000, 3000, 4, 33);
  StreamingOptions adaptive;
  adaptive.bootstrap_size = 64;
  adaptive.adapt_interval = 256;
  StreamingOptions frozen = adaptive;
  frozen.adapt_interval = 0;  // adaptation off
  StreamingSkyline with = Feed(data, adaptive);
  StreamingSkyline without = Feed(data, frozen);
  ASSERT_GE(with.stats().refreezes, 1u);
  ASSERT_EQ(without.stats().refreezes, 0u);
  // Same answer, far fewer candidate retrievals once re-frozen.
  EXPECT_TRUE(SameIdSet(with.Skyline(), without.Skyline()));
  EXPECT_LT(static_cast<double>(with.stats().index_candidates),
            static_cast<double>(without.stats().index_candidates) * 0.8);
}

TEST(StreamingAdaptTest, NoRefreezeOnStationaryStream) {
  // A stationary distribution must not trip the degradation trigger.
  Dataset data = Generate(DataType::kUniformIndependent, 4000, 6, 35);
  StreamingOptions options;
  options.adapt_interval = 256;
  StreamingSkyline stream = Feed(data, options);
  EXPECT_EQ(stream.stats().refreezes, 0u);
}

}  // namespace
}  // namespace skyline
