#include "src/stream/streaming_skyline.h"

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

/// Feeds the dataset's rows into a StreamingSkyline in row order.
StreamingSkyline Feed(const Dataset& data, StreamingOptions options = {}) {
  StreamingSkyline stream(data.num_dims(), options);
  for (PointId p = 0; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
  }
  return stream;
}

struct StreamCase {
  DataType type;
  unsigned dims;
  std::size_t points;
  std::size_t bootstrap;
  std::uint64_t seed;
};

class StreamingEquivalenceTest : public ::testing::TestWithParam<StreamCase> {};

// The invariant everything else rests on: after any prefix of inserts,
// the streaming skyline equals the batch skyline of the prefix.
TEST_P(StreamingEquivalenceTest, MatchesBatchSkylineAtEveryCheckpoint) {
  const auto& c = GetParam();
  Dataset data = Generate(c.type, c.points, c.dims, c.seed);
  StreamingOptions options;
  options.bootstrap_size = c.bootstrap;
  StreamingSkyline stream(data.num_dims(), options);
  for (PointId p = 0; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
    // Check at a few prefixes, including right around the freeze.
    const std::size_t sz = p + 1;
    if (sz == c.bootstrap - 1 || sz == c.bootstrap ||
        sz == c.bootstrap + 1 || sz == c.points / 2 || sz == c.points) {
      Dataset prefix(data.num_dims(),
                     std::vector<Value>(data.values().begin(),
                                        data.values().begin() +
                                            sz * data.num_dims()));
      ASSERT_TRUE(SameIdSet(stream.Skyline(), ReferenceSkyline(prefix)))
          << "prefix " << sz;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamingEquivalenceTest,
    ::testing::Values(
        StreamCase{DataType::kUniformIndependent, 4, 600, 64, 1},
        StreamCase{DataType::kUniformIndependent, 8, 600, 64, 2},
        StreamCase{DataType::kAntiCorrelated, 5, 500, 32, 3},
        StreamCase{DataType::kCorrelated, 6, 500, 64, 4},
        StreamCase{DataType::kUniformIndependent, 3, 400, 8, 5},
        // bootstrap larger than the stream: never freezes
        StreamCase{DataType::kUniformIndependent, 4, 200, 1000, 6}));

TEST(StreamingSkylineTest, InsertReportsSkylineMembershipAtArrival) {
  StreamingSkyline stream(2, {.bootstrap_size = 2});
  const Value a[] = {5, 5};
  const Value b[] = {3, 3};
  const Value c[] = {4, 4};
  EXPECT_TRUE(stream.Insert(a));   // first point is always skyline
  EXPECT_TRUE(stream.Insert(b));   // dominates a
  EXPECT_FALSE(stream.IsSkyline(0));
  EXPECT_FALSE(stream.Insert(c));  // dominated by b
  EXPECT_EQ(stream.Skyline(), std::vector<PointId>{1});
  EXPECT_EQ(stream.stats().evictions, 1u);
  EXPECT_EQ(stream.stats().rejected_dominated, 1u);
}

TEST(StreamingSkylineTest, EvictionAfterFreeze) {
  // Freeze very early, then insert a point dominating an indexed one.
  StreamingSkyline stream(2, {.bootstrap_size = 2});
  const Value a[] = {1, 9};
  const Value b[] = {9, 1};
  const Value c[] = {5, 5};
  const Value d[] = {4, 4};  // dominates c after the freeze
  stream.Insert(a);
  stream.Insert(b);  // freeze happens here
  EXPECT_TRUE(stream.Insert(c));
  EXPECT_TRUE(stream.Insert(d));
  EXPECT_FALSE(stream.IsSkyline(2));
  EXPECT_TRUE(SameIdSet(stream.Skyline(), {0, 1, 3}));
}

TEST(StreamingSkylineTest, DuplicatesAllStayOnSkyline) {
  StreamingSkyline stream(3, {.bootstrap_size = 4});
  const Value p[] = {1, 2, 3};
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(stream.Insert(p));
  EXPECT_EQ(stream.skyline_size(), 6u);
}

TEST(StreamingSkylineTest, MonotoneImprovingStreamKeepsOnlyLast) {
  StreamingSkyline stream(2, {.bootstrap_size = 4});
  for (int i = 10; i >= 1; --i) {
    const Value row[] = {static_cast<Value>(i), static_cast<Value>(i)};
    EXPECT_TRUE(stream.Insert(row));
  }
  EXPECT_EQ(stream.skyline_size(), 1u);
  EXPECT_TRUE(stream.IsSkyline(9));
  EXPECT_EQ(stream.stats().evictions, 9u);
}

TEST(StreamingSkylineTest, ReferencePointsFrozenFromBootstrapSkyline) {
  Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 9);
  StreamingOptions options;
  options.bootstrap_size = 50;
  options.max_reference_points = 8;
  StreamingSkyline stream = Feed(data, options);
  EXPECT_LE(stream.reference_points().size(), 8u);
  EXPECT_GE(stream.reference_points().size(), 1u);
  // References were drawn from the first 50 inserts.
  for (PointId ref : stream.reference_points()) {
    EXPECT_LT(ref, 50u);
  }
}

TEST(StreamingSkylineTest, StatsAccumulate) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 11);
  StreamingSkyline stream = Feed(data);
  EXPECT_EQ(stream.stats().inserts, 500u);
  EXPECT_GT(stream.stats().dominance_tests, 0u);
  EXPECT_GT(stream.stats().index_queries, 0u);
  EXPECT_EQ(stream.num_points(), 500u);
}

TEST(StreamingSkylineTest, IndexPruningBeatsFullScanCandidateCounts) {
  // The subset masks must keep candidate sets well below "every insert
  // scans the whole skyline".
  Dataset data = Generate(DataType::kUniformIndependent, 4000, 8, 13);
  StreamingSkyline stream = Feed(data);
  const auto& stats = stream.stats();
  // Upper bound if every query returned the full current skyline:
  // inserts * final skyline size is a loose proxy.
  const double mean_candidates =
      static_cast<double>(stats.index_candidates) /
      static_cast<double>(stats.index_queries);
  EXPECT_LT(mean_candidates,
            static_cast<double>(stream.skyline_size()) * 0.8);
}

}  // namespace
}  // namespace skyline
