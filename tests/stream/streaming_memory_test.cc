// The acceptance test for the bounded-memory streaming contract: a
// million-insert adversarial stream (99% of arrivals dominated) must
// hold resident rows within the high-water invariant the whole way
// through, finish with the exact offline skyline, and leak no index
// nodes. Kept separate from streaming_skyline_test.cc because it is the
// one deliberately long-running streaming test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/core/verify.h"
#include "src/stream/streaming_skyline.h"

namespace skyline {
namespace {

constexpr std::size_t kInserts = 1'000'000;
constexpr Dim kDims = 4;

/// 99% of points land in [1.001, 2]^d — dominated by any point of the
/// 1% landing in [0, 1]^d. The good points keep churning the skyline
/// (evictions -> dead rows) while the bad points hammer the reject path.
Dataset MakeAdversarialStream(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Value> bad(1.001, 2.0);
  std::uniform_real_distribution<Value> good(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, 99);
  std::vector<Value> values;
  values.reserve(kInserts * kDims);
  for (std::size_t i = 0; i < kInserts; ++i) {
    auto& dist = pick(rng) == 0 ? good : bad;
    for (Dim dim = 0; dim < kDims; ++dim) values.push_back(dist(rng));
  }
  return Dataset(kDims, std::move(values));
}

TEST(StreamingMemoryBoundTest, MillionInsertAdversarialStreamStaysBounded) {
  const Dataset data = MakeAdversarialStream(20260806);
  StreamingOptions options;
  options.compact_high_water = 4096;
  StreamingSkyline stream(kDims, options);

  const std::size_t bound = options.compact_high_water;
  for (PointId p = 0; p < data.num_points(); ++p) {
    stream.Insert(data.point(p));
    if ((p & 0x3FF) == 0) {  // sample the invariant every 1024 inserts
      ASSERT_LE(stream.resident_rows(),
                std::max(bound, 2 * stream.skyline_size()))
          << "insert " << p;
    }
  }
  EXPECT_EQ(stream.num_points(), kInserts);
  EXPECT_LE(stream.stats().peak_resident_rows,
            std::max<std::uint64_t>(bound, 2 * stream.skyline_size()));
  EXPECT_GE(stream.stats().rejected_dominated, kInserts * 95 / 100);

  // The bounded structure must agree exactly with the offline oracle
  // over all one million points. The naive O(N^2) reference is far too
  // slow here, but every skyline point comes from the good 1% box
  // ([1.001, 2]^d points are all dominated), so the oracle only needs
  // the good subset — with ids mapped back to stream positions.
  std::vector<PointId> good_ids;
  std::vector<Value> good_values;
  for (PointId p = 0; p < data.num_points(); ++p) {
    const Value* row = data.row(p);
    if (std::all_of(row, row + kDims, [](Value v) { return v <= 1.0; })) {
      good_ids.push_back(p);
      good_values.insert(good_values.end(), row, row + kDims);
    }
  }
  ASSERT_FALSE(good_ids.empty());
  const Dataset good(kDims, std::move(good_values));
  std::vector<PointId> expected;
  for (PointId local : ReferenceSkyline(good)) {
    expected.push_back(good_ids[local]);
  }
  EXPECT_TRUE(SameIdSet(stream.Skyline(), expected));
}

}  // namespace
}  // namespace skyline
