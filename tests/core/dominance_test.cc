#include "src/core/dominance.h"

#include <gtest/gtest.h>

#include <random>

namespace skyline {
namespace {

TEST(DominanceTest, StrictDominance) {
  const Value a[] = {1, 2, 3};
  const Value b[] = {2, 3, 4};
  EXPECT_TRUE(Dominates(a, b, 3));
  EXPECT_FALSE(Dominates(b, a, 3));
}

TEST(DominanceTest, DominanceNeedsOnlyOneStrictDimension) {
  const Value a[] = {1, 2, 3};
  const Value b[] = {1, 2, 4};
  EXPECT_TRUE(Dominates(a, b, 3));
  EXPECT_FALSE(Dominates(b, a, 3));
}

TEST(DominanceTest, EqualPointsDoNotDominateEachOther) {
  const Value a[] = {1, 2, 3};
  const Value b[] = {1, 2, 3};
  EXPECT_FALSE(Dominates(a, b, 3));
  EXPECT_FALSE(Dominates(b, a, 3));
  EXPECT_TRUE(DominatesOrEqual(a, b, 3));
  EXPECT_TRUE(DominatesOrEqual(b, a, 3));
}

TEST(DominanceTest, IncomparablePoints) {
  const Value a[] = {1, 5};
  const Value b[] = {2, 4};
  EXPECT_FALSE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
  EXPECT_EQ(Compare(a, b, 2), DominanceRelation::kIncomparable);
}

TEST(DominanceTest, CompareClassifiesAllFourCases) {
  const Value a[] = {1, 2};
  const Value b[] = {2, 3};
  const Value c[] = {1, 2};
  const Value d[] = {0, 9};
  EXPECT_EQ(Compare(a, b, 2), DominanceRelation::kFirstDominates);
  EXPECT_EQ(Compare(b, a, 2), DominanceRelation::kSecondDominates);
  EXPECT_EQ(Compare(a, c, 2), DominanceRelation::kEqual);
  EXPECT_EQ(Compare(a, d, 2), DominanceRelation::kIncomparable);
}

TEST(DominanceTest, OneDimensional) {
  const Value a[] = {1};
  const Value b[] = {2};
  EXPECT_TRUE(Dominates(a, b, 1));
  EXPECT_EQ(Compare(a, a, 1), DominanceRelation::kEqual);
}

TEST(DominanceTest, DominatingSubspaceDefinition) {
  // D_{q<p} = dims where q strictly better than p (Definition 3.4).
  const Value q[] = {1, 5, 2, 7};
  const Value p[] = {3, 5, 1, 9};
  Subspace s = DominatingSubspace(q, p, 4);
  EXPECT_EQ(s, (Subspace{0, 3}));
}

TEST(DominanceTest, EmptyDominatingSubspaceMeansWeaklyDominated) {
  const Value q[] = {3, 5};
  const Value p[] = {2, 5};
  EXPECT_TRUE(DominatingSubspace(q, p, 2).empty());
  EXPECT_TRUE(DominatesOrEqual(p, q, 2));
}

TEST(DominanceTest, FullDominatingSubspaceMeansStrictEverywhere) {
  const Value q[] = {1, 1};
  const Value p[] = {2, 3};
  EXPECT_EQ(DominatingSubspace(q, p, 2), Subspace::Full(2));
  EXPECT_TRUE(Dominates(q, p, 2));
}

TEST(DominanceTest, DominatingSubspaceExReportsWorseDimensions) {
  const Value q[] = {1, 5, 2};
  const Value p[] = {3, 5, 1};
  bool worse = false;
  EXPECT_EQ(DominatingSubspaceEx(q, p, 3, &worse), Subspace{0});
  EXPECT_TRUE(worse);  // q[2] > p[2]
  const Value r[] = {3, 5, 1};
  EXPECT_TRUE(DominatingSubspaceEx(r, p, 3, &worse).empty());
  EXPECT_FALSE(worse);  // r == p
  const Value s[] = {4, 5, 1};
  EXPECT_TRUE(DominatingSubspaceEx(s, p, 3, &worse).empty());
  EXPECT_TRUE(worse);  // p dominates s
}

TEST(DominanceTest, ToStringNames) {
  EXPECT_STREQ(ToString(DominanceRelation::kEqual), "equal");
  EXPECT_STREQ(ToString(DominanceRelation::kIncomparable), "incomparable");
}

TEST(DominanceTesterTest, CountsEveryCall) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 3}, {0, 5}});
  DominanceTester tester(data);
  EXPECT_TRUE(tester.Dominates(0, 1));
  EXPECT_FALSE(tester.Dominates(0, 2));
  tester.Compare(1, 2);
  tester.DominatingSubspace(2, 0);
  tester.DominatesOrEqual(0, 0);
  EXPECT_EQ(tester.tests(), 5u);
}

TEST(DominanceTesterTest, MatchesRawKernels) {
  Dataset data = Dataset::FromRows({{1, 2, 3}, {1, 2, 4}});
  DominanceTester tester(data);
  EXPECT_EQ(tester.Dominates(0, 1), Dominates(data.row(0), data.row(1), 3));
  EXPECT_EQ(tester.Compare(0, 1), Compare(data.row(0), data.row(1), 3));
  EXPECT_EQ(tester.DominatingSubspace(1, 0),
            DominatingSubspace(data.row(1), data.row(0), 3));
}

// Randomized cross-check: Compare agrees with the two Dominates calls,
// and the dominating subspace characterizes dominance as in Section 3.
class DominanceRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DominanceRandomTest, CompareConsistentWithDominates) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> value(0, 4);  // small domain: many ties
  for (int iter = 0; iter < 500; ++iter) {
    const Dim d = 1 + static_cast<Dim>(rng() % 8);
    std::vector<Value> a(d), b(d);
    for (Dim i = 0; i < d; ++i) {
      a[i] = value(rng);
      b[i] = value(rng);
    }
    const bool ab = Dominates(a.data(), b.data(), d);
    const bool ba = Dominates(b.data(), a.data(), d);
    EXPECT_FALSE(ab && ba) << "dominance must be asymmetric";
    const DominanceRelation rel = Compare(a.data(), b.data(), d);
    if (ab) {
      EXPECT_EQ(rel, DominanceRelation::kFirstDominates);
    }
    if (ba) {
      EXPECT_EQ(rel, DominanceRelation::kSecondDominates);
    }
    if (!ab && !ba) {
      EXPECT_TRUE(rel == DominanceRelation::kEqual ||
                  rel == DominanceRelation::kIncomparable);
    }
    // a < b  <=>  D_{b<a} empty and a != b.
    const Subspace d_b_a = DominatingSubspace(b.data(), a.data(), d);
    EXPECT_EQ(ab, d_b_a.empty() && rel != DominanceRelation::kEqual);
    // D_{a<b} and D_{b<a} are disjoint.
    const Subspace d_a_b = DominatingSubspace(a.data(), b.data(), d);
    EXPECT_TRUE(d_a_b.Intersection(d_b_a).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceRandomTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace skyline
