#include "src/core/subspace.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace skyline {
namespace {

TEST(SubspaceTest, DefaultIsEmpty) {
  Subspace s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.bits(), 0u);
}

TEST(SubspaceTest, InitializerListSetsListedDims) {
  Subspace s{0, 3, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.Contains(5));
}

TEST(SubspaceTest, BitmaskConstructorUsesRawBits) {
  Subspace s(0b1011u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(3));
}

TEST(SubspaceTest, FullContainsEveryDimension) {
  for (Dim d = 1; d <= 64; ++d) {
    Subspace full = Subspace::Full(d);
    EXPECT_EQ(full.size(), d) << "d=" << d;
    for (Dim i = 0; i < d; ++i) EXPECT_TRUE(full.Contains(i));
    if (d < 64) {
      EXPECT_FALSE(full.Contains(d));
    }
  }
}

TEST(SubspaceTest, SingleContainsExactlyOneDimension) {
  Subspace s = Subspace::Single(7);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_EQ(s.Lowest(), 7u);
}

TEST(SubspaceTest, AddRemove) {
  Subspace s;
  s.Add(2);
  s.Add(4);
  EXPECT_EQ(s, (Subspace{2, 4}));
  s.Remove(2);
  EXPECT_EQ(s, Subspace::Single(4));
  s.Remove(4);
  EXPECT_TRUE(s.empty());
  // Removing an absent dim is a no-op.
  s.Remove(4);
  EXPECT_TRUE(s.empty());
}

TEST(SubspaceTest, SubsetRelations) {
  Subspace small{1, 3};
  Subspace big{1, 2, 3};
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(big.IsSupersetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_FALSE(small.IsProperSubsetOf(small));
  EXPECT_TRUE(Subspace{}.IsSubsetOf(small));
  Subspace other{0, 4};
  EXPECT_FALSE(small.IsSubsetOf(other));
  EXPECT_FALSE(other.IsSubsetOf(small));
}

TEST(SubspaceTest, ComplementWithinSpace) {
  Subspace s{0, 2};
  Subspace c = s.Complement(4);
  EXPECT_EQ(c, (Subspace{1, 3}));
  // Complement twice is the identity.
  EXPECT_EQ(c.Complement(4), s);
  // Complement of the full space is empty, and vice versa.
  EXPECT_TRUE(Subspace::Full(6).Complement(6).empty());
  EXPECT_EQ(Subspace{}.Complement(6), Subspace::Full(6));
}

TEST(SubspaceTest, SetAlgebra) {
  Subspace a{0, 1, 4};
  Subspace b{1, 2};
  EXPECT_EQ(a.Union(b), (Subspace{0, 1, 2, 4}));
  EXPECT_EQ(a.Intersection(b), Subspace::Single(1));
  EXPECT_EQ(a.Difference(b), (Subspace{0, 4}));
  EXPECT_EQ(b.Difference(a), Subspace::Single(2));
  EXPECT_EQ(a | b, a.Union(b));
  EXPECT_EQ(a & b, a.Intersection(b));
}

TEST(SubspaceTest, CompoundAssignment) {
  Subspace s{0};
  s |= Subspace{3};
  EXPECT_EQ(s, (Subspace{0, 3}));
  s &= Subspace{3, 5};
  EXPECT_EQ(s, Subspace::Single(3));
}

TEST(SubspaceTest, ForEachDimVisitsInIncreasingOrder) {
  Subspace s{5, 0, 9, 2};
  std::vector<Dim> visited;
  s.ForEachDim([&](Dim d) { visited.push_back(d); });
  EXPECT_EQ(visited, (std::vector<Dim>{0, 2, 5, 9}));
}

TEST(SubspaceTest, ToString) {
  EXPECT_EQ(Subspace{}.ToString(), "{}");
  EXPECT_EQ((Subspace{1, 3}).ToString(), "{1,3}");
}

TEST(SubspaceTest, LowestReturnsSmallestMember) {
  EXPECT_EQ((Subspace{6, 2, 9}).Lowest(), 2u);
}

TEST(SubspaceTest, OrderingIsTotalOnBitmask) {
  EXPECT_LT(Subspace(1), Subspace(2));
  EXPECT_LT(Subspace(2), Subspace(3));
  EXPECT_FALSE(Subspace(3) < Subspace(3));
}

// Property checks over random masks: complement/subset/union laws.
class SubspacePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SubspacePropertyTest, AlgebraLawsHoldOnRandomMasks) {
  std::mt19937_64 rng(GetParam());
  const Dim d = 1 + static_cast<Dim>(rng() % 64);
  const std::uint64_t space = Subspace::Full(d).bits();
  for (int i = 0; i < 200; ++i) {
    Subspace a(rng() & space);
    Subspace b(rng() & space);
    Subspace c(rng() & space);
    // De Morgan.
    EXPECT_EQ((a | b).Complement(d), a.Complement(d) & b.Complement(d));
    EXPECT_EQ((a & b).Complement(d),
              a.Complement(d) | b.Complement(d));
    // Subset characterizations.
    EXPECT_EQ(a.IsSubsetOf(b), (a & b) == a);
    EXPECT_EQ(a.IsSubsetOf(b), (a | b) == b);
    EXPECT_EQ(a.IsSubsetOf(b), b.Complement(d).IsSubsetOf(a.Complement(d)));
    // Size arithmetic.
    EXPECT_EQ(a.size() + a.Complement(d).size(), d);
    EXPECT_EQ((a | b).size() + (a & b).size(), a.size() + b.size());
    // Associativity / distributivity spot checks.
    EXPECT_EQ((a | b) | c, a | (b | c));
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubspacePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Maximum-dimensionality (d = kMaxDims = 64) edge cases: the full
// mask needs every bit of the underlying uint64_t, so shift-width and
// sign bugs surface exactly here. ---

TEST(SubspaceMaxDimTest, FullMaskUsesAllSixtyFourBits) {
  const Subspace full = Subspace::Full(Subspace::kMaxDims);
  EXPECT_EQ(full.bits(), ~std::uint64_t{0});
  EXPECT_EQ(full.size(), Subspace::kMaxDims);
  EXPECT_FALSE(full.empty());
  EXPECT_TRUE(full.Contains(0));
  EXPECT_TRUE(full.Contains(Subspace::kMaxDims - 1));
  EXPECT_EQ(full.Lowest(), 0u);
}

TEST(SubspaceMaxDimTest, EmptyMaskComplementsToFull) {
  const Subspace empty;
  const Subspace full = Subspace::Full(Subspace::kMaxDims);
  EXPECT_EQ(empty.Complement(Subspace::kMaxDims), full);
  EXPECT_EQ(full.Complement(Subspace::kMaxDims), empty);
}

TEST(SubspaceMaxDimTest, ComplementRoundTripsAtMaxDims) {
  std::mt19937_64 rng(424242);
  for (int i = 0; i < 100; ++i) {
    const Subspace s(rng());
    EXPECT_EQ(s.Complement(Subspace::kMaxDims).Complement(Subspace::kMaxDims),
              s);
    EXPECT_EQ(s.size() + s.Complement(Subspace::kMaxDims).size(),
              Subspace::kMaxDims);
  }
}

TEST(SubspaceMaxDimTest, HighestDimensionIsOrdinary) {
  const Dim top = Subspace::kMaxDims - 1;
  Subspace s = Subspace::Single(top);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Lowest(), top);
  EXPECT_TRUE(s.Contains(top));
  EXPECT_EQ(s.ToString(), "{63}");
  s.Remove(top);
  EXPECT_TRUE(s.empty());
  s.Add(top);
  EXPECT_EQ(s, Subspace::Single(top));
}

TEST(SubspaceMaxDimTest, ForEachDimWalksAllSixtyFour) {
  const Subspace full = Subspace::Full(Subspace::kMaxDims);
  Dim expected = 0;
  full.ForEachDim([&](Dim d) {
    EXPECT_EQ(d, expected);
    ++expected;
  });
  EXPECT_EQ(expected, Subspace::kMaxDims);
}

TEST(SubspaceMaxDimTest, FullIsSupersetOfEveryMask) {
  std::mt19937_64 rng(99);
  const Subspace full = Subspace::Full(Subspace::kMaxDims);
  for (int i = 0; i < 50; ++i) {
    const Subspace s(rng());
    EXPECT_TRUE(s.IsSubsetOf(full));
    EXPECT_TRUE(full.IsSupersetOf(s));
    EXPECT_EQ(s.IsProperSubsetOf(full), s != full);
  }
}

}  // namespace
}  // namespace skyline
