#include "src/core/verify.h"

#include <gtest/gtest.h>

namespace skyline {
namespace {

TEST(VerifyTest, ReferenceSkylineTextbookExample) {
  // The hotel example of Figure 1, reduced: price vs distance.
  Dataset data = Dataset::FromRows({
      {1.0, 9.0},  // skyline
      {2.0, 8.0},  // skyline
      {3.0, 8.5},  // dominated by (2,8)
      {5.0, 4.0},  // skyline
      {6.0, 5.0},  // dominated by (5,4)
      {9.0, 1.0},  // skyline
  });
  EXPECT_EQ(ReferenceSkyline(data), (std::vector<PointId>{0, 1, 3, 5}));
}

TEST(VerifyTest, AllEqualPointsAreAllSkyline) {
  Dataset data = Dataset::FromRows({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(ReferenceSkyline(data).size(), 3u);
}

TEST(VerifyTest, SinglePointIsSkyline) {
  Dataset data = Dataset::FromRows({{4, 2}});
  EXPECT_EQ(ReferenceSkyline(data), std::vector<PointId>{0});
}

TEST(VerifyTest, EmptyDataset) {
  Dataset data(3);
  EXPECT_TRUE(ReferenceSkyline(data).empty());
}

TEST(VerifyTest, TotallyOrderedChainHasSingletonSkyline) {
  Dataset data = Dataset::FromRows({{3, 3}, {2, 2}, {1, 1}, {4, 4}});
  EXPECT_EQ(ReferenceSkyline(data), std::vector<PointId>{2});
}

TEST(VerifyTest, SameIdSetIgnoresOrder) {
  EXPECT_TRUE(SameIdSet({3, 1, 2}, {1, 2, 3}));
  EXPECT_FALSE(SameIdSet({1, 2}, {1, 2, 3}));
  EXPECT_FALSE(SameIdSet({1, 4}, {1, 2}));
  EXPECT_TRUE(SameIdSet({}, {}));
}

TEST(VerifyTest, IsSkylineOfAcceptsExactSet) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}, {3, 3}});
  EXPECT_TRUE(IsSkylineOf(data, {1, 0}));
  EXPECT_FALSE(IsSkylineOf(data, {0, 1, 2}));
  EXPECT_FALSE(IsSkylineOf(data, {0}));
}

}  // namespace
}  // namespace skyline
