// Two tests in one file:
//
// 1. Runtime tests (any compiler): the src/core/sync.h wrappers really
//    lock — mutual exclusion, reader/writer semantics, and the CondVar
//    publish handshake hold under thread stress. The TSan preset runs
//    these, so a wrapper that silently stopped locking is caught twice.
//
// 2. Negative-compile matrix (Clang + SKYLINE_THREAD_SAFETY only):
//    compiling this file with -DSKYLINE_TS_NEG_CASE=<n> selects one
//    deliberate lock-discipline violation that MUST fail the build
//    under -Wthread-safety -Werror=thread-safety. tests/CMakeLists.txt
//    registers one WILL_FAIL build test per case, proving the analysis
//    is actually armed — a regression that turned the annotations into
//    no-ops would flip these tests red, not silently drop coverage.
#include "src/core/sync.h"

#include <cstdint>

namespace skyline {
namespace {

/// Annotated exactly like the production classes: a guarded field, a
/// REQUIRES helper, and EXCLUDES entry points.
class GuardedCounter {
 public:
  void Increment() SKYLINE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  std::int64_t Get() const SKYLINE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return GetLocked();
  }

  std::int64_t GetLocked() const SKYLINE_REQUIRES(mu_) { return value_; }

  Mutex& mu() SKYLINE_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable Mutex mu_;
  std::int64_t value_ SKYLINE_GUARDED_BY(mu_) = 0;
};

/// Reader/writer shape of QueryService: shared reads, exclusive writes.
class GuardedPair {
 public:
  void Set(std::int64_t a, std::int64_t b) SKYLINE_EXCLUDES(mu_) {
    WriterLock lock(mu_);
    a_ = a;
    b_ = b;
  }

  std::int64_t Sum() const SKYLINE_EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return a_ + b_;
  }

 private:
  mutable SharedMutex mu_;
  std::int64_t a_ SKYLINE_GUARDED_BY(mu_) = 0;
  std::int64_t b_ SKYLINE_GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace skyline

#if defined(SKYLINE_TS_NEG_CASE)
// ---- Negative-compile cases: each must NOT compile under Clang with
// SKYLINE_THREAD_SAFETY=ON. Kept minimal so the only possible error is
// the thread-safety diagnostic itself.
namespace skyline {
namespace {

#if SKYLINE_TS_NEG_CASE == 1
// Reading a GUARDED_BY field without its lock.
std::int64_t UnguardedRead(GuardedCounter& c) {
  return c.GetLocked();  // error: requires holding c.mu_
}
#elif SKYLINE_TS_NEG_CASE == 2
// Writing a GUARDED_BY field while holding only the shared mode.
class SharedWrite {
 public:
  void Bump() {
    ReaderLock lock(mu_);
    ++value_;  // error: writing requires exclusive hold
  }

 private:
  SharedMutex mu_;
  std::int64_t value_ SKYLINE_GUARDED_BY(mu_) = 0;
};
void Use(SharedWrite& s) { s.Bump(); }
#elif SKYLINE_TS_NEG_CASE == 3
// Acquiring without releasing: lock leaks out of the function.
void LeakLock(Mutex& mu) {
  mu.Lock();
}  // error: mutex is still held at the end of function
#elif SKYLINE_TS_NEG_CASE == 4
// Re-entering an EXCLUDES section while holding the lock (self-deadlock
// at runtime, compile error statically).
void Reenter(GuardedCounter& c) {
  MutexLock lock(c.mu());
  c.Increment();  // error: Increment excludes mu_, which is held
}
#else
#error "unknown SKYLINE_TS_NEG_CASE"
#endif

}  // namespace
}  // namespace skyline

#else  // !defined(SKYLINE_TS_NEG_CASE) — the runtime half.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace skyline {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(SyncTest, SharedMutexReadersSeeConsistentPairs) {
  GuardedPair pair;
  std::atomic<bool> stop{false};
  // The writer keeps a_ + b_ == 0 inside every critical section; any
  // reader observing a nonzero sum saw a torn pair, i.e. the wrappers
  // failed to exclude readers from the write section.
  std::thread writer([&] {
    for (std::int64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      pair.Set(i, -i);
    }
  });
  for (int t = 0; t < 4; ++t) {
    std::thread reader([&] {
      for (int i = 0; i < 20000; ++i) EXPECT_EQ(pair.Sum(), 0);
    });
    reader.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(SyncTest, CondVarPublishHandshake) {
  Mutex mu;
  CondVar cv;
  bool published = false;  // guarded by mu (local: annotation not possible)
  std::int64_t payload = 0;
  std::thread consumer([&] {
    MutexLock lock(mu);
    cv.Wait(lock, [&] { return published; });
    EXPECT_EQ(payload, 42);
  });
  {
    MutexLock lock(mu);
    payload = 42;
    published = true;
  }
  cv.NotifyAll();
  consumer.join();
}

TEST(SyncTest, EarlyUnlockEndsTheCriticalSection) {
  SharedMutex mu;
  {
    ReaderLock lock(mu);
    lock.Unlock();
    // Exclusive acquisition must now succeed without deadlock.
    WriterLock relock(mu);
  }
  {
    WriterLock lock(mu);
    lock.Unlock();
    ReaderLock relock(mu);
  }
}

}  // namespace
}  // namespace skyline

#endif  // SKYLINE_TS_NEG_CASE
