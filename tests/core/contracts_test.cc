#include "src/core/contracts.h"

#include <gtest/gtest.h>

#include "src/core/dataset.h"
#include "src/core/stats.h"
#include "src/core/subspace.h"
#include "src/subset/merge.h"

namespace skyline {
namespace {

TEST(ContractsTest, PassingChecksAreSilent) {
  SKYLINE_ASSERT(1 + 1 == 2, "arithmetic still works");
  SKYLINE_DCHECK(true, "never fires");
  SUCCEED();
}

TEST(ContractsTest, MacrosEvaluateConditionAtMostOnce) {
  int evaluations = 0;
  SKYLINE_ASSERT([&] {
    ++evaluations;
    return true;
  }(), "side effect counted");
  EXPECT_LE(evaluations, 1);
}

TEST(ContractsDeathTest, ContractViolationAlwaysAborts) {
  EXPECT_DEATH(SKYLINE_CONTRACT_VIOLATION("unreachable state reached"),
               "contract violation");
}

TEST(ContractsDeathTest, AssertAbortsWhenEnabled) {
  if (!kSkylineAsserts) GTEST_SKIP() << "SKYLINE_ASSERT compiled out";
  EXPECT_DEATH(SKYLINE_ASSERT(false, "must die"), "assertion failed");
}

TEST(ContractsDeathTest, DeepCheckAbortsWhenEnabled) {
  if (!kSkylineDeepChecks) GTEST_SKIP() << "SKYLINE_DCHECK compiled out";
  EXPECT_DEATH(SKYLINE_DCHECK(false, "must die"), "deep check failed");
}

TEST(ContractsDeathTest, SubspaceBoundsAreEnforced) {
  if (!kSkylineAsserts) GTEST_SKIP() << "SKYLINE_ASSERT compiled out";
  const Dim oversized = Subspace::kMaxDims + 1;
  EXPECT_DEATH(Subspace::Full(oversized), "kMaxDims");
  EXPECT_DEATH(Subspace::Single(Subspace::kMaxDims), "kMaxDims");
  EXPECT_DEATH(Subspace{}.Lowest(), "empty");
}

TEST(ContractsDeathTest, DatasetBoundsAreEnforced) {
  if (!kSkylineAsserts) GTEST_SKIP() << "SKYLINE_ASSERT compiled out";
  const Dataset data = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DEATH(data.row(2), "out of range");
  EXPECT_DEATH(data.at(0, 2), "out of range");
}

TEST(ContractsDeathTest, MergeRejectsNonPositiveSigma) {
  if (!kSkylineAsserts) GTEST_SKIP() << "SKYLINE_ASSERT compiled out";
  const Dataset data = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DEATH(MergeSubspaces(data, 0), "sigma");
}

TEST(ContractsDeathTest, StatsSlotBoundsAreEnforced) {
  if (!kSkylineAsserts) GTEST_SKIP() << "SKYLINE_ASSERT compiled out";
  StatsAccumulator acc(2);
  EXPECT_DEATH(acc.slot(2), "out of range");
}

}  // namespace
}  // namespace skyline
