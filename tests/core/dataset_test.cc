#include "src/core/dataset.h"

#include <gtest/gtest.h>

namespace skyline {
namespace {

TEST(DatasetTest, EmptyDataset) {
  Dataset data(3);
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.num_points(), 0u);
  EXPECT_EQ(data.num_dims(), 3u);
}

TEST(DatasetTest, FromRowsInitializerList) {
  Dataset data = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(data.num_points(), 3u);
  EXPECT_EQ(data.num_dims(), 2u);
  EXPECT_EQ(data.at(0, 0), 1.0);
  EXPECT_EQ(data.at(0, 1), 2.0);
  EXPECT_EQ(data.at(2, 1), 6.0);
}

TEST(DatasetTest, FromRowsVector) {
  std::vector<std::vector<Value>> rows = {{0.5, 0.25, 0.125}, {1, 2, 3}};
  Dataset data = Dataset::FromRows(rows);
  EXPECT_EQ(data.num_points(), 2u);
  EXPECT_EQ(data.num_dims(), 3u);
  EXPECT_EQ(data.at(1, 2), 3.0);
}

TEST(DatasetTest, RowMajorConstructor) {
  Dataset data(2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(data.num_points(), 3u);
  EXPECT_EQ(data.at(1, 0), 3.0);
  EXPECT_EQ(data.at(2, 1), 6.0);
}

TEST(DatasetTest, AppendGrowsPointCount) {
  Dataset data(2);
  const Value row1[] = {1.0, 2.0};
  const Value row2[] = {3.0, 4.0};
  data.Append(row1);
  data.Append(row2);
  EXPECT_EQ(data.num_points(), 2u);
  EXPECT_EQ(data.at(1, 1), 4.0);
}

TEST(DatasetTest, RowPointerMatchesAt) {
  Dataset data = Dataset::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Value* row = data.row(1);
  EXPECT_EQ(row[0], 4.0);
  EXPECT_EQ(row[2], 6.0);
  auto span = data.point(0);
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(span[1], 2.0);
}

TEST(DatasetTest, PointToString) {
  Dataset data = Dataset::FromRows({{0.25, 1.0}});
  EXPECT_EQ(data.PointToString(0), "(0.25, 1)");
}

TEST(DatasetTest, ValuesExposesRowMajorStorage) {
  Dataset data = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(data.values(), (std::vector<Value>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace skyline
