// Randomized differential tests of the vectorized kernel layer
// (src/core/kernels.h) against the scalar reference functions of
// src/core/dominance.h: identical results on ties, duplicate rows,
// degenerate dimensionalities (d=1, d=64 — the Subspace maximum),
// padded-tail garbage, and identical dominance-test charges from the
// batched paths (the DominanceTester counter contract).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/aligned_dataset.h"
#include "src/core/cpu.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"
#include "src/core/simd_dispatch.h"

namespace skyline {
namespace {

/// Random dataset engineered for collisions: values drawn from a coarse
/// grid (ties in single dimensions), plus every fourth row duplicated
/// verbatim from an earlier row (full-row ties).
Dataset TieHeavyDataset(std::size_t n, Dim d, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> grid(0, 3);
  std::vector<Value> values;
  values.reserve(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 3 && i > 0) {
      const std::size_t copy_of = rng() % i;
      for (Dim k = 0; k < d; ++k) {
        values.push_back(values[copy_of * d + k]);
      }
    } else {
      for (Dim k = 0; k < d; ++k) {
        values.push_back(static_cast<Value>(grid(rng)) / 4);
      }
    }
  }
  return Dataset(d, std::move(values));
}

const Dim kDims[] = {1, 2, 3, 8, 13, 24, 64};

TEST(KernelDifferentialTest, PairwiseKernelsAgreeOnTieHeavyData) {
  for (Dim d : kDims) {
    const std::size_t n = 48;
    const Dataset data = TieHeavyDataset(n, d, 1000 + d);
    const AlignedDataset aligned(data);
    for (PointId a = 0; a < n; ++a) {
      for (PointId b = 0; b < n; ++b) {
        const Value* sa = data.row(a);
        const Value* sb = data.row(b);
        const Value* ka = aligned.row(a);
        const Value* kb = aligned.row(b);
        EXPECT_EQ(Dominates(sa, sb, d), kernels::Dominates(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(DominatesOrEqual(sa, sb, d),
                  kernels::DominatesOrEqual(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(Compare(sa, sb, d), kernels::Compare(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(DominatingSubspace(sa, sb, d),
                  kernels::DominatingSubspace(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        bool scalar_worse = false;
        bool kernel_worse = false;
        EXPECT_EQ(DominatingSubspaceEx(sa, sb, d, &scalar_worse),
                  kernels::DominatingSubspaceEx(ka, kb, d, &kernel_worse))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(scalar_worse, kernel_worse)
            << "d=" << d << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(KernelDifferentialTest, KernelsNeverReadThePaddingTail) {
  // Poison the padding with the nastiest values available; every kernel
  // must still agree with the scalar reference over the packed rows.
  const Value kPoison[] = {std::numeric_limits<Value>::quiet_NaN(),
                           -std::numeric_limits<Value>::infinity(), -1e300};
  for (Dim d : {Dim{1}, Dim{3}, Dim{8}, Dim{13}}) {
    const std::size_t n = 32;
    const Dataset data = TieHeavyDataset(n, d, 2000 + d);
    for (Value poison : kPoison) {
      AlignedDataset aligned(data);
      aligned.FillPaddingForTesting(poison);
      for (PointId a = 0; a < n; ++a) {
        for (PointId b = 0; b < n; ++b) {
          EXPECT_EQ(Dominates(data.row(a), data.row(b), d),
                    kernels::Dominates(aligned.row(a), aligned.row(b), d));
          bool sw = false;
          bool kw = false;
          EXPECT_EQ(
              DominatingSubspaceEx(data.row(a), data.row(b), d, &sw),
              kernels::DominatingSubspaceEx(aligned.row(a), aligned.row(b), d,
                                            &kw));
          EXPECT_EQ(sw, kw);
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, AlignedRowsStartOnCacheLines) {
  for (Dim d : kDims) {
    const Dataset data = TieHeavyDataset(9, d, 3000 + d);
    const AlignedDataset aligned(data);
    EXPECT_EQ(aligned.stride() % (kRowAlignment / sizeof(Value)), 0u);
    EXPECT_GE(aligned.stride(), d);
    for (std::size_t i = 0; i < aligned.num_rows(); ++i) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned.row(i)) %
                    kRowAlignment,
                0u)
          << "d=" << d << " row=" << i;
    }
  }
}

TEST(KernelDifferentialTest, GatheredBlockMatchesSourceRows) {
  const Dim d = 7;
  const Dataset data = TieHeavyDataset(40, d, 99);
  const std::vector<PointId> ids = {31, 2, 2, 17, 0, 39};  // dups allowed
  const AlignedDataset block(data, ids);
  ASSERT_EQ(block.num_rows(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (Dim k = 0; k < d; ++k) {
      EXPECT_EQ(block.row(i)[k], data.row(ids[i])[k]);
    }
  }
}

TEST(KernelDifferentialTest, DominatesAnyMatchesScalarLoopAndCharge) {
  std::mt19937_64 rng(4242);
  for (Dim d : {Dim{1}, Dim{4}, Dim{8}, Dim{24}}) {
    const std::size_t n = 64;
    const Dataset data = TieHeavyDataset(n, d, 4000 + d);
    AlignedDataset aligned(data);
    // Plane built so the dispatched wrapper engages the prefilter on
    // the threshold-sized candidate lists below.
    aligned.EnsureQuantized();
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<PointId> candidates(rng() % 12);
      for (PointId& c : candidates) c = static_cast<PointId>(rng() % n);
      const PointId q = static_cast<PointId>(rng() % n);
      const PointId skip = (trial % 3 == 0) && !candidates.empty()
                               ? candidates[rng() % candidates.size()]
                               : kInvalidPoint;

      // Scalar reference: early-exit loop with one charge per pivot
      // scanned, the contract the batched kernel must reproduce.
      std::size_t scalar_first = kernels::kNoDominator;
      std::uint64_t scalar_scanned = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == skip) continue;
        ++scalar_scanned;
        if (Dominates(data.row(candidates[i]), data.row(q), d)) {
          scalar_first = i;
          break;
        }
      }

      const kernels::BatchProbeResult r =
          kernels::DominatesAny(aligned, candidates, aligned.row(q), d, skip);
      EXPECT_EQ(r.first, scalar_first) << "d=" << d << " trial=" << trial;
      EXPECT_EQ(r.scanned, scalar_scanned) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(KernelDifferentialTest, DominatingSubspaceBatchMatchesScalarFold) {
  std::mt19937_64 rng(777);
  for (Dim d : {Dim{1}, Dim{4}, Dim{8}, Dim{24}}) {
    const std::size_t n = 64;
    const Dataset data = TieHeavyDataset(n, d, 5000 + d);
    const AlignedDataset aligned(data);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<PointId> pivots(rng() % 12);
      for (PointId& p : pivots) p = static_cast<PointId>(rng() % n);
      const PointId q = static_cast<PointId>(rng() % n);
      const PointId skip =
          (trial % 3 == 0) ? static_cast<PointId>(rng() % n) : kInvalidPoint;

      Subspace scalar_mask;
      std::size_t scalar_dominated_by = kernels::kNoDominator;
      std::uint64_t scalar_scanned = 0;
      for (std::size_t i = 0; i < pivots.size(); ++i) {
        if (pivots[i] == skip) continue;
        ++scalar_scanned;
        bool worse = false;
        const Subspace m =
            DominatingSubspaceEx(data.row(q), data.row(pivots[i]), d, &worse);
        if (m.empty() && worse) {
          scalar_dominated_by = i;
          break;
        }
        scalar_mask |= m;
      }

      const kernels::BatchSubspaceResult r = kernels::DominatingSubspaceBatch(
          aligned, pivots, aligned.row(q), d, skip);
      EXPECT_EQ(r.dominated_by, scalar_dominated_by)
          << "d=" << d << " trial=" << trial;
      EXPECT_EQ(r.scanned, scalar_scanned) << "d=" << d << " trial=" << trial;
      if (r.dominated_by == kernels::kNoDominator) {
        EXPECT_EQ(r.mask, scalar_mask) << "d=" << d << " trial=" << trial;
      }
    }
  }
}

TEST(KernelDifferentialTest, DominatingSubspaceExBatchMatchesPairKernel) {
  for (Dim d : {Dim{1}, Dim{8}, Dim{64}}) {
    const std::size_t n = 48;
    const Dataset data = TieHeavyDataset(n, d, 6000 + d);
    const AlignedDataset aligned(data);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < n; i += 2) rows.push_back(i);
    for (PointId pivot = 0; pivot < 8; ++pivot) {
      std::vector<Subspace> masks(rows.size());
      std::vector<std::uint8_t> worse(rows.size());
      kernels::DominatingSubspaceExBatch(aligned, rows, aligned.row(pivot), d,
                                         masks.data(), worse.data());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        bool scalar_worse = false;
        const Subspace m = DominatingSubspaceEx(
            data.row(rows[i]), data.row(pivot), d, &scalar_worse);
        EXPECT_EQ(masks[i], m) << "d=" << d << " i=" << i;
        EXPECT_EQ(worse[i] != 0, scalar_worse) << "d=" << d << " i=" << i;
      }
    }
  }
}

// The DominanceTester counter contract (src/core/dominance.h): one test
// per pivot actually scanned — a batched DominatesAny call must charge
// exactly what the equivalent sequence of single-pair calls charges.
TEST(KernelDifferentialTest, DominanceTesterBatchedChargeEqualsScalarCharge) {
  std::mt19937_64 rng(31337);
  const Dim d = 8;
  const std::size_t n = 96;
  const Dataset data = TieHeavyDataset(n, d, 7000);
  DominanceTester batched(data);
  DominanceTester pairwise(data);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<PointId> candidates(rng() % 16);
    for (PointId& c : candidates) c = static_cast<PointId>(rng() % n);
    const PointId q = static_cast<PointId>(rng() % n);

    bool scalar_dominated = false;
    for (PointId s : candidates) {
      if (pairwise.Dominates(s, q)) {
        scalar_dominated = true;
        break;
      }
    }
    const bool batched_dominated = batched.DominatesAny(candidates, q);

    EXPECT_EQ(batched_dominated, scalar_dominated) << "trial=" << trial;
    EXPECT_EQ(batched.tests(), pairwise.tests()) << "trial=" << trial;
  }
  EXPECT_GT(batched.tests(), 0u);
}

TEST(KernelDifferentialTest, SingleDimensionAndMaxDimensionEdges) {
  // d=1: dominance degenerates to <; d=64: every Subspace bit in use.
  {
    const Dataset data = Dataset::FromRows({{0.0}, {0.0}, {1.0}});
    const AlignedDataset aligned(data);
    EXPECT_FALSE(kernels::Dominates(aligned.row(0), aligned.row(1), 1));
    EXPECT_TRUE(kernels::Dominates(aligned.row(0), aligned.row(2), 1));
    EXPECT_EQ(kernels::Compare(aligned.row(0), aligned.row(1), 1),
              DominanceRelation::kEqual);
    EXPECT_EQ(kernels::DominatingSubspace(aligned.row(0), aligned.row(2), 1),
              Subspace({0}));
  }
  {
    const Dim d = 64;
    std::vector<Value> better(d, 0.0);
    std::vector<Value> worse(d, 1.0);
    Dataset data(d);
    data.Append(better);
    data.Append(worse);
    const AlignedDataset aligned(data);
    EXPECT_TRUE(kernels::Dominates(aligned.row(0), aligned.row(1), d));
    EXPECT_EQ(kernels::DominatingSubspace(aligned.row(0), aligned.row(1), d),
              Subspace::Full(d));
    bool w = false;
    EXPECT_EQ(
        kernels::DominatingSubspaceEx(aligned.row(1), aligned.row(0), d, &w),
        Subspace{});
    EXPECT_TRUE(w);
  }
}

// ---------------------------------------------------------------------------
// Per-backend differentials: every backend cpu::OpsFor exposes (scalar,
// AVX2, AVX-512 — whichever are executable here), with the quantized
// prefilter both off and on, must reproduce the scalar reference loops
// exactly: same booleans, same Subspace bits, same `scanned` charges.
// CI additionally runs this whole binary once per backend under
// SKYLINE_FORCE_ISA, which exercises the *dispatched* wrappers of
// src/core/kernels.h per level; the loops below cover every compiled
// backend within a single process regardless of the forced level.
// ---------------------------------------------------------------------------

/// Scalar early-exit DominatesAny reference (result + charge).
void ScalarDominatesAny(const Dataset& data,
                        const std::vector<PointId>& candidates, PointId q,
                        Dim d, PointId skip, std::size_t* first,
                        std::uint64_t* scanned) {
  *first = kernels::kNoDominator;
  *scanned = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == skip) continue;
    ++*scanned;
    if (Dominates(data.row(candidates[i]), data.row(q), d)) {
      *first = i;
      return;
    }
  }
}

/// Scalar mask-fold reference for DominatingSubspaceBatch.
void ScalarSubspaceFold(const Dataset& data,
                        const std::vector<PointId>& pivots, PointId q, Dim d,
                        PointId skip, Subspace* mask,
                        std::size_t* dominated_by, std::uint64_t* scanned) {
  *mask = Subspace{};
  *dominated_by = kernels::kNoDominator;
  *scanned = 0;
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    if (pivots[i] == skip) continue;
    ++*scanned;
    bool worse = false;
    const Subspace m =
        DominatingSubspaceEx(data.row(q), data.row(pivots[i]), d, &worse);
    if (m.empty() && worse) {
      *dominated_by = i;
      return;
    }
    *mask |= m;
  }
}

/// Runs the full batched differential (both batch kernels, random
/// candidate lists with duplicates and skips) for one backend and
/// prefilter setting against one dataset.
void CheckBackendAgainstScalar(const kernels::simd::KernelOps& ops,
                               const char* isa, bool prefilter,
                               const Dataset& data,
                               const AlignedDataset& aligned, Dim d,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t n = data.num_points();
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<PointId> candidates(rng() % 20);
    for (PointId& c : candidates) c = static_cast<PointId>(rng() % n);
    const PointId q = static_cast<PointId>(rng() % n);
    const PointId skip = (trial % 3 == 0) && !candidates.empty()
                             ? candidates[rng() % candidates.size()]
                             : kInvalidPoint;

    std::size_t want_first;
    std::uint64_t want_scanned;
    ScalarDominatesAny(data, candidates, q, d, skip, &want_first,
                       &want_scanned);
    const kernels::BatchProbeResult probe =
        ops.dominates_any(aligned, candidates, aligned.row(q), d, skip,
                          prefilter);
    EXPECT_EQ(probe.first, want_first)
        << isa << " prefilter=" << prefilter << " d=" << d
        << " trial=" << trial;
    EXPECT_EQ(probe.scanned, want_scanned)
        << isa << " prefilter=" << prefilter << " d=" << d
        << " trial=" << trial;

    Subspace want_mask;
    std::size_t want_dom;
    ScalarSubspaceFold(data, candidates, q, d, skip, &want_mask, &want_dom,
                       &want_scanned);
    const kernels::BatchSubspaceResult fold = ops.dominating_subspace_batch(
        aligned, candidates, aligned.row(q), d, skip);
    EXPECT_EQ(fold.dominated_by, want_dom)
        << isa << " d=" << d << " trial=" << trial;
    EXPECT_EQ(fold.scanned, want_scanned)
        << isa << " d=" << d << " trial=" << trial;
    if (fold.dominated_by == kernels::kNoDominator) {
      EXPECT_EQ(fold.mask, want_mask) << isa << " d=" << d
                                      << " trial=" << trial;
    }
  }

  // The one-vs-many Ex form (Merge inner loop) per backend.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < n; i += 3) rows.push_back(i);
  std::vector<Subspace> masks(rows.size());
  std::vector<std::uint8_t> worse(rows.size());
  for (PointId pivot = 0; pivot < std::min<std::size_t>(n, 6); ++pivot) {
    ops.dominating_subspace_ex_batch(aligned, rows, aligned.row(pivot), d,
                                     masks.data(), worse.data());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      bool scalar_worse = false;
      const Subspace m = DominatingSubspaceEx(data.row(rows[i]),
                                              data.row(pivot), d,
                                              &scalar_worse);
      EXPECT_EQ(masks[i], m) << isa << " d=" << d << " i=" << i;
      EXPECT_EQ(worse[i] != 0, scalar_worse)
          << isa << " d=" << d << " i=" << i;
    }
  }
}

TEST(KernelDifferentialTest, EveryBackendMatchesScalarWithPoisonedPadding) {
  for (Dim d : {Dim{1}, Dim{4}, Dim{8}, Dim{13}, Dim{24}, Dim{64}}) {
    const std::size_t n = 72;
    const Dataset data = TieHeavyDataset(n, d, 8000 + d);
    AlignedDataset aligned(data);
    // The exact plane's padding is poisoned; tail loads in the SIMD
    // backends must mask it out. (The quantized plane keeps its neutral
    // zero padding — that IS its contract.)
    aligned.FillPaddingForTesting(std::numeric_limits<Value>::quiet_NaN());
    // Built AFTER poisoning: the lazy plane build sweeps only the
    // packed columns, so poison in the tail must not leak into the
    // grid (or trip its finiteness check).
    ASSERT_TRUE(aligned.EnsureQuantized());
    ASSERT_TRUE(aligned.has_quantized());
    for (cpu::IsaLevel level : cpu::kAllLevels) {
      const kernels::simd::KernelOps* ops = cpu::OpsFor(level);
      if (ops == nullptr) continue;
      for (bool prefilter : {false, true}) {
        CheckBackendAgainstScalar(*ops, cpu::IsaName(level), prefilter, data,
                                  aligned, d, 9000 + d);
      }
    }
  }
}

TEST(KernelDifferentialTest, BackendsAgreeOnBucketBoundaryValues) {
  // Rows drawn from the exact bucket-edge lattice of the quantization
  // grid: with per-dimension range [0, 255] the grid maps v to bucket
  // floor(v), so values k, k - eps, k + eps straddle bucket borders —
  // the spots where an unsound rounding rule would let the prefilter
  // reject a true dominator.
  const Dim d = 6;
  std::mt19937_64 rng(0xb0a7);
  Dataset data(d);
  std::vector<Value> row(d);
  // Anchor rows pinning the grid to [0, 255] in every dimension.
  std::fill(row.begin(), row.end(), 0.0);
  data.Append(row);
  std::fill(row.begin(), row.end(), 255.0);
  data.Append(row);
  for (int i = 0; i < 96; ++i) {
    for (Dim k = 0; k < d; ++k) {
      const double base = static_cast<double>(rng() % 256);
      const int jitter = static_cast<int>(rng() % 3) - 1;
      row[k] = std::min(255.0, std::max(0.0, base + jitter * 1e-9));
    }
    data.Append(row);
  }
  AlignedDataset aligned(data);
  ASSERT_TRUE(aligned.EnsureQuantized());
  for (cpu::IsaLevel level : cpu::kAllLevels) {
    const kernels::simd::KernelOps* ops = cpu::OpsFor(level);
    if (ops == nullptr) continue;
    CheckBackendAgainstScalar(*ops, cpu::IsaName(level), /*prefilter=*/true,
                              data, aligned, d, 0xfeed);
  }
}

TEST(KernelDifferentialTest, QuantizeRowIsMonotoneAndExactOnMembers) {
  const Dim d = 9;
  const Dataset data = TieHeavyDataset(64, d, 11000);
  AlignedDataset aligned(data);
  ASSERT_TRUE(aligned.EnsureQuantized());

  // Member rows quantize to exactly their stored quantized line — the
  // probe-side QuantizeRow and the build-side bucketing must be the
  // same function, or a row could prefilter-reject itself.
  alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
  for (std::size_t i = 0; i < aligned.num_rows(); ++i) {
    ASSERT_TRUE(aligned.QuantizeRow(aligned.row(i), qbuf));
    const std::uint8_t* stored = aligned.qrow_unchecked(i);
    for (std::size_t b = 0; b < AlignedDataset::kQuantStride; ++b) {
      ASSERT_EQ(qbuf[b], stored[b]) << "row=" << i << " byte=" << b;
    }
  }

  // Monotone per dimension: v1 <= v2 implies bucket(v1) <= bucket(v2),
  // including values far outside the build range (they clamp).
  std::mt19937_64 rng(0xc0de);
  std::vector<Value> a(d), b(d);
  alignas(kRowAlignment) std::uint8_t qa[AlignedDataset::kQuantStride];
  alignas(kRowAlignment) std::uint8_t qb[AlignedDataset::kQuantStride];
  for (int trial = 0; trial < 500; ++trial) {
    for (Dim k = 0; k < d; ++k) {
      const double lo = -1.0 + 3.0 * (static_cast<double>(rng() % 10000) /
                                      10000.0);
      const double hi = lo + 2.0 * (static_cast<double>(rng() % 10000) /
                                    10000.0);
      a[k] = lo;
      b[k] = hi;
    }
    ASSERT_TRUE(aligned.QuantizeRow(a.data(), qa));
    ASSERT_TRUE(aligned.QuantizeRow(b.data(), qb));
    for (Dim k = 0; k < d; ++k) {
      EXPECT_LE(qa[k], qb[k]) << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(KernelDifferentialTest, NonFiniteProbeSkipsPrefilterButStaysExact) {
  // Dataset finite (quantized plane exists) but the probe row has a
  // NaN / infinity: QuantizeRow must refuse it and the batch kernels
  // must still match the scalar reference bit for bit with the
  // prefilter requested.
  const Dim d = 5;
  const Dataset data = TieHeavyDataset(48, d, 12000);
  AlignedDataset aligned(data);
  ASSERT_TRUE(aligned.EnsureQuantized());

  const Value kBad[] = {std::numeric_limits<Value>::quiet_NaN(),
                        std::numeric_limits<Value>::infinity(),
                        -std::numeric_limits<Value>::infinity()};
  std::vector<PointId> all(aligned.num_rows());
  std::iota(all.begin(), all.end(), PointId{0});
  for (Value bad : kBad) {
    std::vector<Value> probe(data.row(7), data.row(7) + d);
    probe[d / 2] = bad;
    alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
    EXPECT_FALSE(aligned.QuantizeRow(probe.data(), qbuf));

    // Scalar reference over the raw probe values.
    std::size_t want_first = kernels::kNoDominator;
    std::uint64_t want_scanned = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      ++want_scanned;
      if (Dominates(data.row(all[i]), probe.data(), d)) {
        want_first = i;
        break;
      }
    }
    for (cpu::IsaLevel level : cpu::kAllLevels) {
      const kernels::simd::KernelOps* ops = cpu::OpsFor(level);
      if (ops == nullptr) continue;
      const kernels::BatchProbeResult r = ops->dominates_any(
          aligned, all, probe.data(), d, kInvalidPoint, /*prefilter=*/true);
      EXPECT_EQ(r.first, want_first) << cpu::IsaName(level);
      EXPECT_EQ(r.scanned, want_scanned) << cpu::IsaName(level);
    }
  }
}

TEST(KernelDifferentialTest, NonFiniteDatasetHasNoQuantizedPlane) {
  const Dim d = 4;
  Dataset data = TieHeavyDataset(16, d, 13000);
  std::vector<Value> row(d, 0.25);
  row[1] = std::numeric_limits<Value>::quiet_NaN();
  data.Append(row);
  AlignedDataset aligned(data);
  EXPECT_FALSE(aligned.EnsureQuantized());
  EXPECT_FALSE(aligned.has_quantized());
  // The dispatched wrapper (which only requests the prefilter when the
  // plane exists) must still agree with the scalar loop.
  std::vector<PointId> all(aligned.num_rows());
  std::iota(all.begin(), all.end(), PointId{0});
  for (PointId q = 0; q < aligned.num_rows(); ++q) {
    std::size_t want_first;
    std::uint64_t want_scanned;
    ScalarDominatesAny(data, all, q, d, kInvalidPoint, &want_first,
                       &want_scanned);
    const kernels::BatchProbeResult r =
        kernels::DominatesAny(aligned, all, aligned.row(q), d);
    EXPECT_EQ(r.first, want_first) << "q=" << q;
    EXPECT_EQ(r.scanned, want_scanned) << "q=" << q;
  }
}

TEST(KernelDifferentialTest, QuantizedPlaneIsLazyAndResetByAssign) {
  const Dim d = 5;
  const Dataset data = TieHeavyDataset(24, d, 14000);
  AlignedDataset aligned(data);
  // No plane until explicitly requested.
  EXPECT_FALSE(aligned.has_quantized());
  EXPECT_TRUE(aligned.EnsureQuantized());
  EXPECT_TRUE(aligned.has_quantized());
  // Idempotent.
  EXPECT_TRUE(aligned.EnsureQuantized());
  // Re-assigning drops the stale plane (its grid belongs to the old
  // contents); a fresh Ensure rebuilds it for the new rows.
  const Dataset other = TieHeavyDataset(12, d, 15000);
  aligned.Assign(other);
  EXPECT_FALSE(aligned.has_quantized());
  EXPECT_TRUE(aligned.EnsureQuantized());
  alignas(kRowAlignment) std::uint8_t qbuf[AlignedDataset::kQuantStride];
  for (std::size_t i = 0; i < aligned.num_rows(); ++i) {
    ASSERT_TRUE(aligned.QuantizeRow(aligned.row(i), qbuf));
    const std::uint8_t* stored = aligned.qrow_unchecked(i);
    for (std::size_t b = 0; b < AlignedDataset::kQuantStride; ++b) {
      ASSERT_EQ(qbuf[b], stored[b]) << "row=" << i << " byte=" << b;
    }
  }
}

TEST(KernelDifferentialTest, DispatcherInvariants) {
  // The active level is always executable, never above the detected
  // level, and the scalar backend is unconditionally available.
  EXPECT_NE(cpu::OpsFor(cpu::ActiveIsa()), nullptr);
  EXPECT_LE(static_cast<int>(cpu::ActiveIsa()),
            static_cast<int>(cpu::DetectedIsa()));
  EXPECT_NE(cpu::OpsFor(cpu::IsaLevel::kScalar), nullptr);
  EXPECT_EQ(cpu::OpsFor(cpu::IsaLevel::kScalar),
            &kernels::simd::kScalarOps);
}

}  // namespace
}  // namespace skyline
