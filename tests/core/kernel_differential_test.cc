// Randomized differential tests of the vectorized kernel layer
// (src/core/kernels.h) against the scalar reference functions of
// src/core/dominance.h: identical results on ties, duplicate rows,
// degenerate dimensionalities (d=1, d=64 — the Subspace maximum),
// padded-tail garbage, and identical dominance-test charges from the
// batched paths (the DominanceTester counter contract).
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/aligned_dataset.h"
#include "src/core/dominance.h"
#include "src/core/kernels.h"

namespace skyline {
namespace {

/// Random dataset engineered for collisions: values drawn from a coarse
/// grid (ties in single dimensions), plus every fourth row duplicated
/// verbatim from an earlier row (full-row ties).
Dataset TieHeavyDataset(std::size_t n, Dim d, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> grid(0, 3);
  std::vector<Value> values;
  values.reserve(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 3 && i > 0) {
      const std::size_t copy_of = rng() % i;
      for (Dim k = 0; k < d; ++k) {
        values.push_back(values[copy_of * d + k]);
      }
    } else {
      for (Dim k = 0; k < d; ++k) {
        values.push_back(static_cast<Value>(grid(rng)) / 4);
      }
    }
  }
  return Dataset(d, std::move(values));
}

const Dim kDims[] = {1, 2, 3, 8, 13, 24, 64};

TEST(KernelDifferentialTest, PairwiseKernelsAgreeOnTieHeavyData) {
  for (Dim d : kDims) {
    const std::size_t n = 48;
    const Dataset data = TieHeavyDataset(n, d, 1000 + d);
    const AlignedDataset aligned(data);
    for (PointId a = 0; a < n; ++a) {
      for (PointId b = 0; b < n; ++b) {
        const Value* sa = data.row(a);
        const Value* sb = data.row(b);
        const Value* ka = aligned.row(a);
        const Value* kb = aligned.row(b);
        EXPECT_EQ(Dominates(sa, sb, d), kernels::Dominates(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(DominatesOrEqual(sa, sb, d),
                  kernels::DominatesOrEqual(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(Compare(sa, sb, d), kernels::Compare(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(DominatingSubspace(sa, sb, d),
                  kernels::DominatingSubspace(ka, kb, d))
            << "d=" << d << " a=" << a << " b=" << b;
        bool scalar_worse = false;
        bool kernel_worse = false;
        EXPECT_EQ(DominatingSubspaceEx(sa, sb, d, &scalar_worse),
                  kernels::DominatingSubspaceEx(ka, kb, d, &kernel_worse))
            << "d=" << d << " a=" << a << " b=" << b;
        EXPECT_EQ(scalar_worse, kernel_worse)
            << "d=" << d << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(KernelDifferentialTest, KernelsNeverReadThePaddingTail) {
  // Poison the padding with the nastiest values available; every kernel
  // must still agree with the scalar reference over the packed rows.
  const Value kPoison[] = {std::numeric_limits<Value>::quiet_NaN(),
                           -std::numeric_limits<Value>::infinity(), -1e300};
  for (Dim d : {Dim{1}, Dim{3}, Dim{8}, Dim{13}}) {
    const std::size_t n = 32;
    const Dataset data = TieHeavyDataset(n, d, 2000 + d);
    for (Value poison : kPoison) {
      AlignedDataset aligned(data);
      aligned.FillPaddingForTesting(poison);
      for (PointId a = 0; a < n; ++a) {
        for (PointId b = 0; b < n; ++b) {
          EXPECT_EQ(Dominates(data.row(a), data.row(b), d),
                    kernels::Dominates(aligned.row(a), aligned.row(b), d));
          bool sw = false;
          bool kw = false;
          EXPECT_EQ(
              DominatingSubspaceEx(data.row(a), data.row(b), d, &sw),
              kernels::DominatingSubspaceEx(aligned.row(a), aligned.row(b), d,
                                            &kw));
          EXPECT_EQ(sw, kw);
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, AlignedRowsStartOnCacheLines) {
  for (Dim d : kDims) {
    const Dataset data = TieHeavyDataset(9, d, 3000 + d);
    const AlignedDataset aligned(data);
    EXPECT_EQ(aligned.stride() % (kRowAlignment / sizeof(Value)), 0u);
    EXPECT_GE(aligned.stride(), d);
    for (std::size_t i = 0; i < aligned.num_rows(); ++i) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned.row(i)) %
                    kRowAlignment,
                0u)
          << "d=" << d << " row=" << i;
    }
  }
}

TEST(KernelDifferentialTest, GatheredBlockMatchesSourceRows) {
  const Dim d = 7;
  const Dataset data = TieHeavyDataset(40, d, 99);
  const std::vector<PointId> ids = {31, 2, 2, 17, 0, 39};  // dups allowed
  const AlignedDataset block(data, ids);
  ASSERT_EQ(block.num_rows(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (Dim k = 0; k < d; ++k) {
      EXPECT_EQ(block.row(i)[k], data.row(ids[i])[k]);
    }
  }
}

TEST(KernelDifferentialTest, DominatesAnyMatchesScalarLoopAndCharge) {
  std::mt19937_64 rng(4242);
  for (Dim d : {Dim{1}, Dim{4}, Dim{8}, Dim{24}}) {
    const std::size_t n = 64;
    const Dataset data = TieHeavyDataset(n, d, 4000 + d);
    const AlignedDataset aligned(data);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<PointId> candidates(rng() % 12);
      for (PointId& c : candidates) c = static_cast<PointId>(rng() % n);
      const PointId q = static_cast<PointId>(rng() % n);
      const PointId skip = (trial % 3 == 0) && !candidates.empty()
                               ? candidates[rng() % candidates.size()]
                               : kInvalidPoint;

      // Scalar reference: early-exit loop with one charge per pivot
      // scanned, the contract the batched kernel must reproduce.
      std::size_t scalar_first = kernels::kNoDominator;
      std::uint64_t scalar_scanned = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == skip) continue;
        ++scalar_scanned;
        if (Dominates(data.row(candidates[i]), data.row(q), d)) {
          scalar_first = i;
          break;
        }
      }

      const kernels::BatchProbeResult r =
          kernels::DominatesAny(aligned, candidates, aligned.row(q), d, skip);
      EXPECT_EQ(r.first, scalar_first) << "d=" << d << " trial=" << trial;
      EXPECT_EQ(r.scanned, scalar_scanned) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(KernelDifferentialTest, DominatingSubspaceBatchMatchesScalarFold) {
  std::mt19937_64 rng(777);
  for (Dim d : {Dim{1}, Dim{4}, Dim{8}, Dim{24}}) {
    const std::size_t n = 64;
    const Dataset data = TieHeavyDataset(n, d, 5000 + d);
    const AlignedDataset aligned(data);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<PointId> pivots(rng() % 12);
      for (PointId& p : pivots) p = static_cast<PointId>(rng() % n);
      const PointId q = static_cast<PointId>(rng() % n);
      const PointId skip =
          (trial % 3 == 0) ? static_cast<PointId>(rng() % n) : kInvalidPoint;

      Subspace scalar_mask;
      std::size_t scalar_dominated_by = kernels::kNoDominator;
      std::uint64_t scalar_scanned = 0;
      for (std::size_t i = 0; i < pivots.size(); ++i) {
        if (pivots[i] == skip) continue;
        ++scalar_scanned;
        bool worse = false;
        const Subspace m =
            DominatingSubspaceEx(data.row(q), data.row(pivots[i]), d, &worse);
        if (m.empty() && worse) {
          scalar_dominated_by = i;
          break;
        }
        scalar_mask |= m;
      }

      const kernels::BatchSubspaceResult r = kernels::DominatingSubspaceBatch(
          aligned, pivots, aligned.row(q), d, skip);
      EXPECT_EQ(r.dominated_by, scalar_dominated_by)
          << "d=" << d << " trial=" << trial;
      EXPECT_EQ(r.scanned, scalar_scanned) << "d=" << d << " trial=" << trial;
      if (r.dominated_by == kernels::kNoDominator) {
        EXPECT_EQ(r.mask, scalar_mask) << "d=" << d << " trial=" << trial;
      }
    }
  }
}

TEST(KernelDifferentialTest, DominatingSubspaceExBatchMatchesPairKernel) {
  for (Dim d : {Dim{1}, Dim{8}, Dim{64}}) {
    const std::size_t n = 48;
    const Dataset data = TieHeavyDataset(n, d, 6000 + d);
    const AlignedDataset aligned(data);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < n; i += 2) rows.push_back(i);
    for (PointId pivot = 0; pivot < 8; ++pivot) {
      std::vector<Subspace> masks(rows.size());
      std::vector<std::uint8_t> worse(rows.size());
      kernels::DominatingSubspaceExBatch(aligned, rows, aligned.row(pivot), d,
                                         masks.data(), worse.data());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        bool scalar_worse = false;
        const Subspace m = DominatingSubspaceEx(
            data.row(rows[i]), data.row(pivot), d, &scalar_worse);
        EXPECT_EQ(masks[i], m) << "d=" << d << " i=" << i;
        EXPECT_EQ(worse[i] != 0, scalar_worse) << "d=" << d << " i=" << i;
      }
    }
  }
}

// The DominanceTester counter contract (src/core/dominance.h): one test
// per pivot actually scanned — a batched DominatesAny call must charge
// exactly what the equivalent sequence of single-pair calls charges.
TEST(KernelDifferentialTest, DominanceTesterBatchedChargeEqualsScalarCharge) {
  std::mt19937_64 rng(31337);
  const Dim d = 8;
  const std::size_t n = 96;
  const Dataset data = TieHeavyDataset(n, d, 7000);
  DominanceTester batched(data);
  DominanceTester pairwise(data);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<PointId> candidates(rng() % 16);
    for (PointId& c : candidates) c = static_cast<PointId>(rng() % n);
    const PointId q = static_cast<PointId>(rng() % n);

    bool scalar_dominated = false;
    for (PointId s : candidates) {
      if (pairwise.Dominates(s, q)) {
        scalar_dominated = true;
        break;
      }
    }
    const bool batched_dominated = batched.DominatesAny(candidates, q);

    EXPECT_EQ(batched_dominated, scalar_dominated) << "trial=" << trial;
    EXPECT_EQ(batched.tests(), pairwise.tests()) << "trial=" << trial;
  }
  EXPECT_GT(batched.tests(), 0u);
}

TEST(KernelDifferentialTest, SingleDimensionAndMaxDimensionEdges) {
  // d=1: dominance degenerates to <; d=64: every Subspace bit in use.
  {
    const Dataset data = Dataset::FromRows({{0.0}, {0.0}, {1.0}});
    const AlignedDataset aligned(data);
    EXPECT_FALSE(kernels::Dominates(aligned.row(0), aligned.row(1), 1));
    EXPECT_TRUE(kernels::Dominates(aligned.row(0), aligned.row(2), 1));
    EXPECT_EQ(kernels::Compare(aligned.row(0), aligned.row(1), 1),
              DominanceRelation::kEqual);
    EXPECT_EQ(kernels::DominatingSubspace(aligned.row(0), aligned.row(2), 1),
              Subspace({0}));
  }
  {
    const Dim d = 64;
    std::vector<Value> better(d, 0.0);
    std::vector<Value> worse(d, 1.0);
    Dataset data(d);
    data.Append(better);
    data.Append(worse);
    const AlignedDataset aligned(data);
    EXPECT_TRUE(kernels::Dominates(aligned.row(0), aligned.row(1), d));
    EXPECT_EQ(kernels::DominatingSubspace(aligned.row(0), aligned.row(1), d),
              Subspace::Full(d));
    bool w = false;
    EXPECT_EQ(
        kernels::DominatingSubspaceEx(aligned.row(1), aligned.row(0), d, &w),
        Subspace{});
    EXPECT_TRUE(w);
  }
}

}  // namespace
}  // namespace skyline
