#include "src/core/scores.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/core/dominance.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(ScoresTest, SumScore) {
  const Value p[] = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ScorePoint(p, 3, ScoreFunction::kSum), 6.0);
}

TEST(ScoresTest, EntropyScore) {
  const Value p[] = {0, 1};
  EXPECT_DOUBLE_EQ(ScorePoint(p, 2, ScoreFunction::kEntropy), std::log(2.0));
}

TEST(ScoresTest, MinCoordinateScore) {
  const Value p[] = {0.7, 0.2, 0.5};
  EXPECT_DOUBLE_EQ(ScorePoint(p, 3, ScoreFunction::kMinCoordinate), 0.2);
}

TEST(ScoresTest, EuclideanScoreIsSquaredDistance) {
  const Value p[] = {3, 4};
  EXPECT_DOUBLE_EQ(ScorePoint(p, 2, ScoreFunction::kEuclidean), 25.0);
}

TEST(ScoresTest, ComputeScoresCoversAllPoints) {
  Dataset data = Dataset::FromRows({{1, 1}, {2, 0}, {0, 0}});
  auto scores = ComputeScores(data, ScoreFunction::kSum);
  EXPECT_EQ(scores, (std::vector<Value>{2, 2, 0}));
}

TEST(ScoresTest, SortedByScoreOrdersAscending) {
  Dataset data = Dataset::FromRows({{5, 5}, {0, 1}, {2, 2}});
  auto order = SortedByScore(data, ScoreFunction::kSum);
  EXPECT_EQ(order, (std::vector<PointId>{1, 2, 0}));
}

TEST(ScoresTest, SortedByScoreBreaksMinCoordinateTiesBySum) {
  // Both points have minC = 0, but the first dominates the second; the
  // sum tie-break must put the dominator first.
  Dataset data = Dataset::FromRows({{0, 5}, {0, 1}});
  auto order = SortedByScore(data, ScoreFunction::kMinCoordinate);
  EXPECT_EQ(order, (std::vector<PointId>{1, 0}));
}

TEST(ScoresTest, ArgMinScoreFindsMinimum) {
  Dataset data = Dataset::FromRows({{2, 2}, {1, 1}, {3, 0}});
  EXPECT_EQ(ArgMinScore(data, ScoreFunction::kSum), 1u);
  EXPECT_EQ(ArgMinScore(data, ScoreFunction::kEuclidean), 1u);
}

TEST(ScoresTest, ArgMinScoreEmptyDataset) {
  Dataset data(2);
  EXPECT_EQ(ArgMinScore(data, ScoreFunction::kSum), kInvalidPoint);
}

TEST(ScoresTest, ToStringNames) {
  EXPECT_EQ(ToString(ScoreFunction::kSum), "sum");
  EXPECT_EQ(ToString(ScoreFunction::kEntropy), "entropy");
  EXPECT_EQ(ToString(ScoreFunction::kMinCoordinate), "minC");
  EXPECT_EQ(ToString(ScoreFunction::kEuclidean), "euclidean");
}

struct MonotonicityCase {
  ScoreFunction f;
  int seed;
};

class ScoreMonotonicityTest
    : public ::testing::TestWithParam<MonotonicityCase> {};

// The presorting contract: p < q implies f(p) < f(q) for the strictly
// monotone functions (on non-negative data), and the (f, sum) pair is
// strictly monotone for minC.
TEST_P(ScoreMonotonicityTest, DominatorScoresStrictlyLess) {
  const auto param = GetParam();
  Dataset data =
      Generate(DataType::kUniformIndependent, 300, 4, param.seed);
  const Dim d = data.num_dims();
  for (PointId a = 0; a < data.num_points(); ++a) {
    for (PointId b = a + 1; b < data.num_points(); ++b) {
      if (!Dominates(data.row(a), data.row(b), d)) continue;
      const Value fa = ScorePoint(data.row(a), d, param.f);
      const Value fb = ScorePoint(data.row(b), d, param.f);
      if (param.f == ScoreFunction::kMinCoordinate) {
        ASSERT_LE(fa, fb);
        if (fa == fb) {
          ASSERT_LT(ScorePoint(data.row(a), d, ScoreFunction::kSum),
                    ScorePoint(data.row(b), d, ScoreFunction::kSum));
        }
      } else {
        ASSERT_LT(fa, fb)
            << ToString(param.f) << " must be strictly monotone";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, ScoreMonotonicityTest,
    ::testing::Values(MonotonicityCase{ScoreFunction::kSum, 1},
                      MonotonicityCase{ScoreFunction::kEntropy, 2},
                      MonotonicityCase{ScoreFunction::kEuclidean, 3},
                      MonotonicityCase{ScoreFunction::kMinCoordinate, 4}));

}  // namespace
}  // namespace skyline
