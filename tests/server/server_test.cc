// Unit tests of the SkylineServer admission/batching/degradation layer:
// exact answers, inline fast hits, deferred start, same-cuboid
// coalescing, union seeding, every overload policy, cancellation,
// shutdown, deadline accounting, and the retry client.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include "src/data/generator.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

using std::chrono::nanoseconds;

std::map<std::uint64_t, std::vector<PointId>> AllOracles(const Dataset& data) {
  std::map<std::uint64_t, std::vector<PointId>> oracles;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << data.num_dims());
       ++bits) {
    oracles[bits] = SubspaceSkyline(data, Subspace(bits));
  }
  return oracles;
}

bool IsSortedSubsetOf(const std::vector<PointId>& sub,
                      const std::vector<PointId>& super) {
  return std::is_sorted(sub.begin(), sub.end()) &&
         std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

TEST(SkylineServerTest, AnswersEveryCuboidExactly) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 81);
  const auto oracles = AllOracles(data);
  SkylineServer server(data);
  for (const auto& [bits, oracle] : oracles) {
    const ServerResponse response = server.Query(Subspace(bits));
    EXPECT_EQ(response.status, StatusCode::kOk) << bits;
    EXPECT_EQ(response.ids, oracle) << bits;
  }
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.submitted, oracles.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed_expired, 0u);
}

TEST(SkylineServerTest, RepeatQueryResolvesInlineAsFastHit) {
  const Dataset data = Generate(DataType::kCorrelated, 200, 3, 82);
  SkylineServer server(data);
  const Subspace v(0b011);
  const ServerResponse first = server.Query(v);
  const ServerResponse second = server.Query(v);
  EXPECT_EQ(first.status, StatusCode::kOk);
  EXPECT_EQ(second.status, StatusCode::kOk);
  EXPECT_EQ(first.ids, second.ids);
  EXPECT_GE(server.Stats().fast_hits, 1u);
  // The pinned full space is cached from construction: inline fast hit.
  const ServerResponse full = server.Query(Subspace::Full(3));
  EXPECT_EQ(full.status, StatusCode::kOk);
  EXPECT_GE(server.Stats().fast_hits, 2u);
}

TEST(SkylineServerTest, DeferredStartQueuesUntilStart) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 83);
  ServerOptions options;
  options.auto_start = false;
  options.inline_fast_hits = false;  // keep even cached cuboids queued
  SkylineServer server(data, options);
  std::vector<ResponseHandle> handles;
  for (std::uint64_t bits = 1; bits <= 5; ++bits) {
    handles.push_back(server.Submit(Subspace(bits)));
  }
  ServerResponse probe;
  for (const ResponseHandle& h : handles) {
    EXPECT_TRUE(h.valid());
    EXPECT_FALSE(h.TryGet(&probe));  // nothing dispatches before Start
  }
  server.Start();
  for (std::uint64_t bits = 1; bits <= 5; ++bits) {
    const ServerResponse response = handles[bits - 1].Wait();
    EXPECT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.ids, SubspaceSkyline(data, Subspace(bits)));
  }
}

TEST(SkylineServerTest, SameCuboidRequestsCoalesceIntoOneCompute) {
  const Dataset data = Generate(DataType::kUniformIndependent, 250, 4, 84);
  ServerOptions options;
  options.auto_start = false;
  options.workers = 1;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  const Subspace v(0b0101);
  std::vector<ResponseHandle> handles;
  for (int i = 0; i < 16; ++i) handles.push_back(server.Submit(v));
  server.Start();
  const std::vector<PointId> oracle = SubspaceSkyline(data, v);
  for (const ResponseHandle& h : handles) {
    const ServerResponse response = h.Wait();
    EXPECT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.ids, oracle);
  }
  const ServerStatsSnapshot stats = server.Stats();
  // All 16 queued before the single worker started: one dispatch cycle,
  // one distinct cuboid, one inner Query.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_cuboids, 1u);
  EXPECT_EQ(stats.batched_requests, 16u);
  EXPECT_EQ(stats.query.queries, 1u);
  EXPECT_EQ(stats.queue_wait.total, 16u);
}

TEST(SkylineServerTest, UnionSeedAmortizesColdScansAcrossBatch) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 85);
  ServerOptions options;
  options.auto_start = false;
  options.workers = 1;
  options.union_seed_threshold = 2;
  options.query.pin_full_space = false;  // no universal ancestor
  SkylineServer server(data, options);
  const Subspace a(0b0001);
  const Subspace b(0b0010);
  ResponseHandle ha = server.Submit(a);
  ResponseHandle hb = server.Submit(b);
  server.Start();
  EXPECT_EQ(ha.Wait().ids, SubspaceSkyline(data, a));
  EXPECT_EQ(hb.Wait().ids, SubspaceSkyline(data, b));
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.union_seeds, 1u);
  // One cold scan (the union 0b0011), both members seeded from it.
  EXPECT_EQ(stats.query.cold, 1u);
  EXPECT_EQ(stats.query.seeded, 2u);
}

TEST(SkylineServerTest, RejectPolicyOverloadsOnZeroCapacity) {
  const Dataset data = Generate(DataType::kUniformIndependent, 150, 3, 86);
  ServerOptions options;
  options.auto_start = false;  // workers never needed
  options.queue_capacity = 0;
  options.policy = OverloadPolicy::kReject;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  const ServerResponse response = server.Query(Subspace(0b001));
  EXPECT_EQ(response.status, StatusCode::kOverloaded);
  EXPECT_TRUE(response.ids.empty());
  EXPECT_EQ(server.Stats().rejected, 1u);
}

TEST(SkylineServerTest, ServeStalePolicyDegradesAtAdmission) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 4, 87);
  const auto oracles = AllOracles(data);
  ServerOptions options;
  options.auto_start = false;
  options.queue_capacity = 0;  // every Submit is an overload
  options.policy = OverloadPolicy::kServeStale;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);  // pinned full space = the ancestor
  for (std::uint64_t bits = 1; bits < 15; ++bits) {
    const ServerResponse response = server.Query(Subspace(bits));
    EXPECT_EQ(response.status, StatusCode::kStale) << bits;
    EXPECT_TRUE(IsSortedSubsetOf(response.ids, oracles.at(bits))) << bits;
    EXPECT_FALSE(response.ids.empty()) << bits;  // core is never empty here
  }
  // The exact full-space cuboid is cached: the stale path returns it
  // exactly, as kOk.
  const ServerResponse full = server.Query(Subspace::Full(4));
  EXPECT_EQ(full.status, StatusCode::kOk);
  EXPECT_EQ(full.ids, oracles.at(15));
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.stale_served, 14u);
  EXPECT_GT(stats.stale_tests, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(SkylineServerTest, ServeStaleFallsBackToOverloadedWithoutAncestor) {
  const Dataset data = Generate(DataType::kUniformIndependent, 150, 3, 88);
  ServerOptions options;
  options.auto_start = false;
  options.queue_capacity = 0;
  options.policy = OverloadPolicy::kServeStale;
  options.query.pin_full_space = false;  // empty cache: nothing to serve
  SkylineServer server(data, options);
  const ServerResponse response = server.Query(Subspace(0b001));
  EXPECT_EQ(response.status, StatusCode::kOverloaded);
  EXPECT_EQ(server.Stats().rejected, 1u);
}

TEST(SkylineServerTest, ShedExpiredDropsPastDeadlineRequestsAtDispatch) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 89);
  ServerOptions options;
  options.auto_start = false;
  options.workers = 1;
  options.policy = OverloadPolicy::kShedExpired;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  std::vector<ResponseHandle> handles;
  for (std::uint64_t bits = 1; bits <= 6; ++bits) {
    handles.push_back(server.Submit(Subspace(bits), nanoseconds(0)));
  }
  server.Start();
  for (const ResponseHandle& h : handles) {
    const ServerResponse response = h.Wait();
    EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.ids.empty());
  }
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.shed_expired, 6u);
  EXPECT_EQ(stats.query.queries, 0u);  // shed before any compute
}

TEST(SkylineServerTest, RejectPolicyTreatsDeadlinesAsAdvisory) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 90);
  ServerOptions options;
  options.auto_start = false;
  options.workers = 1;
  options.policy = OverloadPolicy::kReject;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  const Subspace v(0b0110);
  ResponseHandle handle = server.Submit(v, nanoseconds(0));
  server.Start();
  const ServerResponse response = handle.Wait();
  EXPECT_EQ(response.status, StatusCode::kOk);  // served exactly anyway
  EXPECT_EQ(response.ids, SubspaceSkyline(data, v));
  EXPECT_EQ(server.Stats().deadline_misses, 1u);
  EXPECT_EQ(server.Stats().shed_expired, 0u);
}

TEST(SkylineServerTest, CancellationResolvesAtDispatch) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 91);
  ServerOptions options;
  options.auto_start = false;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  CancellationToken token;
  ResponseHandle handle = server.Submit(Subspace(0b0011), kNoTimeout, token);
  token.Cancel();
  server.Start();
  const ServerResponse response = handle.Wait();
  EXPECT_EQ(response.status, StatusCode::kCancelled);
  EXPECT_TRUE(response.ids.empty());
  EXPECT_EQ(server.Stats().cancelled, 1u);
}

TEST(SkylineServerTest, DestructionResolvesQueuedRequestsAsShutdown) {
  const Dataset data = Generate(DataType::kUniformIndependent, 150, 3, 92);
  ResponseHandle handle;
  {
    ServerOptions options;
    options.auto_start = false;  // never started: the request stays queued
    options.inline_fast_hits = false;
    SkylineServer server(data, options);
    handle = server.Submit(Subspace(0b101));
  }
  const ServerResponse response = handle.Wait();  // handle outlives the server
  EXPECT_EQ(response.status, StatusCode::kShutdown);
  EXPECT_TRUE(response.ids.empty());
}

TEST(SkylineServerTest, StatsAreInternallyConsistent) {
  const Dataset data = Generate(DataType::kUniformIndependent, 250, 4, 93);
  SkylineServer server(data);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    server.Query(Subspace(bits));
    server.Query(Subspace(bits));  // second round: inline fast hits
  }
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.submitted, 30u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.fast_hits);
  EXPECT_EQ(stats.batched_requests, stats.admitted);
  EXPECT_EQ(stats.queue_wait.total, stats.admitted);
  EXPECT_GT(stats.MeanBatchSize(), 0.0);
}

TEST(SkylineServerTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "kOk");
  EXPECT_STREQ(StatusCodeName(StatusCode::kStale), "kStale");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOverloaded), "kOverloaded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "kDeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "kCancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kShutdown), "kShutdown");
}

TEST(SkylineServerUpdateTest, SubmitUpdateAppliesAndTagsEpoch) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 96);
  SkylineServer server(data);
  // A point dominating everything: after the update, every cuboid
  // collapses to the new id.
  ResponseHandle update =
      server.SubmitUpdate(std::vector<Value>{-1.0, -1.0, -1.0}, {});
  const ServerResponse applied = update.Wait();
  EXPECT_EQ(applied.status, StatusCode::kOk);
  EXPECT_EQ(applied.epoch, 1u);
  EXPECT_EQ(applied.epoch_delta, 0u);
  EXPECT_TRUE(applied.ids.empty());

  const ServerResponse response = server.Query(Subspace(0b011));
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.ids, std::vector<PointId>{200});
  EXPECT_EQ(response.epoch, 1u);

  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.updates_submitted, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.query.epoch, 1u);
  EXPECT_EQ(stats.submitted + stats.updates_submitted, stats.resolved_total());
}

TEST(SkylineServerUpdateTest, UpdateIsABarrierBetweenQueuedBatches) {
  const Dataset data = Generate(DataType::kUniformIndependent, 250, 3, 97);
  ServerOptions options;
  options.auto_start = false;
  options.workers = 2;  // the barrier, not worker count, must order them
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  const Subspace v(0b111);

  // Queue order: query A | update (dominating point) | query B. The
  // batcher must dispatch A before the update and B after it.
  ResponseHandle before = server.Submit(v);
  ResponseHandle update =
      server.SubmitUpdate(std::vector<Value>{-1.0, -1.0, -1.0}, {});
  ResponseHandle after = server.Submit(v);
  server.Start();

  const ServerResponse a = before.Wait();
  EXPECT_EQ(a.status, StatusCode::kOk);
  EXPECT_EQ(a.epoch, 0u);
  EXPECT_EQ(a.ids, SubspaceSkyline(data, v));

  EXPECT_EQ(update.Wait().epoch, 1u);

  const ServerResponse b = after.Wait();
  EXPECT_EQ(b.status, StatusCode::kOk);
  EXPECT_EQ(b.epoch, 1u);
  EXPECT_EQ(b.ids, std::vector<PointId>{250});

  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.batches, 2u);  // the update split one gather into two
  EXPECT_EQ(stats.submitted + stats.updates_submitted, stats.resolved_total());
}

TEST(SkylineServerUpdateTest, UpdatesBypassQueueCapacityAndReject) {
  const Dataset data = Generate(DataType::kUniformIndependent, 150, 3, 98);
  ServerOptions options;
  options.auto_start = false;
  options.queue_capacity = 0;
  options.policy = OverloadPolicy::kReject;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);

  EXPECT_EQ(server.Query(Subspace(0b001)).status, StatusCode::kOverloaded);
  ResponseHandle update =
      server.SubmitUpdate(std::vector<Value>{0.5, 0.5, 0.5}, {});
  ServerResponse probe;
  EXPECT_FALSE(update.TryGet(&probe));  // queued, not rejected
  server.Start();
  const ServerResponse applied = update.Wait();
  EXPECT_EQ(applied.status, StatusCode::kOk);
  EXPECT_EQ(applied.epoch, 1u);
  EXPECT_EQ(server.Stats().rejected, 1u);  // only the query
}

TEST(SkylineServerUpdateTest, QueuedUpdateResolvesShutdownOnDestruction) {
  const Dataset data = Generate(DataType::kUniformIndependent, 100, 3, 99);
  ResponseHandle update;
  {
    ServerOptions options;
    options.auto_start = false;  // never started: the update stays queued
    SkylineServer server(data, options);
    update = server.SubmitUpdate(std::vector<Value>{0.5, 0.5, 0.5}, {});
  }
  const ServerResponse response = update.Wait();
  EXPECT_EQ(response.status, StatusCode::kShutdown);
}

TEST(SkylineServerUpdateTest, ServeStaleTagsPreUpdateAnswersWithEpochDelta) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 300, 3, 100);
  ServerOptions options;
  options.workers = 1;
  options.policy = OverloadPolicy::kServeStale;
  options.query.pin_full_space = false;  // let the cached entry go stale
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  const Subspace full = Subspace::Full(3);

  // Warm the cache at epoch 0, then invalidate the entry by removing a
  // member of its answer (unrepairable, left stale).
  const ServerResponse warm = server.Query(full);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  ASSERT_FALSE(warm.ids.empty());
  ASSERT_EQ(server.SubmitUpdate({}, {warm.ids.front()}).Wait().epoch, 1u);

  // An already-expired request hits the dispatch-time serve-stale path;
  // the only cached ancestor is the pre-update full-space entry, so the
  // degraded answer must be tagged with its age instead of passing as
  // current.
  const ServerResponse stale = server.Query(Subspace(0b011), nanoseconds(0));
  EXPECT_EQ(stale.status, StatusCode::kStale);
  EXPECT_EQ(stale.epoch, 0u);
  EXPECT_EQ(stale.epoch_delta, 1u);
  // Sound for the epoch it reports: a sorted subset of the epoch-0
  // oracle for the queried cuboid.
  EXPECT_TRUE(
      IsSortedSubsetOf(stale.ids, SubspaceSkyline(data, Subspace(0b011))));

  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.stale_epoch_served, 1u);
  EXPECT_EQ(stats.stale_epoch_delta_max, 1u);
  EXPECT_EQ(stats.submitted + stats.updates_submitted, stats.resolved_total());
}

TEST(RetryClientTest, ReturnsFirstSuccessWithoutRetrying) {
  const Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 94);
  SkylineServer server(data);
  int attempts = 0;
  const ServerResponse response =
      QueryWithRetry(server, Subspace(0b011), kNoTimeout, {}, &attempts);
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.ids, SubspaceSkyline(data, Subspace(0b011)));
  EXPECT_EQ(attempts, 1);
}

TEST(RetryClientTest, ExhaustsAttemptsOnPersistentOverload) {
  const Dataset data = Generate(DataType::kUniformIndependent, 150, 3, 95);
  ServerOptions options;
  options.auto_start = false;
  options.queue_capacity = 0;  // overload is permanent
  options.policy = OverloadPolicy::kReject;
  options.inline_fast_hits = false;
  SkylineServer server(data, options);
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::microseconds(10);
  retry.max_backoff = std::chrono::microseconds(40);
  int attempts = 0;
  const ServerResponse response =
      QueryWithRetry(server, Subspace(0b010), kNoTimeout, retry, &attempts);
  EXPECT_EQ(response.status, StatusCode::kOverloaded);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(server.Stats().rejected, 3u);
}

}  // namespace
}  // namespace skyline
