// Tests of the client retry backoff schedule (NextBackoff): the
// `0 * multiplier == 0` hot-loop regression, monotone non-zero growth
// of the deterministic envelope, saturation at max_backoff, and the
// bounds of the decorrelated-jitter draw.
#include "src/server/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

namespace skyline {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

RetryOptions NoJitter() {
  RetryOptions retry;
  retry.jitter = false;
  return retry;
}

TEST(ClientBackoffTest, ZeroSeedGrowsImmediately) {
  // The regression: with initial_backoff == 0 a pure multiplicative
  // schedule sleeps 0 forever and hot-loops against the server. The
  // min_step floor must make the very first step non-zero.
  RetryOptions retry = NoJitter();
  retry.initial_backoff = nanoseconds(0);
  const nanoseconds first = NextBackoff(nanoseconds(0), retry, 0);
  EXPECT_GE(first, retry.min_step);
  EXPECT_GT(first.count(), 0);
}

TEST(ClientBackoffTest, DeterministicScheduleIsMonotoneNonZero) {
  RetryOptions retry = NoJitter();
  retry.initial_backoff = nanoseconds(0);
  retry.max_backoff = milliseconds(50);
  nanoseconds prev = retry.initial_backoff;
  std::vector<nanoseconds> schedule;
  for (int k = 0; k < 40; ++k) {
    const nanoseconds next = NextBackoff(prev, retry, 0);
    schedule.push_back(next);
    EXPECT_GT(next.count(), 0) << "step " << k << " slept zero";
    EXPECT_LE(next, retry.max_backoff);
    if (prev < retry.max_backoff) {
      // Strictly increasing by at least min_step until saturation.
      EXPECT_GE(next, std::min(retry.max_backoff, prev + retry.min_step))
          << "step " << k << " did not grow";
    } else {
      EXPECT_EQ(next, retry.max_backoff);
    }
    prev = next;
  }
  // The schedule must actually reach the cap (it cannot plateau early).
  EXPECT_EQ(schedule.back(), retry.max_backoff);
}

TEST(ClientBackoffTest, DeterministicScheduleIsEventuallyExponential) {
  RetryOptions retry = NoJitter();
  retry.initial_backoff = microseconds(1);
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = milliseconds(500);
  nanoseconds prev = retry.initial_backoff;
  for (int k = 0; k < 10; ++k) {
    const nanoseconds next = NextBackoff(prev, retry, 0);
    // Above the additive floor the multiplier dominates exactly.
    EXPECT_EQ(next.count(), prev.count() * 2) << "step " << k;
    prev = next;
  }
}

TEST(ClientBackoffTest, SaturatesAtMaxBackoff) {
  RetryOptions retry = NoJitter();
  retry.max_backoff = microseconds(100);
  const nanoseconds capped = NextBackoff(microseconds(90), retry, 0);
  EXPECT_EQ(capped, microseconds(100));
  EXPECT_EQ(NextBackoff(retry.max_backoff, retry, 0), retry.max_backoff);
}

TEST(ClientBackoffTest, JitterDrawStaysInDecorrelatedBounds) {
  RetryOptions retry;  // jitter on
  retry.min_step = microseconds(1);
  retry.max_backoff = milliseconds(50);
  const nanoseconds prev = microseconds(100);
  const nanoseconds lo = retry.min_step;
  const nanoseconds hi = microseconds(300);  // 3 * prev < max_backoff
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  nanoseconds min_seen = hi, max_seen = lo;
  for (int i = 0; i < 2000; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const nanoseconds draw = NextBackoff(prev, retry, rng);
    EXPECT_GE(draw, lo);
    EXPECT_LE(draw, hi);
    min_seen = std::min(min_seen, draw);
    max_seen = std::max(max_seen, draw);
  }
  // The draw actually uses the range (not pinned to one endpoint).
  EXPECT_LT(min_seen, nanoseconds(hi.count() / 4));
  EXPECT_GT(max_seen, nanoseconds(hi.count() * 3 / 4));
}

TEST(ClientBackoffTest, JitterDrawIsNeverZeroEvenFromZeroPrev) {
  RetryOptions retry;  // jitter on
  std::uint64_t rng = 42;
  for (int i = 0; i < 100; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const nanoseconds draw = NextBackoff(nanoseconds(0), retry, rng);
    EXPECT_GE(draw, retry.min_step);
    EXPECT_GT(draw.count(), 0);
  }
}

TEST(ClientBackoffTest, JitterDrawIsCappedByMaxBackoff) {
  RetryOptions retry;  // jitter on
  retry.max_backoff = microseconds(200);
  std::uint64_t rng = 7;
  for (int i = 0; i < 200; ++i) {
    rng = rng * 2862933555777941757ULL + 3037000493ULL;
    // 3 * prev would exceed the cap; the draw must clamp to it.
    const nanoseconds draw = NextBackoff(microseconds(150), retry, rng);
    EXPECT_GE(draw, retry.min_step);
    EXPECT_LE(draw, retry.max_backoff);
  }
}

}  // namespace
}  // namespace skyline
