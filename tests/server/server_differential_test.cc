// Differential load test of the server layer: N client threads fire
// randomized subspace streams — with randomized deadlines and
// cancellations — at one SkylineServer, and every response is checked
// against a precomputed synchronous oracle:
//
//   kOk                exactly the oracle's id list
//   kStale             a sorted subset of it
//   anything else      well-formed (no ids), and only statuses the
//                      configured policy can produce
//
// Runs under every overload policy, with a tiny queue (admission
// pressure) and with a tiny cuboid cache (eviction pressure). The suite
// carries the `query` ctest label, so the TSan/ASan presets run it in
// full — this is the data-race gate of src/server.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "src/data/generator.h"
#include "src/query/query_service.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

using std::chrono::nanoseconds;

std::map<std::uint64_t, std::vector<PointId>> AllOracles(const Dataset& data) {
  std::map<std::uint64_t, std::vector<PointId>> oracles;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << data.num_dims());
       ++bits) {
    oracles[bits] = SubspaceSkyline(data, Subspace(bits));
  }
  return oracles;
}

struct LoadConfig {
  const char* label;
  ServerOptions options;
  unsigned threads = 4;
  int requests_per_thread = 120;
  int cancel_percent = 0;    // chance a request's token fires post-submit
  int deadline_percent = 0;  // chance a request carries a tiny deadline
};

void RunLoad(const Dataset& data, const LoadConfig& config) {
  const auto oracles = AllOracles(data);
  SkylineServer server(data, config.options);
  const std::uint64_t num_masks = std::uint64_t{1} << data.num_dims();
  const OverloadPolicy policy = config.options.policy;

  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(config.threads);
  for (unsigned t = 0; t < config.threads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(9000u + t);
      for (int q = 0; q < config.requests_per_thread; ++q) {
        const std::uint64_t bits = 1 + rng() % (num_masks - 1);
        const bool cancel =
            static_cast<int>(rng() % 100) < config.cancel_percent;
        const bool tight =
            static_cast<int>(rng() % 100) < config.deadline_percent;
        // Tiny randomized deadline: from already-expired to a few
        // microseconds — enough jitter to exercise both the shed path
        // and the served-past-deadline path.
        const nanoseconds timeout =
            tight ? nanoseconds(rng() % 5000) : kNoTimeout;
        CancellationToken token;
        ResponseHandle handle = server.Submit(Subspace(bits), timeout, token);
        if (cancel) token.Cancel();
        const ServerResponse response = handle.Wait();
        const std::vector<PointId>& oracle = oracles.at(bits);
        bool ok = true;
        switch (response.status) {
          case StatusCode::kOk:
            ok = response.ids == oracle;
            answered.fetch_add(1, std::memory_order_relaxed);
            break;
          case StatusCode::kStale:
            ok = policy == OverloadPolicy::kServeStale &&
                 std::is_sorted(response.ids.begin(), response.ids.end()) &&
                 std::includes(oracle.begin(), oracle.end(),
                               response.ids.begin(), response.ids.end());
            answered.fetch_add(1, std::memory_order_relaxed);
            break;
          case StatusCode::kOverloaded:
            ok = response.ids.empty();
            break;
          case StatusCode::kDeadlineExceeded:
            ok = response.ids.empty() && tight &&
                 policy != OverloadPolicy::kReject;
            break;
          case StatusCode::kCancelled:
            ok = response.ids.empty() && cancel;
            break;
          case StatusCode::kShutdown:
            ok = false;  // the server outlives every Wait() here
            break;
        }
        if (!ok) violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(violations.load(), 0) << config.label;
  const ServerStatsSnapshot stats = server.Stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(config.threads) * config.requests_per_thread;
  EXPECT_EQ(stats.submitted, total) << config.label;
  // Exact accounting: every submit either resolved at admission or was
  // admitted; every admitted request was either computed by a batch or
  // triaged away — and each got exactly one terminal status (every
  // handle was Wait()ed above, so the queue is fully drained).
  EXPECT_EQ(stats.submitted, stats.admitted + stats.admission_resolved)
      << config.label;
  EXPECT_EQ(stats.admitted, stats.batched_requests + stats.triaged)
      << config.label;
  EXPECT_EQ(stats.submitted + stats.updates_submitted, stats.resolved_total())
      << config.label;
  // No bucket double-counts: the per-status resolution counters must
  // re-add to the per-path ones.
  EXPECT_EQ(stats.resolved_overloaded, stats.rejected) << config.label;
  EXPECT_EQ(stats.resolved_cancelled, stats.cancelled) << config.label;
  EXPECT_EQ(stats.resolved_deadline, stats.shed_expired) << config.label;
  EXPECT_EQ(stats.resolved_stale, stats.stale_served) << config.label;
  // Every request got some terminal status; most workloads must get
  // real answers through.
  if (config.cancel_percent == 0 && config.deadline_percent == 0 &&
      config.options.queue_capacity >= total) {
    EXPECT_EQ(answered.load(), total) << config.label;
  } else {
    EXPECT_GT(answered.load(), 0u) << config.label;
  }
}

TEST(ServerDifferentialTest, RoomyQueueExactAnswers) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 71);
  LoadConfig config;
  config.label = "roomy";
  config.options.queue_capacity = 4096;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, TinyQueueRejectPolicy) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 72);
  LoadConfig config;
  config.label = "tiny-reject";
  config.options.queue_capacity = 2;
  config.options.policy = OverloadPolicy::kReject;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, TinyQueueShedExpiredWithDeadlines) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 250, 4, 73);
  LoadConfig config;
  config.label = "tiny-shed";
  config.options.queue_capacity = 4;
  config.options.policy = OverloadPolicy::kShedExpired;
  config.deadline_percent = 40;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, ServeStaleUnderPressure) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 250, 4, 74);
  LoadConfig config;
  config.label = "serve-stale";
  config.options.queue_capacity = 4;
  config.options.policy = OverloadPolicy::kServeStale;
  config.deadline_percent = 40;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, CancellationStorm) {
  const Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 75);
  LoadConfig config;
  config.label = "cancel";
  config.options.queue_capacity = 4096;
  config.cancel_percent = 30;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, EvictionHeavyCacheWithUnionSeeding) {
  const Dataset data = Generate(DataType::kAntiCorrelated, 250, 4, 76);
  LoadConfig config;
  config.label = "evict-union";
  config.options.queue_capacity = 4096;
  config.options.query.max_entries = 2;
  config.options.query.pin_full_space = false;
  config.options.union_seed_threshold = 2;
  RunLoad(data, config);
}

TEST(ServerDifferentialTest, RetryClientUnderTinyQueue) {
  const Dataset data = Generate(DataType::kUniformIndependent, 250, 4, 77);
  SkylineServer server(data, [] {
    ServerOptions options;
    options.queue_capacity = 2;
    options.policy = OverloadPolicy::kReject;
    return options;
  }());
  const auto oracles = AllOracles(data);
  std::atomic<int> violations{0};
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(9900u + t);
      RetryOptions retry;
      retry.max_attempts = 8;
      retry.initial_backoff = std::chrono::microseconds(50);
      retry.max_backoff = std::chrono::milliseconds(2);
      for (int q = 0; q < 60; ++q) {
        const std::uint64_t bits = 1 + rng() % 15;
        const ServerResponse response =
            QueryWithRetry(server, Subspace(bits), kNoTimeout, retry);
        const bool ok =
            (response.status == StatusCode::kOk &&
             response.ids == oracles.at(bits)) ||
            (response.status == StatusCode::kOverloaded &&
             response.ids.empty());
        if (!ok) violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace skyline
