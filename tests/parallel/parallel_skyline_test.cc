#include "src/parallel/parallel_skyline.h"

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(ParallelSfsTest, Name) {
  EXPECT_EQ(ParallelSfs().name(), "parallel-sfs");
}

class ParallelThreadCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelThreadCountTest, CorrectForAnyThreadCount) {
  const unsigned threads = GetParam();
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 900, 5, 17);
    ParallelSfs algo(threads);
    EXPECT_TRUE(IsSkylineOf(data, algo.Compute(data)))
        << ShortName(type) << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelThreadCountTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u));

TEST(ParallelSfsTest, DeterministicAcrossRuns) {
  Dataset data = Generate(DataType::kUniformIndependent, 2000, 6, 4);
  ParallelSfs algo(4);
  SkylineStats a, b;
  auto ra = algo.Compute(data, &a);
  auto rb = algo.Compute(data, &b);
  EXPECT_TRUE(SameIdSet(ra, rb));
  EXPECT_EQ(a.dominance_tests, b.dominance_tests)
      << "test counts must not depend on scheduling";
}

TEST(ParallelSfsTest, SingleThreadMatchesMultiThreadExactly) {
  Dataset data = Generate(DataType::kAntiCorrelated, 1200, 4, 8);
  EXPECT_TRUE(
      SameIdSet(ParallelSfs(1).Compute(data), ParallelSfs(5).Compute(data)));
}

TEST(ParallelSfsTest, TinyInputsClampThreads) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}, {3, 3}});
  ParallelSfs algo(64);  // far more threads than points
  EXPECT_TRUE(SameIdSet(algo.Compute(data), {0, 1}));
  Dataset empty(2);
  EXPECT_TRUE(algo.Compute(empty).empty());
}

TEST(ParallelSfsTest, StatsAreFilled) {
  Dataset data = Generate(DataType::kUniformIndependent, 1500, 5, 2);
  SkylineStats stats;
  auto result = ParallelSfs(2).Compute(data, &stats);
  EXPECT_EQ(stats.skyline_size, result.size());
  EXPECT_GT(stats.dominance_tests, 0u);
}

}  // namespace
}  // namespace skyline
