#include "src/parallel/work_partitioner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace skyline {
namespace {

TEST(WorkPartitionerTest, PartitionCountDependsOnInputSizeOnly) {
  EXPECT_EQ(DeterministicPartitionCount(0), 1u);
  EXPECT_EQ(DeterministicPartitionCount(1), 1u);
  EXPECT_EQ(DeterministicPartitionCount(256), 1u);
  EXPECT_EQ(DeterministicPartitionCount(257), 2u);
  EXPECT_EQ(DeterministicPartitionCount(1000000), 32u);  // capped
  // Monotone non-decreasing.
  std::size_t prev = 0;
  for (std::size_t n = 0; n < 20000; n += 97) {
    const std::size_t p = DeterministicPartitionCount(n);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(WorkPartitionerTest, EffectiveWorkersClamps) {
  EXPECT_EQ(EffectiveWorkers(4, 10), 4u);
  EXPECT_EQ(EffectiveWorkers(16, 3), 3u);
  EXPECT_GE(EffectiveWorkers(0, 100), 1u);  // hardware concurrency
  EXPECT_EQ(EffectiveWorkers(7, 0), 1u);
}

TEST(WorkPartitionerTest, EveryUnitRunsExactlyOnce) {
  for (unsigned workers : {1u, 2u, 5u, 16u}) {
    const std::size_t units = 137;
    std::vector<std::atomic<int>> hits(units);
    ParallelForEachUnit(units, workers,
                        [&](std::size_t u) { hits[u].fetch_add(1); });
    for (std::size_t u = 0; u < units; ++u) {
      EXPECT_EQ(hits[u].load(), 1) << "unit " << u << " workers " << workers;
    }
  }
}

TEST(WorkPartitionerTest, ZeroUnitsIsANoOp) {
  bool called = false;
  ParallelForEachUnit(0, 8, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkPartitionerTest, DealRoundRobinPreservesOrderAndBalance) {
  std::vector<PointId> ids(17);
  std::iota(ids.begin(), ids.end(), PointId{0});
  auto buckets = DealRoundRobin(ids, 4);
  ASSERT_EQ(buckets.size(), 4u);
  // Sizes differ by at most one; every id appears exactly once.
  std::size_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_GE(b.size(), 4u);
    EXPECT_LE(b.size(), 5u);
    total += b.size();
    // Order within a bucket follows the input order.
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  }
  EXPECT_EQ(total, ids.size());
  EXPECT_EQ(buckets[1][0], 1u);
  EXPECT_EQ(buckets[1][1], 5u);
}

TEST(WorkPartitionerTest, DealMoreBucketsThanIdsLeavesEmpties) {
  std::vector<PointId> ids = {0, 1};
  auto buckets = DealRoundRobin(ids, 5);
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0], (std::vector<PointId>{0}));
  EXPECT_EQ(buckets[1], (std::vector<PointId>{1}));
  for (std::size_t t = 2; t < 5; ++t) EXPECT_TRUE(buckets[t].empty());
}

}  // namespace
}  // namespace skyline
