#include "src/parallel/parallel_subset.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/subset/boosted.h"

namespace skyline {
namespace {

TEST(ParallelSubsetSfsTest, Name) {
  EXPECT_EQ(ParallelSubsetSfs().name(), "parallel-subset-sfs");
}

class ParallelSubsetThreadCountTest
    : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelSubsetThreadCountTest, CorrectForAnyThreadCount) {
  const unsigned threads = GetParam();
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 900, 5, 17);
    ParallelSubsetSfs algo(threads);
    EXPECT_TRUE(IsSkylineOf(data, algo.Compute(data)))
        << ShortName(type) << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSubsetThreadCountTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u));

class ParallelSubsetPartitionCountTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelSubsetPartitionCountTest, CorrectForAnyPartitionCount) {
  const std::size_t partitions = GetParam();
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 700, 6, 23);
    ParallelSubsetSfs algo(4, {}, partitions);
    EXPECT_TRUE(IsSkylineOf(data, algo.Compute(data)))
        << ShortName(type) << " partitions=" << partitions;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, ParallelSubsetPartitionCountTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 32u, 64u));

TEST(ParallelSubsetSfsTest, MatchesSequentialSubsetSfs) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 1500, 7, 11);
    EXPECT_TRUE(SameIdSet(ParallelSubsetSfs(4).Compute(data),
                          SfsSubset().Compute(data)))
        << ShortName(type);
  }
}

TEST(ParallelSubsetSfsTest, TinyInputs) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}, {3, 3}});
  ParallelSubsetSfs algo(64, {}, 8);  // more threads/partitions than points
  EXPECT_TRUE(SameIdSet(algo.Compute(data), {0, 1}));
  Dataset empty(2);
  EXPECT_TRUE(algo.Compute(empty).empty());
  Dataset single = Dataset::FromRows({{0.5, 0.5}});
  EXPECT_TRUE(SameIdSet(algo.Compute(single), {0}));
}

TEST(ParallelSubsetSfsTest, DuplicatesAcrossPartitions) {
  // Duplicate skyline points land in different round-robin partitions
  // and must both survive the cross-filter (they are both skyline).
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({1.0, 5.0});  // duplicates of one skyline point
    rows.push_back({5.0, 1.0});  // duplicates of another
    rows.push_back({6.0, 6.0});  // dominated
  }
  Dataset data = Dataset::FromRows(rows);
  ParallelSubsetSfs algo(4, {}, 6);
  auto result = algo.Compute(data);
  EXPECT_TRUE(IsSkylineOf(data, result));
  EXPECT_EQ(result.size(), 80u);
}

TEST(ParallelSubsetSfsTest, StatsAreFilled) {
  Dataset data = Generate(DataType::kUniformIndependent, 1500, 5, 2);
  SkylineStats stats;
  auto result = ParallelSubsetSfs(2).Compute(data, &stats);
  EXPECT_EQ(stats.skyline_size, result.size());
  EXPECT_GT(stats.dominance_tests, 0u);
  EXPECT_GT(stats.index_queries, 0u);
  EXPECT_GT(stats.pivot_count, 0u);
}

TEST(ParallelSubsetSfsTest, SinglePartitionDoesFewerTestsThanSfsSubset) {
  // With one partition there is no cross-filter work to speak of, and
  // skipping the redundant pivot re-tests makes the engine strictly
  // cheaper than the sequential SfsSubset in dominance tests.
  Dataset data = Generate(DataType::kUniformIndependent, 2000, 8, 5);
  SkylineStats par, seq;
  ParallelSubsetSfs(1, {}, 1).Compute(data, &par);
  SfsSubset().Compute(data, &seq);
  EXPECT_LE(par.dominance_tests, seq.dominance_tests);
}

TEST(ParallelSubsetSfsTest, NegativeValues) {
  Dataset base = Generate(DataType::kUniformIndependent, 600, 4, 21);
  std::vector<Value> values = base.values();
  for (Value& v : values) v -= Value{0.6};
  Dataset data(4, std::move(values));
  EXPECT_TRUE(IsSkylineOf(data, ParallelSubsetSfs(3).Compute(data)));
}

TEST(ParallelSubsetSfsTest, QuantizedHeavyDuplicates) {
  Dataset base = Generate(DataType::kUniformIndependent, 1000, 4, 9);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 3);
  Dataset data(4, std::move(values));
  EXPECT_TRUE(IsSkylineOf(data, ParallelSubsetSfs(5).Compute(data)));
}

}  // namespace
}  // namespace skyline
