// Determinism layer for the parallel engines: the skyline AND every
// SkylineStats counter must be identical for any thread count and
// across repeated runs — the work decomposition is a function of the
// input only, threads only execute it (see work_partitioner.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algo/registry.h"
#include "src/data/generator.h"
#include "src/parallel/parallel_skyline.h"
#include "src/parallel/parallel_subset.h"

namespace skyline {
namespace {

void ExpectSameStats(const SkylineStats& a, const SkylineStats& b,
                     const std::string& context) {
  EXPECT_EQ(a.dominance_tests, b.dominance_tests) << context;
  EXPECT_EQ(a.index_queries, b.index_queries) << context;
  EXPECT_EQ(a.index_nodes_visited, b.index_nodes_visited) << context;
  EXPECT_EQ(a.index_candidates, b.index_candidates) << context;
  EXPECT_EQ(a.pivot_count, b.pivot_count) << context;
  EXPECT_EQ(a.merge_pruned, b.merge_pruned) << context;
  EXPECT_EQ(a.tests_skipped, b.tests_skipped) << context;
  EXPECT_EQ(a.skyline_size, b.skyline_size) << context;
}

class ParallelDeterminismTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelDeterminismTest, IdenticalAcrossThreadCountsAndRuns) {
  const std::string& name = GetParam();
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 2000, 6, 4);

    // Reference: single-threaded run.
    auto reference_algo = MakeAlgorithm(name);
    ASSERT_NE(reference_algo, nullptr);
    SkylineStats reference_stats;
    const std::vector<PointId> reference =
        reference_algo->Compute(data, &reference_stats);

    for (unsigned threads : {1u, 2u, 8u}) {
      for (int run = 0; run < 3; ++run) {
        const std::string context = name + " " +
                                    std::string(ShortName(type)) +
                                    " threads=" + std::to_string(threads) +
                                    " run=" + std::to_string(run);
        SkylineStats stats;
        std::vector<PointId> result;
        if (name == "parallel-sfs") {
          result = ParallelSfs(threads).Compute(data, &stats);
        } else {
          result = ParallelSubsetSfs(threads).Compute(data, &stats);
        }
        // Not just the same id set: the exact same vector — partition
        // order fully determines the output order.
        EXPECT_EQ(result, reference) << context;
        ExpectSameStats(stats, reference_stats, context);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ParallelDeterminismTest,
                         ::testing::Values("parallel-sfs",
                                           "parallel-subset-sfs"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace skyline
