#include "src/skycube/skycube.h"

#include <gtest/gtest.h>

#include "src/core/dominance.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(SubspaceDominanceTest, RestrictedToMemberDimensions) {
  const Value a[] = {1, 9, 2};
  const Value b[] = {2, 1, 3};
  EXPECT_TRUE(DominatesInSubspace(a, b, Subspace{0, 2}));
  EXPECT_FALSE(DominatesInSubspace(a, b, Subspace{0, 1}));
  EXPECT_FALSE(DominatesInSubspace(a, b, Subspace{1}));
  EXPECT_TRUE(DominatesInSubspace(b, a, Subspace{1}));
}

TEST(SubspaceDominanceTest, EqualProjectionNeverDominates) {
  const Value a[] = {1, 5};
  const Value b[] = {1, 7};
  EXPECT_FALSE(DominatesInSubspace(a, b, Subspace{0}));
  EXPECT_TRUE(EqualInSubspace(a, b, Subspace{0}));
  EXPECT_FALSE(EqualInSubspace(a, b, Subspace{0, 1}));
}

TEST(SubspaceSkylineTest, FullSpaceEqualsSkyline) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 3);
  EXPECT_TRUE(SameIdSet(SubspaceSkyline(data, Subspace::Full(4)),
                        ReferenceSkyline(data)));
}

TEST(SubspaceSkylineTest, SingleDimensionIsAllMinima) {
  Dataset data = Dataset::FromRows({{3, 1}, {1, 2}, {1, 9}, {2, 0}});
  // Dimension 0: minimum value 1 is attained by points 1 and 2.
  EXPECT_TRUE(SameIdSet(SubspaceSkyline(data, Subspace{0}), {1, 2}));
  EXPECT_TRUE(SameIdSet(SubspaceSkyline(data, Subspace{1}), {3}));
}

/// Brute-force oracle for a subspace skyline.
std::vector<PointId> ReferenceSubspaceSkyline(const Dataset& data,
                                              Subspace subspace) {
  std::vector<PointId> out;
  for (PointId p = 0; p < data.num_points(); ++p) {
    bool dominated = false;
    for (PointId q = 0; q < data.num_points() && !dominated; ++q) {
      if (q != p &&
          DominatesInSubspace(data.row(q), data.row(p), subspace)) {
        dominated = true;
      }
    }
    if (!dominated) out.push_back(p);
  }
  return out;
}

struct SkycubeCase {
  DataType type;
  unsigned dims;
  std::size_t points;
  std::uint64_t seed;
};

class SkycubeStrategyTest : public ::testing::TestWithParam<SkycubeCase> {};

TEST_P(SkycubeStrategyTest, NaiveAndTopDownAgreeWithOracle) {
  const auto& c = GetParam();
  Dataset data = Generate(c.type, c.points, c.dims, c.seed);
  Skycube naive = Skycube::Compute(data, SkycubeStrategy::kNaive);
  Skycube shared = Skycube::Compute(data, SkycubeStrategy::kTopDown);
  ASSERT_EQ(naive.num_cuboids(), (std::size_t{1} << c.dims) - 1);
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << c.dims); ++bits) {
    const Subspace v(bits);
    const auto oracle = ReferenceSubspaceSkyline(data, v);
    ASSERT_TRUE(SameIdSet(naive.skyline(v), oracle))
        << "naive cuboid " << v.ToString();
    ASSERT_TRUE(SameIdSet(shared.skyline(v), oracle))
        << "top-down cuboid " << v.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkycubeStrategyTest,
    ::testing::Values(
        SkycubeCase{DataType::kUniformIndependent, 2, 300, 1},
        SkycubeCase{DataType::kUniformIndependent, 4, 300, 2},
        SkycubeCase{DataType::kUniformIndependent, 5, 200, 3},
        SkycubeCase{DataType::kAntiCorrelated, 4, 300, 4},
        SkycubeCase{DataType::kCorrelated, 4, 300, 5}));

TEST(SkycubeTest, DuplicateProjectionRepair) {
  // The classic counterexample to naive parent-sharing: point 1 is NOT
  // in the full-space skyline (dominated by point 0 via dimension 1),
  // but ties with point 0 on dimension 0 — so it IS in the {0}-cuboid.
  Dataset data = Dataset::FromRows({
      {1.0, 1.0},  // 0: skyline everywhere
      {1.0, 2.0},  // 1: dominated in full space, ties on dim 0
      {2.0, 3.0},  // 2: dominated everywhere
  });
  Skycube cube = Skycube::Compute(data, SkycubeStrategy::kTopDown);
  EXPECT_TRUE(SameIdSet(cube.skyline(Subspace::Full(2)), {0}));
  EXPECT_TRUE(SameIdSet(cube.skyline(Subspace{0}), {0, 1}));
  EXPECT_TRUE(SameIdSet(cube.skyline(Subspace{1}), {0}));
}

TEST(SkycubeTest, QuantizedDuplicateHeavyDataAgrees) {
  Dataset base = Generate(DataType::kUniformIndependent, 400, 4, 9);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 4);
  Dataset data(4, std::move(values));
  Skycube naive = Skycube::Compute(data, SkycubeStrategy::kNaive);
  Skycube shared = Skycube::Compute(data, SkycubeStrategy::kTopDown);
  for (std::uint64_t bits = 1; bits < 16; ++bits) {
    ASSERT_TRUE(SameIdSet(naive.skyline(Subspace(bits)),
                          shared.skyline(Subspace(bits))))
        << Subspace(bits).ToString();
  }
}

TEST(SkycubeTest, TopDownSpendsFewerTests) {
  Dataset data = Generate(DataType::kCorrelated, 2000, 6, 7);
  std::uint64_t naive_tests = 0, shared_tests = 0;
  Skycube::Compute(data, SkycubeStrategy::kNaive, &naive_tests);
  Skycube::Compute(data, SkycubeStrategy::kTopDown, &shared_tests);
  EXPECT_LT(shared_tests, naive_tests);
}

TEST(SkycubeTest, TotalSizeSumsCuboids) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}});
  Skycube cube = Skycube::Compute(data);
  // Cuboids: {0} -> {0}; {1} -> {1}; {0,1} -> {0,1}.
  EXPECT_EQ(cube.num_cuboids(), 3u);
  EXPECT_EQ(cube.total_size(), 4u);
}

}  // namespace
}  // namespace skyline
