// Metamorphic properties of subspace skylines, run against both skycube
// strategies. Unlike the oracle tests in skycube_test.cc these never
// compare against a reference implementation — they check relations the
// *definition* of subspace dominance forces between related inputs:
//
//   1. Dimension-permutation invariance: permuting the columns permutes
//      the cuboid lattice but never the id sets.
//   2. Monotone-transform invariance: strictly increasing per-column
//      transforms preserve every < and == comparison, hence every
//      cuboid.
//   3. Subset closure: sky(V) ⊆ closure_V(sky(U)) for V ⊆ U, where
//      closure_V is the duplicate-projection tie repair — the exact
//      relation the top-down sharing scheme and the query service's
//      ancestor seeding rely on.
//   4. Single-dimension cuboids are argmin sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/skycube/skycube.h"

namespace skyline {
namespace {

struct MetamorphicCase {
  const char* label;
  DataType type;
  unsigned dims;
  std::size_t points;
  std::uint64_t seed;
  bool quantize;  // floor(v * 4): duplicate projections everywhere
};

Dataset MakeData(const MetamorphicCase& c) {
  Dataset base = Generate(c.type, c.points, c.dims, c.seed);
  if (!c.quantize) return base;
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 4);
  return Dataset(c.dims, std::move(values));
}

class SubspaceMetamorphicTest
    : public ::testing::TestWithParam<
          std::tuple<MetamorphicCase, SkycubeStrategy>> {};

TEST_P(SubspaceMetamorphicTest, DimensionPermutationInvariance) {
  const auto& [c, strategy] = GetParam();
  const Dataset data = MakeData(c);

  // A fixed non-trivial permutation: rotate left by one.
  std::vector<Dim> perm(c.dims);
  for (Dim i = 0; i < c.dims; ++i) perm[i] = (i + 1) % c.dims;

  std::vector<Value> permuted_values(data.values().size());
  for (PointId p = 0; p < data.num_points(); ++p) {
    for (Dim i = 0; i < c.dims; ++i) {
      permuted_values[p * c.dims + perm[i]] = data.at(p, i);
    }
  }
  const Dataset permuted(c.dims, std::move(permuted_values));

  const Skycube cube = Skycube::Compute(data, strategy);
  const Skycube permuted_cube = Skycube::Compute(permuted, strategy);
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << c.dims); ++bits) {
    const Subspace v(bits);
    Subspace mapped;
    v.ForEachDim([&](Dim i) { mapped.Add(perm[i]); });
    ASSERT_TRUE(SameIdSet(cube.skyline(v), permuted_cube.skyline(mapped)))
        << c.label << ": cuboid " << v.ToString() << " vs "
        << mapped.ToString();
  }
}

TEST_P(SubspaceMetamorphicTest, MonotoneTransformInvariance) {
  const auto& [c, strategy] = GetParam();
  const Dataset data = MakeData(c);

  // A different strictly increasing map per dimension (inputs are
  // nonnegative, so all four are strictly increasing on the domain).
  auto transform = [](Dim dim, Value v) -> Value {
    switch (dim % 4) {
      case 0:
        return 3 * v + 1;
      case 1:
        return std::exp(v);
      case 2:
        return v * v * v;
      default:
        return std::sqrt(v + 1);
    }
  };
  std::vector<Value> mapped_values(data.values().size());
  for (PointId p = 0; p < data.num_points(); ++p) {
    for (Dim i = 0; i < c.dims; ++i) {
      mapped_values[p * c.dims + i] = transform(i, data.at(p, i));
    }
  }
  const Dataset mapped(c.dims, std::move(mapped_values));

  const Skycube cube = Skycube::Compute(data, strategy);
  const Skycube mapped_cube = Skycube::Compute(mapped, strategy);
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << c.dims); ++bits) {
    const Subspace v(bits);
    ASSERT_TRUE(SameIdSet(cube.skyline(v), mapped_cube.skyline(v)))
        << c.label << ": cuboid " << v.ToString();
  }
}

TEST_P(SubspaceMetamorphicTest, SubsetClosureContainsSubspaceSkyline) {
  const auto& [c, strategy] = GetParam();
  const Dataset data = MakeData(c);
  const Skycube cube = Skycube::Compute(data, strategy);

  for (std::uint64_t ubits = 1; ubits < (std::uint64_t{1} << c.dims);
       ++ubits) {
    const Subspace u(ubits);
    // Every proper non-empty V ⊂ U.
    for (std::uint64_t vbits = (ubits - 1) & ubits; vbits != 0;
         vbits = (vbits - 1) & ubits) {
      const Subspace v(vbits);
      const std::vector<PointId> closure =
          CloseUnderProjectionTies(data, v, cube.skyline(u));
      const std::vector<PointId>& sky_v = cube.skyline(v);
      ASSERT_TRUE(std::includes(closure.begin(), closure.end(), sky_v.begin(),
                                sky_v.end()))
          << c.label << ": sky(" << v.ToString() << ") not within closure of "
          << "sky(" << u.ToString() << ")";
    }
  }
}

TEST_P(SubspaceMetamorphicTest, SingleDimensionCuboidIsArgminSet) {
  const auto& [c, strategy] = GetParam();
  const Dataset data = MakeData(c);
  const Skycube cube = Skycube::Compute(data, strategy);

  for (Dim dim = 0; dim < c.dims; ++dim) {
    Value min_value = data.at(0, dim);
    for (PointId p = 1; p < data.num_points(); ++p) {
      min_value = std::min(min_value, data.at(p, dim));
    }
    std::vector<PointId> argmin;
    for (PointId p = 0; p < data.num_points(); ++p) {
      if (data.at(p, dim) == min_value) argmin.push_back(p);
    }
    ASSERT_TRUE(SameIdSet(cube.skyline(Subspace::Single(dim)), argmin))
        << c.label << ": dimension " << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SubspaceMetamorphicTest,
    ::testing::Combine(
        ::testing::Values(
            MetamorphicCase{"UI-4d", DataType::kUniformIndependent, 4, 300, 11,
                            false},
            MetamorphicCase{"UI-4d-quantized", DataType::kUniformIndependent,
                            4, 300, 12, true},
            MetamorphicCase{"AC-4d", DataType::kAntiCorrelated, 4, 250, 13,
                            false},
            MetamorphicCase{"CO-5d", DataType::kCorrelated, 5, 300, 14,
                            false}),
        ::testing::Values(SkycubeStrategy::kNaive, SkycubeStrategy::kTopDown)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).label;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + (std::get<1>(info.param) == SkycubeStrategy::kNaive
                         ? "_naive"
                         : "_topdown");
    });

}  // namespace
}  // namespace skyline
