// Adversarial data shapes, run against every registered algorithm: value
// distributions and geometric patterns that historically break skyline
// implementations (clustered data, exponential tails, dominance chains
// interleaved with anti-chains, single-dimension deciders, constant
// dimensions).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

class AdversarialTest : public ::testing::TestWithParam<std::string> {
 protected:
  void ExpectCorrect(const Dataset& data) {
    auto algo = MakeAlgorithm(GetParam());
    ASSERT_NE(algo, nullptr);
    EXPECT_TRUE(IsSkylineOf(data, algo->Compute(data))) << GetParam();
  }
};

TEST_P(AdversarialTest, ExponentialTails) {
  // Heavy-tailed values: scores span many orders of magnitude, stressing
  // float comparisons in sort orders and stop rules.
  std::mt19937_64 rng(3);
  std::exponential_distribution<Value> exp_dist(1.0);
  std::vector<Value> values(500 * 4);
  for (Value& v : values) v = std::pow(exp_dist(rng), 3.0);
  ExpectCorrect(Dataset(4, std::move(values)));
}

TEST_P(AdversarialTest, TightClusters) {
  // A few dense clusters: many near-ties within clusters, clear
  // dominance between some cluster pairs.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::normal_distribution<Value> jitter(0, 0.01);
  const Value centers[4][3] = {
      {0.2, 0.2, 0.8}, {0.8, 0.2, 0.2}, {0.2, 0.8, 0.2}, {0.5, 0.5, 0.5}};
  std::vector<Value> values;
  for (int i = 0; i < 600; ++i) {
    const auto& c = centers[i % 4];
    for (int k = 0; k < 3; ++k) values.push_back(c[k] + jitter(rng));
  }
  ExpectCorrect(Dataset(3, std::move(values)));
}

TEST_P(AdversarialTest, ChainsInterleavedWithAntiChain) {
  // Half the points form long dominance chains; the other half is a pure
  // anti-chain near the origin-facing diagonal.
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) {
    const Value v = 1 + static_cast<Value>(i) / 50;
    values.insert(values.end(), {v, v, v});
  }
  for (int i = 0; i < 200; ++i) {
    const Value t = static_cast<Value>(i) / 200;
    values.insert(values.end(),
                  {t, Value{1} - t, Value{0.5} + (i % 2 ? t : -t) / 2});
  }
  ExpectCorrect(Dataset(3, std::move(values)));
}

TEST_P(AdversarialTest, OneDecidingDimension) {
  // Dimensions 1..3 constant: the skyline is decided by dimension 0
  // alone — degenerate tie blocks everywhere else.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> val(0, 99);
  std::vector<Value> values;
  for (int i = 0; i < 400; ++i) {
    values.insert(values.end(),
                  {static_cast<Value>(val(rng)), 5.0, 5.0, 5.0});
  }
  ExpectCorrect(Dataset(4, std::move(values)));
}

TEST_P(AdversarialTest, MirroredPairsOnTwoDims) {
  // Every point (x, 1-x, ...) has a mirror (1-x, x, ...): a large
  // anti-chain with exact coordinate swaps.
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<Value> uni(0, 1);
  std::vector<Value> values;
  for (int i = 0; i < 300; ++i) {
    const Value x = uni(rng);
    const Value z = uni(rng);
    values.insert(values.end(), {x, Value{1} - x, z});
    values.insert(values.end(), {Value{1} - x, x, z});
  }
  ExpectCorrect(Dataset(3, std::move(values)));
}

TEST_P(AdversarialTest, VeryCloseButUnequalValues) {
  // Values differing only at the last few ulps: any tolerance-based
  // comparison would misclassify dominance.
  std::vector<Value> values;
  const Value base = 0.1;
  const Value eps = std::nextafter(base, Value{1}) - base;
  for (int i = 0; i < 100; ++i) {
    values.insert(values.end(),
                  {base + i * eps, base + (99 - i) * eps, base});
  }
  ExpectCorrect(Dataset(3, std::move(values)));
}

std::string StripDashes2(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AdversarialTest,
                         ::testing::ValuesIn(AlgorithmNames()), StripDashes2);

}  // namespace
}  // namespace skyline
