// Cross-algorithm correctness: every registered algorithm must produce
// exactly the reference skyline on a grid of (data type, dimensionality,
// cardinality, seed) configurations, plus structured edge cases.
#include <gtest/gtest.h>

#include <ostream>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

struct Config {
  std::string algorithm;
  DataType type;
  unsigned dims;
  std::size_t points;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& out, const Config& c) {
    return out << c.algorithm << "_" << ShortName(c.type) << "_" << c.dims
               << "d_" << c.points << "n_s" << c.seed;
  }
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  std::ostringstream out;
  out << info.param;
  std::string name = out.str();
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class AlgorithmCorrectnessTest : public ::testing::TestWithParam<Config> {};

TEST_P(AlgorithmCorrectnessTest, MatchesReferenceSkyline) {
  const Config& c = GetParam();
  auto algo = MakeAlgorithm(c.algorithm);
  ASSERT_NE(algo, nullptr);
  Dataset data = Generate(c.type, c.points, c.dims, c.seed);
  SkylineStats stats;
  std::vector<PointId> result = algo->Compute(data, &stats);
  EXPECT_EQ(stats.skyline_size, result.size());
  EXPECT_TRUE(IsSkylineOf(data, result))
      << c.algorithm << " returned a wrong skyline";
}

std::vector<Config> MakeGrid() {
  std::vector<Config> grid;
  const std::vector<DataType> types = {DataType::kAntiCorrelated,
                                       DataType::kCorrelated,
                                       DataType::kUniformIndependent};
  for (const std::string& name : AlgorithmNames()) {
    for (DataType type : types) {
      for (unsigned d : {1u, 2u, 3u, 5u, 8u, 12u}) {
        grid.push_back({name, type, d, 400, 42});
      }
      // A second seed and size at a representative dimensionality.
      grid.push_back({name, type, 6, 1000, 7});
      grid.push_back({name, type, 4, 50, 1234});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, AlgorithmCorrectnessTest,
                         ::testing::ValuesIn(MakeGrid()), ConfigName);

// ---- Structured edge cases, run for every algorithm. ----

class AlgorithmEdgeCaseTest : public ::testing::TestWithParam<std::string> {
 protected:
  void ExpectCorrect(const Dataset& data) {
    auto algo = MakeAlgorithm(GetParam());
    ASSERT_NE(algo, nullptr);
    EXPECT_TRUE(IsSkylineOf(data, algo->Compute(data)))
        << GetParam() << " failed";
  }
};

TEST_P(AlgorithmEdgeCaseTest, EmptyDataset) {
  Dataset data(3);
  auto algo = MakeAlgorithm(GetParam());
  ASSERT_NE(algo, nullptr);
  EXPECT_TRUE(algo->Compute(data).empty());
}

TEST_P(AlgorithmEdgeCaseTest, SinglePoint) {
  ExpectCorrect(Dataset::FromRows({{0.3, 0.7}}));
}

TEST_P(AlgorithmEdgeCaseTest, AllPointsEqual) {
  ExpectCorrect(Dataset::FromRows({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}}));
}

TEST_P(AlgorithmEdgeCaseTest, DuplicateSkylineAndDominatedPoints) {
  ExpectCorrect(Dataset::FromRows({
      {1, 5},
      {1, 5},  // duplicate skyline point
      {5, 1},
      {5, 1},  // duplicate skyline point
      {5, 5},
      {5, 5},  // duplicate dominated point
      {3, 3},
  }));
}

TEST_P(AlgorithmEdgeCaseTest, TotallyOrderedChain) {
  ExpectCorrect(Dataset::FromRows({{4, 4}, {3, 3}, {2, 2}, {1, 1}, {5, 5}}));
}

TEST_P(AlgorithmEdgeCaseTest, EverythingIncomparable) {
  // A pure anti-chain: each point best in one dimension.
  ExpectCorrect(Dataset::FromRows({
      {0, 1, 2, 3},
      {3, 0, 1, 2},
      {2, 3, 0, 1},
      {1, 2, 3, 0},
  }));
}

TEST_P(AlgorithmEdgeCaseTest, OneDominatorPrunesEverything) {
  ExpectCorrect(Dataset::FromRows({{5, 5}, {6, 7}, {9, 5.5}, {0, 0}, {7, 8}}));
}

TEST_P(AlgorithmEdgeCaseTest, SharedCoordinatesTieHandling) {
  // Many points share coordinates in single dimensions without being
  // duplicates — stresses tie handling in sorted scans and SDI blocks.
  ExpectCorrect(Dataset::FromRows({
      {1, 2, 2},
      {1, 2, 3},
      {1, 3, 2},
      {2, 2, 2},
      {2, 1, 3},
      {1, 1, 4},
      {1, 1, 4},
      {3, 1, 1},
      {1, 3, 1},
  }));
}

TEST_P(AlgorithmEdgeCaseTest, ZeroValuedPoints) {
  ExpectCorrect(Dataset::FromRows({{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 0, 1}}));
}

TEST_P(AlgorithmEdgeCaseTest, SixteenDimensions) {
  ExpectCorrect(Generate(DataType::kUniformIndependent, 150, 16, 5));
}

TEST_P(AlgorithmEdgeCaseTest, TwentyFourDimensions) {
  ExpectCorrect(Generate(DataType::kAntiCorrelated, 80, 24, 5));
}

TEST_P(AlgorithmEdgeCaseTest, NegativeValues) {
  // Dominance is translation-invariant; the default configuration of
  // every algorithm must handle negative coordinates.
  Dataset base = Generate(DataType::kUniformIndependent, 400, 4, 21);
  std::vector<Value> values = base.values();
  for (Value& v : values) v -= Value{0.6};
  ExpectCorrect(Dataset(4, std::move(values)));
}

TEST_P(AlgorithmEdgeCaseTest, QuantizedHeavyDuplicates) {
  // Integer grid data: every dimension has only 3 distinct values.
  Dataset base = Generate(DataType::kUniformIndependent, 600, 4, 9);
  std::vector<Value> values = base.values();
  for (Value& v : values) v = std::floor(v * 3);
  ExpectCorrect(Dataset(4, std::move(values)));
}

std::string StripDashes(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmEdgeCaseTest,
                         ::testing::ValuesIn(AlgorithmNames()), StripDashes);

}  // namespace
}  // namespace skyline
