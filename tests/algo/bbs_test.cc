#include "src/algo/bbs.h"

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(BbsTest, Name) {
  EXPECT_EQ(Bbs().name(), "bbs");
}

TEST(BbsTest, CorrectAcrossTypesAndLeafSizes) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 800, 4, 5);
    const auto expected = ReferenceSkyline(data);
    for (std::size_t leaf : {1u, 8u, 64u, 4096u}) {
      AlgorithmOptions options;
      options.partition_leaf_size = leaf;
      EXPECT_TRUE(SameIdSet(Bbs(options).Compute(data), expected))
          << ShortName(type) << " leaf=" << leaf;
    }
  }
}

TEST(BbsTest, ProgressiveOutputInAscendingSumOrder) {
  // BBS is the classic *progressive* algorithm: skyline points pop in
  // ascending mindist (sum) order.
  Dataset data = Generate(DataType::kUniformIndependent, 500, 3, 9);
  auto result = Bbs().Compute(data);
  for (std::size_t i = 1; i < result.size(); ++i) {
    Value prev = 0, cur = 0;
    for (Dim k = 0; k < 3; ++k) {
      prev += data.at(result[i - 1], k);
      cur += data.at(result[i], k);
    }
    EXPECT_LE(prev, cur);
  }
}

TEST(BbsTest, NodePruningReducesWorkOnCorrelatedData) {
  // On CO data nearly the whole tree hangs off dominated corners: BBS
  // must do far less than one pass of skyline tests per point.
  Dataset data = Generate(DataType::kCorrelated, 20000, 6, 3);
  SkylineStats stats;
  auto result = Bbs().Compute(data, &stats);
  EXPECT_TRUE(IsSkylineOf(data, result));
  EXPECT_LT(stats.MeanDominanceTests(data.num_points()), 1.0);
}

TEST(BbsTest, DuplicateSkylinePointsSurvive) {
  Dataset data = Dataset::FromRows({
      {1, 1}, {1, 1}, {1, 1},  // duplicated minimum
      {2, 3}, {0.5, 4},
  });
  EXPECT_TRUE(IsSkylineOf(data, Bbs().Compute(data)));
  EXPECT_EQ(Bbs().Compute(data).size(), 4u);
}

TEST(BbsTest, NegativeValues) {
  Dataset base = Generate(DataType::kUniformIndependent, 400, 4, 2);
  std::vector<Value> values = base.values();
  for (Value& v : values) v -= Value{0.5};
  Dataset data(4, std::move(values));
  EXPECT_TRUE(IsSkylineOf(data, Bbs().Compute(data)));
}

}  // namespace
}  // namespace skyline
