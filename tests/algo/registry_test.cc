#include "src/algo/registry.h"

#include <gtest/gtest.h>

namespace skyline {
namespace {

TEST(RegistryTest, MakesEveryRegisteredAlgorithm) {
  for (const std::string& name : AlgorithmNames()) {
    auto algo = MakeAlgorithm(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeAlgorithm("nope"), nullptr);
  EXPECT_EQ(MakeAlgorithm(""), nullptr);
  EXPECT_EQ(MakeAlgorithm("SFS"), nullptr) << "names are case-sensitive";
}

TEST(RegistryTest, FifteenAlgorithms) {
  EXPECT_EQ(AlgorithmNames().size(), 15u);
}

TEST(RegistryTest, BoostedPairsReferToRegisteredNames) {
  for (const auto& [base, boosted] : BoostedPairs()) {
    EXPECT_NE(MakeAlgorithm(base), nullptr) << base;
    EXPECT_NE(MakeAlgorithm(boosted), nullptr) << boosted;
    EXPECT_EQ(boosted, base + "-subset");
  }
}

TEST(RegistryTest, OptionsArePassedThrough) {
  AlgorithmOptions options;
  options.sigma = 5;
  auto algo = MakeAlgorithm("sdi-subset", options);
  ASSERT_NE(algo, nullptr);
  // Indirect check: the algorithm is constructible and runnable with
  // custom options.
  Dataset data = Dataset::FromRows({{1, 2, 3}, {3, 2, 1}, {2, 2, 2}});
  EXPECT_EQ(algo->Compute(data).size(), 3u);
}

TEST(RegistryTest, EffectiveSigmaRule) {
  // Explicit sigma wins; otherwise round(d/3) clamped to [2, d] (and to
  // [1, 1] for d = 1).
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(7, 4), 7);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 8), 3);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 12), 4);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 24), 8);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 2), 2);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 4), 2);
  EXPECT_EQ(SkylineAlgorithm::EffectiveSigma(0, 1), 1);
}

}  // namespace
}  // namespace skyline
