#include "src/algo/bskytree.h"

#include <gtest/gtest.h>

#include "src/algo/pivot.h"
#include "src/algo/sfs.h"
#include "src/core/dominance.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(PivotTest, LatticeMaskDefinition) {
  const Value pivot[] = {2, 2, 2};
  const Value p[] = {1, 2, 3};
  // bit i set iff pivot[i] <= p[i].
  EXPECT_EQ(LatticeMask(p, pivot, 3), (Subspace{1, 2}));
  EXPECT_EQ(LatticeMask(pivot, pivot, 3), Subspace::Full(3));
}

TEST(PivotTest, SelectedPivotIsSkylinePoint) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    Dataset data = Generate(DataType::kUniformIndependent, 400, 4, seed);
    std::vector<PointId> ids(data.num_points());
    for (PointId i = 0; i < data.num_points(); ++i) ids[i] = i;
    const PointId pivot = SelectBalancedPivot(data, ids);
    for (PointId q = 0; q < data.num_points(); ++q) {
      ASSERT_FALSE(Dominates(data.row(q), data.row(pivot), 4))
          << "pivot " << pivot << " dominated by " << q;
    }
  }
}

TEST(PivotTest, ConstantDimensionsHandled) {
  Dataset data = Dataset::FromRows({{1, 7, 3}, {1, 7, 2}, {1, 7, 9}});
  const PointId pivot = SelectBalancedPivot(data, {0, 1, 2});
  EXPECT_EQ(pivot, 1u);  // only non-constant dim decides
}

TEST(PivotTest, MaskSubsetPropertyUnderDominance) {
  // q < p implies B(q) ⊆ B(p) — the incomparability-skip soundness.
  Dataset data = Generate(DataType::kUniformIndependent, 300, 5, 4);
  std::vector<PointId> ids(data.num_points());
  for (PointId i = 0; i < data.num_points(); ++i) ids[i] = i;
  const PointId pivot = SelectBalancedPivot(data, ids);
  const Value* pivot_row = data.row(pivot);
  for (PointId a = 0; a < data.num_points(); ++a) {
    for (PointId b = 0; b < data.num_points(); ++b) {
      if (a == b || !Dominates(data.row(a), data.row(b), 5)) continue;
      ASSERT_TRUE(LatticeMask(data.row(a), pivot_row, 5)
                      .IsSubsetOf(LatticeMask(data.row(b), pivot_row, 5)));
    }
  }
}

TEST(BSkyTreeTest, Names) {
  EXPECT_EQ(BSkyTreeS().name(), "bskytree-s");
  EXPECT_EQ(BSkyTreeP().name(), "bskytree-p");
}

TEST(BSkyTreeTest, BothVariantsMatchReference) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 800, 6, 33);
    const auto expected = ReferenceSkyline(data);
    EXPECT_TRUE(SameIdSet(BSkyTreeS().Compute(data), expected))
        << "S " << ShortName(type);
    EXPECT_TRUE(SameIdSet(BSkyTreeP().Compute(data), expected))
        << "P " << ShortName(type);
  }
}

TEST(BSkyTreeTest, PivotDuplicatesSurvive) {
  Dataset data = Dataset::FromRows({
      {1, 1}, {1, 1}, {1, 1},  // pivot + duplicates
      {2, 3}, {3, 2}, {0.5, 4},
  });
  auto s = BSkyTreeS().Compute(data);
  auto p = BSkyTreeP().Compute(data);
  EXPECT_TRUE(IsSkylineOf(data, s));
  EXPECT_TRUE(IsSkylineOf(data, p));
}

TEST(BSkyTreeTest, SReportsSkippedTests) {
  Dataset data = Generate(DataType::kUniformIndependent, 2000, 6, 8);
  SkylineStats stats;
  auto result = BSkyTreeS().Compute(data, &stats);
  EXPECT_TRUE(IsSkylineOf(data, result));
  EXPECT_GT(stats.tests_skipped, 0u)
      << "incomparable-region skips should occur on UI data";
}

TEST(BSkyTreeTest, SBeatsSfsInDominanceTestsOnUniformData) {
  Dataset data = Generate(DataType::kUniformIndependent, 4000, 8, 10);
  SkylineStats s_stats, sfs_stats;
  auto s_result = BSkyTreeS().Compute(data, &s_stats);
  auto sfs_result = Sfs().Compute(data, &sfs_stats);
  EXPECT_TRUE(SameIdSet(s_result, sfs_result));
  EXPECT_LT(s_stats.dominance_tests, sfs_stats.dominance_tests);
}

TEST(BSkyTreeTest, PLeafSizeDoesNotChangeResult) {
  Dataset data = Generate(DataType::kAntiCorrelated, 600, 5, 12);
  const auto expected = ReferenceSkyline(data);
  for (std::size_t leaf : {1u, 16u, 128u, 4096u}) {
    AlgorithmOptions options;
    options.partition_leaf_size = leaf;
    EXPECT_TRUE(SameIdSet(BSkyTreeP(options).Compute(data), expected))
        << "leaf=" << leaf;
  }
}

TEST(BSkyTreeTest, HighDimensional) {
  Dataset data = Generate(DataType::kUniformIndependent, 250, 18, 3);
  const auto expected = ReferenceSkyline(data);
  EXPECT_TRUE(SameIdSet(BSkyTreeS().Compute(data), expected));
  EXPECT_TRUE(SameIdSet(BSkyTreeP().Compute(data), expected));
}

}  // namespace
}  // namespace skyline
