#include "src/algo/salsa.h"

#include <gtest/gtest.h>

#include "src/algo/sfs.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(SalsaTest, Name) {
  EXPECT_EQ(Salsa().name(), "salsa");
}

TEST(SalsaTest, CorrectOnMixedData) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Dataset data = Generate(DataType::kUniformIndependent, 600, 4, seed);
    EXPECT_TRUE(IsSkylineOf(data, Salsa().Compute(data)));
  }
}

TEST(SalsaTest, EarlyStopTriggersOnCorrelatedData) {
  // On CO data one skyline point near the origin ends the scan almost
  // immediately: far fewer tests than SFS, and in particular fewer than
  // one test per point (the paper's Tables 6/8 show DT << 1).
  Dataset data = Generate(DataType::kCorrelated, 20000, 8, 3);
  SkylineStats salsa_stats, sfs_stats;
  auto salsa_result = Salsa().Compute(data, &salsa_stats);
  auto sfs_result = Sfs().Compute(data, &sfs_stats);
  EXPECT_TRUE(SameIdSet(salsa_result, sfs_result));
  EXPECT_LT(salsa_stats.dominance_tests, sfs_stats.dominance_tests);
  EXPECT_LT(salsa_stats.MeanDominanceTests(data.num_points()), 1.0);
}

TEST(SalsaTest, StopPointDoesNotCutSkylinePoints) {
  // Crafted so that a skyline point sits exactly at the stop boundary:
  // stop value = max coord of (2,2) = 2; the point (2,0.5) has
  // min coord 0.5 < 2 and must still be examined; (3,2.5) must be cut.
  Dataset data = Dataset::FromRows({
      {2.0, 2.0},
      {0.5, 3.0},
      {2.0, 0.5},
      {3.0, 2.5},
      {2.5, 3.5},
  });
  EXPECT_TRUE(IsSkylineOf(data, Salsa().Compute(data)));
}

TEST(SalsaTest, BoundaryEqualityIsNotCut) {
  // A remaining point whose min coordinate *equals* the stop value may
  // be incomparable (ties are not strict dominance) — it must be kept.
  Dataset data = Dataset::FromRows({
      {1.0, 1.0},  // skyline; stop value becomes 1
      {1.0, 2.0},  // min coord 1 == stop value; dominated, fine
      {2.0, 1.0},  // min coord 1 == stop value; dominated, fine
      {1.0, 0.5},  // min coord 0.5; skyline
  });
  EXPECT_TRUE(IsSkylineOf(data, Salsa().Compute(data)));
}

TEST(SalsaTest, AllEqualPointsAtStopBoundary) {
  Dataset data = Dataset::FromRows({{2, 2}, {2, 2}, {2, 2}});
  EXPECT_EQ(Salsa().Compute(data).size(), 3u);
}

TEST(SalsaTest, StatsSkylineSizeMatches) {
  Dataset data = Generate(DataType::kAntiCorrelated, 400, 3, 4);
  SkylineStats stats;
  auto result = Salsa().Compute(data, &stats);
  EXPECT_EQ(stats.skyline_size, result.size());
  EXPECT_TRUE(IsSkylineOf(data, result));
}

}  // namespace
}  // namespace skyline
