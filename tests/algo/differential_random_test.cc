// Property-based differential layer: on seeded random datasets spanning
// the three distribution families, dimensionalities 2..10, cardinalities
// {0, 1, 100, 5000} and duplicate-heavy quantized variants, every
// registry algorithm — including the parallel engines — must return
// exactly the reference verifier's skyline. One reference computation is
// shared by all algorithms of a configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <ostream>
#include <sstream>

#include "src/algo/registry.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

struct DiffConfig {
  DataType type;
  unsigned dims;
  std::size_t points;
  std::uint64_t seed;
  /// > 0: floor every value into this many buckets, forcing duplicate
  /// coordinates and duplicate points.
  int quantize_levels = 0;

  friend std::ostream& operator<<(std::ostream& out, const DiffConfig& c) {
    out << ShortName(c.type) << "_" << c.dims << "d_" << c.points << "n_s"
        << c.seed;
    if (c.quantize_levels > 0) out << "_q" << c.quantize_levels;
    return out;
  }
};

std::string DiffConfigName(const ::testing::TestParamInfo<DiffConfig>& info) {
  std::ostringstream out;
  out << info.param;
  return out.str();
}

Dataset MakeDataset(const DiffConfig& c) {
  Dataset base = Generate(c.type, c.points, c.dims, c.seed);
  if (c.quantize_levels <= 0) return base;
  std::vector<Value> values = base.values();
  for (Value& v : values) {
    v = std::floor(v * static_cast<Value>(c.quantize_levels));
  }
  return Dataset(static_cast<Dim>(c.dims), std::move(values));
}

class DifferentialRandomTest : public ::testing::TestWithParam<DiffConfig> {};

TEST_P(DifferentialRandomTest, EveryAlgorithmMatchesReference) {
  const DiffConfig& c = GetParam();
  const Dataset data = MakeDataset(c);
  const std::vector<PointId> reference = ReferenceSkyline(data);
  for (const std::string& name : AlgorithmNames()) {
    auto algo = MakeAlgorithm(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_TRUE(SameIdSet(algo->Compute(data), reference))
        << name << " diverges from the reference on " << c;
  }
}

std::vector<DiffConfig> MakeConfigs() {
  std::vector<DiffConfig> configs;
  const std::vector<DataType> types = {DataType::kAntiCorrelated,
                                       DataType::kCorrelated,
                                       DataType::kUniformIndependent};
  for (DataType type : types) {
    for (unsigned d = 2; d <= 10; ++d) {
      // Degenerate cardinalities for every dimensionality.
      configs.push_back({type, d, 0, 42});
      configs.push_back({type, d, 1, 42});
      // Two seeds at a cardinality where skylines have real structure.
      configs.push_back({type, d, 100, 7});
      configs.push_back({type, d, 100, 1234});
      // Duplicate-heavy: 3 value levels per dimension.
      configs.push_back({type, d, 100, 99, /*quantize_levels=*/3});
    }
    // Large instances at representative dimensionalities (the reference
    // is O(N^2), so the 5000-point grid is kept sparse).
    for (unsigned d : {2u, 6u, 10u}) {
      configs.push_back({type, d, 5000, 13});
    }
    configs.push_back({type, 5, 5000, 8, /*quantize_levels=*/4});
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialRandomTest,
                         ::testing::ValuesIn(MakeConfigs()), DiffConfigName);

}  // namespace
}  // namespace skyline
