#include "src/algo/index.h"

#include <gtest/gtest.h>

#include "src/algo/sfs.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(IndexSkylineTest, Name) {
  EXPECT_EQ(IndexSkyline().name(), "index");
}

TEST(IndexSkylineTest, CorrectAcrossTypes) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 700, 5, 31);
    EXPECT_TRUE(IsSkylineOf(data, IndexSkyline().Compute(data)))
        << ShortName(type);
  }
}

TEST(IndexSkylineTest, EqualMinCTieAcrossLists) {
  // A dominator sharing the dominatee's minC but living in a different
  // list: the (minC, sum) global pop order must still put it first.
  Dataset data = Dataset::FromRows({
      {1.0, 3.0},  // list 0, minC 1, sum 4
      {3.0, 1.0},  // list 1, minC 1, sum 4 — incomparable with 0
      {1.0, 2.0},  // list 0, minC 1, sum 3 — dominates point 0
  });
  EXPECT_TRUE(SameIdSet(IndexSkyline().Compute(data), {1, 2}));
}

TEST(IndexSkylineTest, EarlyTerminationOnCorrelatedData) {
  Dataset data = Generate(DataType::kCorrelated, 20000, 8, 3);
  SkylineStats stats;
  auto result = IndexSkyline().Compute(data, &stats);
  EXPECT_TRUE(IsSkylineOf(data, result));
  EXPECT_LT(stats.MeanDominanceTests(data.num_points()), 1.0);
}

TEST(IndexSkylineTest, MatchesSfsExactly) {
  Dataset data = Generate(DataType::kUniformIndependent, 1200, 6, 17);
  EXPECT_TRUE(
      SameIdSet(IndexSkyline().Compute(data), Sfs().Compute(data)));
}

TEST(IndexSkylineTest, AllPointsInOneList) {
  // Every point's minimum lives in dimension 0.
  Dataset data = Dataset::FromRows(
      {{0.1, 5, 5}, {0.2, 6, 4}, {0.3, 3, 3}, {0.05, 9, 9}});
  EXPECT_TRUE(IsSkylineOf(data, IndexSkyline().Compute(data)));
}

}  // namespace
}  // namespace skyline
