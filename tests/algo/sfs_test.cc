#include "src/algo/sfs.h"

#include <gtest/gtest.h>

#include "src/algo/bnl.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(SfsTest, Name) {
  EXPECT_EQ(Sfs().name(), "sfs");
}

TEST(SfsTest, MatchesReferenceOnHotelExample) {
  Dataset data = Dataset::FromRows(
      {{1, 9}, {2, 8}, {3, 8.5}, {5, 4}, {6, 5}, {9, 1}});
  EXPECT_TRUE(SameIdSet(Sfs().Compute(data), {0, 1, 3, 5}));
}

TEST(SfsTest, EntropySortProducesSameSkyline) {
  Dataset data = Generate(DataType::kAntiCorrelated, 500, 5, 3);
  AlgorithmOptions entropy;
  entropy.sort = ScoreFunction::kEntropy;
  AlgorithmOptions euclid;
  euclid.sort = ScoreFunction::kEuclidean;
  const auto by_sum = Sfs().Compute(data);
  EXPECT_TRUE(SameIdSet(Sfs(entropy).Compute(data), by_sum));
  EXPECT_TRUE(SameIdSet(Sfs(euclid).Compute(data), by_sum));
  EXPECT_TRUE(IsSkylineOf(data, by_sum));
}

TEST(SfsTest, NeverTestsMoreThanSkylineSizePerPoint) {
  // SFS tests each point only against accepted skyline points: total
  // tests <= N * |skyline|.
  Dataset data = Generate(DataType::kUniformIndependent, 1000, 4, 5);
  SkylineStats stats;
  auto result = Sfs().Compute(data, &stats);
  EXPECT_LE(stats.dominance_tests, data.num_points() * result.size());
}

TEST(SfsTest, FewerTestsThanBnlOnAntiCorrelated) {
  // Presorting pays off where the window churns: AC data.
  Dataset data = Generate(DataType::kAntiCorrelated, 800, 4, 5);
  SkylineStats sfs_stats, bnl_stats;
  auto sfs_result = Sfs().Compute(data, &sfs_stats);
  auto bnl_result = Bnl().Compute(data, &bnl_stats);
  EXPECT_TRUE(SameIdSet(sfs_result, bnl_result));
  EXPECT_LT(sfs_stats.dominance_tests, bnl_stats.dominance_tests);
}

TEST(SfsTest, ProgressiveOrderIsMonotoneInScore) {
  // SFS outputs skyline points in sorted-score order (progressiveness).
  Dataset data = Generate(DataType::kUniformIndependent, 300, 3, 8);
  auto result = Sfs().Compute(data);
  for (std::size_t i = 1; i < result.size(); ++i) {
    Value prev = 0, cur = 0;
    for (Dim k = 0; k < 3; ++k) {
      prev += data.at(result[i - 1], k);
      cur += data.at(result[i], k);
    }
    EXPECT_LE(prev, cur);
  }
}

}  // namespace
}  // namespace skyline
