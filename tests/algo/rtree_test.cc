#include "src/algo/rtree.h"

#include <gtest/gtest.h>

#include <functional>

#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(RTreeTest, EmptyDataset) {
  Dataset data(3);
  RTree tree = RTree::BulkLoad(data);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.height(), 0u);
}

TEST(RTreeTest, SingleLeafForSmallData) {
  Dataset data = Generate(DataType::kUniformIndependent, 20, 3, 1);
  RTree tree = RTree::BulkLoad(data, /*leaf_capacity=*/32);
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_TRUE(tree.root()->IsLeaf());
  EXPECT_EQ(tree.root()->points.size(), 20u);
  EXPECT_EQ(tree.height(), 1u);
}

/// Walks the tree, checking structural invariants and collecting ids.
void Validate(const Dataset& data, const RTree::Node& node,
              std::vector<PointId>* collected) {
  const Dim d = data.num_dims();
  for (Dim i = 0; i < d; ++i) {
    ASSERT_LE(node.mbr.lo[i], node.mbr.hi[i]);
  }
  if (node.IsLeaf()) {
    ASSERT_FALSE(node.points.empty());
    for (PointId p : node.points) {
      collected->push_back(p);
      for (Dim i = 0; i < d; ++i) {
        ASSERT_GE(data.at(p, i), node.mbr.lo[i]);
        ASSERT_LE(data.at(p, i), node.mbr.hi[i]);
      }
    }
  } else {
    ASSERT_TRUE(node.points.empty());
    for (const auto& child : node.children) {
      for (Dim i = 0; i < d; ++i) {
        ASSERT_GE(child->mbr.lo[i], node.mbr.lo[i]);
        ASSERT_LE(child->mbr.hi[i], node.mbr.hi[i]);
      }
      Validate(data, *child, collected);
    }
  }
}

TEST(RTreeTest, InvariantsAndFullCoverage) {
  for (std::size_t leaf : {1u, 4u, 32u}) {
    Dataset data = Generate(DataType::kAntiCorrelated, 1000, 4, 7);
    RTree tree = RTree::BulkLoad(data, leaf, /*fanout=*/4);
    ASSERT_NE(tree.root(), nullptr);
    std::vector<PointId> collected;
    Validate(data, *tree.root(), &collected);
    std::sort(collected.begin(), collected.end());
    ASSERT_EQ(collected.size(), data.num_points()) << "leaf=" << leaf;
    for (PointId p = 0; p < data.num_points(); ++p) {
      ASSERT_EQ(collected[p], p);
    }
  }
}

TEST(RTreeTest, HeightShrinksWithFanout) {
  Dataset data = Generate(DataType::kUniformIndependent, 5000, 3, 3);
  RTree narrow = RTree::BulkLoad(data, 8, 2);
  RTree wide = RTree::BulkLoad(data, 8, 16);
  EXPECT_GT(narrow.height(), wide.height());
}

TEST(RTreeTest, DuplicatePointsAllStored) {
  std::vector<std::vector<Value>> rows(100, {1.0, 2.0});
  Dataset data = Dataset::FromRows(rows);
  RTree tree = RTree::BulkLoad(data, 8, 4);
  std::vector<PointId> collected;
  Validate(data, *tree.root(), &collected);
  EXPECT_EQ(collected.size(), 100u);
}

}  // namespace
}  // namespace skyline
