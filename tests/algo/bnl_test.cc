#include "src/algo/bnl.h"

#include <gtest/gtest.h>

#include "src/core/dominance.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(BnlTest, NameAndBasicResult) {
  Bnl bnl;
  EXPECT_EQ(bnl.name(), "bnl");
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}, {2, 2}});
  EXPECT_TRUE(SameIdSet(bnl.Compute(data), {0, 1}));
}

TEST(BnlTest, WindowEvictionKeepsLateDominator) {
  // The dominator arrives last: earlier window entries must be evicted.
  Dataset data = Dataset::FromRows({{5, 5}, {4, 6}, {3, 3}});
  Bnl bnl;
  EXPECT_TRUE(SameIdSet(bnl.Compute(data), {2}));
}

TEST(BnlTest, EvictionInMiddleOfWindowPreservesNeighbours) {
  // p evicts the middle window entry; its neighbours must survive the
  // window compaction. (Note that "evict some entries, then get
  // dominated" cannot happen in BNL: by transitivity the dominator of p
  // would already have evicted anything p dominates.)
  Dataset data = Dataset::FromRows({
      {0, 9},  // w0: incomparable with p, survives
      {5, 5},  // w1: evicted by p
      {9, 0},  // w2: incomparable with p, survives
      {4, 4},  // p
  });
  Bnl bnl;
  EXPECT_TRUE(SameIdSet(bnl.Compute(data), {0, 2, 3}));
}

TEST(BnlTest, StatsCountTests) {
  Dataset data = Generate(DataType::kUniformIndependent, 200, 3, 11);
  Bnl bnl;
  SkylineStats stats;
  auto result = bnl.Compute(data, &stats);
  EXPECT_GT(stats.dominance_tests, 0u);
  EXPECT_EQ(stats.skyline_size, result.size());
  // BNL never exceeds the naive N^2 bound.
  EXPECT_LE(stats.dominance_tests, 200u * 200u);
}

TEST(BnlTest, ComputeSubsetRestrictsToGivenIds) {
  Dataset data = Dataset::FromRows({{0, 0}, {1, 2}, {2, 1}, {3, 3}});
  DominanceTester tester(data);
  // Without point 0, both 1 and 2 are skyline of the subset.
  auto result = Bnl::ComputeSubset(tester, {1, 2, 3});
  EXPECT_TRUE(SameIdSet(result, {1, 2}));
}

TEST(BnlTest, ComputeSubsetEmpty) {
  Dataset data = Dataset::FromRows({{1, 1}});
  DominanceTester tester(data);
  EXPECT_TRUE(Bnl::ComputeSubset(tester, {}).empty());
}

}  // namespace
}  // namespace skyline
