#include "src/algo/sdi.h"

#include <gtest/gtest.h>

#include "src/algo/sfs.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(SdiTest, Name) {
  EXPECT_EQ(Sdi().name(), "sdi");
}

TEST(SdiTest, CorrectAcrossTypes) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 700, 5, 21);
    EXPECT_TRUE(IsSkylineOf(data, Sdi().Compute(data)))
        << ShortName(type);
  }
}

TEST(SdiTest, StopPointEndsScanEarlyOnCorrelatedData) {
  Dataset data = Generate(DataType::kCorrelated, 20000, 8, 3);
  SkylineStats stats;
  auto result = Sdi().Compute(data, &stats);
  EXPECT_TRUE(IsSkylineOf(data, result));
  // The defining SDI behaviour on CO data: far less than one dominance
  // test per point thanks to the per-dimension stop frontier.
  EXPECT_LT(stats.MeanDominanceTests(data.num_points()), 1.0);
}

TEST(SdiTest, TieBlocksWithDuplicateDimensionValues) {
  // Dimension 0 is constant: every point lives in one big tie block, so
  // correctness hinges entirely on the SFS-like local tests.
  Dataset data = Dataset::FromRows({
      {1, 5, 3},
      {1, 4, 4},
      {1, 5, 4},  // dominated by (1,5,3)? no: equal d0/d1, worse d2 -> yes
      {1, 6, 2},
      {1, 4, 5},  // dominated by (1,4,4)
      {1, 3, 9},
  });
  EXPECT_TRUE(IsSkylineOf(data, Sdi().Compute(data)));
}

TEST(SdiTest, DuplicatePointsInTieBlocks) {
  Dataset data = Dataset::FromRows({
      {2, 2}, {2, 2}, {1, 3}, {3, 1}, {1, 3}, {2, 3}, {3, 2},
  });
  EXPECT_TRUE(IsSkylineOf(data, Sdi().Compute(data)));
}

TEST(SdiTest, HighDimensionalCorrectness) {
  Dataset data = Generate(DataType::kUniformIndependent, 300, 20, 2);
  EXPECT_TRUE(IsSkylineOf(data, Sdi().Compute(data)));
}

TEST(SdiTest, MatchesSfsSkylineExactly) {
  Dataset data = Generate(DataType::kAntiCorrelated, 900, 6, 13);
  EXPECT_TRUE(SameIdSet(Sdi().Compute(data), Sfs().Compute(data)));
}

TEST(SdiTest, DistributesFewerTestsThanSfsOnUniformData) {
  // SDI's raison d'être (its own paper targets high-d domains): fewer
  // dominance tests than a plain sorted scan on UI data.
  Dataset data = Generate(DataType::kUniformIndependent, 5000, 8, 17);
  SkylineStats sdi_stats, sfs_stats;
  auto sdi_result = Sdi().Compute(data, &sdi_stats);
  auto sfs_result = Sfs().Compute(data, &sfs_stats);
  EXPECT_TRUE(SameIdSet(sdi_result, sfs_result));
  EXPECT_LT(sdi_stats.dominance_tests, sfs_stats.dominance_tests);
}

TEST(SdiTest, SingleDimension) {
  Dataset data = Dataset::FromRows({{3}, {1}, {2}, {1}});
  EXPECT_TRUE(SameIdSet(Sdi().Compute(data), {1, 3}));
}

}  // namespace
}  // namespace skyline
