#include "src/algo/dnc.h"

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(DncTest, Name) {
  EXPECT_EQ(DivideAndConquer().name(), "dnc");
}

TEST(DncTest, CorrectAcrossLeafSizes) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 6);
  const auto expected = ReferenceSkyline(data);
  for (std::size_t leaf : {1u, 2u, 8u, 64u, 1000u}) {
    AlgorithmOptions options;
    options.partition_leaf_size = leaf;
    EXPECT_TRUE(SameIdSet(DivideAndConquer(options).Compute(data), expected))
        << "leaf=" << leaf;
  }
}

TEST(DncTest, ConstantDimensionFallsBackToNextSplit) {
  // Dimension 0 constant: the median split must rotate to dimension 1.
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({1.0, static_cast<Value>(i % 17),
                    static_cast<Value>((i * 7) % 13)});
  }
  Dataset data = Dataset::FromRows(rows);
  AlgorithmOptions options;
  options.partition_leaf_size = 4;
  EXPECT_TRUE(IsSkylineOf(data, DivideAndConquer(options).Compute(data)));
}

TEST(DncTest, AllDuplicateRegionReturnsEverything) {
  std::vector<std::vector<Value>> rows(100, {2.0, 3.0});
  Dataset data = Dataset::FromRows(rows);
  AlgorithmOptions options;
  options.partition_leaf_size = 4;
  EXPECT_EQ(DivideAndConquer(options).Compute(data).size(), 100u);
}

TEST(DncTest, SkewedDuplicateHeavyData) {
  // Half the points identical, rest scattered: stresses median splitting
  // with massive ties.
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 150; ++i) rows.push_back({5, 5, 5});
  Dataset scatter = Generate(DataType::kUniformIndependent, 150, 3, 9);
  for (PointId p = 0; p < scatter.num_points(); ++p) {
    rows.push_back({scatter.at(p, 0) * 10, scatter.at(p, 1) * 10,
                    scatter.at(p, 2) * 10});
  }
  Dataset data = Dataset::FromRows(rows);
  AlgorithmOptions options;
  options.partition_leaf_size = 8;
  EXPECT_TRUE(IsSkylineOf(data, DivideAndConquer(options).Compute(data)));
}

}  // namespace
}  // namespace skyline
