#include "src/subset/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/core/dominance.h"
#include "src/core/scores.h"
#include "src/core/verify.h"
#include "src/data/generator.h"

namespace skyline {
namespace {

struct MergeCase {
  DataType type;
  int sigma;
  std::uint64_t seed;
};

class MergePostconditionTest : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MergePostconditionTest, InvariantsHold) {
  const auto& param = GetParam();
  Dataset data = Generate(param.type, 800, 6, param.seed);
  const Dim d = data.num_dims();
  MergeResult merge = MergeSubspaces(data, param.sigma);

  // Conservation: every point is a pivot, remaining, or pruned.
  EXPECT_EQ(merge.pivots.size() + merge.remaining.size() + merge.pruned,
            data.num_points());
  EXPECT_EQ(merge.remaining.size(), merge.subspaces.size());

  // Every pivot is a true skyline point.
  const auto reference = ReferenceSkyline(data);
  for (PointId pv : merge.pivots) {
    EXPECT_TRUE(std::find(reference.begin(), reference.end(), pv) !=
                reference.end())
        << "pivot " << pv << " is not a skyline point";
  }

  // No remaining point is dominated by any pivot; every remaining mask is
  // exactly the union of per-pivot dominating subspaces (Definition 4.1)
  // and non-empty.
  for (std::size_t i = 0; i < merge.remaining.size(); ++i) {
    const PointId q = merge.remaining[i];
    Subspace expected;
    for (PointId pv : merge.pivots) {
      EXPECT_FALSE(Dominates(data.row(pv), data.row(q), d));
      expected |= DominatingSubspace(data.row(q), data.row(pv), d);
    }
    EXPECT_EQ(merge.subspaces[i], expected);
    EXPECT_FALSE(merge.subspaces[i].empty());
  }

  // Pivots + remaining together contain the whole skyline (pruned points
  // are dominated, so never skyline).
  std::vector<PointId> kept = merge.pivots;
  kept.insert(kept.end(), merge.remaining.begin(), merge.remaining.end());
  std::sort(kept.begin(), kept.end());
  for (PointId s : reference) {
    EXPECT_TRUE(std::binary_search(kept.begin(), kept.end(), s))
        << "skyline point " << s << " was pruned";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MergePostconditionTest,
    ::testing::Values(MergeCase{DataType::kAntiCorrelated, 2, 1},
                      MergeCase{DataType::kAntiCorrelated, 4, 2},
                      MergeCase{DataType::kCorrelated, 2, 1},
                      MergeCase{DataType::kCorrelated, 6, 2},
                      MergeCase{DataType::kUniformIndependent, 2, 1},
                      MergeCase{DataType::kUniformIndependent, 3, 2},
                      MergeCase{DataType::kUniformIndependent, 6, 3}));

TEST(MergeTest, FirstPivotMinimizesAnchoredEuclideanScore) {
  Dataset data = Generate(DataType::kUniformIndependent, 500, 4, 11);
  const Dim d = data.num_dims();
  std::vector<Value> lo(d, std::numeric_limits<Value>::infinity());
  for (PointId p = 0; p < data.num_points(); ++p) {
    for (Dim k = 0; k < d; ++k) lo[k] = std::min(lo[k], data.at(p, k));
  }
  auto score = [&](PointId p) {
    Value s = 0;
    for (Dim k = 0; k < d; ++k) {
      const Value v = data.at(p, k) - lo[k];
      s += v * v;
    }
    return s;
  };
  MergeResult merge = MergeSubspaces(data, 2);
  ASSERT_FALSE(merge.pivots.empty());
  for (PointId p = 0; p < data.num_points(); ++p) {
    EXPECT_LE(score(merge.pivots.front()), score(p));
  }
}

TEST(MergeTest, NegativeValuesAreHandled) {
  // The anchored score keeps the pivot a skyline point on arbitrary
  // data; the boosted algorithms stay correct after translation.
  Dataset base = Generate(DataType::kUniformIndependent, 400, 4, 13);
  std::vector<Value> values = base.values();
  for (Value& v : values) v -= Value{0.75};
  Dataset data(4, std::move(values));
  MergeResult merge = MergeSubspaces(data, 3);
  const auto reference = ReferenceSkyline(data);
  for (PointId pv : merge.pivots) {
    EXPECT_TRUE(std::find(reference.begin(), reference.end(), pv) !=
                reference.end());
  }
}

TEST(MergeTest, LargerSigmaNeverSelectsFewerPivots) {
  Dataset data = Generate(DataType::kUniformIndependent, 2000, 8, 5);
  std::size_t prev = 0;
  for (int sigma = 2; sigma <= 8; ++sigma) {
    MergeResult merge = MergeSubspaces(data, sigma);
    EXPECT_GE(merge.iterations, static_cast<int>(prev > 0 ? 1 : 0));
    EXPECT_GE(merge.pivots.size(), prev == 0 ? 0 : prev);
    prev = merge.pivots.size();
  }
}

TEST(MergeTest, CorrelatedDataPrunesAlmostEverything) {
  Dataset data = Generate(DataType::kCorrelated, 5000, 6, 7);
  MergeResult merge = MergeSubspaces(data, 2);
  // The near-origin pivot dominates the bulk of CO data.
  EXPECT_GT(merge.pruned, data.num_points() * 8 / 10);
}

TEST(MergeTest, DuplicatesOfPivotBecomeSkyline) {
  Dataset data = Dataset::FromRows({
      {1, 1}, {1, 1}, {1, 1},  // minimal point + duplicates
      {3, 2}, {2, 3}, {4, 4},
  });
  MergeResult merge = MergeSubspaces(data, 2);
  // All three duplicates must be in the pivot set.
  EXPECT_GE(merge.pivots.size(), 3u);
  for (PointId pv : {0u, 1u, 2u}) {
    EXPECT_TRUE(std::find(merge.pivots.begin(), merge.pivots.end(), pv) !=
                merge.pivots.end());
  }
}

TEST(MergeTest, EmptyDataset) {
  Dataset data(4);
  MergeResult merge = MergeSubspaces(data, 3);
  EXPECT_TRUE(merge.pivots.empty());
  EXPECT_TRUE(merge.remaining.empty());
  EXPECT_EQ(merge.pruned, 0u);
}

TEST(MergeTest, SinglePoint) {
  Dataset data = Dataset::FromRows({{2, 3}});
  MergeResult merge = MergeSubspaces(data, 2);
  EXPECT_EQ(merge.pivots, std::vector<PointId>{0});
  EXPECT_TRUE(merge.remaining.empty());
}

TEST(MergeTest, ChainDataTerminatesWithEmptyActiveSet) {
  // A totally ordered chain: each pivot prunes the rest; the loop must
  // exit via the empty-dataset branch, not run forever.
  Dataset data = Dataset::FromRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  MergeResult merge = MergeSubspaces(data, 4);
  EXPECT_EQ(merge.pivots.size(), 1u);
  EXPECT_EQ(merge.pruned, 3u);
  EXPECT_TRUE(merge.remaining.empty());
}

TEST(MergeTest, DominanceTestsAreCounted) {
  Dataset data = Generate(DataType::kUniformIndependent, 300, 4, 3);
  MergeResult merge = MergeSubspaces(data, 2);
  // At least one full pass over the data per pivot iteration (minus the
  // points removed along the way), never more than iterations * N scans
  // plus the duplicate checks.
  EXPECT_GE(merge.dominance_tests, data.num_points() - 1);
  EXPECT_LE(merge.dominance_tests,
            2 * static_cast<std::uint64_t>(merge.iterations) *
                data.num_points());
}

TEST(MergeTest, OverFullSpanEqualsMergeSubspaces) {
  // MergeSubspaces is the full-span special case of MergeSubspacesOver.
  Dataset data = Generate(DataType::kUniformIndependent, 400, 5, 12);
  std::vector<PointId> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), PointId{0});
  MergeResult full = MergeSubspaces(data, 2);
  MergeResult over = MergeSubspacesOver(data, ids, 2);
  EXPECT_EQ(over.pivots, full.pivots);
  EXPECT_EQ(over.remaining, full.remaining);
  EXPECT_EQ(over.dominance_tests, full.dominance_tests);
  EXPECT_EQ(over.pruned, full.pruned);
  EXPECT_EQ(over.iterations, full.iterations);
  ASSERT_EQ(over.subspaces.size(), full.subspaces.size());
  for (std::size_t i = 0; i < over.subspaces.size(); ++i) {
    EXPECT_EQ(over.subspaces[i], full.subspaces[i]) << i;
  }
}

TEST(MergeTest, OverSubsetSeesOnlyItsIds) {
  // Restricting the pass to a subset: every output id is from the
  // subset, pivots are skyline points *of the subset*, and ids outside
  // the subset never influence pruning.
  Dataset data = Dataset::FromRows({
      {0, 0},  // global dominator — NOT in the subset
      {1, 5},
      {5, 1},
      {6, 6},  // dominated within the subset
  });
  const std::vector<PointId> subset = {1, 2, 3};
  MergeResult merge = MergeSubspacesOver(data, subset, 2);
  std::vector<PointId> seen = merge.pivots;
  seen.insert(seen.end(), merge.remaining.begin(), merge.remaining.end());
  for (PointId id : seen) {
    EXPECT_NE(id, 0u) << "an id outside the subset leaked into the result";
  }
  EXPECT_EQ(seen.size() + merge.pruned, subset.size());
}

TEST(MergeTest, OverEmptySubset) {
  Dataset data = Dataset::FromRows({{1, 2}, {2, 1}});
  MergeResult merge = MergeSubspacesOver(data, {}, 2);
  EXPECT_TRUE(merge.pivots.empty());
  EXPECT_TRUE(merge.remaining.empty());
  EXPECT_EQ(merge.dominance_tests, 0u);
}

TEST(MergeTest, SigmaOneStopsAfterFirstStableBin) {
  // sigma = 1 is degenerate but legal: the pass stops as soon as any
  // size bin is unchanged.
  Dataset data = Generate(DataType::kUniformIndependent, 500, 6, 9);
  MergeResult merge = MergeSubspaces(data, 1);
  EXPECT_GE(merge.iterations, 1);
}

}  // namespace
}  // namespace skyline
