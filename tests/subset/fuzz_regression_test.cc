// Deterministic replays of the fuzz harnesses (fuzz/harness_*.h).
//
// Two layers: (1) the checked-in seed-corpus inputs, embedded as byte
// arrays so the regression does not depend on file paths — any input a
// fuzzer ever finds gets promoted into kPromoted* below; (2) a short
// fixed-seed random sweep per harness, which keeps a miniature fuzz run
// inside the ordinary test suite. A harness oracle mismatch aborts, so
// a regression shows up as a crashed test, exactly like in the fuzzer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "fuzz/harness_csv.h"
#include "fuzz/harness_merge.h"
#include "fuzz/harness_query_service.h"
#include "fuzz/harness_subset_index.h"
#include "fuzz/harness_subspace.h"

namespace skyline {
namespace {

using fuzz::RunCsvFuzzInput;
using fuzz::RunMergeFuzzInput;
using fuzz::RunQueryServiceFuzzInput;
using fuzz::RunSubsetIndexFuzzInput;
using fuzz::RunSubspaceFuzzInput;

std::vector<std::uint8_t> RandomBytes(std::mt19937_64& rng,
                                      std::size_t max_len) {
  std::vector<std::uint8_t> bytes(rng() % (max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

// fuzz/corpus/subspace/seed-edges.bin: d=64 full-vs-empty, d=1, d=8
// interleaved — the boundary cases for the 64-bit mask arithmetic.
TEST(FuzzRegressionTest, SubspaceCorpusEdges) {
  std::vector<std::uint8_t> input;
  input.push_back(63);
  for (int i = 0; i < 8; ++i) input.push_back(0xFF);
  for (int i = 0; i < 8; ++i) input.push_back(0x00);
  input.push_back(0);
  input.push_back(0x01);
  for (int i = 0; i < 7; ++i) input.push_back(0x00);
  input.push_back(0x01);
  for (int i = 0; i < 7; ++i) input.push_back(0x00);
  input.push_back(7);
  input.push_back(0xAA);
  for (int i = 0; i < 7; ++i) input.push_back(0x00);
  input.push_back(0x55);
  for (int i = 0; i < 7; ++i) input.push_back(0x00);
  RunSubspaceFuzzInput(input.data(), input.size());
}

// fuzz/corpus/merge/seed-dups.bin: every point identical — the
// weak-dominance duplicate path must classify all of them as pivots.
TEST(FuzzRegressionTest, MergeCorpusAllDuplicates) {
  std::vector<std::uint8_t> input = {1, 0};
  for (int i = 0; i < 12; ++i) input.push_back(8);
  RunMergeFuzzInput(input.data(), input.size());
}

// fuzz/corpus/merge/seed-antichain.bin: a 3-d anti-correlated chain
// where no point dominates any other (maximal skyline).
TEST(FuzzRegressionTest, MergeCorpusAntichain) {
  std::vector<std::uint8_t> input = {2, 1, 0, 15, 1, 14, 2, 13, 3,
                                     12, 4, 11, 5, 10, 6, 9, 7, 8};
  RunMergeFuzzInput(input.data(), input.size());
}

// fuzz/corpus/subset_index/seed-ops.bin: the scripted op sequence that
// exercises Add, AddAlwaysCandidate, MergeFrom, both query directions
// and Remove against the flat oracle.
TEST(FuzzRegressionTest, SubsetIndexCorpusOps) {
  const std::vector<std::uint8_t> input = {
      5,                 // nd = 6
      0, 1, 0b11, 0,     // Add id=1 mask={0,1}
      0, 2, 0b110, 0,    // Add id=2 mask={1,2}
      3, 7,              // AddAlwaysCandidate id=7
      5, 0b10, 0,        // Query {1}
      2, 3, 0b111, 0,    // staging Add id=3 mask={0,1,2}
      7,                 // MergeFrom staging
      6, 0b111, 0,       // QueryContained {0,1,2}
      4, 0,              // Remove (oracle-checked branch)
  };
  RunSubsetIndexFuzzInput(input.data(), input.size());
}

// fuzz/corpus/subset_index/seed-reclaim.bin: add/remove churn on shared
// and private paths followed by Compact — the node-reclamation oracle
// (num_nodes == distinct live reversed-path prefixes) after every op.
TEST(FuzzRegressionTest, SubsetIndexCorpusReclaim) {
  const std::vector<std::uint8_t> input = {
      7,                 // nd = 8
      0, 1, 0b1100, 0,   // Add id=1 mask={2,3}
      0, 2, 0b1010, 0,   // Add id=2 mask={1,3} (shares reversed prefix)
      4, 1, 1, 0,        // Remove a stored entry (oracle branch)
      8,                 // Compact: must find nothing to prune
      4, 1, 0, 0,        // Remove again
      8,                 // Compact on the emptier tree
      5, 0, 0,           // Query {} returns the survivors
  };
  RunSubsetIndexFuzzInput(input.data(), input.size());
}

// fuzz/corpus/csv/seed-nonfinite.bin: a nan field must be rejected, not
// parsed into the dataset (from_chars accepts "nan" as a double).
TEST(FuzzRegressionTest, CsvCorpusNonFinite) {
  const std::string text = "\x01"
                           "1,2\n3,nan\n";
  RunCsvFuzzInput(reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size());
}

// fuzz/corpus/csv/seed-precision.bin: 17-significant-digit values that
// a 6-digit formatter corrupts; the round-trip must be bit-exact.
TEST(FuzzRegressionTest, CsvCorpusPrecision) {
  const std::string text =
      "\x01"
      "0.1,0.333333333333333314829616256247390992939472198486328125\n"
      "1e-300,1e300\n";
  RunCsvFuzzInput(reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size());
}

// fuzz/corpus/csv/seed-roundtrip.bin equivalent: raw doubles including
// subnormals and 2^53+1 through the writer/reader cycle.
TEST(FuzzRegressionTest, CsvCorpusAwkwardDoubles) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           1e-300,
                           1.0000001,
                           123456.789012345,
                           -2.2250738585072014e-308,
                           9007199254740993.0,
                           1e300};
  std::vector<std::uint8_t> input = {0x00, 0x03};  // round-trip mode, nd=4
  for (const double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      input.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
  RunCsvFuzzInput(input.data(), input.size());
}

// fuzz/corpus/query_service/seed-repeat.bin: d=4, capacity 4, pinned
// full space, 12 quantized points, repeat-heavy query stream — the
// cache-hit and ancestor-seeded paths with duplicate projections.
TEST(FuzzRegressionTest, QueryServiceCorpusRepeatHeavy) {
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> input = {2, 3, 1, 11};
  for (int i = 0; i < 12 * 4; ++i) {
    input.push_back(static_cast<std::uint8_t>(rng() % 8));
  }
  for (std::uint8_t q : {1, 3, 1, 3, 7, 1, 3, 15, 1, 3, 1, 5, 3, 1, 3, 1}) {
    input.push_back(static_cast<std::uint8_t>(q - 1));
  }
  RunQueryServiceFuzzInput(input.data(), input.size());
}

// fuzz/corpus/query_service/seed-evict.bin: d=3, capacity 1, unpinned,
// id budget on, all 7 masks round-robin twice — eviction churn on every
// miss plus the cold-compute path.
TEST(FuzzRegressionTest, QueryServiceCorpusEvictionChurn) {
  std::mt19937_64 rng(8);
  std::vector<std::uint8_t> input = {1, 0, 2, 19};
  for (int i = 0; i < 20 * 3; ++i) {
    input.push_back(static_cast<std::uint8_t>(rng() % 8));
  }
  for (int round = 0; round < 2; ++round) {
    for (std::uint8_t q = 0; q < 7; ++q) input.push_back(q);
  }
  RunQueryServiceFuzzInput(input.data(), input.size());
}

TEST(FuzzRegressionTest, CsvShortRandomSweep) {
  std::mt19937_64 rng(0xC57);
  for (int i = 0; i < 300; ++i) {
    const auto input = RandomBytes(rng, 160);
    RunCsvFuzzInput(input.data(), input.size());
  }
}

TEST(FuzzRegressionTest, SubspaceShortRandomSweep) {
  std::mt19937_64 rng(0xA11CE);
  for (int i = 0; i < 300; ++i) {
    const auto input = RandomBytes(rng, 128);
    RunSubspaceFuzzInput(input.data(), input.size());
  }
}

TEST(FuzzRegressionTest, MergeShortRandomSweep) {
  std::mt19937_64 rng(0xB0B);
  for (int i = 0; i < 200; ++i) {
    const auto input = RandomBytes(rng, 192);
    RunMergeFuzzInput(input.data(), input.size());
  }
}

TEST(FuzzRegressionTest, SubsetIndexShortRandomSweep) {
  std::mt19937_64 rng(0xCAFE);
  for (int i = 0; i < 200; ++i) {
    const auto input = RandomBytes(rng, 256);
    RunSubsetIndexFuzzInput(input.data(), input.size());
  }
}

TEST(FuzzRegressionTest, QueryServiceShortRandomSweep) {
  std::mt19937_64 rng(0x5E2F1CE);
  for (int i = 0; i < 150; ++i) {
    const auto input = RandomBytes(rng, 224);
    RunQueryServiceFuzzInput(input.data(), input.size());
  }
}

}  // namespace
}  // namespace skyline
