// The paper's lemmas as executable properties on random data. These pin
// down the theory the subset approach rests on: if any of these fail,
// the index-based candidate filtering would be unsound.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/dominance.h"
#include "src/core/verify.h"
#include "src/data/generator.h"
#include "src/subset/merge.h"

namespace skyline {
namespace {

struct LemmaCase {
  DataType type;
  std::uint64_t seed;
};

class LemmaTest : public ::testing::TestWithParam<LemmaCase> {
 protected:
  void SetUp() override {
    data_ = Generate(GetParam().type, 400, 5, GetParam().seed);
    d_ = data_.num_dims();
    skyline_ = ReferenceSkyline(data_);
  }

  bool Dom(PointId a, PointId b) const {
    return Dominates(data_.row(a), data_.row(b), d_);
  }

  Subspace DomSub(PointId q, PointId p) const {
    return DominatingSubspace(data_.row(q), data_.row(p), d_);
  }

  Dataset data_{1};
  Dim d_ = 0;
  std::vector<PointId> skyline_;
};

// Lemma 3.5: for a skyline point p and points q1 != q2 not dominated by
// p, subset-incomparable dominating subspaces imply point incomparability.
TEST_P(LemmaTest, Lemma35SubsetIncomparabilityImpliesPointIncomparability) {
  const PointId p = skyline_.front();
  for (PointId q1 = 0; q1 < data_.num_points(); ++q1) {
    if (q1 == p || Dom(p, q1)) continue;
    for (PointId q2 = q1 + 1; q2 < data_.num_points(); ++q2) {
      if (q2 == p || Dom(p, q2)) continue;
      const Subspace s1 = DomSub(q1, p);
      const Subspace s2 = DomSub(q2, p);
      if (!s1.IsSubsetOf(s2) && !s2.IsSubsetOf(s1)) {
        ASSERT_FALSE(Dom(q1, q2));
        ASSERT_FALSE(Dom(q2, q1));
      }
    }
  }
}

// Lemma 3.6: D_{q1<p} not superset of D_{q2<p} implies q1 does not
// dominate q2.
TEST_P(LemmaTest, Lemma36SupersetIsNecessaryForDominance) {
  const PointId p = skyline_.front();
  for (PointId q1 = 0; q1 < data_.num_points(); ++q1) {
    if (q1 == p || Dom(p, q1)) continue;
    for (PointId q2 = 0; q2 < data_.num_points(); ++q2) {
      if (q2 == p || q2 == q1 || Dom(p, q2)) continue;
      if (!DomSub(q1, p).IsSupersetOf(DomSub(q2, p))) {
        ASSERT_FALSE(Dom(q1, q2));
      }
    }
  }
}

// Lemmas 4.2/4.3: the same statements for *maximum* dominating subspaces
// with respect to a pivot set S, exactly as produced by the Merge pass.
TEST_P(LemmaTest, Lemma42And43ForMaximumDominatingSubspaces) {
  MergeResult merge = MergeSubspaces(data_, 3);
  const auto& ids = merge.remaining;
  const auto& masks = merge.subspaces;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (i == j) continue;
      // Lemma 4.3: D_{q1<S} not superset of D_{q2<S} => q1 does not
      // dominate q2.
      if (!masks[i].IsSupersetOf(masks[j])) {
        ASSERT_FALSE(Dom(ids[i], ids[j]))
            << ids[i] << " dominates " << ids[j]
            << " despite mask " << masks[i].ToString() << " !>= "
            << masks[j].ToString();
      }
      // Lemma 4.2 (subset-incomparable masks => incomparable points) is
      // the symmetric consequence; check one direction suffices given the
      // loop covers both orders.
    }
  }
}

// Lemma 5.1 operationalized: for every remaining point q that is NOT a
// skyline point, some skyline dominator carries a superset mask — i.e.
// the index's candidate set always contains a witness.
TEST_P(LemmaTest, Lemma51CandidateSetContainsDominator) {
  MergeResult merge = MergeSubspaces(data_, 3);
  const auto& ids = merge.remaining;
  const auto& masks = merge.subspaces;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const PointId q = ids[i];
    bool is_skyline = false;
    bool witness = false;
    for (PointId s : skyline_) {
      if (s == q) {
        is_skyline = true;
        break;
      }
    }
    if (is_skyline) continue;
    // q is dominated; find a *skyline* dominator among remaining points
    // with a superset mask (pivots cannot dominate q by construction).
    for (std::size_t j = 0; j < ids.size() && !witness; ++j) {
      if (i == j) continue;
      if (Dom(ids[j], q)) {
        bool j_skyline = false;
        for (PointId s : skyline_) {
          if (s == ids[j]) {
            j_skyline = true;
            break;
          }
        }
        if (j_skyline) {
          EXPECT_TRUE(masks[j].IsSupersetOf(masks[i]))
              << "skyline dominator with non-superset mask";
          witness = true;
        }
      }
    }
    EXPECT_TRUE(witness) << "dominated remaining point " << q
                         << " has no skyline dominator among remaining";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaTest,
    ::testing::Values(LemmaCase{DataType::kAntiCorrelated, 1},
                      LemmaCase{DataType::kAntiCorrelated, 2},
                      LemmaCase{DataType::kCorrelated, 1},
                      LemmaCase{DataType::kUniformIndependent, 1},
                      LemmaCase{DataType::kUniformIndependent, 2},
                      LemmaCase{DataType::kUniformIndependent, 3}));

}  // namespace
}  // namespace skyline
