#include "src/subset/sigma_estimator.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"

namespace skyline {
namespace {

TEST(SigmaEstimatorTest, ReturnsSigmaInValidRange) {
  for (DataType type : {DataType::kAntiCorrelated, DataType::kCorrelated,
                        DataType::kUniformIndependent}) {
    Dataset data = Generate(type, 5000, 8, 3);
    SigmaEstimate est = EstimateSigma(data, 1000, 1);
    EXPECT_GE(est.sigma, 2) << ShortName(type);
    EXPECT_LE(est.sigma, 8) << ShortName(type);
    EXPECT_EQ(est.cost_per_sigma.size(), 7u);  // sigma 2..8
    EXPECT_EQ(est.sample_size, 1000u);
  }
}

TEST(SigmaEstimatorTest, PicksTheCheapestSigma) {
  Dataset data = Generate(DataType::kUniformIndependent, 5000, 8, 7);
  SigmaEstimate est = EstimateSigma(data, 1500, 2);
  const double chosen = est.cost_per_sigma[est.sigma - 2];
  for (double cost : est.cost_per_sigma) {
    EXPECT_LE(chosen, cost);
  }
}

TEST(SigmaEstimatorTest, TiesResolveTowardSmallerSigma) {
  // On CO data the cost is flat across sigma (nearly everything is
  // pruned by the first pivots), so the estimator must return sigma = 2.
  Dataset data = Generate(DataType::kCorrelated, 5000, 8, 5);
  SigmaEstimate est = EstimateSigma(data, 1000, 3);
  EXPECT_EQ(est.sigma, 2);
}

TEST(SigmaEstimatorTest, DeterministicGivenSeed) {
  Dataset data = Generate(DataType::kUniformIndependent, 3000, 6, 9);
  SigmaEstimate a = EstimateSigma(data, 800, 42);
  SigmaEstimate b = EstimateSigma(data, 800, 42);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.cost_per_sigma, b.cost_per_sigma);
}

TEST(SigmaEstimatorTest, SampleLargerThanDataIsClamped) {
  Dataset data = Generate(DataType::kUniformIndependent, 200, 4, 1);
  SigmaEstimate est = EstimateSigma(data, 10000, 1);
  EXPECT_EQ(est.sample_size, 200u);
  EXPECT_GE(est.sigma, 2);
  EXPECT_LE(est.sigma, 4);
}

TEST(SigmaEstimatorTest, DegenerateDimensionality) {
  Dataset data = Generate(DataType::kUniformIndependent, 100, 1, 1);
  EXPECT_EQ(EstimateSigma(data, 50, 1).sigma, 1);
  Dataset empty(3);
  EXPECT_EQ(EstimateSigma(empty, 50, 1).sigma, 1);
}

TEST(SigmaEstimatorTest, UniformEightDimFavorsPaperRegime) {
  // The paper's rule of thumb is round(d/3); the data-driven estimate on
  // 8-D UI data should land in its neighbourhood, not at the extremes.
  Dataset data = Generate(DataType::kUniformIndependent, 8000, 8, 21);
  SigmaEstimate est = EstimateSigma(data, 2000, 4);
  EXPECT_GE(est.sigma, 2);
  EXPECT_LE(est.sigma, 5);
}

}  // namespace
}  // namespace skyline
